#ifndef BDIO_TOOLS_BDIO_LINT_LINT_H_
#define BDIO_TOOLS_BDIO_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace bdio::lint {

/// One finding. `rule` is "R1".."R5" (or "A0" for a malformed annotation).
struct Diagnostic {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Input for one translation unit. `sibling` carries the contents of the
/// matching header (foo.h for foo.cc) so member containers declared in the
/// header are known when the .cc iterates them; empty when there is none.
/// `in_src` enables R5 (default-member-initializer enforcement), which
/// applies to structs under src/ only.
struct FileInput {
  std::string path;
  std::string content;
  std::string sibling;
  bool in_src = false;
};

/// Replaces comments and string/character literals with spaces, preserving
/// the line structure, so rule patterns never fire inside prose or data.
/// Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

/// Runs every rule over one file. See docs/STATIC_ANALYSIS.md for the rule
/// catalogue and the annotation grammar:
///   // bdio-lint: order-insensitive -- <justification>   (allows R1)
///   // bdio-lint: allow(R<k>) -- <justification>         (allows rule k)
/// An annotation allows findings on its own line and on the following
/// line; an annotation with no justification is itself a diagnostic.
std::vector<Diagnostic> LintFile(const FileInput& input);

/// Lints every .h/.cc file under `roots` (recursively, sorted order).
/// Returns all diagnostics; `files_scanned`, if non-null, receives the
/// file count.
std::vector<Diagnostic> LintTree(const std::vector<std::string>& roots,
                                 size_t* files_scanned = nullptr);

}  // namespace bdio::lint

#endif  // BDIO_TOOLS_BDIO_LINT_LINT_H_
