#ifndef BDIO_TOOLS_BDIO_LINT_LINT_H_
#define BDIO_TOOLS_BDIO_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace bdio::lint {

/// One finding. `rule` is "R1".."R8", "A0" for a malformed annotation, or
/// "A1" for a stale annotation that suppressed nothing. `line`/`col` are
/// 1-based; diagnostics sort by (file, line, col, rule) so output order is
/// deterministic across platforms and directory-walk orders.
struct Diagnostic {
  std::string file;
  size_t line = 0;
  size_t col = 0;
  std::string rule;
  std::string message;
};

/// Input for one translation unit. `sibling` carries the contents of the
/// matching header (foo.h for foo.cc) so member containers declared in the
/// header are known when the .cc iterates them; empty when there is none.
/// `in_src` enables R5 (default-member-initializer enforcement), which
/// applies to structs under src/ only.
struct FileInput {
  std::string path;
  std::string content;
  std::string sibling;
  bool in_src = false;
};

/// Replaces comments and string/character literals with spaces, preserving
/// the line structure, so rule patterns never fire inside prose or data.
/// Exposed for tests.
std::string StripCommentsAndStrings(const std::string& content);

/// Runs every per-file rule (R1-R7 plus the annotation grammar) over one
/// file. See docs/STATIC_ANALYSIS.md for the rule catalogue and the
/// annotation grammar:
///   // bdio-lint: order-insensitive -- <justification>   (allows R1)
///   // bdio-lint: allow(R<k>) -- <justification>         (allows rule k)
/// An annotation allows findings on its own line and on the following
/// line; an annotation with no justification is itself a diagnostic (A0),
/// and one that suppresses nothing is a stale-annotation diagnostic (A1).
/// Several annotations may share one line; each needs its own
/// justification.
std::vector<Diagnostic> LintFile(const FileInput& input);

// ---------------------------------------------------------------------------
// R8: metrics schema audit
// ---------------------------------------------------------------------------

/// One GetCounter/GetGauge/GetHistogram call site, as recovered from the
/// token stream. `label_keys` holds the sorted label keys when the label
/// argument was an inline initializer or a local `obs::Labels` variable
/// whose initializer is visible in the same file; `labels_known` is false
/// otherwise (the name is still validated, the labels are not).
struct MetricCallSite {
  std::string file;
  size_t line = 0;
  size_t col = 0;
  std::string kind;  ///< "counter", "gauge" or "histogram".
  std::string name;  ///< Empty when the name was not a string literal.
  std::vector<std::string> label_keys;
  bool labels_known = true;
  bool allowed = false;  ///< An allow(R8) annotation covers this site.
};

/// Extracts every metric-registry call site from one file. Exposed for
/// tests; LintTree uses it internally when a schema is supplied.
std::vector<MetricCallSite> CollectMetricCalls(const FileInput& input);

/// One entry of docs/metrics_schema.json.
struct MetricSchemaEntry {
  std::string name;
  std::string type;  ///< "counter", "gauge" or "histogram".
  std::vector<std::string> labels;  ///< Sorted label keys.
  std::string subsystem;
  std::string doc;
  size_t line = 0;  ///< Line of the entry in the schema file.
};

struct MetricsSchema {
  std::string path;
  std::vector<MetricSchemaEntry> entries;
};

/// Parses the schema JSON (the subset DumpMetricsSchema emits). Returns
/// false and fills `error` on malformed input.
bool ParseMetricsSchema(const std::string& text, MetricsSchema* out,
                        std::string* error);

/// Reads and parses `path`. Returns false on read or parse failure.
bool LoadMetricsSchema(const std::string& path, MetricsSchema* out,
                       std::string* error);

/// Validates call sites against the schema: unknown metric names, kind
/// mismatches, label-set mismatches, non-literal names, and schema entries
/// with no remaining call site all produce R8 diagnostics.
std::vector<Diagnostic> CheckMetricsSchema(
    const MetricsSchema& schema, const std::vector<MetricCallSite>& sites);

/// Regenerates the schema from observed call sites, carrying doc strings
/// over from `old_schema` (may be null) by metric name. Output is
/// byte-stable: entries sort by name, labels by key.
std::string DumpMetricsSchema(const MetricsSchema* old_schema,
                              const std::vector<MetricCallSite>& sites);

/// Collects metric call sites from every .h/.cc under `roots`, in sorted
/// file order. Files under tests/ are skipped: tests construct throwaway
/// registries whose names deliberately live outside the schema.
std::vector<MetricCallSite> CollectTreeMetricCalls(
    const std::vector<std::string>& roots);

// ---------------------------------------------------------------------------
// Tree entry point
// ---------------------------------------------------------------------------

struct LintOptions {
  /// When non-null, the R8 metrics-schema audit runs over the tree.
  const MetricsSchema* schema = nullptr;
};

/// Lints every .h/.cc file under `roots` (recursively, sorted order).
/// Returns all diagnostics sorted by (file, line, col, rule);
/// `files_scanned`, if non-null, receives the file count.
std::vector<Diagnostic> LintTree(const std::vector<std::string>& roots,
                                 size_t* files_scanned = nullptr,
                                 const LintOptions& options = {});

/// Renders diagnostics as a JSON array of {file, line, col, rule, message}
/// objects (sorted input order preserved), for --json and CI annotation.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags);

}  // namespace bdio::lint

#endif  // BDIO_TOOLS_BDIO_LINT_LINT_H_
