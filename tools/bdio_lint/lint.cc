#include "bdio_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace bdio::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line number of byte offset `pos`.
size_t LineOf(const std::vector<size_t>& line_starts, size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<size_t>(it - line_starts.begin());
}

std::vector<size_t> LineStarts(const std::string& s) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

/// True when the `len` bytes at `pos` form a whole token (no identifier
/// character on either side).
bool TokenAt(const std::string& s, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  if (pos + len < s.size() && IsIdentChar(s[pos + len])) return false;
  return true;
}

size_t SkipSpace(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// With s[pos] == '<', returns the offset just past the matching '>', or
/// npos. Tracks parens so "Foo<decltype(a > b)>" does not confuse it.
size_t SkipTemplateArgs(const std::string& s, size_t pos) {
  int angle = 0;
  int paren = 0;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (paren > 0) continue;
    if (c == '<') ++angle;
    if (c == '>') {
      --angle;
      if (angle == 0) return pos + 1;
    }
    if (c == ';') return std::string::npos;  // unbalanced (operator<)
  }
  return std::string::npos;
}

/// With s[pos] == '(', returns the offset just past the matching ')'.
size_t SkipParens(const std::string& s, size_t pos) {
  int depth = 0;
  for (; pos < s.size(); ++pos) {
    if (s[pos] == '(') ++depth;
    if (s[pos] == ')') {
      --depth;
      if (depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotation {
  int rule = 0;  ///< 1..5; 1 for order-insensitive.
  bool has_justification = false;
};

/// Parses "// bdio-lint: ..." annotations from the ORIGINAL source (they
/// live in comments, so they must be read before stripping). Key: line.
std::map<size_t, Annotation> ParseAnnotations(
    const std::string& content, const std::string& path,
    std::vector<Diagnostic>* diags) {
  std::map<size_t, Annotation> out;
  std::istringstream in(content);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t at = line.find("bdio-lint:");
    if (at == std::string::npos) continue;
    std::string rest = line.substr(at + std::string("bdio-lint:").size());
    const size_t first = rest.find_first_not_of(" \t");
    if (first == std::string::npos) continue;
    rest = rest.substr(first);
    Annotation ann;
    if (rest.rfind("order-insensitive", 0) == 0) {
      ann.rule = 1;
      rest = rest.substr(std::string("order-insensitive").size());
    } else if (rest.rfind("allow(R", 0) == 0 && rest.size() > 8 &&
               rest[7] >= '1' && rest[7] <= '5' && rest[8] == ')') {
      ann.rule = rest[7] - '0';
      rest = rest.substr(9);
    } else {
      diags->push_back({path, lineno, "A0",
                        "unrecognized bdio-lint annotation (expected "
                        "'order-insensitive' or 'allow(R<1-5>)')"});
      continue;
    }
    const size_t dash = rest.find("--");
    std::string justification;
    if (dash != std::string::npos) {
      justification = rest.substr(dash + 2);
      const size_t b = justification.find_first_not_of(" \t");
      justification =
          b == std::string::npos ? std::string() : justification.substr(b);
    }
    ann.has_justification = !justification.empty();
    if (!ann.has_justification) {
      diags->push_back({path, lineno, "A0",
                        "bdio-lint annotation without a justification "
                        "(write '-- <why this is safe>')"});
    }
    out[lineno] = ann;
  }
  return out;
}

/// An annotation allows findings on its own line and on the next line.
bool Allowed(const std::map<size_t, Annotation>& anns, int rule,
             size_t line) {
  for (const size_t l : {line, line - 1}) {
    const auto it = anns.find(l);
    if (it != anns.end() && it->second.rule == rule) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Declarations harvesting
// ---------------------------------------------------------------------------

/// Names declared as unordered containers in stripped source: after the
/// closing '>' of std::unordered_* template args, the next identifier is
/// taken as the variable name.
void CollectUnorderedNames(const std::string& code,
                           std::set<std::string>* names) {
  static const char* kTypes[] = {
      "std::unordered_map", "std::unordered_set", "std::unordered_multimap",
      "std::unordered_multiset"};
  for (const char* type : kTypes) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      size_t p = pos + t.size();
      pos = p;
      p = SkipSpace(code, p);
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipTemplateArgs(code, p);
      if (p == std::string::npos) continue;
      p = SkipSpace(code, p);
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      if (end > p) names->insert(code.substr(p, end - p));
    }
  }
}

/// Names declared float/double (members or locals) in stripped source.
void CollectFloatNames(const std::string& code,
                       std::set<std::string>* names) {
  for (const char* type : {"float", "double"}) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t start = pos;
      pos += t.size();
      if (!TokenAt(code, start, t.size())) continue;
      const size_t p = SkipSpace(code, start + t.size());
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      if (end > p) names->insert(code.substr(p, end - p));
    }
  }
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void CheckR1(const std::string& code, const std::set<std::string>& unordered,
             const std::vector<size_t>& lines, const std::string& path,
             const std::map<size_t, Annotation>& anns,
             std::vector<Diagnostic>* diags) {
  if (unordered.empty()) return;
  // Range-for whose sequence expression names an unordered container.
  size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const size_t kw = pos;
    pos += 3;
    if (!TokenAt(code, kw, 3)) continue;
    size_t p = SkipSpace(code, kw + 3);
    if (p >= code.size() || code[p] != '(') continue;
    const size_t close = SkipParens(code, p);
    if (close == std::string::npos) continue;
    const std::string head = code.substr(p + 1, close - p - 2);
    // The range-for ':' (ignore '::').
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head.size(); ++i) {
      if (head[i] != ':') continue;
      if (i + 1 < head.size() && head[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && head[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::string seq = head.substr(colon + 1);
    for (size_t i = 0; i < seq.size();) {
      if (!IsIdentChar(seq[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < seq.size() && IsIdentChar(seq[end])) ++end;
      const std::string ident = seq.substr(i, end - i);
      i = end;
      if (unordered.contains(ident)) {
        const size_t line = LineOf(lines, kw);
        if (!Allowed(anns, 1, line)) {
          diags->push_back(
              {path, line, "R1",
               "range-for over unordered container '" + ident +
                   "': iteration order is hash order, which is not "
                   "deterministic across stdlib implementations (use an "
                   "ordered container or annotate order-insensitive)"});
        }
        break;
      }
    }
  }
  // Explicit iterator loops: container.begin()/cbegin()/rbegin()/crbegin().
  for (const char* fn : {".begin", ".cbegin", ".rbegin", ".crbegin"}) {
    const std::string f(fn);
    pos = 0;
    while ((pos = code.find(f, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += f.size();
      const size_t after = SkipSpace(code, at + f.size());
      if (after >= code.size() || code[after] != '(') continue;
      size_t b = at;
      while (b > 0 && IsIdentChar(code[b - 1])) --b;
      const std::string ident = code.substr(b, at - b);
      if (!unordered.contains(ident)) continue;
      const size_t line = LineOf(lines, at);
      if (!Allowed(anns, 1, line)) {
        diags->push_back(
            {path, line, "R1",
             "iterator over unordered container '" + ident +
                 "': traversal order is hash order (use an ordered "
                 "container or annotate order-insensitive)"});
      }
    }
  }
}

void CheckR2(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path,
             const std::map<size_t, Annotation>& anns,
             std::vector<Diagnostic>* diags) {
  struct Banned {
    const char* token;
    bool call_only;  ///< Must be followed by '(' to fire.
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "use sim::Rng (seeded, deterministic)"},
      {"srand", true, "use sim::Rng (seeded, deterministic)"},
      {"random_device", false, "use sim::Rng (seeded, deterministic)"},
      {"time", true, "use the simulator clock (sim::Simulator::Now)"},
      {"system_clock", false, "use the simulator clock"},
      {"high_resolution_clock", false, "use the simulator clock"},
  };
  for (const Banned& b : kBanned) {
    const std::string t(b.token);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += t.size();
      if (!TokenAt(code, at, t.size())) continue;
      // Member access is someone else's function, not the libc one.
      if (at > 0 && (code[at - 1] == '.' ||
                     (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
        continue;
      }
      if (b.call_only) {
        const size_t after = SkipSpace(code, at + t.size());
        if (after >= code.size() || code[after] != '(') continue;
      }
      const size_t line = LineOf(lines, at);
      if (!Allowed(anns, 2, line)) {
        diags->push_back({path, line, "R2",
                          "non-deterministic source '" + t + "': " + b.why});
      }
    }
  }
}

void CheckR3(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path,
             const std::map<size_t, Annotation>& anns,
             std::vector<Diagnostic>* diags) {
  static const char* kKeyed[] = {
      "std::map",           "std::set",
      "std::multimap",      "std::multiset",
      "std::unordered_map", "std::unordered_set",
      "std::unordered_multimap", "std::unordered_multiset",
      "std::hash"};
  for (const char* type : kKeyed) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += t.size();
      // "std::map" must not match inside "std::multimap".
      if (at + t.size() < code.size() && IsIdentChar(code[at + t.size()])) {
        continue;
      }
      size_t p = SkipSpace(code, at + t.size());
      if (p >= code.size() || code[p] != '<') continue;
      // First template argument: up to a depth-0 ',' or the closing '>'.
      int angle = 0;
      size_t arg_start = p + 1;
      size_t arg_end = std::string::npos;
      for (size_t i = p; i < code.size(); ++i) {
        if (code[i] == '<') ++angle;
        if (code[i] == '>') {
          --angle;
          if (angle == 0) {
            arg_end = i;
            break;
          }
        }
        if (code[i] == ',' && angle == 1) {
          arg_end = i;
          break;
        }
        if (code[i] == ';') break;
      }
      if (arg_end == std::string::npos) continue;
      std::string key = code.substr(arg_start, arg_end - arg_start);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())) != 0) {
        key.pop_back();
      }
      if (key.empty() || key.back() != '*') continue;
      const size_t line = LineOf(lines, at);
      if (!Allowed(anns, 3, line)) {
        diags->push_back(
            {path, line, "R3",
             t + " keyed by pointer '" + key +
                 "': pointer order/hash depends on allocation addresses, "
                 "which vary run to run (key by a stable id instead)"});
      }
    }
  }
}

void CheckR4(const std::string& code, const std::set<std::string>& floats,
             const std::vector<size_t>& lines, const std::string& path,
             const std::map<size_t, Annotation>& anns,
             std::vector<Diagnostic>* diags) {
  if (floats.empty()) return;
  // Receiver-qualified thread-pool entry points: anything .Async(/->Async(,
  // and .Submit(/->Submit( whose receiver names a pool. BlockDevice::Submit
  // (simulated I/O, single-threaded) is deliberately out of scope.
  size_t pos = 0;
  while (pos < code.size()) {
    size_t async_at = code.find("Async", pos);
    size_t submit_at = code.find("Submit", pos);
    size_t at;
    size_t len;
    if (async_at == std::string::npos && submit_at == std::string::npos) {
      break;
    }
    if (async_at != std::string::npos &&
        (submit_at == std::string::npos || async_at < submit_at)) {
      at = async_at;
      len = 5;
    } else {
      at = submit_at;
      len = 6;
    }
    pos = at + len;
    if (!TokenAt(code, at, len)) continue;
    if (at == 0) continue;
    const bool dot = code[at - 1] == '.';
    const bool arrow = at > 1 && code[at - 2] == '-' && code[at - 1] == '>';
    if (!dot && !arrow) continue;
    if (len == 6) {  // Submit: receiver must look like a thread pool
      size_t b = at - (dot ? 1 : 2);
      while (b > 0 && (IsIdentChar(code[b - 1]) || code[b - 1] == '_')) --b;
      std::string recv = code.substr(b, at - (dot ? 1 : 2) - b);
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (recv.find("pool") == std::string::npos) continue;
    }
    const size_t open = SkipSpace(code, at + len);
    if (open >= code.size() || code[open] != '(') continue;
    const size_t close = SkipParens(code, open);
    if (close == std::string::npos) continue;
    // Flag "<float-name> +=" inside the callback region.
    for (size_t i = open; i < close; ++i) {
      if (!IsIdentChar(code[i])) continue;
      size_t end = i;
      while (end < close && IsIdentChar(code[end])) ++end;
      const std::string ident = code.substr(i, end - i);
      size_t after = SkipSpace(code, end);
      if (after + 1 < code.size() && code[after] == '+' &&
          code[after + 1] == '=' && floats.contains(ident)) {
        const size_t line = LineOf(lines, i);
        if (!Allowed(anns, 4, line)) {
          diags->push_back(
              {path, line, "R4",
               "floating-point accumulation '" + ident +
                   " +=' inside a thread-pool callback: summation order "
                   "depends on task interleaving (accumulate per task and "
                   "reduce in a deterministic order)"});
        }
      }
      i = end;
    }
    pos = close;
  }
}

bool StartsWithToken(const std::string& s, const std::string& tok) {
  return s.rfind(tok, 0) == 0 &&
         (s.size() == tok.size() || !IsIdentChar(s[tok.size()]));
}

void CheckR5Struct(const std::string& code, size_t body_start,
                   size_t body_end, const std::string& struct_name,
                   const std::vector<size_t>& lines, const std::string& path,
                   const std::map<size_t, Annotation>& anns,
                   std::vector<Diagnostic>* diags) {
  static const std::set<std::string> kScalar = {
      "bool",    "char",    "wchar_t",  "short",    "int",      "long",
      "unsigned", "signed", "float",    "double",   "size_t",   "ptrdiff_t",
      "int8_t",  "int16_t", "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
      "uint32_t", "uint64_t", "intptr_t", "uintptr_t", "SimTime",
      "SimDuration"};
  size_t i = body_start;
  size_t stmt_start = body_start;
  std::string stmt;
  auto reset = [&](size_t next) {
    stmt.clear();
    stmt_start = next;
  };
  while (i < body_end) {
    const char c = code[i];
    if (c == '{') {
      // Either a nested scope (function body, nested type — skip it; nested
      // structs are scanned by their own top-level pass) or a brace
      // initializer (the member IS initialized — skip the statement).
      int depth = 0;
      size_t j = i;
      for (; j < body_end; ++j) {
        if (code[j] == '{') ++depth;
        if (code[j] == '}') {
          --depth;
          if (depth == 0) break;
        }
      }
      i = j + 1;
      // A nested body may be followed by ';' (type definition) — swallow it.
      const size_t after = SkipSpace(code, i);
      i = (after < body_end && code[after] == ';') ? after + 1 : i;
      reset(i);
      continue;
    }
    if (c == ';') {
      // Classify the accumulated statement.
      std::string s = stmt;
      const size_t b = s.find_first_not_of(" \t\n");
      s = b == std::string::npos ? std::string() : s.substr(b);
      // Access labels glue to the next statement ("public: int x").
      for (const char* label : {"public:", "private:", "protected:"}) {
        if (s.rfind(label, 0) == 0) s = s.substr(std::string(label).size());
      }
      const size_t b2 = s.find_first_not_of(" \t\n");
      s = b2 == std::string::npos ? std::string() : s.substr(b2);
      bool skip = s.empty();
      for (const char* kw :
           {"static", "constexpr", "using", "typedef", "friend", "template",
            "virtual", "explicit", "operator", "struct", "class", "enum",
            "union", "inline"}) {
        if (StartsWithToken(s, kw)) skip = true;
      }
      if (s.find('(') != std::string::npos ||
          s.find('=') != std::string::npos ||
          s.find('[') != std::string::npos ||
          s.find('&') != std::string::npos ||
          s.find('<') != std::string::npos) {
        // '<' marks a class-template member (e.g. FlatMap<uint64_t, T*>):
        // class types default-construct, so R5's uninitialized-POD concern
        // does not apply — and the tokenizer would misread the template
        // arguments as member names.
        skip = true;
      }
      if (!skip) {
        // Tokenize: qualifiers, type tokens, stars, member name(s).
        std::vector<std::string> tokens;
        size_t stars = 0;
        for (size_t k = 0; k < s.size();) {
          if (s[k] == '*') {
            ++stars;
            ++k;
            continue;
          }
          if (!IsIdentChar(s[k]) && s[k] != ':') {
            ++k;
            continue;
          }
          size_t e = k;
          while (e < s.size() && (IsIdentChar(s[e]) || s[e] == ':')) ++e;
          tokens.push_back(s.substr(k, e - k));
          k = e;
        }
        while (!tokens.empty() &&
               (tokens.front() == "const" || tokens.front() == "volatile" ||
                tokens.front() == "mutable")) {
          tokens.erase(tokens.begin());
        }
        // Need at least "type name"; compound builtin types collapse.
        if (tokens.size() >= 2) {
          size_t type_end = 1;
          static const std::set<std::string> kCompound = {
              "unsigned", "signed", "long", "short"};
          while (type_end < tokens.size() - 1 &&
                 kCompound.contains(tokens[type_end - 1]) &&
                 (kCompound.contains(tokens[type_end]) ||
                  tokens[type_end] == "int" || tokens[type_end] == "char" ||
                  tokens[type_end] == "double")) {
            ++type_end;
          }
          const std::string& base = tokens[type_end - 1];
          std::string base_name = base;
          const size_t q = base_name.rfind("::");
          if (q != std::string::npos) base_name = base_name.substr(q + 2);
          const bool pod = stars > 0 || kScalar.contains(base_name);
          if (pod && tokens.size() > type_end) {
            const size_t line = LineOf(lines, stmt_start);
            if (!Allowed(anns, 5, line)) {
              for (size_t m = type_end; m < tokens.size(); ++m) {
                diags->push_back(
                    {path, line, "R5",
                     "member '" + tokens[m] + "' of struct '" + struct_name +
                         "' has no default initializer: an instance left "
                         "partially uninitialized reads indeterminate "
                         "values (add '= ...' or '{}')"});
              }
            }
          }
        }
      }
      i += 1;
      reset(i);
      continue;
    }
    stmt.push_back(c);
    if (stmt.size() == 1) stmt_start = i;
    ++i;
  }
}

void CheckR5(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path,
             const std::map<size_t, Annotation>& anns,
             std::vector<Diagnostic>* diags) {
  size_t pos = 0;
  while ((pos = code.find("struct", pos)) != std::string::npos) {
    const size_t kw = pos;
    pos += 6;
    if (!TokenAt(code, kw, 6)) continue;
    size_t p = SkipSpace(code, kw + 6);
    size_t name_end = p;
    while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
    if (name_end == p) continue;  // anonymous
    std::string name = code.substr(p, name_end - p);
    // Out-of-line nested definitions: struct Outer::Inner { ... }.
    while (name_end + 1 < code.size() && code[name_end] == ':' &&
           code[name_end + 1] == ':') {
      size_t seg = name_end + 2;
      size_t seg_end = seg;
      while (seg_end < code.size() && IsIdentChar(code[seg_end])) ++seg_end;
      if (seg_end == seg) break;
      name += "::" + code.substr(seg, seg_end - seg);
      name_end = seg_end;
    }
    p = SkipSpace(code, name_end);
    if (p < code.size() && code[p] == ':') {  // base clause
      while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
    }
    if (p >= code.size() || code[p] != '{') continue;  // fwd decl etc.
    int depth = 0;
    size_t end = p;
    for (; end < code.size(); ++end) {
      if (code[end] == '{') ++depth;
      if (code[end] == '}') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (end >= code.size()) continue;
    CheckR5Struct(code, p + 1, end, name, lines, path, anns, diags);
  }
}

std::string ReadFile(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Shared stripper: string/char literals always blank to spaces; comments
/// blank only when `strip_comments` (annotation parsing keeps them — an
/// annotation is only valid inside a real comment, never inside a string).
std::string Strip(const std::string& content, bool strip_comments) {
  std::string out = content;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // )delim" terminator of a raw string
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (strip_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (strip_comments) out[i] = ' ';
        } else if (c == '"') {
          // R"delim( ... )delim" — only when R directly abuts the quote and
          // is not the tail of an identifier.
          if (i > 0 && content[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(content[i - 2]))) {
            size_t d = i + 1;
            while (d < content.size() && content[d] != '(') ++d;
            raw_delim = ")" + content.substr(i + 1, d - i - 1) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (strip_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::kCode;
        } else if (c != '\n' && strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            if (i + 1 < content.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < content.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k + 1 < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  return Strip(content, /*strip_comments=*/true);
}

std::vector<Diagnostic> LintFile(const FileInput& input) {
  std::vector<Diagnostic> diags;
  // Annotations are read with strings blanked but comments intact: only a
  // real comment can carry one (the linter's own test fixtures quote
  // annotation text inside string literals).
  const std::map<size_t, Annotation> anns = ParseAnnotations(
      Strip(input.content, /*strip_comments=*/false), input.path, &diags);
  const std::string code = StripCommentsAndStrings(input.content);
  const std::vector<size_t> lines = LineStarts(code);

  std::set<std::string> unordered;
  CollectUnorderedNames(code, &unordered);
  if (!input.sibling.empty()) {
    CollectUnorderedNames(StripCommentsAndStrings(input.sibling), &unordered);
  }
  std::set<std::string> floats;
  CollectFloatNames(code, &floats);
  if (!input.sibling.empty()) {
    CollectFloatNames(StripCommentsAndStrings(input.sibling), &floats);
  }

  CheckR1(code, unordered, lines, input.path, anns, &diags);
  CheckR2(code, lines, input.path, anns, &diags);
  CheckR3(code, lines, input.path, anns, &diags);
  CheckR4(code, floats, lines, input.path, anns, &diags);
  if (input.in_src) CheckR5(code, lines, input.path, anns, &diags);

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return diags;
}

std::vector<Diagnostic> LintTree(const std::vector<std::string>& roots,
                                 size_t* files_scanned) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files_scanned != nullptr) *files_scanned = files.size();

  std::vector<Diagnostic> diags;
  for (const fs::path& p : files) {
    FileInput in;
    in.path = p.generic_string();
    in.content = ReadFile(p);
    in.in_src = in.path.rfind("src/", 0) == 0 ||
                in.path.find("/src/") != std::string::npos;
    if (p.extension() == ".cc") {
      fs::path sib = p;
      sib.replace_extension(".h");
      if (fs::exists(sib)) in.sibling = ReadFile(sib);
    }
    std::vector<Diagnostic> file_diags = LintFile(in);
    diags.insert(diags.end(), file_diags.begin(), file_diags.end());
  }
  return diags;
}

}  // namespace bdio::lint
