#include "bdio_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace bdio::lint {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// 1-based line number of byte offset `pos`.
size_t LineOf(const std::vector<size_t>& line_starts, size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<size_t>(it - line_starts.begin());
}

/// 1-based column of byte offset `pos`.
size_t ColOf(const std::vector<size_t>& line_starts, size_t pos) {
  return pos - line_starts[LineOf(line_starts, pos) - 1] + 1;
}

std::vector<size_t> LineStarts(const std::string& s) {
  std::vector<size_t> starts{0};
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

Diagnostic MakeDiag(const std::string& path,
                    const std::vector<size_t>& lines, size_t pos,
                    const char* rule, std::string msg) {
  return {path, LineOf(lines, pos), ColOf(lines, pos), rule,
          std::move(msg)};
}

/// True when the `len` bytes at `pos` form a whole token (no identifier
/// character on either side).
bool TokenAt(const std::string& s, size_t pos, size_t len) {
  if (pos > 0 && IsIdentChar(s[pos - 1])) return false;
  if (pos + len < s.size() && IsIdentChar(s[pos + len])) return false;
  return true;
}

size_t SkipSpace(const std::string& s, size_t pos) {
  while (pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
    ++pos;
  }
  return pos;
}

/// Last non-space character before `pos`, or '\0'.
char PrevNonSpace(const std::string& s, size_t pos) {
  while (pos > 0) {
    --pos;
    if (std::isspace(static_cast<unsigned char>(s[pos])) == 0) return s[pos];
  }
  return '\0';
}

/// First non-space character at or after `pos`, or '\0'.
char NextNonSpace(const std::string& s, size_t pos) {
  pos = SkipSpace(s, pos);
  return pos < s.size() ? s[pos] : '\0';
}

/// The identifier token whose last character precedes `end` (skipping
/// trailing spaces). Empty when none. `start_out` receives its offset.
std::string IdentEndingBefore(const std::string& s, size_t end,
                              size_t* start_out) {
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  size_t b = end;
  while (b > 0 && IsIdentChar(s[b - 1])) --b;
  if (start_out != nullptr) *start_out = b;
  return s.substr(b, end - b);
}

/// With s[pos] == '<', returns the offset just past the matching '>', or
/// npos. Tracks parens so "Foo<decltype(a > b)>" does not confuse it.
size_t SkipTemplateArgs(const std::string& s, size_t pos) {
  int angle = 0;
  int paren = 0;
  for (; pos < s.size(); ++pos) {
    const char c = s[pos];
    if (c == '(') ++paren;
    if (c == ')') --paren;
    if (paren > 0) continue;
    if (c == '<') ++angle;
    if (c == '>') {
      --angle;
      if (angle == 0) return pos + 1;
    }
    if (c == ';') return std::string::npos;  // unbalanced (operator<)
  }
  return std::string::npos;
}

/// With s[pos] == '(', returns the offset just past the matching ')'.
size_t SkipParens(const std::string& s, size_t pos) {
  int depth = 0;
  for (; pos < s.size(); ++pos) {
    if (s[pos] == '(') ++depth;
    if (s[pos] == ')') {
      --depth;
      if (depth == 0) return pos + 1;
    }
  }
  return std::string::npos;
}

/// Shared stripper: `strip_comments` blanks comments, `strip_strings`
/// blanks string/char literals; both preserve line structure. Annotation
/// parsing keeps comments (an annotation is only valid inside a real
/// comment); the R8 call-site scan keeps strings (metric names live in
/// them).
std::string Strip(const std::string& content, bool strip_comments,
                  bool strip_strings) {
  std::string out = content;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // )delim" terminator of a raw string
  for (size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          if (strip_comments) out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          if (strip_comments) out[i] = ' ';
        } else if (c == '"') {
          // R"delim( ... )delim" — only when R directly abuts the quote and
          // is not the tail of an identifier.
          if (i > 0 && content[i - 1] == 'R' &&
              (i < 2 || !IsIdentChar(content[i - 2]))) {
            size_t d = i + 1;
            while (d < content.size() && content[d] != '(') ++d;
            raw_delim = ")" + content.substr(i + 1, d - i - 1) + "\"";
            state = State::kRawString;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else if (strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          if (strip_comments) {
            out[i] = ' ';
            out[i + 1] = ' ';
          }
          ++i;
          state = State::kCode;
        } else if (c != '\n' && strip_comments) {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (next != '\n' && i + 1 < content.size()) out[i + 1] = ' ';
          }
          if (next != '\n') ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          if (strip_strings) {
            out[i] = ' ';
            if (i + 1 < content.size()) out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (strip_strings) {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (content.compare(i, raw_delim.size(), raw_delim) == 0) {
          if (strip_strings) {
            for (size_t k = 0; k + 1 < raw_delim.size(); ++k) {
              out[i + k] = ' ';
            }
          }
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n' && strip_strings) {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

struct Annotation {
  int rule = 0;  ///< 1..8; 1 for order-insensitive.
  bool has_justification = false;
  size_t line = 0;
  size_t col = 0;
  bool used = false;  ///< Suppressed at least one finding.
};

/// Per-file annotation table. Several annotations may share one line
/// (each parsed independently, each with its own justification); an
/// annotation allows findings on its own line and on the following line.
class AnnotationSet {
 public:
  /// Parses "// bdio-lint: ..." annotations from comment-preserving text
  /// (strings blanked: the linter's own fixtures quote annotation text in
  /// string literals). Malformed annotations append A0 diagnostics.
  void Parse(const std::string& content, const std::string& path,
             std::vector<Diagnostic>* diags) {
    std::istringstream in(content);
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      size_t at = line.find("bdio-lint:");
      while (at != std::string::npos) {
        const size_t next = line.find("bdio-lint:", at + 10);
        ParseOne(line, at, next == std::string::npos ? line.size() : next,
                 lineno, path, diags);
        at = next;
      }
    }
  }

  /// True when an annotation for `rule` covers `line`; marks it used.
  bool Allow(int rule, size_t line) {
    bool allowed = false;
    for (const size_t l : {line, line - 1}) {
      const auto it = by_line_.find(l);
      if (it == by_line_.end()) continue;
      for (Annotation& a : it->second) {
        if (a.rule == rule) {
          a.used = true;
          allowed = true;
        }
      }
    }
    return allowed;
  }

  /// A1 for every annotation that suppressed nothing. allow(R8) is exempt:
  /// the metrics-schema audit runs at tree level, where per-file usage is
  /// not visible.
  void AppendStale(const std::string& path,
                   std::vector<Diagnostic>* diags) const {
    for (const auto& [line, anns] : by_line_) {
      for (const Annotation& a : anns) {
        if (a.used || a.rule == 8) continue;
        diags->push_back(
            {path, a.line, a.col, "A1",
             "stale annotation: no R" + std::to_string(a.rule) +
                 " finding on this or the next line (remove the "
                 "annotation, or fix its rule id)"});
      }
    }
  }

 private:
  void ParseOne(const std::string& line, size_t at, size_t seg_end,
                size_t lineno, const std::string& path,
                std::vector<Diagnostic>* diags) {
    std::string rest = line.substr(at + 10, seg_end - (at + 10));
    const size_t first = rest.find_first_not_of(" \t");
    if (first == std::string::npos) return;
    rest = rest.substr(first);
    Annotation ann;
    ann.line = lineno;
    ann.col = at + 1;
    if (rest.rfind("order-insensitive", 0) == 0) {
      ann.rule = 1;
      rest = rest.substr(17);
    } else if (rest.rfind("allow(R", 0) == 0 && rest.size() > 8 &&
               rest[7] >= '1' && rest[7] <= '8' && rest[8] == ')') {
      ann.rule = rest[7] - '0';
      rest = rest.substr(9);
    } else {
      diags->push_back({path, lineno, at + 1, "A0",
                        "unrecognized bdio-lint annotation (expected "
                        "'order-insensitive' or 'allow(R<1-8>)')"});
      return;
    }
    // Everything after the first "--" is the justification, verbatim —
    // including any further "--" it happens to contain.
    const size_t dash = rest.find("--");
    std::string justification;
    if (dash != std::string::npos) {
      justification = rest.substr(dash + 2);
      const size_t b = justification.find_first_not_of(" \t");
      justification =
          b == std::string::npos ? std::string() : justification.substr(b);
      while (!justification.empty() &&
             std::isspace(static_cast<unsigned char>(
                 justification.back())) != 0) {
        justification.pop_back();
      }
    }
    ann.has_justification = !justification.empty();
    if (!ann.has_justification) {
      diags->push_back({path, lineno, at + 1, "A0",
                        "bdio-lint annotation without a justification "
                        "(write '-- <why this is safe>')"});
    }
    by_line_[lineno].push_back(ann);
  }

  std::map<size_t, std::vector<Annotation>> by_line_;
};

// ---------------------------------------------------------------------------
// Declarations harvesting
// ---------------------------------------------------------------------------

/// Names declared as unordered containers in stripped source: after the
/// closing '>' of std::unordered_* template args, the next identifier is
/// taken as the variable name.
void CollectUnorderedNames(const std::string& code,
                           std::set<std::string>* names) {
  static const char* kTypes[] = {
      "std::unordered_map", "std::unordered_set", "std::unordered_multimap",
      "std::unordered_multiset"};
  for (const char* type : kTypes) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      size_t p = pos + t.size();
      pos = p;
      p = SkipSpace(code, p);
      if (p >= code.size() || code[p] != '<') continue;
      p = SkipTemplateArgs(code, p);
      if (p == std::string::npos) continue;
      p = SkipSpace(code, p);
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      if (end > p) names->insert(code.substr(p, end - p));
    }
  }
}

/// Names declared float/double (members or locals) in stripped source.
void CollectFloatNames(const std::string& code,
                       std::set<std::string>* names) {
  for (const char* type : {"float", "double"}) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t start = pos;
      pos += t.size();
      if (!TokenAt(code, start, t.size())) continue;
      const size_t p = SkipSpace(code, start + t.size());
      size_t end = p;
      while (end < code.size() && IsIdentChar(code[end])) ++end;
      if (end > p) names->insert(code.substr(p, end - p));
    }
  }
}

// ---------------------------------------------------------------------------
// Rules R1-R5
// ---------------------------------------------------------------------------

void CheckR1(const std::string& code, const std::set<std::string>& unordered,
             const std::vector<size_t>& lines, const std::string& path,
             AnnotationSet* anns, std::vector<Diagnostic>* diags) {
  if (unordered.empty()) return;
  // Range-for whose sequence expression names an unordered container.
  size_t pos = 0;
  while ((pos = code.find("for", pos)) != std::string::npos) {
    const size_t kw = pos;
    pos += 3;
    if (!TokenAt(code, kw, 3)) continue;
    size_t p = SkipSpace(code, kw + 3);
    if (p >= code.size() || code[p] != '(') continue;
    const size_t close = SkipParens(code, p);
    if (close == std::string::npos) continue;
    const std::string head = code.substr(p + 1, close - p - 2);
    // The range-for ':' (ignore '::').
    size_t colon = std::string::npos;
    for (size_t i = 0; i < head.size(); ++i) {
      if (head[i] != ':') continue;
      if (i + 1 < head.size() && head[i + 1] == ':') {
        ++i;
        continue;
      }
      if (i > 0 && head[i - 1] == ':') continue;
      colon = i;
      break;
    }
    if (colon == std::string::npos) continue;
    const std::string seq = head.substr(colon + 1);
    for (size_t i = 0; i < seq.size();) {
      if (!IsIdentChar(seq[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < seq.size() && IsIdentChar(seq[end])) ++end;
      const std::string ident = seq.substr(i, end - i);
      i = end;
      if (unordered.contains(ident)) {
        const size_t line = LineOf(lines, kw);
        if (!anns->Allow(1, line)) {
          diags->push_back(MakeDiag(
              path, lines, kw, "R1",
              "range-for over unordered container '" + ident +
                  "': iteration order is hash order, which is not "
                  "deterministic across stdlib implementations (use an "
                  "ordered container or annotate order-insensitive)"));
        }
        break;
      }
    }
  }
  // Explicit iterator loops: container.begin()/cbegin()/rbegin()/crbegin().
  for (const char* fn : {".begin", ".cbegin", ".rbegin", ".crbegin"}) {
    const std::string f(fn);
    pos = 0;
    while ((pos = code.find(f, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += f.size();
      const size_t after = SkipSpace(code, at + f.size());
      if (after >= code.size() || code[after] != '(') continue;
      size_t b = at;
      while (b > 0 && IsIdentChar(code[b - 1])) --b;
      const std::string ident = code.substr(b, at - b);
      if (!unordered.contains(ident)) continue;
      const size_t line = LineOf(lines, at);
      if (!anns->Allow(1, line)) {
        diags->push_back(MakeDiag(
            path, lines, at, "R1",
            "iterator over unordered container '" + ident +
                "': traversal order is hash order (use an ordered "
                "container or annotate order-insensitive)"));
      }
    }
  }
}

void CheckR2(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path, AnnotationSet* anns,
             std::vector<Diagnostic>* diags) {
  struct Banned {
    const char* token;
    bool call_only;  ///< Must be followed by '(' to fire.
    const char* why;
  };
  static const Banned kBanned[] = {
      {"rand", true, "use sim::Rng (seeded, deterministic)"},
      {"srand", true, "use sim::Rng (seeded, deterministic)"},
      {"random_device", false, "use sim::Rng (seeded, deterministic)"},
      {"time", true, "use the simulator clock (sim::Simulator::Now)"},
      {"system_clock", false, "use the simulator clock"},
      {"high_resolution_clock", false, "use the simulator clock"},
  };
  for (const Banned& b : kBanned) {
    const std::string t(b.token);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += t.size();
      if (!TokenAt(code, at, t.size())) continue;
      // Member access is someone else's function, not the libc one.
      if (at > 0 && (code[at - 1] == '.' ||
                     (at > 1 && code[at - 2] == '-' && code[at - 1] == '>'))) {
        continue;
      }
      if (b.call_only) {
        const size_t after = SkipSpace(code, at + t.size());
        if (after >= code.size() || code[after] != '(') continue;
      }
      const size_t line = LineOf(lines, at);
      if (!anns->Allow(2, line)) {
        diags->push_back(
            MakeDiag(path, lines, at, "R2",
                     "non-deterministic source '" + t + "': " + b.why));
      }
    }
  }
}

void CheckR3(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path, AnnotationSet* anns,
             std::vector<Diagnostic>* diags) {
  static const char* kKeyed[] = {
      "std::map",           "std::set",
      "std::multimap",      "std::multiset",
      "std::unordered_map", "std::unordered_set",
      "std::unordered_multimap", "std::unordered_multiset",
      "std::hash"};
  for (const char* type : kKeyed) {
    const std::string t(type);
    size_t pos = 0;
    while ((pos = code.find(t, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += t.size();
      // "std::map" must not match inside "std::multimap".
      if (at + t.size() < code.size() && IsIdentChar(code[at + t.size()])) {
        continue;
      }
      size_t p = SkipSpace(code, at + t.size());
      if (p >= code.size() || code[p] != '<') continue;
      // First template argument: up to a depth-0 ',' or the closing '>'.
      int angle = 0;
      size_t arg_start = p + 1;
      size_t arg_end = std::string::npos;
      for (size_t i = p; i < code.size(); ++i) {
        if (code[i] == '<') ++angle;
        if (code[i] == '>') {
          --angle;
          if (angle == 0) {
            arg_end = i;
            break;
          }
        }
        if (code[i] == ',' && angle == 1) {
          arg_end = i;
          break;
        }
        if (code[i] == ';') break;
      }
      if (arg_end == std::string::npos) continue;
      std::string key = code.substr(arg_start, arg_end - arg_start);
      while (!key.empty() &&
             std::isspace(static_cast<unsigned char>(key.back())) != 0) {
        key.pop_back();
      }
      if (key.empty() || key.back() != '*') continue;
      const size_t line = LineOf(lines, at);
      if (!anns->Allow(3, line)) {
        diags->push_back(MakeDiag(
            path, lines, at, "R3",
            t + " keyed by pointer '" + key +
                "': pointer order/hash depends on allocation addresses, "
                "which vary run to run (key by a stable id instead)"));
      }
    }
  }
}

void CheckR4(const std::string& code, const std::set<std::string>& floats,
             const std::vector<size_t>& lines, const std::string& path,
             AnnotationSet* anns, std::vector<Diagnostic>* diags) {
  if (floats.empty()) return;
  // Receiver-qualified thread-pool entry points: anything .Async(/->Async(,
  // and .Submit(/->Submit( whose receiver names a pool. BlockDevice::Submit
  // (simulated I/O, single-threaded) is deliberately out of scope.
  size_t pos = 0;
  while (pos < code.size()) {
    size_t async_at = code.find("Async", pos);
    size_t submit_at = code.find("Submit", pos);
    size_t at;
    size_t len;
    if (async_at == std::string::npos && submit_at == std::string::npos) {
      break;
    }
    if (async_at != std::string::npos &&
        (submit_at == std::string::npos || async_at < submit_at)) {
      at = async_at;
      len = 5;
    } else {
      at = submit_at;
      len = 6;
    }
    pos = at + len;
    if (!TokenAt(code, at, len)) continue;
    if (at == 0) continue;
    const bool dot = code[at - 1] == '.';
    const bool arrow = at > 1 && code[at - 2] == '-' && code[at - 1] == '>';
    if (!dot && !arrow) continue;
    if (len == 6) {  // Submit: receiver must look like a thread pool
      size_t b = at - (dot ? 1 : 2);
      while (b > 0 && (IsIdentChar(code[b - 1]) || code[b - 1] == '_')) --b;
      std::string recv = code.substr(b, at - (dot ? 1 : 2) - b);
      std::transform(recv.begin(), recv.end(), recv.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (recv.find("pool") == std::string::npos) continue;
    }
    const size_t open = SkipSpace(code, at + len);
    if (open >= code.size() || code[open] != '(') continue;
    const size_t close = SkipParens(code, open);
    if (close == std::string::npos) continue;
    // Flag "<float-name> +=" inside the callback region.
    for (size_t i = open; i < close; ++i) {
      if (!IsIdentChar(code[i])) continue;
      size_t end = i;
      while (end < close && IsIdentChar(code[end])) ++end;
      const std::string ident = code.substr(i, end - i);
      size_t after = SkipSpace(code, end);
      if (after + 1 < code.size() && code[after] == '+' &&
          code[after + 1] == '=' && floats.contains(ident)) {
        const size_t line = LineOf(lines, i);
        if (!anns->Allow(4, line)) {
          diags->push_back(MakeDiag(
              path, lines, i, "R4",
              "floating-point accumulation '" + ident +
                  " +=' inside a thread-pool callback: summation order "
                  "depends on task interleaving (accumulate per task and "
                  "reduce in a deterministic order)"));
        }
      }
      i = end;
    }
    pos = close;
  }
}

bool StartsWithToken(const std::string& s, const std::string& tok) {
  return s.rfind(tok, 0) == 0 &&
         (s.size() == tok.size() || !IsIdentChar(s[tok.size()]));
}

void CheckR5Struct(const std::string& code, size_t body_start,
                   size_t body_end, const std::string& struct_name,
                   const std::vector<size_t>& lines, const std::string& path,
                   AnnotationSet* anns, std::vector<Diagnostic>* diags) {
  // SimTime/SimDuration/Bytes/Sectors are deliberately absent: since the
  // strong-type migration they are classes with zero-initializing default
  // constructors, so an uninitialized member cannot read garbage.
  static const std::set<std::string> kScalar = {
      "bool",    "char",    "wchar_t",  "short",    "int",      "long",
      "unsigned", "signed", "float",    "double",   "size_t",   "ptrdiff_t",
      "int8_t",  "int16_t", "int32_t",  "int64_t",  "uint8_t",  "uint16_t",
      "uint32_t", "uint64_t", "intptr_t", "uintptr_t"};
  size_t i = body_start;
  size_t stmt_start = body_start;
  std::string stmt;
  auto reset = [&](size_t next) {
    stmt.clear();
    stmt_start = next;
  };
  while (i < body_end) {
    const char c = code[i];
    if (c == '{') {
      // Either a nested scope (function body, nested type — skip it; nested
      // structs are scanned by their own top-level pass) or a brace
      // initializer (the member IS initialized — skip the statement).
      int depth = 0;
      size_t j = i;
      for (; j < body_end; ++j) {
        if (code[j] == '{') ++depth;
        if (code[j] == '}') {
          --depth;
          if (depth == 0) break;
        }
      }
      i = j + 1;
      // A nested body may be followed by ';' (type definition) — swallow it.
      const size_t after = SkipSpace(code, i);
      i = (after < body_end && code[after] == ';') ? after + 1 : i;
      reset(i);
      continue;
    }
    if (c == ';') {
      // Classify the accumulated statement.
      std::string s = stmt;
      const size_t b = s.find_first_not_of(" \t\n");
      s = b == std::string::npos ? std::string() : s.substr(b);
      // Access labels glue to the next statement ("public: int x").
      for (const char* label : {"public:", "private:", "protected:"}) {
        if (s.rfind(label, 0) == 0) s = s.substr(std::string(label).size());
      }
      const size_t b2 = s.find_first_not_of(" \t\n");
      s = b2 == std::string::npos ? std::string() : s.substr(b2);
      bool skip = s.empty();
      for (const char* kw :
           {"static", "constexpr", "using", "typedef", "friend", "template",
            "virtual", "explicit", "operator", "struct", "class", "enum",
            "union", "inline"}) {
        if (StartsWithToken(s, kw)) skip = true;
      }
      if (s.find('(') != std::string::npos ||
          s.find('=') != std::string::npos ||
          s.find('[') != std::string::npos ||
          s.find('&') != std::string::npos ||
          s.find('<') != std::string::npos) {
        // '<' marks a class-template member (e.g. FlatMap<uint64_t, T*>):
        // class types default-construct, so R5's uninitialized-POD concern
        // does not apply — and the tokenizer would misread the template
        // arguments as member names.
        skip = true;
      }
      if (!skip) {
        // Tokenize: qualifiers, type tokens, stars, member name(s).
        std::vector<std::string> tokens;
        size_t stars = 0;
        for (size_t k = 0; k < s.size();) {
          if (s[k] == '*') {
            ++stars;
            ++k;
            continue;
          }
          if (!IsIdentChar(s[k]) && s[k] != ':') {
            ++k;
            continue;
          }
          size_t e = k;
          while (e < s.size() && (IsIdentChar(s[e]) || s[e] == ':')) ++e;
          tokens.push_back(s.substr(k, e - k));
          k = e;
        }
        while (!tokens.empty() &&
               (tokens.front() == "const" || tokens.front() == "volatile" ||
                tokens.front() == "mutable")) {
          tokens.erase(tokens.begin());
        }
        // Need at least "type name"; compound builtin types collapse.
        if (tokens.size() >= 2) {
          size_t type_end = 1;
          static const std::set<std::string> kCompound = {
              "unsigned", "signed", "long", "short"};
          while (type_end < tokens.size() - 1 &&
                 kCompound.contains(tokens[type_end - 1]) &&
                 (kCompound.contains(tokens[type_end]) ||
                  tokens[type_end] == "int" || tokens[type_end] == "char" ||
                  tokens[type_end] == "double")) {
            ++type_end;
          }
          const std::string& base = tokens[type_end - 1];
          std::string base_name = base;
          const size_t q = base_name.rfind("::");
          if (q != std::string::npos) base_name = base_name.substr(q + 2);
          const bool pod = stars > 0 || kScalar.contains(base_name);
          if (pod && tokens.size() > type_end) {
            const size_t line = LineOf(lines, stmt_start);
            if (!anns->Allow(5, line)) {
              for (size_t m = type_end; m < tokens.size(); ++m) {
                diags->push_back(MakeDiag(
                    path, lines, stmt_start, "R5",
                    "member '" + tokens[m] + "' of struct '" + struct_name +
                        "' has no default initializer: an instance left "
                        "partially uninitialized reads indeterminate "
                        "values (add '= ...' or '{}')"));
              }
            }
          }
        }
      }
      i += 1;
      reset(i);
      continue;
    }
    stmt.push_back(c);
    if (stmt.size() == 1) stmt_start = i;
    ++i;
  }
}

void CheckR5(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path, AnnotationSet* anns,
             std::vector<Diagnostic>* diags) {
  size_t pos = 0;
  while ((pos = code.find("struct", pos)) != std::string::npos) {
    const size_t kw = pos;
    pos += 6;
    if (!TokenAt(code, kw, 6)) continue;
    size_t p = SkipSpace(code, kw + 6);
    size_t name_end = p;
    while (name_end < code.size() && IsIdentChar(code[name_end])) ++name_end;
    if (name_end == p) continue;  // anonymous
    std::string name = code.substr(p, name_end - p);
    // Out-of-line nested definitions: struct Outer::Inner { ... }.
    while (name_end + 1 < code.size() && code[name_end] == ':' &&
           code[name_end + 1] == ':') {
      size_t seg = name_end + 2;
      size_t seg_end = seg;
      while (seg_end < code.size() && IsIdentChar(code[seg_end])) ++seg_end;
      if (seg_end == seg) break;
      name += "::" + code.substr(seg, seg_end - seg);
      name_end = seg_end;
    }
    p = SkipSpace(code, name_end);
    if (p < code.size() && code[p] == ':') {  // base clause
      while (p < code.size() && code[p] != '{' && code[p] != ';') ++p;
    }
    if (p >= code.size() || code[p] != '{') continue;  // fwd decl etc.
    int depth = 0;
    size_t end = p;
    for (; end < code.size(); ++end) {
      if (code[end] == '{') ++depth;
      if (code[end] == '}') {
        --depth;
        if (depth == 0) break;
      }
    }
    if (end >= code.size()) continue;
    CheckR5Struct(code, p + 1, end, name, lines, path, anns, diags);
  }
}

// ---------------------------------------------------------------------------
// R6: pooled-object lifetime
// ---------------------------------------------------------------------------

/// Intra-function tracking of pointers allocated from an object pool
/// (receiver whose name contains "pool", method Alloc). Flags:
///  - use after an unconditional Release/Free on the same pointer,
///  - a second unconditional Release/Free,
///  - going out of scope still allocated without ever being released or
///    handed off (pool blocks are never reclaimed, so this is a permanent
///    leak — docs/PERFORMANCE.md, allocator invariants).
/// Conservative by design: a release in a nested scope is treated as
/// conditional (no later-use flag), and any hand-off (argument, store,
/// return) ends tracking.
void CheckR6(const std::string& code, const std::vector<size_t>& lines,
             const std::string& path, AnnotationSet* anns,
             std::vector<Diagnostic>* diags) {
  struct Tracked {
    size_t alloc_pos = 0;
    int depth = 0;
    enum State { kAllocated, kCondReleased, kReleased, kDone };
    State state = kAllocated;
  };
  std::map<std::string, Tracked> vars;
  int depth = 0;

  auto emit = [&](size_t pos, const std::string& msg) {
    const size_t line = LineOf(lines, pos);
    if (!anns->Allow(6, line)) {
      diags->push_back(MakeDiag(path, lines, pos, "R6", msg));
    }
  };

  size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '{') {
      ++depth;
      ++i;
      continue;
    }
    if (c == '}') {
      for (auto it = vars.begin(); it != vars.end();) {
        if (it->second.depth >= depth) {
          if (it->second.state == Tracked::kAllocated) {
            emit(it->second.alloc_pos,
                 "pooled object '" + it->first +
                     "' goes out of scope neither released nor handed "
                     "off: pool blocks are never returned to the OS, so "
                     "the node leaks for the rest of the run "
                     "(docs/PERFORMANCE.md, allocator invariants)");
          }
          it = vars.erase(it);
        } else {
          ++it;
        }
      }
      --depth;
      ++i;
      continue;
    }
    if (!IsIdentChar(c) || (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    size_t end = i;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    const std::string tok = code.substr(i, end - i);
    const char prev = i > 0 ? code[i - 1] : '\0';
    const bool member_access =
        prev == '.' || (prev == '>' && i > 1 && code[i - 2] == '-');

    if (tok == "Alloc" && member_access) {
      // <target> = <receiver-containing-pool>.Alloc(...)
      const size_t open = SkipSpace(code, end);
      if (open < code.size() && code[open] == '(') {
        size_t recv_start = 0;
        std::string recv = IdentEndingBefore(
            code, i - (prev == '.' ? 1 : 2), &recv_start);
        std::string lower = recv;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char ch) { return std::tolower(ch); });
        if (lower.find("pool") != std::string::npos) {
          // Walk back over the '=' to the assignment target.
          size_t eq = recv_start;
          while (eq > 0 && std::isspace(static_cast<unsigned char>(
                               code[eq - 1])) != 0) {
            --eq;
          }
          if (eq > 0 && code[eq - 1] == '=' &&
              (eq < 2 || std::string("=!<>+-*/%&|^").find(code[eq - 2]) ==
                             std::string::npos)) {
            size_t tgt_start = 0;
            const std::string target =
                IdentEndingBefore(code, eq - 1, &tgt_start);
            const char before_tgt =
                tgt_start > 0 ? PrevNonSpace(code, tgt_start) : '\0';
            if (!target.empty() && before_tgt != '.' && before_tgt != '>') {
              vars[target] = {tgt_start, depth, Tracked::kAllocated};
            }
          }
        }
        i = end;
        continue;
      }
    }

    if ((tok == "Release" || tok == "Free") && member_access) {
      const size_t open = SkipSpace(code, end);
      if (open < code.size() && code[open] == '(') {
        const size_t close = SkipParens(code, open);
        if (close != std::string::npos) {
          std::string arg = code.substr(open + 1, close - open - 2);
          const size_t ab = arg.find_first_not_of(" \t\n");
          arg = ab == std::string::npos ? std::string() : arg.substr(ab);
          while (!arg.empty() && std::isspace(static_cast<unsigned char>(
                                     arg.back())) != 0) {
            arg.pop_back();
          }
          auto it = vars.find(arg);
          if (it != vars.end()) {
            Tracked& v = it->second;
            if (v.state == Tracked::kReleased) {
              emit(i, "pooled object '" + arg + "' released twice: the "
                          "second " + tok + " corrupts the freelist (the "
                          "node may already carry an unrelated object)");
            } else if (v.state == Tracked::kAllocated ||
                       v.state == Tracked::kCondReleased) {
              v.state = depth == v.depth ? Tracked::kReleased
                                         : Tracked::kCondReleased;
            }
            i = close;
            continue;
          }
        }
      }
    }

    auto it = vars.find(tok);
    if (it != vars.end() && !member_access) {
      Tracked& v = it->second;
      const char next = NextNonSpace(code, end);
      const char next2 =
          SkipSpace(code, end) + 1 < code.size()
              ? code[SkipSpace(code, end) + 1]
              : '\0';
      if (next == '=' && next2 != '=') {
        // Reassignment: the old pointer value is gone; a following
        // pool.Alloc() restarts tracking via the Alloc handler.
        vars.erase(it);
        i = end;
        continue;
      }
      if (v.state == Tracked::kReleased) {
        emit(i, "pooled object '" + tok + "' used after Release: the node "
                    "may already carry an unrelated object "
                    "(docs/PERFORMANCE.md, allocator invariants)");
        v.state = Tracked::kDone;  // report once per pointer
      } else if (v.state == Tracked::kAllocated ||
                 v.state == Tracked::kCondReleased) {
        // Hand-off: the bare pointer as a call argument, stored, or
        // returned. Ownership moved; stop tracking.
        const std::string before_tok = IdentEndingBefore(code, i, nullptr);
        const bool arg_like =
            (prev == '(' || PrevNonSpace(code, i) == '(' ||
             PrevNonSpace(code, i) == ',' || PrevNonSpace(code, i) == '=' ||
             PrevNonSpace(code, i) == '{' || before_tok == "return") &&
            (next == ',' || next == ')' || next == ';' || next == '}');
        if (arg_like) vars.erase(it);
      }
    }
    i = end;
  }
}

// ---------------------------------------------------------------------------
// R7: unit-suffix safety
// ---------------------------------------------------------------------------

/// Unit family of an identifier by suffix (trailing underscores stripped
/// first, so members like total_bytes_ classify too). Distinct time
/// granularities are distinct families: adding _ms to _ns without a typed
/// conversion is exactly the bug this rule exists for.
std::string UnitFamily(std::string ident) {
  while (!ident.empty() && ident.back() == '_') ident.pop_back();
  static const char* kSuffixes[] = {"_ns", "_us", "_ms", "_bytes",
                                    "_sectors"};
  for (const char* suf : kSuffixes) {
    const std::string s(suf);
    if (ident.size() > s.size() &&
        ident.compare(ident.size() - s.size(), s.size(), s) == 0) {
      return s.substr(1);
    }
  }
  return "";
}

void CheckR7(const std::string& code, const std::string& path,
             AnnotationSet* anns, std::vector<Diagnostic>* diags) {
  // units.h is the one place allowed to spell conversions out.
  if (path.size() >= 14 &&
      path.compare(path.size() - 14, 14, "common/units.h") == 0) {
    return;
  }
  static const std::set<std::string> kMixOps = {
      "+", "-", "<", ">", "<=", ">=", "==", "!=", "=", "+=", "-="};
  static const std::set<std::string> kConvLits = {
      "1000", "1000000", "1000000000", "1e3", "1e6", "1e9", "512"};

  std::istringstream in(code);
  std::string text;
  size_t lineno = 0;
  while (std::getline(in, text)) {
    ++lineno;
    // Tokenize the line into identifier/number tokens with positions.
    struct Tok {
      std::string text;
      size_t pos;
    };
    std::vector<Tok> toks;
    for (size_t i = 0; i < text.size();) {
      if (!IsIdentChar(text[i])) {
        ++i;
        continue;
      }
      size_t end = i;
      while (end < text.size() && IsIdentChar(text[end])) ++end;
      toks.push_back({text.substr(i, end - i), i});
      i = end;
    }
    for (size_t t = 0; t + 1 < toks.size(); ++t) {
      const Tok& a = toks[t];
      const Tok& b = toks[t + 1];
      // Operator between the two tokens, taken verbatim: anything other
      // than a bare operator (parens, ->, <<, commas) disqualifies.
      std::string between =
          text.substr(a.pos + a.text.size(),
                      b.pos - (a.pos + a.text.size()));
      between.erase(std::remove_if(between.begin(), between.end(),
                                   [](unsigned char ch) {
                                     return std::isspace(ch) != 0;
                                   }),
                    between.end());
      const std::string fam_a = UnitFamily(a.text);
      const std::string fam_b = UnitFamily(b.text);
      if (!fam_a.empty() && !fam_b.empty() && fam_a != fam_b &&
          kMixOps.contains(between)) {
        if (!anns->Allow(7, lineno)) {
          diags->push_back(
              {path, lineno, b.pos + 1, "R7",
               "unit mismatch: '" + a.text + "' (" + fam_a + ") " +
                   between + " '" + b.text + "' (" + fam_b +
                   ") mixes suffix families without a typed conversion "
                   "(use SimDuration/Bytes/Sectors from common/units.h)"});
        }
        continue;
      }
      // Literal unit conversion: <suffixed> * 1000 (or / 512, etc.).
      const bool a_fam = !fam_a.empty() && kConvLits.contains(b.text);
      const bool b_fam = !fam_b.empty() && kConvLits.contains(a.text);
      if ((a_fam || b_fam) && (between == "*" || between == "/")) {
        const std::string ident = a_fam ? a.text : b.text;
        const std::string lit = a_fam ? b.text : a.text;
        if (!anns->Allow(7, lineno)) {
          diags->push_back(
              {path, lineno, a.pos + 1, "R7",
               "manual unit conversion: '" + ident + "' " + between + " " +
                   lit + " spells out a scale factor by hand (use the "
                   "typed helpers in common/units.h — Millis()/Micros()/"
                   "ToMillis()/ToSectors()/ToBytes())"});
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// R8: metrics schema (call-site harvesting; validation is tree-level)
// ---------------------------------------------------------------------------

/// Parses label keys out of a braced initializer: the first string literal
/// inside each top-level {..} group is a key. `text` starts at the outer
/// '{'. Returns sorted unique keys.
std::vector<std::string> ParseLabelKeys(const std::string& text) {
  std::vector<std::string> keys;
  int depth = 0;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      ++depth;
      if (depth == 2) {
        // First string literal inside this group is the key.
        size_t j = i + 1;
        int d = 1;
        while (j < text.size() && d > 0) {
          if (text[j] == '{') ++d;
          if (text[j] == '}') --d;
          if (text[j] == '"' && d == 1) {
            const size_t close = text.find('"', j + 1);
            if (close == std::string::npos) break;
            keys.push_back(text.substr(j + 1, close - j - 1));
            break;
          }
          ++j;
        }
      }
    } else if (c == '}') {
      --depth;
      if (depth == 0) break;
    }
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

/// Resolves a `labels` variable used at `call_pos` to its declaration's
/// initializer keys: the nearest preceding "Labels <ident> [=] {...}".
bool ResolveLabelsVar(const std::string& code, size_t call_pos,
                      const std::string& ident,
                      std::vector<std::string>* keys) {
  size_t best = std::string::npos;
  size_t pos = 0;
  while ((pos = code.find("Labels", pos)) != std::string::npos &&
         pos < call_pos) {
    const size_t at = pos;
    pos += 6;
    if (!TokenAt(code, at, 6)) continue;
    size_t p = SkipSpace(code, at + 6);
    size_t end = p;
    while (end < code.size() && IsIdentChar(code[end])) ++end;
    if (code.substr(p, end - p) != ident) continue;
    best = end;
  }
  if (best == std::string::npos) return false;
  size_t p = SkipSpace(code, best);
  if (p < code.size() && code[p] == '=') p = SkipSpace(code, p + 1);
  if (p >= code.size() || code[p] != '{') return false;
  *keys = ParseLabelKeys(code.substr(p));
  return true;
}

std::vector<MetricCallSite> CollectMetricCallsImpl(const FileInput& input) {
  std::vector<MetricCallSite> sites;
  // Comments stripped, strings KEPT: the metric name is a string literal.
  const std::string code =
      Strip(input.content, /*strip_comments=*/true, /*strip_strings=*/false);
  const std::vector<size_t> lines = LineStarts(code);
  AnnotationSet anns;
  std::vector<Diagnostic> scratch;
  anns.Parse(Strip(input.content, false, true), input.path, &scratch);

  static const std::pair<const char*, const char*> kGetters[] = {
      {"GetCounter", "counter"},
      {"GetGauge", "gauge"},
      {"GetHistogram", "histogram"},
  };
  for (const auto& [getter, kind] : kGetters) {
    const std::string g(getter);
    size_t pos = 0;
    while ((pos = code.find(g, pos)) != std::string::npos) {
      const size_t at = pos;
      pos += g.size();
      if (!TokenAt(code, at, g.size())) continue;
      const char prev = at > 0 ? code[at - 1] : '\0';
      const bool member_access =
          prev == '.' || (prev == '>' && at > 1 && code[at - 2] == '-');
      if (!member_access) continue;  // declaration/definition, not a call
      const size_t open = SkipSpace(code, at + g.size());
      if (open >= code.size() || code[open] != '(') continue;
      const size_t close = SkipParens(code, open);
      if (close == std::string::npos) continue;
      // Split the argument span on top-level commas.
      std::vector<std::string> args;
      {
        int paren = 0;
        int brace = 0;
        size_t start = open + 1;
        for (size_t i = open + 1; i + 1 < close; ++i) {
          const char c = code[i];
          if (c == '(') ++paren;
          if (c == ')') --paren;
          if (c == '{') ++brace;
          if (c == '}') --brace;
          if (c == ',' && paren == 0 && brace == 0) {
            args.push_back(code.substr(start, i - start));
            start = i + 1;
          }
        }
        args.push_back(code.substr(start, close - 1 - start));
      }
      MetricCallSite site;
      site.file = input.path;
      site.line = LineOf(lines, at);
      site.col = ColOf(lines, at);
      site.kind = kind;
      site.allowed = anns.Allow(8, site.line);
      // Name: first argument, when it is a string literal.
      if (!args.empty()) {
        std::string a0 = args[0];
        const size_t b = a0.find_first_not_of(" \t\n");
        a0 = b == std::string::npos ? std::string() : a0.substr(b);
        if (!a0.empty() && a0[0] == '"') {
          const size_t q = a0.find('"', 1);
          if (q != std::string::npos) site.name = a0.substr(1, q - 1);
        }
      }
      // Labels: second argument (counters/gauges may omit it).
      if (args.size() < 2) {
        site.labels_known = true;
      } else {
        std::string a1 = args[1];
        const size_t b = a1.find_first_not_of(" \t\n");
        a1 = b == std::string::npos ? std::string() : a1.substr(b);
        while (!a1.empty() &&
               std::isspace(static_cast<unsigned char>(a1.back())) != 0) {
          a1.pop_back();
        }
        if (a1.empty() || a1 == "{}") {
          site.labels_known = true;
        } else if (a1[0] == '{') {
          site.label_keys = ParseLabelKeys(a1);
        } else {
          // A plain identifier: resolve its Labels declaration backwards.
          bool is_ident = true;
          for (const char ch : a1) {
            if (!IsIdentChar(ch)) is_ident = false;
          }
          if (is_ident &&
              ResolveLabelsVar(code, at, a1, &site.label_keys)) {
            site.labels_known = true;
          } else {
            site.labels_known = false;
          }
        }
      }
      sites.push_back(std::move(site));
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const MetricCallSite& a, const MetricCallSite& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.col < b.col;
            });
  return sites;
}

// ---------------------------------------------------------------------------
// Minimal JSON (the subset DumpMetricsSchema emits)
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;
  size_t line = 0;

  const JsonValue* Field(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  bool Parse(JsonValue* out, std::string* error) {
    if (!ParseValue(out)) {
      *error = err_ + " (line " + std::to_string(line_) + ")";
      return false;
    }
    SkipWs();
    if (pos_ != s_.size()) {
      *error = "trailing characters (line " + std::to_string(line_) + ")";
      return false;
    }
    return true;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      if (s_[pos_] == '\n') ++line_;
      ++pos_;
    }
  }

  bool Fail(const std::string& why) {
    if (err_.empty()) err_ = why;
    return false;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= s_.size() || s_[pos_] != '"') return Fail("expected string");
    ++pos_;
    std::string r;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\' && pos_ < s_.size()) {
        const char e = s_[pos_++];
        switch (e) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          default: return Fail("unsupported escape");
        }
      }
      r.push_back(c);
    }
    if (pos_ >= s_.size()) return Fail("unterminated string");
    ++pos_;
    *out = std::move(r);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= s_.size()) return Fail("unexpected end of input");
    out->line = line_;
    const char c = s_[pos_];
    if (c == '{') {
      out->type = JsonValue::Type::kObject;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        SkipWs();
        std::string key;
        if (!ParseString(&key)) return false;
        SkipWs();
        if (pos_ >= s_.size() || s_[pos_] != ':') return Fail("expected ':'");
        ++pos_;
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->fields.emplace_back(std::move(key), std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or '}'");
      }
    }
    if (c == '[') {
      out->type = JsonValue::Type::kArray;
      ++pos_;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue v;
        if (!ParseValue(&v)) return false;
        out->items.push_back(std::move(v));
        SkipWs();
        if (pos_ < s_.size() && s_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (pos_ < s_.size() && s_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return Fail("expected ',' or ']'");
      }
    }
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (s_.compare(pos_, 4, "true") == 0) {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (s_.compare(pos_, 5, "false") == 0) {
      out->type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (s_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    size_t end = pos_;
    while (end < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[end])) != 0 ||
            s_[end] == '-' || s_[end] == '+' || s_[end] == '.' ||
            s_[end] == 'e' || s_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) return Fail("unexpected character");
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(s_.substr(pos_, end - pos_));
    pos_ = end;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
  size_t line_ = 1;
  std::string err_;
};

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string JoinKeys(const std::vector<std::string>& keys) {
  std::string out = "{";
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) out += ", ";
    out += keys[i];
  }
  return out + "}";
}

/// Owning subsystem of a call site: the directory under src/, or "bench"
/// for bench-side readers; "tools" otherwise.
std::string SubsystemOf(const std::string& path) {
  for (const char* anchor : {"src/", "bench/", "tools/"}) {
    const std::string a(anchor);
    size_t p = path.rfind(a);
    if (p != std::string::npos && (p == 0 || path[p - 1] == '/')) {
      if (a == "src/") {
        const std::string rest = path.substr(p + a.size());
        const size_t slash = rest.find('/');
        return slash == std::string::npos ? "src" : rest.substr(0, slash);
      }
      return a.substr(0, a.size() - 1);
    }
  }
  return "unknown";
}

std::string ReadFileAt(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// All lintable files under the roots, sorted for deterministic order.
std::vector<std::filesystem::path> ListFiles(
    const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& root : roots) {
    if (!fs::exists(root)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

bool UnderTests(const std::string& path) {
  return path.rfind("tests/", 0) == 0 ||
         path.find("/tests/") != std::string::npos;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& content) {
  return Strip(content, /*strip_comments=*/true, /*strip_strings=*/true);
}

std::vector<Diagnostic> LintFile(const FileInput& input) {
  std::vector<Diagnostic> diags;
  // Annotations are read with strings blanked but comments intact: only a
  // real comment can carry one (the linter's own test fixtures quote
  // annotation text inside string literals).
  AnnotationSet anns;
  anns.Parse(Strip(input.content, /*strip_comments=*/false,
                   /*strip_strings=*/true),
             input.path, &diags);
  const std::string code = StripCommentsAndStrings(input.content);
  const std::vector<size_t> lines = LineStarts(code);

  std::set<std::string> unordered;
  CollectUnorderedNames(code, &unordered);
  if (!input.sibling.empty()) {
    CollectUnorderedNames(StripCommentsAndStrings(input.sibling), &unordered);
  }
  std::set<std::string> floats;
  CollectFloatNames(code, &floats);
  if (!input.sibling.empty()) {
    CollectFloatNames(StripCommentsAndStrings(input.sibling), &floats);
  }

  CheckR1(code, unordered, lines, input.path, &anns, &diags);
  CheckR2(code, lines, input.path, &anns, &diags);
  CheckR3(code, lines, input.path, &anns, &diags);
  CheckR4(code, floats, lines, input.path, &anns, &diags);
  if (input.in_src) CheckR5(code, lines, input.path, &anns, &diags);
  CheckR6(code, lines, input.path, &anns, &diags);
  CheckR7(code, input.path, &anns, &diags);
  anns.AppendStale(input.path, &diags);

  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return diags;
}

std::vector<MetricCallSite> CollectMetricCalls(const FileInput& input) {
  return CollectMetricCallsImpl(input);
}

bool ParseMetricsSchema(const std::string& text, MetricsSchema* out,
                        std::string* error) {
  JsonValue root;
  JsonParser parser(text);
  if (!parser.Parse(&root, error)) return false;
  if (root.type != JsonValue::Type::kObject) {
    *error = "schema root must be an object";
    return false;
  }
  const JsonValue* metrics = root.Field("metrics");
  if (metrics == nullptr || metrics->type != JsonValue::Type::kArray) {
    *error = "schema needs a \"metrics\" array";
    return false;
  }
  out->entries.clear();
  for (const JsonValue& e : metrics->items) {
    if (e.type != JsonValue::Type::kObject) {
      *error = "every metrics entry must be an object";
      return false;
    }
    MetricSchemaEntry entry;
    entry.line = e.line;
    const JsonValue* name = e.Field("name");
    const JsonValue* type = e.Field("type");
    if (name == nullptr || name->type != JsonValue::Type::kString ||
        type == nullptr || type->type != JsonValue::Type::kString) {
      *error = "every metrics entry needs string \"name\" and \"type\"";
      return false;
    }
    entry.name = name->str;
    entry.type = type->str;
    if (entry.type != "counter" && entry.type != "gauge" &&
        entry.type != "histogram") {
      *error = "metric '" + entry.name +
               "': type must be counter, gauge or histogram";
      return false;
    }
    if (const JsonValue* labels = e.Field("labels")) {
      for (const JsonValue& l : labels->items) {
        entry.labels.push_back(l.str);
      }
      std::sort(entry.labels.begin(), entry.labels.end());
    }
    if (const JsonValue* sub = e.Field("subsystem")) entry.subsystem = sub->str;
    if (const JsonValue* doc = e.Field("doc")) entry.doc = doc->str;
    out->entries.push_back(std::move(entry));
  }
  return true;
}

bool LoadMetricsSchema(const std::string& path, MetricsSchema* out,
                       std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot read " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  out->path = path;
  return ParseMetricsSchema(text.str(), out, error);
}

std::vector<Diagnostic> CheckMetricsSchema(
    const MetricsSchema& schema, const std::vector<MetricCallSite>& sites) {
  std::vector<Diagnostic> diags;
  std::map<std::string, const MetricSchemaEntry*> by_name;
  for (const MetricSchemaEntry& e : schema.entries) {
    by_name[e.name] = &e;
  }
  std::set<std::string> seen;
  for (const MetricCallSite& s : sites) {
    if (!s.name.empty()) {
      if (by_name.contains(s.name)) seen.insert(s.name);
    }
    if (s.allowed) continue;
    if (s.name.empty()) {
      diags.push_back(
          {s.file, s.line, s.col, "R8",
           "metric name is not a string literal: the schema audit cannot "
           "see it (use a literal, or annotate allow(R8) with why the "
           "name is validated elsewhere)"});
      continue;
    }
    const auto it = by_name.find(s.name);
    if (it == by_name.end()) {
      diags.push_back(
          {s.file, s.line, s.col, "R8",
           "unknown metric '" + s.name + "': not in " +
               (schema.path.empty() ? std::string("the metrics schema")
                                    : schema.path) +
               " (add a schema entry — bdio-lint --schema-dump regenerates "
               "it — or fix the name)"});
      continue;
    }
    const MetricSchemaEntry& e = *it->second;
    if (e.type != s.kind) {
      diags.push_back(
          {s.file, s.line, s.col, "R8",
           "metric '" + s.name + "' is a " + e.type +
               " in the schema but fetched as a " + s.kind +
               " here (one of the two is wrong)"});
    }
    if (s.labels_known && s.label_keys != e.labels) {
      diags.push_back(
          {s.file, s.line, s.col, "R8",
           "metric '" + s.name + "' label keys " + JoinKeys(s.label_keys) +
               " do not match the schema's " + JoinKeys(e.labels) +
               " (a renamed or missing label silently splits the series)"});
    }
  }
  for (const MetricSchemaEntry& e : schema.entries) {
    if (!seen.contains(e.name)) {
      diags.push_back(
          {schema.path.empty() ? std::string("<schema>") : schema.path,
           e.line, 1, "R8",
           "schema entry '" + e.name + "' has no call site left in the "
           "tree (remove the entry — bdio-lint --schema-dump regenerates "
           "the file — or restore the metric)"});
    }
  }
  return diags;
}

std::string DumpMetricsSchema(const MetricsSchema* old_schema,
                              const std::vector<MetricCallSite>& sites) {
  std::map<std::string, std::string> old_docs;
  if (old_schema != nullptr) {
    for (const MetricSchemaEntry& e : old_schema->entries) {
      old_docs[e.name] = e.doc;
    }
  }
  struct Agg {
    std::string kind;
    std::vector<std::string> labels;
    bool labels_known = false;
    std::string subsystem;
    bool src_owned = false;
  };
  std::map<std::string, Agg> by_name;  // sorted by name
  for (const MetricCallSite& s : sites) {
    if (s.name.empty()) continue;
    Agg& a = by_name[s.name];
    if (a.kind.empty()) a.kind = s.kind;
    if (!a.labels_known && s.labels_known) {
      a.labels = s.label_keys;
      a.labels_known = true;
    }
    // src/ owns the metric; bench/tools sites are readers.
    const std::string sub = SubsystemOf(s.file);
    const bool is_src = sub != "bench" && sub != "tools" && sub != "unknown";
    if (a.subsystem.empty() || (is_src && !a.src_owned)) {
      a.subsystem = sub;
      a.src_owned = is_src;
    }
  }
  std::ostringstream out;
  out << "{\n  \"metrics\": [\n";
  size_t i = 0;
  for (const auto& [name, a] : by_name) {
    out << "    {\n";
    out << "      \"name\": \"" << JsonEscape(name) << "\",\n";
    out << "      \"type\": \"" << a.kind << "\",\n";
    out << "      \"labels\": [";
    for (size_t k = 0; k < a.labels.size(); ++k) {
      if (k > 0) out << ", ";
      out << "\"" << JsonEscape(a.labels[k]) << "\"";
    }
    out << "],\n";
    out << "      \"subsystem\": \"" << JsonEscape(a.subsystem) << "\",\n";
    const auto doc = old_docs.find(name);
    out << "      \"doc\": \""
        << JsonEscape(doc != old_docs.end() && !doc->second.empty()
                          ? doc->second
                          : "TODO: document this metric.")
        << "\"\n";
    out << "    }" << (++i < by_name.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::vector<MetricCallSite> CollectTreeMetricCalls(
    const std::vector<std::string>& roots) {
  std::vector<MetricCallSite> sites;
  for (const std::filesystem::path& p : ListFiles(roots)) {
    FileInput in;
    in.path = p.generic_string();
    if (UnderTests(in.path)) continue;
    in.content = ReadFileAt(p);
    std::vector<MetricCallSite> file_sites = CollectMetricCalls(in);
    sites.insert(sites.end(), file_sites.begin(), file_sites.end());
  }
  return sites;
}

std::vector<Diagnostic> LintTree(const std::vector<std::string>& roots,
                                 size_t* files_scanned,
                                 const LintOptions& options) {
  namespace fs = std::filesystem;
  const std::vector<fs::path> files = ListFiles(roots);
  if (files_scanned != nullptr) *files_scanned = files.size();

  std::vector<Diagnostic> diags;
  std::vector<MetricCallSite> sites;
  for (const fs::path& p : files) {
    FileInput in;
    in.path = p.generic_string();
    in.content = ReadFileAt(p);
    in.in_src = in.path.rfind("src/", 0) == 0 ||
                in.path.find("/src/") != std::string::npos;
    if (p.extension() == ".cc") {
      fs::path sib = p;
      sib.replace_extension(".h");
      if (fs::exists(sib)) in.sibling = ReadFileAt(sib);
    }
    std::vector<Diagnostic> file_diags = LintFile(in);
    diags.insert(diags.end(), file_diags.begin(), file_diags.end());
    if (options.schema != nullptr && !UnderTests(in.path)) {
      std::vector<MetricCallSite> file_sites = CollectMetricCalls(in);
      sites.insert(sites.end(), file_sites.begin(), file_sites.end());
    }
  }
  if (options.schema != nullptr) {
    std::vector<Diagnostic> schema_diags =
        CheckMetricsSchema(*options.schema, sites);
    diags.insert(diags.end(), schema_diags.begin(), schema_diags.end());
  }
  std::sort(diags.begin(), diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule < b.rule;
            });
  return diags;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diags) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"file\": \"" << JsonEscape(d.file) << "\", \"line\": "
        << d.line << ", \"col\": " << d.col << ", \"rule\": \"" << d.rule
        << "\", \"message\": \"" << JsonEscape(d.message) << "\"}";
  }
  out << (diags.empty() ? "]\n" : "\n]\n");
  return out.str();
}

}  // namespace bdio::lint
