// bdio-lint: determinism static analysis over the bdio tree.
//
// Usage: bdio-lint [--json] [--schema=PATH] [--schema-dump] [root...]
//   With no roots, lints src/ bench/ tests/ relative to the current
//   directory. Findings print as "file:line:col: R<k>: message" (or as a
//   JSON array with --json) and the exit code is non-zero when any finding
//   survives annotation filtering.
//
//   --schema=PATH   also run the R8 metrics-schema audit against PATH
//                   (normally docs/metrics_schema.json).
//   --schema-dump   regenerate the schema from observed call sites and
//                   print it to stdout (doc strings carry over from
//                   --schema when given); CI diffs this against the
//                   checked-in file to catch drift.

#include <cstdio>
#include <string>
#include <vector>

#include "bdio_lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  bool json = false;
  bool schema_dump = false;
  std::string schema_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--schema-dump") {
      schema_dump = true;
    } else if (arg.rfind("--schema=", 0) == 0) {
      schema_path = arg.substr(9);
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: bdio-lint [--json] [--schema=PATH] "
                   "[--schema-dump] [root...]\n");
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "bdio-lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "tests"};

  bdio::lint::MetricsSchema schema;
  bool have_schema = false;
  if (!schema_path.empty()) {
    std::string error;
    if (!bdio::lint::LoadMetricsSchema(schema_path, &schema, &error)) {
      std::fprintf(stderr, "bdio-lint: %s: %s\n", schema_path.c_str(),
                   error.c_str());
      return 2;
    }
    have_schema = true;
  }

  if (schema_dump) {
    const std::vector<bdio::lint::MetricCallSite> sites =
        bdio::lint::CollectTreeMetricCalls(roots);
    const std::string dump = bdio::lint::DumpMetricsSchema(
        have_schema ? &schema : nullptr, sites);
    std::fwrite(dump.data(), 1, dump.size(), stdout);
    return 0;
  }

  bdio::lint::LintOptions options;
  if (have_schema) options.schema = &schema;

  size_t files_scanned = 0;
  const std::vector<bdio::lint::Diagnostic> diags =
      bdio::lint::LintTree(roots, &files_scanned, options);

  if (json) {
    const std::string out = bdio::lint::DiagnosticsToJson(diags);
    std::fwrite(out.data(), 1, out.size(), stdout);
    return diags.empty() ? 0 : 1;
  }
  for (const bdio::lint::Diagnostic& d : diags) {
    std::fprintf(stderr, "%s:%zu:%zu: %s: %s\n", d.file.c_str(), d.line,
                 d.col, d.rule.c_str(), d.message.c_str());
  }
  if (diags.empty()) {
    std::fprintf(stdout, "bdio-lint: %zu files clean\n", files_scanned);
    return 0;
  }
  std::fprintf(stderr, "bdio-lint: %zu finding(s) in %zu files scanned\n",
               diags.size(), files_scanned);
  return 1;
}
