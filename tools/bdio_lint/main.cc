// bdio-lint: determinism static analysis over the bdio tree.
//
// Usage: bdio-lint [root...]
//   With no arguments, lints src/ bench/ tests/ relative to the current
//   directory. Prints one "file:line: R<k>: message" per finding and exits
//   non-zero when any finding survives annotation filtering.

#include <cstdio>
#include <string>
#include <vector>

#include "bdio_lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) roots.emplace_back(argv[i]);
  if (roots.empty()) roots = {"src", "bench", "tests"};

  size_t files_scanned = 0;
  const std::vector<bdio::lint::Diagnostic> diags =
      bdio::lint::LintTree(roots, &files_scanned);

  for (const bdio::lint::Diagnostic& d : diags) {
    std::fprintf(stderr, "%s:%zu: %s: %s\n", d.file.c_str(), d.line,
                 d.rule.c_str(), d.message.c_str());
  }
  if (diags.empty()) {
    std::fprintf(stdout, "bdio-lint: %zu files clean\n", files_scanned);
    return 0;
  }
  std::fprintf(stderr, "bdio-lint: %zu finding(s) in %zu files scanned\n",
               diags.size(), files_scanned);
  return 1;
}
