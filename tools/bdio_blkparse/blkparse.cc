#include "bdio_blkparse/blkparse.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/histogram.h"
#include "common/io_tag.h"
#include "common/stats.h"
#include "common/units.h"

namespace bdio::blkparse {

namespace {

// ---------------------------------------------------------------------------
// Binary parsing (the inverse of BlktraceSession::Serialize).
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor over the artifact bytes.
class Cursor {
 public:
  explicit Cursor(const std::string& bytes) : data_(bytes) {}

  bool Bytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_, pos_, n);
    pos_ += n;
    return true;
  }
  bool U16(uint16_t* out) {
    uint64_t v = 0;
    if (!Uint(2, &v)) return false;
    *out = static_cast<uint16_t>(v);
    return true;
  }
  bool U32(uint32_t* out) {
    uint64_t v = 0;
    if (!Uint(4, &v)) return false;
    *out = static_cast<uint32_t>(v);
    return true;
  }
  bool U64(uint64_t* out) { return Uint(8, out); }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Uint(size_t n, uint64_t* out) {
    if (pos_ + n > data_.size()) return false;
    uint64_t v = 0;
    for (size_t i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(
               static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += n;
    *out = v;
    return true;
  }

  const std::string& data_;
  size_t pos_ = 0;
};

Status Truncated() {
  return Status::Corruption("blktrace artifact truncated");
}

// ---------------------------------------------------------------------------
// Analysis
// ---------------------------------------------------------------------------

/// Raw accumulators behind one ScopeSummary. Latency streams go into
/// log-bucketed histograms (common::Histogram — bounded memory at ~2%
/// percentile error); the small per-dispatch samples stay exact vectors
/// summarized by stats::Percentiles.
struct ScopeAccum {
  ScopeSummary sum;
  Histogram await_ms;
  Histogram wait_ms;
  Histogram service_ms;
  Histogram seek_sectors;
  std::vector<double> interarrival_ms;
  std::vector<double> queue_depth;
};

double MsOf(uint64_t delta_ns) {
  return static_cast<double>(delta_ns) / 1e6;
}

DistSummary SummarizeHistogram(const Histogram& h) {
  DistSummary d;
  d.count = h.count();
  d.mean = h.mean();
  d.p50 = h.ValueAtPercentile(50);
  d.p95 = h.ValueAtPercentile(95);
  d.p99 = h.ValueAtPercentile(99);
  d.max = h.max();
  return d;
}

DistSummary SummarizeExact(const std::vector<double>& values) {
  DistSummary d;
  d.count = values.size();
  if (values.empty()) return d;
  RunningStats rs;
  for (double v : values) rs.Add(v);
  d.mean = rs.mean();
  d.max = rs.max();
  const std::vector<double> ps = Percentiles(values, {50, 95, 99});
  d.p50 = ps[0];
  d.p95 = ps[1];
  d.p99 = ps[2];
  return d;
}

void Finalize(ScopeAccum* a) {
  ScopeSummary& s = a->sum;
  s.merge_ratio =
      s.bios > 0 ? static_cast<double>(s.merged_bios) /
                       static_cast<double>(s.bios)
                 : 0.0;
  s.read_fraction =
      s.requests > 0 ? static_cast<double>(s.read_requests) /
                           static_cast<double>(s.requests)
                     : 0.0;
  s.avgrq_sectors =
      s.requests > 0 ? static_cast<double>(s.sectors) /
                           static_cast<double>(s.requests)
                     : 0.0;
  s.total_mb = static_cast<double>(s.sectors) * kSectorSize / (1024.0 * 1024);
  s.seq_score =
      s.dispatches > 0 ? static_cast<double>(s.seq_dispatches) /
                             static_cast<double>(s.dispatches)
                       : 0.0;
  s.await_ms = SummarizeHistogram(a->await_ms);
  s.wait_ms = SummarizeHistogram(a->wait_ms);
  s.service_ms = SummarizeHistogram(a->service_ms);
  s.seek_sectors = SummarizeHistogram(a->seek_sectors);
  s.interarrival_ms = SummarizeExact(a->interarrival_ms);
  s.queue_depth = SummarizeExact(a->queue_depth);
}

/// Open lifecycle state of one request between its Q and C records.
struct OpenRequest {
  uint64_t q_time = 0;
  uint64_t d_time = 0;
  bool dispatched = false;
};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

void RenderDist(std::ostringstream* out, const char* label,
                const DistSummary& d, const char* unit) {
  *out << "    " << label << ": mean " << Fmt("%.3f", d.mean) << unit
       << "  p50 " << Fmt("%.3f", d.p50) << "  p95 " << Fmt("%.3f", d.p95)
       << "  p99 " << Fmt("%.3f", d.p99) << "  max " << Fmt("%.3f", d.max)
       << "  (n=" << d.count << ")\n";
}

void RenderScope(std::ostringstream* out, const ScopeSummary& s,
                 bool with_device_locals) {
  *out << "    requests: " << s.requests << " (" << Fmt("%.1f", 100 * s.read_fraction)
       << "% reads), bios: " << s.bios << ", merged: " << s.merged_bios
       << " (merge ratio " << Fmt("%.3f", s.merge_ratio) << ")\n";
  *out << "    volume: " << Fmt("%.1f", s.total_mb) << " MiB, avgrq-sz "
       << Fmt("%.1f", s.avgrq_sectors) << " sectors\n";
  RenderDist(out, "await  (Q->C)", s.await_ms, " ms");
  RenderDist(out, "wait   (Q->D)", s.wait_ms, " ms");
  RenderDist(out, "service(D->C)", s.service_ms, " ms");
  if (with_device_locals) {
    *out << "    sequentiality: " << Fmt("%.3f", s.seq_score) << " ("
         << s.seq_dispatches << "/" << s.dispatches
         << " dispatch-adjacent)\n";
    RenderDist(out, "seek distance", s.seek_sectors, " sectors");
    RenderDist(out, "inter-arrival", s.interarrival_ms, " ms");
    RenderDist(out, "queue depth  ", s.queue_depth, "");
  }
}

void JsonDist(std::ostringstream* out, const char* key,
              const DistSummary& d) {
  *out << "\"" << key << "\":{\"count\":" << d.count << ",\"mean\":"
       << Fmt("%.6g", d.mean) << ",\"p50\":" << Fmt("%.6g", d.p50)
       << ",\"p95\":" << Fmt("%.6g", d.p95) << ",\"p99\":"
       << Fmt("%.6g", d.p99) << ",\"max\":" << Fmt("%.6g", d.max) << "}";
}

void JsonScope(std::ostringstream* out, const ScopeSummary& s) {
  *out << "{\"requests\":" << s.requests << ",\"bios\":" << s.bios
       << ",\"merged_bios\":" << s.merged_bios << ",\"merge_ratio\":"
       << Fmt("%.6g", s.merge_ratio) << ",\"read_fraction\":"
       << Fmt("%.6g", s.read_fraction) << ",\"avgrq_sectors\":"
       << Fmt("%.6g", s.avgrq_sectors) << ",\"total_mb\":"
       << Fmt("%.6g", s.total_mb) << ",\"seq_score\":"
       << Fmt("%.6g", s.seq_score) << ",";
  JsonDist(out, "await_ms", s.await_ms);
  *out << ",";
  JsonDist(out, "wait_ms", s.wait_ms);
  *out << ",";
  JsonDist(out, "service_ms", s.service_ms);
  *out << ",";
  JsonDist(out, "seek_sectors", s.seek_sectors);
  *out << ",";
  JsonDist(out, "interarrival_ms", s.interarrival_ms);
  *out << ",";
  JsonDist(out, "queue_depth", s.queue_depth);
  *out << "}";
}

const char* TagName(uint32_t tag) {
  return tag < kNumIoTags ? IoTagName(static_cast<IoTag>(tag)) : "?";
}

}  // namespace

Result<BlktraceFile> ParseBytes(const std::string& bytes) {
  Cursor cur(bytes);
  std::string magic;
  if (!cur.Bytes(8, &magic)) return Truncated();
  if (magic != "BDIOBLK1") {
    return Status::Corruption("not a bdio blktrace artifact (bad magic)");
  }
  uint32_t record_size = 0;
  uint32_t device_count = 0;
  if (!cur.U32(&record_size) || !cur.U32(&device_count)) return Truncated();
  if (record_size != sizeof(obs::BlktraceRecord)) {
    return Status::Corruption("unsupported blktrace record size " +
                              std::to_string(record_size));
  }
  BlktraceFile file;
  std::vector<uint64_t> record_counts;
  for (uint32_t i = 0; i < device_count; ++i) {
    DeviceTrace dev;
    uint16_t len = 0;
    if (!cur.U16(&len) || !cur.Bytes(len, &dev.name)) return Truncated();
    if (!cur.U16(&len) || !cur.Bytes(len, &dev.dev_class)) return Truncated();
    if (!cur.U32(&dev.node) || !cur.U64(&dev.dropped)) return Truncated();
    for (uint64_t& c : dev.counts) {
      if (!cur.U64(&c)) return Truncated();
    }
    uint64_t n_records = 0;
    if (!cur.U64(&n_records)) return Truncated();
    record_counts.push_back(n_records);
    file.devices.push_back(std::move(dev));
  }
  for (uint32_t i = 0; i < device_count; ++i) {
    DeviceTrace& dev = file.devices[i];
    dev.records.reserve(record_counts[i]);
    for (uint64_t r = 0; r < record_counts[i]; ++r) {
      obs::BlktraceRecord rec;
      std::string action_dir;
      if (!cur.U64(&rec.time_ns) || !cur.U64(&rec.sector) ||
          !cur.U32(&rec.sectors) || !cur.U32(&rec.queue_depth) ||
          !cur.U32(&rec.request_id) || !cur.U32(&rec.tag) ||
          !cur.U32(&rec.job) || !cur.U16(&rec.device) ||
          !cur.Bytes(2, &action_dir)) {
        return Truncated();
      }
      rec.action = static_cast<uint8_t>(action_dir[0]);
      rec.dir = static_cast<uint8_t>(action_dir[1]);
      dev.records.push_back(rec);
    }
  }
  if (!cur.AtEnd()) {
    return Status::Corruption("trailing bytes after blktrace records");
  }
  return file;
}

Result<BlktraceFile> ParseFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    return Status::IOError("cannot open blktrace artifact: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseBytes(buf.str());
}

BlktraceFile FromSession(const obs::BlktraceSession& session) {
  BlktraceFile file;
  for (size_t i = 0; i < session.num_devices(); ++i) {
    const obs::BlktraceDevice& d = session.device(i);
    DeviceTrace dev;
    dev.name = d.name;
    dev.dev_class = d.dev_class;
    dev.node = d.node;
    dev.dropped = d.dropped;
    for (uint32_t a = 0; a < obs::kNumBlkActions; ++a) {
      dev.counts[a] = d.counts[a];
    }
    dev.records = session.DeviceRecords(static_cast<uint16_t>(i));
    file.devices.push_back(std::move(dev));
  }
  return file;
}

Report Analyze(const BlktraceFile& file) {
  Report report;
  report.num_devices = file.devices.size();
  std::map<std::string, ScopeAccum> classes;
  std::map<uint32_t, ScopeAccum> tags;
  std::map<uint32_t, ScopeAccum> jobs;

  for (const DeviceTrace& dev : file.devices) {
    report.dropped_records += dev.dropped;
    report.retained_records += dev.records.size();
    for (uint32_t a = 0; a < obs::kNumBlkActions; ++a) {
      report.action_totals[a] += dev.counts[a];
    }
    ScopeAccum& cls = classes[dev.dev_class];

    // Device-local lifecycle replay. Joins are per request id; orphans
    // (D/C records whose Q was overwritten in the ring) are skipped.
    std::map<uint32_t, OpenRequest> open;
    uint64_t last_dispatch_end = 0;
    bool have_dispatch = false;
    uint64_t last_q_time = 0;
    bool have_q = false;
    for (const obs::BlktraceRecord& rec : dev.records) {
      ScopeAccum& tag = tags[rec.tag];
      ScopeAccum& job = jobs[rec.job];
      switch (static_cast<obs::BlkAction>(rec.action)) {
        case obs::BlkAction::kQueue: {
          open[rec.request_id] = OpenRequest{rec.time_ns, 0, false};
          ++cls.sum.bios;
          ++tag.sum.bios;
          ++job.sum.bios;
          if (have_q) {
            cls.interarrival_ms.push_back(MsOf(rec.time_ns - last_q_time));
          }
          last_q_time = rec.time_ns;
          have_q = true;
          break;
        }
        case obs::BlkAction::kMerge: {
          ++cls.sum.bios;
          ++cls.sum.merged_bios;
          ++tag.sum.bios;
          ++tag.sum.merged_bios;
          ++job.sum.bios;
          ++job.sum.merged_bios;
          break;
        }
        case obs::BlkAction::kDispatch: {
          auto it = open.find(rec.request_id);
          if (it != open.end()) {
            it->second.d_time = rec.time_ns;
            it->second.dispatched = true;
            const double wait = MsOf(rec.time_ns - it->second.q_time);
            cls.wait_ms.Add(wait);
            tag.wait_ms.Add(wait);
            job.wait_ms.Add(wait);
          }
          ++cls.sum.dispatches;
          if (have_dispatch) {
            const uint64_t seek = rec.sector > last_dispatch_end
                                      ? rec.sector - last_dispatch_end
                                      : last_dispatch_end - rec.sector;
            cls.seek_sectors.Add(static_cast<double>(seek));
            if (seek == 0) ++cls.sum.seq_dispatches;
          }
          last_dispatch_end = rec.sector + rec.sectors;
          have_dispatch = true;
          cls.queue_depth.push_back(static_cast<double>(rec.queue_depth));
          break;
        }
        case obs::BlkAction::kComplete: {
          ++cls.sum.requests;
          ++tag.sum.requests;
          ++job.sum.requests;
          cls.sum.sectors += rec.sectors;
          tag.sum.sectors += rec.sectors;
          job.sum.sectors += rec.sectors;
          if (rec.dir == 0) {
            ++cls.sum.read_requests;
            ++tag.sum.read_requests;
            ++job.sum.read_requests;
            cls.sum.read_sectors += rec.sectors;
            tag.sum.read_sectors += rec.sectors;
            job.sum.read_sectors += rec.sectors;
          }
          auto it = open.find(rec.request_id);
          if (it != open.end()) {
            const double await = MsOf(rec.time_ns - it->second.q_time);
            cls.await_ms.Add(await);
            tag.await_ms.Add(await);
            job.await_ms.Add(await);
            if (it->second.dispatched) {
              const double svc = MsOf(rec.time_ns - it->second.d_time);
              cls.service_ms.Add(svc);
              tag.service_ms.Add(svc);
              job.service_ms.Add(svc);
            }
            open.erase(it);
          }
          break;
        }
        default:
          break;  // unknown action from a future format: ignore
      }
    }
  }

  for (auto& [name, accum] : classes) {
    Finalize(&accum);
    report.classes.emplace(name, accum.sum);
  }
  for (auto& [tag, accum] : tags) {
    Finalize(&accum);
    report.tags.emplace(tag, accum.sum);
  }
  for (auto& [job, accum] : jobs) {
    Finalize(&accum);
    report.jobs.emplace(job, accum.sum);
  }
  return report;
}

std::string RenderText(const Report& report) {
  std::ostringstream out;
  out << "bdio-blkparse: " << report.num_devices << " devices, "
      << report.retained_records << " records retained, "
      << report.dropped_records << " dropped\n";
  out << "  lifecycle totals: Q=" << report.action_totals[0] << " M="
      << report.action_totals[1] << " D=" << report.action_totals[2]
      << " C=" << report.action_totals[3] << "\n";
  for (const auto& [name, scope] : report.classes) {
    out << "\ndevice class " << name << ":\n";
    RenderScope(&out, scope, /*with_device_locals=*/true);
  }
  for (const auto& [tag, scope] : report.tags) {
    out << "\nio tag " << TagName(tag) << ":\n";
    RenderScope(&out, scope, /*with_device_locals=*/false);
  }
  for (const auto& [job, scope] : report.jobs) {
    if (job == 0) {
      out << "\njob (unattributed):\n";
    } else {
      out << "\njob " << (job - 1) << ":\n";
    }
    RenderScope(&out, scope, /*with_device_locals=*/false);
  }
  return out.str();
}

std::string RenderSignatureJson(const Report& report) {
  std::ostringstream out;
  out << "{\"schema\":1,\"devices\":" << report.num_devices
      << ",\"retained_records\":" << report.retained_records
      << ",\"dropped_records\":" << report.dropped_records
      << ",\"actions\":{\"Q\":" << report.action_totals[0] << ",\"M\":"
      << report.action_totals[1] << ",\"D\":" << report.action_totals[2]
      << ",\"C\":" << report.action_totals[3] << "},\"classes\":{";
  bool first = true;
  for (const auto& [name, scope] : report.classes) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":";
    JsonScope(&out, scope);
  }
  out << "},\"tags\":{";
  first = true;
  for (const auto& [tag, scope] : report.tags) {
    if (!first) out << ",";
    first = false;
    out << "\"" << TagName(tag) << "\":";
    JsonScope(&out, scope);
  }
  out << "},\"jobs\":{";
  first = true;
  for (const auto& [job, scope] : report.jobs) {
    if (!first) out << ",";
    first = false;
    if (job == 0) {
      out << "\"unattributed\":";
    } else {
      out << "\"" << (job - 1) << "\":";
    }
    JsonScope(&out, scope);
  }
  out << "}}\n";
  return out.str();
}

}  // namespace bdio::blkparse
