// bdio-blkparse: offline analyzer for bdio block-layer lifecycle traces.
//
//   bdio-blkparse <trace.bin>              # human-readable report
//   bdio-blkparse <trace.bin> --signature  # I/O-signature JSON
//
// The input is the binary artifact a bench writes via --blktrace-out
// (format: docs/BLKTRACE.md). Exit code 0 on success, 2 on usage or
// parse errors.

#include <cstdio>
#include <string>

#include "bdio_blkparse/blkparse.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <trace.bin> [--signature]\n"
               "  --signature  emit the I/O feature-vector JSON instead of\n"
               "               the human-readable report\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool signature = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--signature") {
      signature = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "extra positional argument: %s\n", arg.c_str());
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  bdio::Result<bdio::blkparse::BlktraceFile> file =
      bdio::blkparse::ParseFile(path);
  if (!file.ok()) {
    std::fprintf(stderr, "bdio-blkparse: %s\n",
                 file.status().ToString().c_str());
    return 2;
  }
  const bdio::blkparse::Report report = bdio::blkparse::Analyze(file.value());
  const std::string out = signature
                              ? bdio::blkparse::RenderSignatureJson(report)
                              : bdio::blkparse::RenderText(report);
  std::fputs(out.c_str(), stdout);
  return 0;
}
