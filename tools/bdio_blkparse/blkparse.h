#ifndef BDIO_TOOLS_BDIO_BLKPARSE_BLKPARSE_H_
#define BDIO_TOOLS_BDIO_BLKPARSE_BLKPARSE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/blktrace.h"

namespace bdio::blkparse {

/// One device's slice of a parsed artifact: the header fields plus the
/// retained records, oldest first.
struct DeviceTrace {
  std::string name;
  std::string dev_class;  ///< "hdfs" or "mr".
  uint32_t node = 0;
  uint64_t dropped = 0;
  uint64_t counts[obs::kNumBlkActions] = {};  ///< Q,M,D,C totals.
  std::vector<obs::BlktraceRecord> records;
};

/// A parsed blktrace artifact (or an in-memory session's equivalent view).
struct BlktraceFile {
  std::vector<DeviceTrace> devices;
};

/// Parses the binary artifact format BlktraceSession::Serialize emits.
/// Fails with Corruption on a bad magic, truncated header, or record-size
/// mismatch (a future format revision).
Result<BlktraceFile> ParseBytes(const std::string& bytes);

/// Reads and parses an artifact file.
Result<BlktraceFile> ParseFile(const std::string& path);

/// Adapts a live session (bench/extension_io_signature analyzes in-process
/// without a file round trip). The view is equivalent to
/// ParseBytes(session.Serialize()).
BlktraceFile FromSession(const obs::BlktraceSession& session);

/// Percentile summary of one latency/size distribution. Latencies come
/// from a log-bucketed common::Histogram (±2% on percentiles); small
/// distributions (queue depth, inter-arrival) use exact stats::Percentiles.
struct DistSummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Aggregates for one analysis scope (a device class, an IoTag, or a job).
struct ScopeSummary {
  uint64_t requests = 0;       ///< Completed requests (C records).
  uint64_t read_requests = 0;
  uint64_t bios = 0;           ///< Q + M records (pre-merge demand).
  uint64_t merged_bios = 0;    ///< M records.
  uint64_t sectors = 0;        ///< Sectors completed.
  uint64_t read_sectors = 0;

  /// Merge efficiency: merged bios / all bios (0 when no bios).
  double merge_ratio = 0;
  /// Completed-read fraction of requests.
  double read_fraction = 0;
  /// Mean request size in sectors — iostat's avgrq-sz, per-request.
  double avgrq_sectors = 0;
  double total_mb = 0;

  /// Dispatch-adjacency sequentiality: fraction of dispatches starting
  /// exactly where the previous dispatch on the same device ended
  /// (class scopes only; 0 elsewhere).
  double seq_score = 0;
  uint64_t dispatches = 0;
  uint64_t seq_dispatches = 0;

  DistSummary await_ms;    ///< Q -> C, iostat's await decomposed below.
  DistSummary wait_ms;     ///< Q -> D (elevator residency).
  DistSummary service_ms;  ///< D -> C (drive service, iostat's svctm).
  DistSummary seek_sectors;      ///< |dispatch start - previous end|.
  DistSummary interarrival_ms;   ///< Q-to-Q gap per device (class scopes).
  DistSummary queue_depth;       ///< Elevator depth sampled at dispatch.
};

/// The full characterization report.
struct Report {
  uint64_t num_devices = 0;
  uint64_t retained_records = 0;
  uint64_t dropped_records = 0;
  /// Q,M,D,C totals across every device (drop-independent).
  uint64_t action_totals[obs::kNumBlkActions] = {};

  /// Per device class ("hdfs" / "mr" — the paper's central split), per
  /// IoTag, and per owning job (key = job field; 0 = unattributed).
  std::map<std::string, ScopeSummary> classes;
  std::map<uint32_t, ScopeSummary> tags;
  std::map<uint32_t, ScopeSummary> jobs;
};

/// Replays every device's records and builds the report. Lifecycle joins
/// are per (device, request_id); records orphaned by ring overwrite (a D/C
/// whose Q was dropped) are skipped, never miscounted.
Report Analyze(const BlktraceFile& file);

/// Human-readable characterization report (the default CLI output).
std::string RenderText(const Report& report);

/// The per-workload I/O feature vector as JSON (--signature mode): per
/// class/tag/job request counts, merge ratio, read fraction, avgrq-sz,
/// sequentiality, await/wait/service percentiles, inter-arrival and
/// queue-depth summaries. Schema: docs/BLKTRACE.md.
std::string RenderSignatureJson(const Report& report);

}  // namespace bdio::blkparse

#endif  // BDIO_TOOLS_BDIO_BLKPARSE_BLKPARSE_H_
