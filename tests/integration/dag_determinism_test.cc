// The determinism contract for the JobDag driver: a dag-driven iterative
// run — with a chaos plan armed (DataNode death + fail-slow disk) — is
// byte-identical across repeated runs and across worker-thread counts.
// Companion to determinism_test.cc, which covers the one-pass grid path.

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/runner/thread_pool.h"
#include "dag/job_dag.h"
#include "faults/fault_plan.h"
#include "faults/injector.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/graph_profile.h"

namespace bdio::dag {
namespace {

/// One faulted SSSP dag run, serialized to every observable byte of the
/// dag's ledger (hex times and byte counts — exact equality, no rounding).
std::string RunFaultedGraphDag(uint64_t seed) {
  workloads::GraphPlanOptions plan_options;
  plan_options.scale = 1.0 / 512;
  plan_options.model_nodes = 256;
  plan_options.seed = seed;
  workloads::GraphDagPlan plan =
      workloads::BuildGraphDag(workloads::GraphWorkload::kSssp, plan_options);

  Rng rng(seed);
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 8;
  cp.node.memory_bytes = GiB(4);
  cp.node.daemon_bytes = MiB(256);
  cp.node.per_slot_heap_bytes = MiB(16);
  const mapreduce::SlotConfig slots{2, 2, "test"};
  cluster::Cluster cluster(&sim, cp, slots.total(), rng.Fork());
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, rng.Fork());
  EXPECT_TRUE(dfs.Preload(plan.dataset_path, plan.dataset_bytes).ok());
  mapreduce::MrEngine engine(&cluster, &dfs, slots, rng.Fork());

  faults::FaultInjector injector(&cluster, &dfs, &engine);
  faults::FaultPlan chaos;
  chaos.KillDataNode(3, TimeAt(Seconds(2)));
  chaos.DegradeDisk(5, /*mr_disk=*/true, 0, /*factor=*/4.0, TimeAt(Seconds(1)),
                    TimeAt(Seconds(60)));

  JobDag jobdag(&sim, &engine, &dfs, std::move(plan.dag));
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok()) << s.ToString();
    done = true;
  });
  EXPECT_TRUE(injector.Arm(chaos).ok());
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(jobdag.AuditInvariants(), "");

  std::ostringstream out;
  out << sim.events_processed() << ' ' << sim.Now() << '\n';
  for (const NodeRecord& node : jobdag.node_records()) {
    out << node.id << ' ' << node.round << ' ' << node.name << ' '
        << node.counters.hdfs_read_bytes << ' '
        << node.counters.hdfs_write_bytes << ' '
        << node.counters.intermediate_write_bytes << ' '
        << node.counters.shuffle_network_bytes << ' '
        << node.counters.maps_launched << ' '
        << node.counters.reduces_launched << ' '
        << node.counters.start_time << ' ' << node.counters.end_time << '\n';
  }
  for (const RoundRecord& round : jobdag.round_records()) {
    out << round.round << ' ' << round.start_time << ' ' << round.end_time
        << ' ' << round.hdfs_read_bytes << ' ' << round.hdfs_write_bytes
        << ' ' << round.expired_bytes << ' ' << round.expired_files << '\n';
  }
  out << jobdag.intermediate_published_bytes() << ' '
      << jobdag.intermediate_expired_bytes() << ' '
      << jobdag.intermediate_expired_files() << '\n';
  return out.str();
}

TEST(DagDeterminismTest, FaultedDagByteIdenticalAcrossJobCounts) {
  const std::vector<uint64_t> seeds = {7, 21, 42};

  // Serial baseline (--jobs 1).
  std::vector<std::string> serial;
  for (const uint64_t seed : seeds) serial.push_back(RunFaultedGraphDag(seed));

  // Four worker threads (--jobs 4), results consumed in submission order.
  core::runner::ThreadPool pool(4);
  std::vector<std::future<std::string>> futures;
  for (const uint64_t seed : seeds) {
    futures.push_back(pool.Async([seed] { return RunFaultedGraphDag(seed); }));
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial[i], futures[i].get())
        << "seed " << seeds[i] << ": 4 workers diverged from serial";
  }

  // Sanity: the serialization is not degenerate — different seeds produce
  // genuinely different runs.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(DagDeterminismTest, RepeatedFaultedRunsAreByteIdentical) {
  EXPECT_EQ(RunFaultedGraphDag(42), RunFaultedGraphDag(42));
}

}  // namespace
}  // namespace bdio::dag
