// End-to-end consistency tests across the whole stack: workload plan ->
// MapReduce engine -> HDFS -> page cache -> block devices -> iostat/trace.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/experiment.h"
#include "hdfs/hdfs.h"
#include "iostat/iostat.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "workloads/profile.h"

namespace bdio {
namespace {

struct Testbed {
  explicit Testbed(double scale = 1.0 / 256, uint32_t workers = 4) {
    cluster::ClusterParams cp;
    cp.num_workers = workers;
    cp.node.memory_bytes = static_cast<uint64_t>(GiB(16) * scale);
    cp.node.daemon_bytes = static_cast<uint64_t>(GiB(2) * scale);
    cp.node.per_slot_heap_bytes = static_cast<uint64_t>(MiB(200) * scale);
    cp.node.min_cache_bytes = MiB(16);
    cluster = std::make_unique<cluster::Cluster>(&sim, cp, 16, Rng(1));
    dfs = std::make_unique<hdfs::Hdfs>(cluster.get(), hdfs::HdfsParams{},
                                       Rng(2));
    engine = std::make_unique<mapreduce::MrEngine>(
        cluster.get(), dfs.get(), mapreduce::SlotConfig::Paper_1_8(), Rng(3));
  }

  sim::Simulator sim;
  std::unique_ptr<cluster::Cluster> cluster;
  std::unique_ptr<hdfs::Hdfs> dfs;
  std::unique_ptr<mapreduce::MrEngine> engine;
};

uint64_t TotalDeviceBytes(cluster::Cluster* cluster, bool hdfs_class,
                          int direction) {
  uint64_t sectors = 0;
  for (uint32_t n = 0; n < cluster->num_workers(); ++n) {
    for (uint32_t d = 0; d < 3; ++d) {
      auto* dev = hdfs_class ? cluster->node(n)->hdfs_disk(d)
                             : cluster->node(n)->mr_disk(d);
      sectors += dev->Stats().sectors[direction];
    }
  }
  return sectors * kSectorSize;
}

TEST(PipelineTest, VolumeConservationTeraSort) {
  Testbed bed;
  workloads::PlanOptions options;
  options.scale = 1.0 / 256;
  auto plan = workloads::BuildPlan(workloads::WorkloadKind::kTeraSort,
                                   options);
  ASSERT_TRUE(bed.dfs->Preload(plan.dataset_path, plan.dataset_bytes).ok());

  mapreduce::JobCounters counters;
  bool done = false;
  bed.engine->RunJob(plan.jobs[0].spec,
                     [&](Status s, const mapreduce::JobCounters& c) {
                       ASSERT_TRUE(s.ok());
                       counters = c;
                       done = true;
                     });
  bed.sim.Run();
  ASSERT_TRUE(done);

  // Cold input: the HDFS disks must physically read at least the logical
  // input volume (readahead may add a bounded overshoot).
  const uint64_t hdfs_read = TotalDeviceBytes(bed.cluster.get(), true, 0);
  EXPECT_GE(hdfs_read, counters.hdfs_read_bytes * 95 / 100);
  EXPECT_LE(hdfs_read, counters.hdfs_read_bytes * 13 / 10);

  // Flush trailing writeback, then the HDFS disks must hold exactly the
  // output (logical bytes; TeraSort output replication is 1).
  bool flushed = false;
  bed.cluster->node(0)->cache()->SyncAll([&] { flushed = true; });
  for (uint32_t n = 1; n < bed.cluster->num_workers(); ++n) {
    bed.cluster->node(n)->cache()->SyncAll(nullptr);
  }
  bed.sim.Run();
  ASSERT_TRUE(flushed);
  const uint64_t hdfs_written = TotalDeviceBytes(bed.cluster.get(), true, 1);
  EXPECT_GE(hdfs_written, counters.hdfs_write_bytes * 95 / 100);
  EXPECT_LE(hdfs_written, counters.hdfs_write_bytes * 11 / 10);

  // Intermediate data is written once and read at most ~2x (shuffle +
  // merges), but cache hits may absorb some reads.
  const uint64_t mr_written = TotalDeviceBytes(bed.cluster.get(), false, 1);
  const uint64_t mr_read = TotalDeviceBytes(bed.cluster.get(), false, 0);
  EXPECT_LE(mr_written, counters.intermediate_write_bytes * 11 / 10);
  // Shuffle slices are unaligned and readahead overshoots across their
  // boundaries, so physical reads exceed logical by a bounded factor.
  EXPECT_LE(mr_read, counters.intermediate_read_bytes * 15 / 10);
}

TEST(PipelineTest, TraceMatchesDiskstats) {
  Testbed bed;
  trace::Recorder rec;
  rec.Attach(bed.cluster->node(0)->hdfs_disk(0));
  ASSERT_TRUE(bed.dfs->Preload("/in", MiB(128)).ok());
  mapreduce::SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  bool done = false;
  bed.engine->RunJob(spec, [&](Status s, const mapreduce::JobCounters&) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  bed.sim.Run();
  ASSERT_TRUE(done);
  // Every completed request observed by the tracer is in diskstats and
  // vice versa.
  const auto stats = bed.cluster->node(0)->hdfs_disk(0)->Stats();
  EXPECT_EQ(rec.size(), stats.TotalIos());
  uint64_t traced_sectors = 0;
  for (const auto& e : rec.events()) traced_sectors += e.sectors;
  EXPECT_EQ(traced_sectors, stats.TotalSectors());
}

TEST(PipelineTest, IostatInvariantsDuringWorkload) {
  Testbed bed;
  iostat::Monitor monitor(&bed.sim, Seconds(1));
  for (uint32_t d = 0; d < 3; ++d) {
    monitor.AddDevice(bed.cluster->node(0)->hdfs_disk(d), "hdfs");
    monitor.AddDevice(bed.cluster->node(0)->mr_disk(d), "mr");
  }
  monitor.Start();
  ASSERT_TRUE(bed.dfs->Preload("/in", MiB(256)).ok());
  mapreduce::SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  bool done = false;
  bed.engine->RunJob(spec, [&](Status s, const mapreduce::JobCounters&) {
    ASSERT_TRUE(s.ok());
    done = true;
    monitor.Stop();
  });
  bed.sim.Run();
  ASSERT_TRUE(done);
  for (const char* name :
       {"n0-hdfs0", "n0-hdfs1", "n0-hdfs2", "n0-mr0", "n0-mr1", "n0-mr2"}) {
    for (const auto& s : monitor.DeviceSamples(name)) {
      EXPECT_GE(s.util_pct, 0.0);
      EXPECT_LE(s.util_pct, 100.0);
      EXPECT_GE(s.await_ms, s.svctm_ms - 1e-9) << name;
      EXPECT_GE(s.r_s, 0.0);
      EXPECT_GE(s.avgrq_sz, 0.0);
      // Requests can't be larger than the block-layer cap.
      EXPECT_LE(s.avgrq_sz, 1024.0 + 1e-9);
    }
  }
}

TEST(PipelineTest, HdfsPatternSequentialMrPatternSeeky) {
  Testbed bed;
  trace::Recorder hdfs_rec, mr_rec;
  hdfs_rec.Attach(bed.cluster->node(0)->hdfs_disk(0));
  mr_rec.Attach(bed.cluster->node(0)->mr_disk(0));
  workloads::PlanOptions options;
  options.scale = 1.0 / 256;
  auto plan =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, options);
  ASSERT_TRUE(bed.dfs->Preload(plan.dataset_path, plan.dataset_bytes).ok());
  bool done = false;
  bed.engine->RunJob(plan.jobs[0].spec,
                     [&](Status s, const mapreduce::JobCounters&) {
                       ASSERT_TRUE(s.ok());
                       done = true;
                     });
  bed.sim.Run();
  ASSERT_TRUE(done);
  trace::Analyzer hdfs_an(hdfs_rec.events());
  trace::Analyzer mr_an(mr_rec.events());
  ASSERT_GT(hdfs_an.num_requests(), 50u);
  ASSERT_GT(mr_an.num_requests(), 50u);
  // The paper's Observation 4.
  EXPECT_GT(hdfs_an.SequentialFraction(), mr_an.SequentialFraction() + 0.2);
  EXPECT_GT(hdfs_an.MeanRequestSectors(), mr_an.MeanRequestSectors());
}

TEST(PipelineTest, CompressionReducesMrTrafficEndToEnd) {
  auto run = [&](bool compress) {
    Testbed bed;
    workloads::PlanOptions options;
    options.scale = 1.0 / 256;
    options.compress_intermediate = compress;
    auto plan =
        workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, options);
    EXPECT_TRUE(
        bed.dfs->Preload(plan.dataset_path, plan.dataset_bytes).ok());
    bool done = false;
    bed.engine->RunJob(plan.jobs[0].spec,
                       [&](Status s, const mapreduce::JobCounters&) {
                         EXPECT_TRUE(s.ok());
                         done = true;
                       });
    bed.sim.Run();
    EXPECT_TRUE(done);
    return TotalDeviceBytes(bed.cluster.get(), false, 1);
  };
  const uint64_t off = run(false);
  const uint64_t on = run(true);
  EXPECT_LT(on, off * 8 / 10);
}

}  // namespace
}  // namespace bdio
