// The determinism contract, end to end: a fixed (seed, plan) produces
// byte-identical output no matter how many sweep workers run the grid.
// This is what bdio-lint's rules protect (docs/STATIC_ANALYSIS.md).

#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/runner/sweep_runner.h"

namespace bdio::core {
namespace {

using runner::SweepRunner;
using workloads::WorkloadKind;

/// Every observable byte of a result, doubles rendered as hexfloat so the
/// comparison is exact bit equality, not print rounding.
std::string Serialize(const ExperimentResult& r) {
  std::ostringstream out;
  out << std::hexfloat;
  out << r.label << '\n' << r.duration_s << '\n';
  const auto series = [&out](const char* name, const TimeSeries& s) {
    out << name;
    for (const double v : s.samples()) out << ' ' << v;
    out << '\n';
  };
  series("cpu", r.cpu_util);
  series("maps", r.maps_running);
  series("reduces", r.reduces_running);
  series("hdfs_read", r.hdfs.read_mbps);
  series("hdfs_util", r.hdfs.util);
  series("hdfs_await", r.hdfs.await_ms);
  series("mr_write", r.mr.write_mbps);
  series("mr_util", r.mr.util);
  for (const auto& [source, volumes] : r.io_sources) {
    out << source << ' ' << volumes.disk_read_bytes << ' '
        << volumes.disk_write_bytes << '\n';
  }
  // The registry covers every counter the stack maintains.
  out << r.metrics->ToCsv();
  return out.str();
}

TEST(DeterminismTest, TeraSortGridByteIdenticalAcrossJobCounts) {
  // A small TeraSort grid: enough cells that four workers genuinely
  // overlap, small enough scale to stay fast.
  std::vector<ExperimentSpec> specs;
  for (uint64_t seed : {7, 21, 42}) {
    ExperimentSpec spec;
    spec.workload = WorkloadKind::kTeraSort;
    spec.scale = 1.0 / 512;
    spec.seed = seed;
    specs.push_back(spec);
  }

  SweepRunner serial(/*jobs=*/1);
  const auto serial_results = serial.Run(specs);
  SweepRunner parallel(/*jobs=*/4);
  const auto parallel_results = parallel.Run(specs);

  ASSERT_EQ(serial_results.size(), specs.size());
  ASSERT_EQ(parallel_results.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(serial_results[i].ok());
    ASSERT_TRUE(parallel_results[i].ok());
    EXPECT_EQ(Serialize(*serial_results[i]), Serialize(*parallel_results[i]))
        << "seed " << specs[i].seed
        << ": --jobs 4 diverged from --jobs 1";
  }
}

TEST(DeterminismTest, RepeatedRunsAreByteIdentical) {
  ExperimentSpec spec;
  spec.workload = WorkloadKind::kTeraSort;
  spec.scale = 1.0 / 512;
  spec.seed = 42;
  auto a = RunExperiment(spec);
  auto b = RunExperiment(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Serialize(*a), Serialize(*b));
}

}  // namespace
}  // namespace bdio::core
