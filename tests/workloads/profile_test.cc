#include "workloads/profile.h"

#include <gtest/gtest.h>

namespace bdio::workloads {
namespace {

TEST(ProfileTest, ShortNamesAndOrder) {
  EXPECT_STREQ(WorkloadShortName(WorkloadKind::kTeraSort), "TS");
  EXPECT_STREQ(WorkloadShortName(WorkloadKind::kAggregation), "AGG");
  EXPECT_STREQ(WorkloadShortName(WorkloadKind::kKMeans), "KM");
  EXPECT_STREQ(WorkloadShortName(WorkloadKind::kPageRank), "PR");
  const auto all = AllWorkloads();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], WorkloadKind::kAggregation);  // paper order
}

TEST(ProfileTest, PaperScaleInputs) {
  EXPECT_EQ(PaperInputBytes(WorkloadKind::kTeraSort), TiB(1));
  EXPECT_EQ(PaperInputBytes(WorkloadKind::kAggregation), GiB(512));
  EXPECT_GT(PaperInputBytes(WorkloadKind::kKMeans), GiB(10));
  EXPECT_GT(PaperInputBytes(WorkloadKind::kPageRank), GiB(10));
}

TEST(ProfileTest, PlanShapesPerWorkload) {
  PlanOptions options;
  options.kmeans_iterations = 3;
  options.pagerank_iterations = 4;

  const WorkloadPlan ts = BuildPlan(WorkloadKind::kTeraSort, options);
  ASSERT_EQ(ts.jobs.size(), 1u);
  EXPECT_EQ(ts.jobs[0].spec.output_replication, 1u);  // TeraSort convention
  EXPECT_EQ(ts.jobs[0].spec.input_path, ts.dataset_path);

  const WorkloadPlan agg = BuildPlan(WorkloadKind::kAggregation, options);
  ASSERT_EQ(agg.jobs.size(), 1u);
  EXPECT_LT(agg.jobs[0].spec.output_ratio, 0.01);  // group-by output tiny
  EXPECT_LT(agg.jobs[0].spec.combine_ratio, 0.2);  // map-side aggregation

  const WorkloadPlan km = BuildPlan(WorkloadKind::kKMeans, options);
  ASSERT_EQ(km.jobs.size(), 4u);  // 3 iterations + clustering
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(km.jobs[i].spec.input_path, km.dataset_path);  // re-reads
  }
  EXPECT_EQ(km.jobs[3].spec.num_reduce_tasks, 0u);  // map-only clustering
  // Iterations are CPU-bound; the clustering pass is not.
  EXPECT_GT(km.jobs[0].spec.map_cpu_ns_per_byte,
            5 * km.jobs[3].spec.map_cpu_ns_per_byte);

  // PageRank plans only the first iteration statically; the dag controller
  // appends iter1.. and each round's state expires once consumed.
  const WorkloadPlan pr = BuildPlan(WorkloadKind::kPageRank, options);
  ASSERT_EQ(pr.jobs.size(), 1u);
  EXPECT_EQ(pr.jobs[0].spec.input_path, pr.dataset_path);
  EXPECT_EQ(pr.jobs[0].spec.output_path, "/out/PR/iter0");
  ASSERT_NE(pr.iteration, nullptr);
  EXPECT_TRUE(pr.expire_intermediates);
  // Drive the controller as the dag would: each round emits one job
  // reading the previous round's output, until the fixed count is hit.
  dag::RoundResult completed;
  completed.round = 0;
  completed.nodes = {0};
  mapreduce::JobCounters counters;
  counters.hdfs_write_bytes = MiB(1);
  completed.counters = {counters};
  for (uint32_t i = 1; i < 4; ++i) {
    auto batch = pr.iteration->NextRound(completed);
    ASSERT_EQ(batch.size(), 1u) << "iteration " << i;
    EXPECT_EQ(batch[0].spec.input_path,
              "/out/PR/iter" + std::to_string(i - 1));
    EXPECT_EQ(batch[0].spec.output_path, "/out/PR/iter" + std::to_string(i));
    completed.round = i;
  }
  EXPECT_TRUE(pr.iteration->NextRound(completed).empty());  // 4 rounds done.
}

TEST(ProfileTest, PageRankControllerStopsWhenRoundWroteNothing) {
  PlanOptions options;
  options.pagerank_iterations = 4;
  const WorkloadPlan pr = BuildPlan(WorkloadKind::kPageRank, options);
  ASSERT_NE(pr.iteration, nullptr);
  dag::RoundResult completed;
  completed.round = 0;
  completed.nodes = {0};
  completed.counters = {mapreduce::JobCounters{}};  // wrote zero bytes
  EXPECT_TRUE(pr.iteration->NextRound(completed).empty());
}

TEST(ProfileTest, ScaleAppliesToDatasetAndShuffleBuffer) {
  PlanOptions big;
  big.scale = 1.0 / 16;
  PlanOptions small;
  small.scale = 1.0 / 256;
  const auto plan_big = BuildPlan(WorkloadKind::kTeraSort, big);
  const auto plan_small = BuildPlan(WorkloadKind::kTeraSort, small);
  EXPECT_EQ(plan_big.dataset_bytes, TiB(1) / 16);
  EXPECT_EQ(plan_small.dataset_bytes, TiB(1) / 256);
  EXPECT_GT(plan_big.jobs[0].spec.shuffle_buffer_bytes,
            plan_small.jobs[0].spec.shuffle_buffer_bytes);
  // Map-side sort buffer is NOT scaled (splits keep their real size).
  EXPECT_EQ(plan_big.jobs[0].spec.sort_buffer_bytes,
            plan_small.jobs[0].spec.sort_buffer_bytes);
}

TEST(ProfileTest, CompressionFlagPropagates) {
  PlanOptions options;
  options.compress_intermediate = true;
  for (WorkloadKind w : AllWorkloads()) {
    const auto plan = BuildPlan(w, options);
    for (const auto& job : plan.jobs) {
      EXPECT_TRUE(job.spec.compress_intermediate);
      EXPECT_GT(job.spec.compress_ratio, 0.0);
      EXPECT_LT(job.spec.compress_ratio, 1.0);
    }
  }
}

TEST(ProfileTest, CalibrationMeasuresSaneRatios) {
  // TeraSort: identity job, text-like data.
  const Calibration ts = CalibrateWorkload(WorkloadKind::kTeraSort);
  EXPECT_NEAR(ts.map_output_ratio, 1.0, 0.1);
  EXPECT_NEAR(ts.output_ratio, 1.0, 0.1);
  EXPECT_GT(ts.compress_ratio, 0.2);
  EXPECT_LT(ts.compress_ratio, 0.8);

  // Aggregation: projected columns, combinable.
  const Calibration agg = CalibrateWorkload(WorkloadKind::kAggregation);
  EXPECT_LT(agg.map_output_ratio, 0.6);
  EXPECT_LT(agg.combine_ratio, 0.3);
  EXPECT_LT(agg.output_ratio, 0.01);

  // K-means: point-sized map output, combiner collapses it.
  const Calibration km = CalibrateWorkload(WorkloadKind::kKMeans);
  EXPECT_GT(km.map_output_ratio, 0.5);
  EXPECT_LT(km.combine_ratio, 0.1);

  // PageRank: contributions + structure exceed the input.
  const Calibration pr = CalibrateWorkload(WorkloadKind::kPageRank);
  EXPECT_GT(pr.map_output_ratio, 0.9);
  EXPECT_GT(pr.output_ratio, 0.5);
}

TEST(ProfileTest, CalibrationDeterministic) {
  const Calibration a = CalibrateWorkload(WorkloadKind::kAggregation, 7);
  const Calibration b = CalibrateWorkload(WorkloadKind::kAggregation, 7);
  EXPECT_EQ(a.map_output_ratio, b.map_output_ratio);
  EXPECT_EQ(a.compress_ratio, b.compress_ratio);
}

TEST(ProfileTest, ExternalCalibrationOverridesDefaults) {
  Calibration cal;
  cal.map_output_ratio = 0.123;
  cal.output_ratio = 0.456;
  cal.compress_ratio = 0.789;
  cal.combine_ratio = 0.5;
  PlanOptions options;
  options.calibration = &cal;
  const auto plan = BuildPlan(WorkloadKind::kTeraSort, options);
  EXPECT_DOUBLE_EQ(plan.jobs[0].spec.map_output_ratio, 0.123);
  EXPECT_DOUBLE_EQ(plan.jobs[0].spec.compress_ratio, 0.789);
}

}  // namespace
}  // namespace bdio::workloads
