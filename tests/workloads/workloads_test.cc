#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "workloads/aggregation.h"
#include "workloads/datagen.h"
#include "workloads/kmeans.h"
#include "workloads/pagerank.h"
#include "workloads/terasort.h"

namespace bdio::workloads {
namespace {

mrfunc::JobConfig SmallConfig() {
  mrfunc::JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  config.sort_buffer_bytes = KiB(64);
  return config;
}

// ---------------------------------------------------------------------------
// TeraSort
// ---------------------------------------------------------------------------

TEST(TeraSortTest, OutputGloballySorted) {
  Rng rng(1);
  auto input = GenTeraSortRecords(&rng, 5000);
  auto result = RunTeraSort(input, SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), input.size());
  EXPECT_TRUE(IsSortedByKey(result->output));
  // Same multiset of keys.
  std::vector<std::string> in_keys, out_keys;
  for (const auto& kv : input) in_keys.push_back(kv.key);
  for (const auto& kv : result->output) out_keys.push_back(kv.key);
  std::sort(in_keys.begin(), in_keys.end());
  EXPECT_EQ(in_keys, out_keys);
}

TEST(TeraSortTest, IdentityVolumeRatios) {
  Rng rng(2);
  auto input = GenTeraSortRecords(&rng, 2000);
  auto result = RunTeraSort(input, SmallConfig());
  ASSERT_TRUE(result.ok());
  const auto& st = result->stats;
  EXPECT_EQ(st.map_output_records, st.map_input_records);
  EXPECT_EQ(st.reduce_output_records, st.map_input_records);
  EXPECT_NEAR(static_cast<double>(st.map_output_bytes) /
                  static_cast<double>(st.map_input_bytes),
              1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

TEST(AggregationTest, MatchesReferenceAggregate) {
  Rng rng(3);
  auto input = GenOrderRows(&rng, 10000, 16);
  auto config = SmallConfig();
  config.use_combiner = true;
  auto result = RunAggregation(input, config);
  ASSERT_TRUE(result.ok());
  auto reference = ReferenceAggregate(input);
  ASSERT_EQ(result->output.size(), reference.size());
  for (const auto& kv : result->output) {
    ASSERT_TRUE(reference.contains(kv.key)) << kv.key;
    EXPECT_NEAR(std::atof(kv.value.c_str()), reference[kv.key],
                std::abs(reference[kv.key]) * 1e-4 + 0.01);
  }
}

TEST(AggregationTest, OutputTinyComparedToInput) {
  Rng rng(4);
  auto input = GenOrderRows(&rng, 20000);
  auto config = SmallConfig();
  config.use_combiner = true;
  auto result = RunAggregation(input, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->stats.reduce_output_bytes,
            result->stats.map_input_bytes / 100);
}

TEST(AggregationTest, SkipsMalformedRows) {
  std::vector<mrfunc::KeyValue> input{
      {"1", "bogus row"}, {"2", "1|catA|10.00|2|2013-01-01"}};
  auto result = RunAggregation(input, SmallConfig());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->output.size(), 1u);
  EXPECT_EQ(result->output[0].key, "catA");
  EXPECT_NEAR(std::atof(result->output[0].value.c_str()), 20.0, 1e-6);
}

// ---------------------------------------------------------------------------
// K-means
// ---------------------------------------------------------------------------

TEST(KMeansTest, ConvergesOnSeparatedClusters) {
  Rng rng(5);
  auto points = GenPoints(&rng, 3000, /*centers=*/4, /*dims=*/4,
                          /*spread=*/0.01);
  auto config = SmallConfig();
  config.use_combiner = true;
  auto result = RunKMeans(points, 4, 20, 1e-8, config, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->iterations, 0u);
  EXPECT_LE(result->iterations, 20u);
  EXPECT_EQ(result->centroids.size(), 4u);
  EXPECT_EQ(result->assignments.size(), points.size());
  // Mean distance of points to their assigned centroid is small (clusters
  // are tight: spread 0.01).
  KMeansMapper mapper(result->centroids);
  double total = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const Point p = ParsePoint(points[i].value);
    total += SquaredDistance(p, result->centroids[result->assignments[i]]);
  }
  EXPECT_LT(total / static_cast<double>(points.size()), 0.01);
}

TEST(KMeansTest, IterationShuffleTinyWithCombiner) {
  Rng rng(6);
  auto points = GenPoints(&rng, 5000);
  auto config = SmallConfig();
  config.use_combiner = true;
  auto result = RunKMeans(points, 8, 2, 1e-12, config, &rng);
  ASSERT_TRUE(result.ok());
  const auto& st = result->iteration_stats[0];
  // Map output is point-sized but combining shrinks the spill to ~k records.
  EXPECT_GT(st.map_output_bytes, st.map_input_bytes / 2);
  EXPECT_LT(st.spilled_bytes, st.map_output_bytes / 20);
}

TEST(KMeansTest, PointRoundTrip) {
  const Point p{1.5, -2.25, 0.0};
  const Point q = ParsePoint(FormatPoint(p));
  ASSERT_EQ(q.size(), 3u);
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(q[i], p[i], 1e-6);
  EXPECT_TRUE(ParsePoint("").empty());
}

TEST(KMeansTest, RejectsBadArguments) {
  Rng rng(7);
  auto config = SmallConfig();
  EXPECT_TRUE(RunKMeans({}, 3, 5, 1e-6, config, &rng)
                  .status()
                  .IsInvalidArgument());
  auto points = GenPoints(&rng, 10);
  EXPECT_TRUE(RunKMeans(points, 0, 5, 1e-6, config, &rng)
                  .status()
                  .IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

TEST(PageRankTest, RanksSumNearOne) {
  Rng rng(8);
  auto graph = GenWebGraph(&rng, 2000, 6.0);
  auto result = RunPageRank(graph, 10, SmallConfig());
  ASSERT_TRUE(result.ok());
  double total = 0;
  for (const auto& [node, rank] : result->ranks) {
    EXPECT_GE(rank, 0.0);
    total += rank;
  }
  // Dangling-node mass leaks per iteration; with damping 0.85 the sum stays
  // within (0.3, 1.0].
  EXPECT_GT(total, 0.3);
  EXPECT_LE(total, 1.0 + 1e-6);
}

TEST(PageRankTest, PopularNodesRankHigher) {
  // Star graph: all nodes point at node 0.
  std::vector<mrfunc::KeyValue> graph;
  graph.push_back({"0", ""});
  for (int i = 1; i < 50; ++i) graph.push_back({std::to_string(i), "0"});
  auto result = RunPageRank(graph, 5, SmallConfig());
  ASSERT_TRUE(result.ok());
  const double hub = result->ranks.at("0");
  for (int i = 1; i < 50; ++i) {
    EXPECT_GT(hub, 10 * result->ranks.at(std::to_string(i)));
  }
}

TEST(PageRankTest, IterationPreservesStructure) {
  Rng rng(9);
  auto graph = GenWebGraph(&rng, 500);
  auto result = RunPageRank(graph, 3, SmallConfig());
  ASSERT_TRUE(result.ok());
  // Every node still has a rank after 3 iterations.
  EXPECT_EQ(result->ranks.size(), graph.size());
  EXPECT_EQ(result->iteration_stats.size(), 3u);
  // Shuffle volume ~ edges, i.e. comparable to the input size.
  const auto& st = result->iteration_stats[0];
  EXPECT_GT(st.map_output_bytes, st.map_input_bytes / 2);
}

TEST(PageRankTest, EmptyGraphRejected) {
  EXPECT_TRUE(RunPageRank({}, 3, SmallConfig()).status().IsInvalidArgument());
}

}  // namespace
}  // namespace bdio::workloads
