#include "workloads/join.h"

#include <gtest/gtest.h>

#include "workloads/datagen.h"

namespace bdio::workloads {
namespace {

mrfunc::JobConfig Config() {
  mrfunc::JobConfig config;
  config.num_map_tasks = 4;
  config.num_reduce_tasks = 3;
  return config;
}

TEST(JoinTest, MatchesReferenceJoin) {
  Rng rng(1);
  auto orders = GenOrderRows(&rng, 2000);
  auto users = GenUserRows(&rng, 500);
  auto result = RunJoin(orders, users, Config());
  ASSERT_TRUE(result.ok());
  auto reference = ReferenceJoin(orders, users);
  ASSERT_EQ(result->output.size(), reference.size());
  // Same multiset of joined rows.
  std::multimap<std::string, std::string> got;
  for (const auto& kv : result->output) got.emplace(kv.key, kv.value);
  EXPECT_EQ(got, reference);
}

TEST(JoinTest, InnerJoinDropsUnmatchedOrders) {
  // Orders for uids 0..9 but users only for 0..4.
  std::vector<mrfunc::KeyValue> orders;
  for (int i = 0; i < 10; ++i) {
    orders.push_back(
        {std::to_string(i),
         std::to_string(i) + "|catA|10.00|1|2013-01-01"});
  }
  Rng rng(2);
  auto users = GenUserRows(&rng, 5);
  auto result = RunJoin(orders, users, Config());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 5u);
  for (const auto& kv : result->output) {
    EXPECT_LT(std::stoi(kv.key), 5);
    // Joined row carries both tables' fields.
    EXPECT_NE(kv.value.find("user"), std::string::npos);
    EXPECT_NE(kv.value.find("catA"), std::string::npos);
  }
}

TEST(JoinTest, ManyOrdersPerUser) {
  std::vector<mrfunc::KeyValue> orders;
  for (int i = 0; i < 7; ++i) {
    orders.push_back({"x", "3|catB|5.00|2|2013-02-02"});
  }
  Rng rng(3);
  auto users = GenUserRows(&rng, 4);
  auto result = RunJoin(orders, users, Config());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->output.size(), 7u);  // one per order
}

TEST(JoinTest, ShuffleCarriesBothTables) {
  Rng rng(4);
  auto orders = GenOrderRows(&rng, 5000);
  auto users = GenUserRows(&rng, 1000);
  auto result = RunJoin(orders, users, Config());
  ASSERT_TRUE(result.ok());
  // A repartition join shuffles ~everything: map output ~ input.
  EXPECT_GT(result->stats.map_output_bytes,
            result->stats.map_input_bytes * 8 / 10);
}

TEST(JoinTest, MalformedRowsIgnored) {
  std::vector<mrfunc::KeyValue> orders{{"O", ""}, {"Z", "1|x"}};
  std::vector<mrfunc::KeyValue> users;
  auto result = RunJoin(orders, users, Config());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->output.empty());
}

}  // namespace
}  // namespace bdio::workloads
