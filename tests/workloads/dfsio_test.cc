#include "workloads/dfsio.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace bdio::workloads {
namespace {

class DfsioTest : public ::testing::Test {
 protected:
  DfsioTest() {
    cluster::ClusterParams cp;
    cp.num_workers = 4;
    cp.node.memory_bytes = GiB(1);
    cp.node.daemon_bytes = MiB(128);
    cp.node.per_slot_heap_bytes = MiB(8);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, cp, 8, Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
  }

  Result<DfsioResult> Run(const DfsioSpec& spec) {
    Result<DfsioResult> result = Status::Internal("not run");
    RunDfsio(cluster_.get(), dfs_.get(), spec,
             [&](Result<DfsioResult> r) { result = std::move(r); });
    sim_.Run();
    return result;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
};

TEST_F(DfsioTest, WriteAndReadPhasesComplete) {
  DfsioSpec spec;
  spec.num_files = 8;
  spec.file_bytes = MiB(32);
  auto result = Run(spec);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->write_seconds, 0);
  EXPECT_GT(result->read_seconds, 0);
  EXPECT_GT(result->write_mb_s, 0);
  EXPECT_GT(result->read_mb_s, 0);
  // All files exist with the right size.
  EXPECT_EQ(dfs_->name_node()->List("/benchmarks/").size(), 8u);
  EXPECT_EQ(dfs_->name_node()->total_bytes(), 8 * MiB(32));
}

TEST_F(DfsioTest, ReadsFasterThanTripleReplicatedWrites) {
  DfsioSpec spec;
  spec.num_files = 8;
  spec.file_bytes = MiB(32);
  spec.replication = 3;
  auto result = Run(spec);
  ASSERT_TRUE(result.ok());
  // Writes move 3x the data (replication) and cross the network twice.
  EXPECT_GT(result->read_mb_s, result->write_mb_s);
}

TEST_F(DfsioTest, WriteOnlyMode) {
  DfsioSpec spec;
  spec.num_files = 4;
  spec.file_bytes = MiB(16);
  spec.run_read_phase = false;
  auto result = Run(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->write_seconds, 0);
  EXPECT_EQ(result->read_seconds, 0);
  // Durable: all data flushed to the HDFS disks (3 replicas).
  uint64_t written = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    for (uint32_t d = 0; d < 3; ++d) {
      written += cluster_->node(n)->hdfs_disk(d)->Stats().sectors[1];
    }
  }
  EXPECT_EQ(written * kSectorSize, 3 * 4 * MiB(16));
}

TEST_F(DfsioTest, RemoteReadersUseNetwork) {
  DfsioSpec spec;
  spec.num_files = 4;
  spec.file_bytes = MiB(16);
  spec.replication = 1;  // single replica: remote readers must cross wire
  spec.remote_readers = true;
  const uint64_t net_before = cluster_->network()->total_bytes();
  auto result = Run(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(cluster_->network()->total_bytes() - net_before,
            4 * MiB(16));  // every byte read remotely
}

TEST_F(DfsioTest, RejectsEmptySpec) {
  DfsioSpec spec;
  spec.num_files = 0;
  auto result = Run(spec);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(DfsioTest, MoreFilesMoreAggregateThroughput) {
  DfsioSpec one;
  one.num_files = 1;
  one.file_bytes = MiB(64);
  one.run_read_phase = false;
  auto r1 = Run(one);
  ASSERT_TRUE(r1.ok());

  DfsioSpec many = one;
  many.path_prefix = "/benchmarks2";
  many.num_files = 8;
  auto r8 = Run(many);
  ASSERT_TRUE(r8.ok());
  // Parallel writers engage more disks and NICs.
  EXPECT_GT(r8->write_mb_s, r1->write_mb_s * 2);
}

}  // namespace
}  // namespace bdio::workloads
