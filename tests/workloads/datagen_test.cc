#include "workloads/datagen.h"

#include <gtest/gtest.h>

#include <map>

#include "compress/codec.h"
#include "mrfunc/local_runner.h"

namespace bdio::workloads {
namespace {

TEST(DatagenTest, TeraSortRecordShape) {
  Rng rng(1);
  auto records = GenTeraSortRecords(&rng, 1000);
  ASSERT_EQ(records.size(), 1000u);
  for (const auto& kv : records) {
    EXPECT_EQ(kv.key.size(), 10u);
    EXPECT_EQ(kv.value.size(), 90u);
  }
  // Keys are diverse.
  std::map<std::string, int> keys;
  for (const auto& kv : records) ++keys[kv.key];
  EXPECT_GT(keys.size(), 990u);
}

TEST(DatagenTest, TeraSortPayloadCompressesLikeText) {
  Rng rng(2);
  auto records = GenTeraSortRecords(&rng, 2000);
  std::string blob = mrfunc::SerializeRecords(records);
  compress::FastLzCodec codec;
  const double frac = compress::CompressedFraction(codec, blob);
  EXPECT_LT(frac, 0.7);
  EXPECT_GT(frac, 0.2);
}

TEST(DatagenTest, OrderRowsParseable) {
  Rng rng(3);
  auto rows = GenOrderRows(&rng, 1000, 8);
  std::map<std::string, int> cats;
  for (const auto& kv : rows) {
    // uid|catX|price|qty|date
    int bars = 0;
    for (char c : kv.value) bars += c == '|';
    EXPECT_EQ(bars, 4) << kv.value;
    const size_t p1 = kv.value.find('|');
    const size_t p2 = kv.value.find('|', p1 + 1);
    ++cats[kv.value.substr(p1 + 1, p2 - p1 - 1)];
  }
  EXPECT_LE(cats.size(), 8u);
  EXPECT_GE(cats.size(), 4u);
  // Zipf: most popular category well above the median one.
  std::vector<int> counts;
  for (auto& [c, n] : cats) counts.push_back(n);
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts.front(), 2 * counts.back());
}

TEST(DatagenTest, PointsHaveRequestedDims) {
  Rng rng(4);
  auto points = GenPoints(&rng, 200, 4, 7);
  for (const auto& kv : points) {
    int commas = 0;
    for (char c : kv.value) commas += c == ',';
    EXPECT_EQ(commas, 6);
  }
}

TEST(DatagenTest, WebGraphPowerLawish) {
  Rng rng(5);
  auto graph = GenWebGraph(&rng, 5000, 6.0);
  ASSERT_EQ(graph.size(), 5000u);
  // In-degree distribution: count occurrences of each target.
  std::map<std::string, int> in_degree;
  uint64_t edges = 0;
  for (const auto& kv : graph) {
    size_t start = 0;
    while (start < kv.value.size()) {
      size_t end = kv.value.find(' ', start);
      if (end == std::string::npos) end = kv.value.size();
      if (end > start) {
        ++in_degree[kv.value.substr(start, end - start)];
        ++edges;
      }
      start = end + 1;
    }
  }
  EXPECT_NEAR(static_cast<double>(edges) / 5000.0, 6.0, 1.5);
  // Preferential attachment: the max in-degree is far above the mean.
  int max_in = 0;
  for (auto& [n, d] : in_degree) max_in = std::max(max_in, d);
  EXPECT_GT(max_in, 50);
}

TEST(DatagenTest, Deterministic) {
  Rng a(7), b(7);
  auto r1 = GenTeraSortRecords(&a, 100);
  auto r2 = GenTeraSortRecords(&b, 100);
  EXPECT_EQ(r1, r2);
}

TEST(DatagenTest, DatasetBytesMatchesSerializedSize) {
  Rng rng(8);
  auto rows = GenOrderRows(&rng, 100);
  EXPECT_EQ(DatasetBytes(rows), mrfunc::SerializeRecords(rows).size());
}

}  // namespace
}  // namespace bdio::workloads
