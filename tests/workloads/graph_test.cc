// Functional graph algorithms (workloads/graph.h) against independent
// reference implementations: MR SSSP vs plain BFS, MR label propagation vs
// union-find, MR wedge-closure triangle counting vs brute force — all on
// the preferential-attachment generator and on small hand-built graphs.

#include "workloads/graph.h"

#include <gtest/gtest.h>

#include <map>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "workloads/datagen.h"
#include "workloads/graph_profile.h"

namespace bdio::workloads {
namespace {

mrfunc::JobConfig SmallConfig() {
  mrfunc::JobConfig config;
  config.num_map_tasks = 3;
  config.num_reduce_tasks = 3;
  config.sort_buffer_bytes = KiB(256);
  return config;
}

/// Undirected adjacency sets from directed "key -> succ1 succ2 ..." records
/// (self-loops dropped) — the same symmetrization the prepare job performs.
std::map<std::string, std::set<std::string>> Symmetrize(
    const std::vector<mrfunc::KeyValue>& graph) {
  std::map<std::string, std::set<std::string>> adj;
  for (const mrfunc::KeyValue& record : graph) {
    adj[record.key];  // Isolated nodes survive.
    size_t pos = 0;
    while (pos < record.value.size()) {
      size_t end = record.value.find(' ', pos);
      if (end == std::string::npos) end = record.value.size();
      const std::string neighbor = record.value.substr(pos, end - pos);
      if (!neighbor.empty() && neighbor != record.key) {
        adj[record.key].insert(neighbor);
        adj[neighbor].insert(record.key);
      }
      pos = end + 1;
    }
  }
  return adj;
}

std::map<std::string, uint64_t> ReferenceBfs(
    const std::map<std::string, std::set<std::string>>& adj,
    const std::string& source) {
  std::map<std::string, uint64_t> dist;
  for (const auto& [node, neighbors] : adj) dist[node] = kInfDist;
  dist[source] = 0;
  std::queue<std::string> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const std::string u = frontier.front();
    frontier.pop();
    for (const std::string& v : adj.at(u)) {
      if (dist[v] == kInfDist) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

uint64_t ReferenceTriangles(
    const std::map<std::string, std::set<std::string>>& adj) {
  uint64_t triangles = 0;
  for (const auto& [u, neighbors] : adj) {
    for (const std::string& v : neighbors) {
      if (!NumericLess(u, v)) continue;
      for (const std::string& w : neighbors) {
        if (!NumericLess(v, w)) continue;
        if (adj.at(v).count(w) > 0) ++triangles;
      }
    }
  }
  return triangles;
}

std::vector<mrfunc::KeyValue> TestGraph() {
  Rng rng(7);
  return GenWebGraph(&rng, 200, /*avg_out_degree=*/4.0);
}

TEST(NumericLessTest, OrdersDecimalStringsNumerically) {
  EXPECT_TRUE(NumericLess("9", "10"));
  EXPECT_FALSE(NumericLess("10", "9"));
  EXPECT_TRUE(NumericLess("2", "100"));
  EXPECT_FALSE(NumericLess("5", "5"));
  EXPECT_TRUE(NumericLess("99", "100"));
}

TEST(GraphStateTest, SsspStateMarksOnlyTheSource) {
  const std::vector<mrfunc::KeyValue> adjacency = {
      {"0", "1 2"}, {"1", "0"}, {"2", "0"}};
  const auto state = MakeSsspState(adjacency, "0");
  ASSERT_EQ(state.size(), 3u);
  EXPECT_EQ(state[0].value, "0|1|1 2");      // Source: dist 0, in frontier.
  EXPECT_EQ(state[1].value, "INF|0|0");      // Unreached.
  EXPECT_EQ(state[2].value, "INF|0|0");
}

TEST(GraphStateTest, CcStateLabelsEveryNodeWithItself) {
  const std::vector<mrfunc::KeyValue> adjacency = {{"4", "7"}, {"7", "4"}};
  const auto state = MakeCcState(adjacency);
  ASSERT_EQ(state.size(), 2u);
  EXPECT_EQ(state[0].value, "4|1|7");
  EXPECT_EQ(state[1].value, "7|1|4");
}

TEST(GraphSsspTest, MatchesReferenceBfsOnWebGraph) {
  const auto graph = TestGraph();
  const auto result = RunSssp(graph, "0", SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SsspResult& sssp = result.value();

  const auto reference = ReferenceBfs(Symmetrize(graph), "0");
  ASSERT_EQ(sssp.distance.size(), reference.size());
  for (const auto& [node, dist] : reference) {
    ASSERT_TRUE(sssp.distance.count(node)) << node;
    EXPECT_EQ(sssp.distance.at(node), dist) << "node " << node;
  }
  uint64_t reference_reached = 0;
  for (const auto& [node, dist] : reference) {
    if (dist != kInfDist) ++reference_reached;
  }
  EXPECT_EQ(sssp.reached, reference_reached);
  // Converged: the last round's frontier is empty.
  ASSERT_FALSE(sssp.round_stats.empty());
  EXPECT_EQ(sssp.round_stats.back().frontier, 0u);
}

TEST(GraphSsspTest, DisconnectedNodesStayUnreached) {
  // 0-1 and an island 5-6.
  const std::vector<mrfunc::KeyValue> graph = {{"0", "1"}, {"5", "6"}};
  const auto result = RunSssp(graph, "0", SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().reached, 2u);
  EXPECT_EQ(result.value().distance.at("5"), kInfDist);
  EXPECT_EQ(result.value().distance.at("6"), kInfDist);
}

TEST(GraphCcTest, MatchesComponentsOnDisconnectedGraph) {
  // Three components: {0,1,2}, {10,11}, {20}.
  const std::vector<mrfunc::KeyValue> graph = {
      {"0", "1 2"}, {"1", "2"}, {"10", "11"}, {"20", ""}};
  const auto result = RunConnectedComponents(graph, SmallConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CcResult& cc = result.value();
  EXPECT_EQ(cc.components, 3u);
  // Every component is labelled by its numerically smallest member.
  EXPECT_EQ(cc.label.at("0"), "0");
  EXPECT_EQ(cc.label.at("1"), "0");
  EXPECT_EQ(cc.label.at("2"), "0");
  EXPECT_EQ(cc.label.at("10"), "10");
  EXPECT_EQ(cc.label.at("11"), "10");
  EXPECT_EQ(cc.label.at("20"), "20");
}

TEST(GraphCcTest, WebGraphIsOneComponent) {
  // Preferential attachment links every new node to an earlier one, so the
  // symmetrized graph is connected.
  const auto result = RunConnectedComponents(TestGraph(), SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().components, 1u);
  for (const auto& [node, label] : result.value().label) {
    EXPECT_EQ(label, "0") << node;
  }
  ASSERT_FALSE(result.value().round_stats.empty());
  EXPECT_EQ(result.value().round_stats.back().frontier, 0u);
}

TEST(GraphTriangleTest, CountsHandBuiltGraphs) {
  // A triangle plus a pendant edge: exactly one triangle.
  const std::vector<mrfunc::KeyValue> one = {
      {"0", "1 2"}, {"1", "2"}, {"2", "3"}};
  auto result = RunTriangleCount(one, SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().triangles, 1u);
  EXPECT_EQ(result.value().closed_wedges, 3u);

  // K4: four triangles.
  const std::vector<mrfunc::KeyValue> k4 = {
      {"0", "1 2 3"}, {"1", "2 3"}, {"2", "3"}};
  result = RunTriangleCount(k4, SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().triangles, 4u);

  // A path has none.
  const std::vector<mrfunc::KeyValue> path = {{"0", "1"}, {"1", "2"}};
  result = RunTriangleCount(path, SmallConfig());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().triangles, 0u);
}

TEST(GraphTriangleTest, MatchesBruteForceOnWebGraph) {
  const auto graph = TestGraph();
  const auto result = RunTriangleCount(graph, SmallConfig());
  ASSERT_TRUE(result.ok());
  const uint64_t reference = ReferenceTriangles(Symmetrize(graph));
  EXPECT_EQ(result.value().triangles, reference);
  EXPECT_GT(reference, 0u);  // PA graphs close wedges around early hubs.
}

TEST(GraphProfileTest, BuildsDagsForEveryWorkload) {
  GraphPlanOptions options;
  options.model_nodes = 128;
  options.scale = 1.0 / 512;
  for (GraphWorkload workload : AllGraphWorkloads()) {
    const GraphDagPlan plan = BuildGraphDag(workload, options);
    EXPECT_EQ(plan.short_name, GraphWorkloadShortName(workload));
    ASSERT_EQ(plan.dag.nodes.size(), 2u);  // Prepare + first round.
    EXPECT_EQ(plan.dag.nodes[0].spec.input_path, plan.dataset_path);
    ASSERT_EQ(plan.dag.nodes[1].deps.size(), 1u);
    EXPECT_EQ(plan.dag.nodes[1].deps[0], 0u);
    EXPECT_TRUE(plan.dag.expire_intermediates);
    if (workload == GraphWorkload::kTriangleCount) {
      EXPECT_EQ(plan.dag.controller, nullptr);  // One-shot, no iteration.
      EXPECT_GT(plan.model_triangles, 0u);
    } else {
      EXPECT_NE(plan.dag.controller, nullptr);
      ASSERT_FALSE(plan.model_rounds.empty());
      EXPECT_EQ(plan.model_rounds.back().frontier, 0u);  // Converged.
    }
  }
}

TEST(GraphProfileTest, PlanningIsDeterministic) {
  GraphPlanOptions options;
  options.model_nodes = 128;
  const GraphDagPlan a = BuildGraphDag(GraphWorkload::kSssp, options);
  const GraphDagPlan b = BuildGraphDag(GraphWorkload::kSssp, options);
  ASSERT_EQ(a.model_rounds.size(), b.model_rounds.size());
  for (size_t r = 0; r < a.model_rounds.size(); ++r) {
    EXPECT_EQ(a.model_rounds[r].frontier, b.model_rounds[r].frontier);
  }
  EXPECT_EQ(a.model_reached, b.model_reached);
  ASSERT_EQ(a.dag.nodes.size(), b.dag.nodes.size());
  EXPECT_DOUBLE_EQ(a.dag.nodes[1].spec.map_output_ratio,
                   b.dag.nodes[1].spec.map_output_ratio);
}

}  // namespace
}  // namespace bdio::workloads
