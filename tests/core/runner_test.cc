#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/runner/sweep_runner.h"
#include "core/runner/thread_pool.h"

namespace bdio::core {
namespace {

using runner::SweepRunner;
using runner::ThreadPool;
using workloads::WorkloadKind;

// ---- ThreadPool --------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count]() { ++count; });
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.Async([i]() { return i * i; }));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(futures[i].get(), i * i);
  // Destructor drains the fire-and-forget queue.
  {
    ThreadPool drain(2);
    for (int i = 0; i < 100; ++i) drain.Submit([&count]() { ++count; });
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SurvivesTaskExceptions) {
  ThreadPool pool(2);
  // Async routes the exception into the future...
  auto bad = pool.Async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // ...and a throwing bare Submit is swallowed without killing a worker.
  pool.Submit([]() { throw std::runtime_error("fire and forget"); });
  // The pool still runs more tasks than it has workers afterwards.
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([&count]() { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, PendingAccountingIsConsistentWhenQuiescent) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.pending_tasks(), 0u);
  EXPECT_EQ(pool.AuditPending(), "");
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(pool.Async([]() {}));
  for (auto& f : futures) f.get();
  // Every future resolved => nothing queued, nothing mid-claim.
  EXPECT_EQ(pool.pending_tasks(), 0u);
  EXPECT_EQ(pool.AuditPending(), "");
}

TEST(ThreadPoolTest, SingleThreadWakeupStress) {
  // The tightest wakeup schedule: one worker that goes back to sleep after
  // every task, with each Submit racing the worker's predicate-check-then-
  // block window. A lost wakeup leaves the task queued forever; the
  // deadline turns that hang into a fast, attributable failure.
  ThreadPool pool(1);
  std::atomic<int> count{0};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  constexpr int kRounds = 3000;
  for (int round = 0; round < kRounds; ++round) {
    auto f = pool.Async([&count]() { ++count; });
    ASSERT_EQ(f.wait_until(deadline), std::future_status::ready)
        << "lost wakeup: worker slept through Submit at round " << round;
    f.get();
  }
  EXPECT_EQ(count.load(), kRounds);
}

TEST(ThreadPoolTest, DefaultParallelismHonorsEnv) {
  ::setenv("BDIO_JOBS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultParallelism(), 3u);
  ::setenv("BDIO_JOBS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1u);
  ::unsetenv("BDIO_JOBS");
  EXPECT_GE(ThreadPool::DefaultParallelism(), 1u);
}

// ---- SweepRunner: the determinism invariant ----------------------------

// Distilled summary of one result, covering every table the benches print.
struct Summary {
  std::string label;
  double duration_s;
  double hdfs_read, hdfs_util, hdfs_await, hdfs_rqsz, hdfs_above90;
  double mr_write, mr_util, mr_await, mr_rqsz;
  double cpu;

  static Summary Of(const ExperimentResult& r) {
    return Summary{r.label,
                   r.duration_s,
                   r.hdfs.read_mbps.Mean(),
                   r.hdfs.util.Mean(),
                   r.hdfs.await_ms.ActiveMean(),
                   r.hdfs.avgrq_sz.ActiveMean(),
                   r.hdfs.util_above_90,
                   r.mr.write_mbps.Mean(),
                   r.mr.util.Mean(),
                   r.mr.await_ms.ActiveMean(),
                   r.mr.avgrq_sz.ActiveMean(),
                   r.cpu_util.Mean()};
  }
};

std::vector<ExperimentSpec> SmallGrid() {
  // 2 workloads x 2 compression levels, tiny scale for test speed.
  std::vector<ExperimentSpec> specs;
  for (WorkloadKind w : {WorkloadKind::kTeraSort, WorkloadKind::kKMeans}) {
    for (bool compress : {false, true}) {
      ExperimentSpec spec;
      spec.workload = w;
      spec.factors.compress_intermediate = compress;
      spec.scale = 1.0 / 512;
      spec.seed = 42 + (compress ? 1 : 0);  // per-spec seed ownership
      specs.push_back(spec);
    }
  }
  return specs;
}

TEST(SweepRunnerTest, ParallelSweepIsBitIdenticalToSerial) {
  const std::vector<ExperimentSpec> specs = SmallGrid();

  SweepRunner serial(1);
  const auto serial_results = serial.Run(specs);
  SweepRunner parallel(4);
  const auto parallel_results = parallel.Run(specs);

  ASSERT_EQ(serial_results.size(), specs.size());
  ASSERT_EQ(parallel_results.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(serial_results[i].ok());
    ASSERT_TRUE(parallel_results[i].ok());
    const Summary a = Summary::Of(*serial_results[i]);
    const Summary b = Summary::Of(*parallel_results[i]);
    EXPECT_EQ(a.label, b.label);
    // Exact equality, not tolerance: the simulations share no state, so
    // scheduling must not perturb a single bit of the output.
    EXPECT_EQ(a.duration_s, b.duration_s) << a.label;
    EXPECT_EQ(a.hdfs_read, b.hdfs_read) << a.label;
    EXPECT_EQ(a.hdfs_util, b.hdfs_util) << a.label;
    EXPECT_EQ(a.hdfs_await, b.hdfs_await) << a.label;
    EXPECT_EQ(a.hdfs_rqsz, b.hdfs_rqsz) << a.label;
    EXPECT_EQ(a.hdfs_above90, b.hdfs_above90) << a.label;
    EXPECT_EQ(a.mr_write, b.mr_write) << a.label;
    EXPECT_EQ(a.mr_util, b.mr_util) << a.label;
    EXPECT_EQ(a.mr_await, b.mr_await) << a.label;
    EXPECT_EQ(a.mr_rqsz, b.mr_rqsz) << a.label;
    EXPECT_EQ(a.cpu, b.cpu) << a.label;
  }
}

TEST(SweepRunnerTest, ResultsComeBackInSubmissionOrder) {
  const std::vector<ExperimentSpec> specs = SmallGrid();
  SweepRunner sweep(4);
  const auto results = sweep.Run(specs);
  ASSERT_EQ(results.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(results[i].ok());
    EXPECT_EQ(results[i]->label, specs[i].factors.Label(specs[i].workload));
  }
}

// ---- GridRunner: memoization + in-flight dedup -------------------------

BenchOptions FastOptions(uint32_t jobs) {
  BenchOptions options;
  options.jobs = jobs;
  options.scale = 1.0 / 1024;
  return options;
}

// A stub executor that counts invocations and is slow enough that a second
// Get reliably lands while the first is still in flight.
GridRunner::RunFn CountingRun(std::atomic<int>* runs) {
  return [runs](const ExperimentSpec& spec) -> Result<ExperimentResult> {
    runs->fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ExperimentResult result;
    result.label = spec.factors.Label(spec.workload);
    result.duration_s = 1.0;
    return result;
  };
}

TEST(GridRunnerTest, ConcurrentGetOnSameKeySimulatesOnce) {
  std::atomic<int> runs{0};
  GridRunner grid(FastOptions(4), CountingRun(&runs));
  const Factors factors;

  std::vector<std::thread> callers;
  std::atomic<int> ok{0};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([&grid, &factors, &ok]() {
      const ExperimentResult& res =
          grid.Get(WorkloadKind::kTeraSort, factors);
      if (res.duration_s == 1.0) ++ok;
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(ok.load(), 4);
  EXPECT_EQ(runs.load(), 1) << "in-flight dedup must collapse same-key Gets";
}

TEST(GridRunnerTest, PrefetchThenGetSimulatesOnceAndCaches) {
  std::atomic<int> runs{0};
  GridRunner grid(FastOptions(2), CountingRun(&runs));
  const Factors factors;

  grid.Prefetch(WorkloadKind::kPageRank, factors);
  grid.Prefetch(WorkloadKind::kPageRank, factors);  // no-op: in flight
  const ExperimentResult& first = grid.Get(WorkloadKind::kPageRank, factors);
  const ExperimentResult& again = grid.Get(WorkloadKind::kPageRank, factors);
  EXPECT_EQ(&first, &again) << "cached result must be reference-stable";
  EXPECT_EQ(runs.load(), 1);

  grid.PrefetchAll({factors});  // 4 workloads; PageRank already cached
  grid.Get(WorkloadKind::kTeraSort, factors);
  EXPECT_EQ(runs.load(), 4);
}

TEST(GridRunnerTest, RealExperimentMatchesDirectRun) {
  BenchOptions options = FastOptions(2);
  GridRunner grid(options);
  const Factors factors;
  const ExperimentResult& via_grid =
      grid.Get(WorkloadKind::kTeraSort, factors);

  auto direct = RunExperiment(options.MakeSpec(WorkloadKind::kTeraSort,
                                               factors));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_grid.label, direct->label);
  EXPECT_EQ(via_grid.duration_s, direct->duration_s);
  EXPECT_EQ(via_grid.hdfs.util.Mean(), direct->hdfs.util.Mean());
}

TEST(BenchOptionsTest, ParsesJobsFlagBothForms) {
  {
    const char* argv[] = {"bench", "--jobs=7"};
    BenchOptions o = BenchOptions::Parse(2, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 7u);
    EXPECT_EQ(o.ResolvedJobs(), 7u);
  }
  {
    const char* argv[] = {"bench", "--jobs", "3"};
    BenchOptions o = BenchOptions::Parse(3, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 3u);
  }
  {
    const char* argv[] = {"bench"};
    BenchOptions o = BenchOptions::Parse(1, const_cast<char**>(argv));
    EXPECT_EQ(o.jobs, 0u);  // auto
    ::setenv("BDIO_JOBS", "5", 1);
    EXPECT_EQ(o.ResolvedJobs(), 5u);
    ::unsetenv("BDIO_JOBS");
    EXPECT_GE(o.ResolvedJobs(), 1u);
  }
}

}  // namespace
}  // namespace bdio::core
