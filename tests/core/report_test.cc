#include "core/report.h"

#include <gtest/gtest.h>

namespace bdio::core {
namespace {

TEST(BenchOptionsTest, ParsesFlags) {
  const char* argv[] = {"bench",        "--scale=256", "--seed=7",
                        "--workers=4",  "--csv",       "--calibrate"};
  BenchOptions o =
      BenchOptions::Parse(6, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 1.0 / 256);
  EXPECT_EQ(o.seed, 7u);
  EXPECT_EQ(o.num_workers, 4u);
  EXPECT_TRUE(o.csv);
  EXPECT_TRUE(o.calibrate);
}

TEST(BenchOptionsTest, AcceptsFractionalScale) {
  const char* argv[] = {"bench", "--scale=0.25"};
  BenchOptions o = BenchOptions::Parse(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 0.25);
}

TEST(BenchOptionsTest, DefaultsSane) {
  const char* argv[] = {"bench"};
  BenchOptions o = BenchOptions::Parse(1, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(o.scale, 1.0 / 128);
  EXPECT_EQ(o.num_workers, 10u);
  EXPECT_FALSE(o.csv);
}

TEST(FactorLevelsTest, PaperContexts) {
  const auto slots = SlotsLevels();
  ASSERT_EQ(slots.size(), 2u);
  EXPECT_EQ(slots[0].slots.label, "1_8");
  EXPECT_EQ(slots[1].slots.label, "2_16");
  EXPECT_TRUE(slots[0].compress_intermediate);  // paper: compressed
  EXPECT_EQ(slots[0].memory_bytes, GiB(16));

  const auto memory = MemoryLevels();
  EXPECT_EQ(memory[0].memory_bytes, GiB(16));
  EXPECT_EQ(memory[1].memory_bytes, GiB(32));
  EXPECT_FALSE(memory[0].compress_intermediate);  // paper: uncompressed

  const auto comp = CompressionLevels();
  EXPECT_FALSE(comp[0].compress_intermediate);
  EXPECT_TRUE(comp[1].compress_intermediate);
  EXPECT_EQ(comp[0].memory_bytes, GiB(32));
}

TEST(SummarizeTest, RatioMetricsUseActiveMean) {
  GroupObservation obs;
  obs.avgrq_sz.Append(0);    // idle interval
  obs.avgrq_sz.Append(800);  // active
  obs.read_mbps.Append(0);
  obs.read_mbps.Append(100);
  EXPECT_DOUBLE_EQ(Summarize(obs, iostat::Metric::kAvgRqSz), 800.0);
  EXPECT_DOUBLE_EQ(Summarize(obs, iostat::Metric::kReadMBps), 50.0);
}

TEST(RoughlyEqualTest, Semantics) {
  EXPECT_TRUE(RoughlyEqual(100, 110, 0.2));
  EXPECT_FALSE(RoughlyEqual(100, 150, 0.2));
  // The floor keeps tiny absolute values from failing on relative noise.
  EXPECT_TRUE(RoughlyEqual(0.01, 0.02, 0.2, 1.0));
  EXPECT_TRUE(RoughlyEqual(0, 0, 0.1));
}

TEST(ShapeCheckTest, CountsFailures) {
  std::vector<ShapeCheck> checks{{"a", true}, {"b", false}, {"c", true}};
  EXPECT_EQ(PrintShapeChecks(checks), 1);
  EXPECT_EQ(PrintShapeChecks({}), 0);
}

}  // namespace
}  // namespace bdio::core
