#include <gtest/gtest.h>

#include "core/experiment.h"

namespace bdio::core {
namespace {

ExperimentSpec FastSpec(workloads::WorkloadKind workload) {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.scale = 1.0 / 512;
  spec.kmeans_iterations = 1;
  spec.pagerank_iterations = 1;
  return spec;
}

TEST(AttributionTest, EverySourceByteIsOnADisk) {
  auto result = RunExperiment(FastSpec(workloads::WorkloadKind::kTeraSort));
  ASSERT_TRUE(result.ok());
  // Attribution must cover all physical traffic: no "unknown" bytes.
  EXPECT_FALSE(result->io_sources.contains("unknown"));
  uint64_t attributed = 0;
  for (const auto& [src, v] : result->io_sources) attributed += v.total();
  EXPECT_GT(attributed, 0u);
}

TEST(AttributionTest, TeraSortSourcesMatchItsStructure) {
  auto result = RunExperiment(FastSpec(workloads::WorkloadKind::kTeraSort));
  ASSERT_TRUE(result.ok());
  const auto& src = result->io_sources;
  // Input read once from disk (cold) — reads only.
  ASSERT_TRUE(src.contains("hdfs-input"));
  EXPECT_GT(src.at("hdfs-input").disk_read_bytes, 0u);
  EXPECT_EQ(src.at("hdfs-input").disk_write_bytes, 0u);
  // Output written, never read back within the job.
  ASSERT_TRUE(src.contains("hdfs-output"));
  EXPECT_GT(src.at("hdfs-output").disk_write_bytes, 0u);
  // Intermediate data shows up as spills (and possibly runs).
  ASSERT_TRUE(src.contains("map-spill"));
  EXPECT_GT(src.at("map-spill").disk_write_bytes, 0u);
}

TEST(AttributionTest, AggregationIsAScan) {
  auto result =
      RunExperiment(FastSpec(workloads::WorkloadKind::kAggregation));
  ASSERT_TRUE(result.ok());
  uint64_t total = 0;
  for (const auto& [s, v] : result->io_sources) total += v.total();
  ASSERT_TRUE(result->io_sources.contains("hdfs-input"));
  EXPECT_GT(result->io_sources.at("hdfs-input").total(),
            total * 9 / 10);
}

TEST(AttributionTest, CpuSeriesTracksBoundedness) {
  auto ts = RunExperiment(FastSpec(workloads::WorkloadKind::kTeraSort));
  auto km = RunExperiment(FastSpec(workloads::WorkloadKind::kKMeans));
  ASSERT_TRUE(ts.ok());
  ASSERT_TRUE(km.ok());
  ASSERT_GT(ts->cpu_util.size(), 0u);
  for (size_t i = 0; i < ts->cpu_util.size(); ++i) {
    EXPECT_GE(ts->cpu_util.at(i), 0.0);
    EXPECT_LE(ts->cpu_util.at(i), 1.0 + 1e-9);
  }
  // K-means burns more CPU per input byte than TeraSort.
  auto cpu_per_byte = [](const ExperimentResult& r) {
    uint64_t input = 0;
    for (const auto& j : r.jobs) input += j.hdfs_read_bytes;
    return r.cpu_util.Mean() * r.duration_s / static_cast<double>(input);
  };
  EXPECT_GT(cpu_per_byte(*km), 3 * cpu_per_byte(*ts));
}

}  // namespace
}  // namespace bdio::core
