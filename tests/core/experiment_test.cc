#include "core/experiment.h"

#include <gtest/gtest.h>

namespace bdio::core {
namespace {

ExperimentSpec FastSpec(workloads::WorkloadKind workload) {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.scale = 1.0 / 512;  // tiny for test speed
  spec.kmeans_iterations = 1;
  spec.pagerank_iterations = 1;
  return spec;
}

TEST(FactorsTest, Labels) {
  Factors f;
  EXPECT_EQ(f.Label(workloads::WorkloadKind::kAggregation),
            "AGG_1_8_16G_off");
  f.slots = mapreduce::SlotConfig::Paper_2_16();
  f.memory_bytes = GiB(32);
  f.compress_intermediate = true;
  EXPECT_EQ(f.Label(workloads::WorkloadKind::kTeraSort), "TS_2_16_32G_on");
}

TEST(RunExperimentTest, RejectsBadScale) {
  ExperimentSpec spec;
  spec.scale = 0;
  EXPECT_TRUE(RunExperiment(spec).status().IsInvalidArgument());
  spec.scale = 2;
  EXPECT_TRUE(RunExperiment(spec).status().IsInvalidArgument());
}

TEST(RunExperimentTest, TeraSortProducesObservations) {
  auto result = RunExperiment(FastSpec(workloads::WorkloadKind::kTeraSort));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->label, "TS_1_8_16G_off");
  EXPECT_GT(result->duration_s, 1.0);
  EXPECT_GT(result->hdfs.read_mbps.Peak(), 0);
  EXPECT_GT(result->mr.write_mbps.Peak(), 0);
  EXPECT_EQ(result->jobs.size(), 1u);
  // Physical invariants.
  for (const auto* obs : {&result->hdfs, &result->mr}) {
    for (size_t i = 0; i < obs->util.size(); ++i) {
      EXPECT_GE(obs->util.at(i), 0);
      EXPECT_LE(obs->util.at(i), 100.0);
      EXPECT_GE(obs->await_ms.at(i), obs->svctm_ms.at(i) - 1e-9);
    }
    EXPECT_GE(obs->util_above_90, obs->util_above_95);
    EXPECT_GE(obs->util_above_95, obs->util_above_99);
  }
}

TEST(RunExperimentTest, DeterministicForSeed) {
  auto a = RunExperiment(FastSpec(workloads::WorkloadKind::kAggregation));
  auto b = RunExperiment(FastSpec(workloads::WorkloadKind::kAggregation));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->duration_s, b->duration_s);
  EXPECT_EQ(a->hdfs.read_mbps.samples(), b->hdfs.read_mbps.samples());
}

TEST(RunExperimentTest, IterativeWorkloadsChainJobs) {
  auto spec = FastSpec(workloads::WorkloadKind::kKMeans);
  spec.kmeans_iterations = 2;
  auto result = RunExperiment(spec);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->jobs.size(), 3u);  // 2 iterations + clustering pass
}

TEST(RunExperimentTest, HdfsPatternLargerThanMr) {
  auto result = RunExperiment(FastSpec(workloads::WorkloadKind::kTeraSort));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->hdfs.avgrq_sz.ActiveMean(),
            result->mr.avgrq_sz.ActiveMean());
  EXPECT_GT(result->mr.await_ms.ActiveMean(),
            result->hdfs.await_ms.ActiveMean());
}

}  // namespace
}  // namespace bdio::core
