#include "sim/latch.h"

#include <gtest/gtest.h>

namespace bdio::sim {
namespace {

TEST(LatchTest, FiresAfterAllArrivals) {
  bool done = false;
  auto latch = Latch::Create(3, [&] { done = true; });
  latch->Arrive();
  latch->Arrive();
  EXPECT_FALSE(done);
  latch->Arrive();
  EXPECT_TRUE(done);
}

TEST(LatchTest, ZeroCountFiresImmediately) {
  bool done = false;
  auto latch = Latch::Create(0, [&] { done = true; });
  EXPECT_TRUE(done);
  EXPECT_TRUE(latch->fired());
}

TEST(LatchTest, ArmCallableCountsDown) {
  bool done = false;
  auto latch = Latch::Create(2, [&] { done = true; });
  auto arm1 = latch->Arm();
  auto arm2 = latch->Arm();
  arm1();
  EXPECT_FALSE(done);
  arm2();
  EXPECT_TRUE(done);
}

TEST(LatchTest, ExtendAddsArrivals) {
  bool done = false;
  auto latch = Latch::Create(1, [&] { done = true; });
  latch->Extend(1);
  latch->Arrive();
  EXPECT_FALSE(done);
  latch->Arrive();
  EXPECT_TRUE(done);
}

TEST(LatchTest, ArmsKeepLatchAlive) {
  bool done = false;
  InlineFn arm;
  {
    auto latch = Latch::Create(1, [&] { done = true; });
    arm = latch->Arm();
  }
  arm();  // latch only referenced by the arm now
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace bdio::sim
