#include "sim/semaphore.h"

#include <gtest/gtest.h>

#include <vector>

namespace bdio::sim {
namespace {

TEST(SemaphoreTest, ImmediateGrantWhenAvailable) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int granted = 0;
  sem.Acquire([&] { ++granted; });
  sem.Acquire([&] { ++granted; });
  sim.Run();
  EXPECT_EQ(granted, 2);
  EXPECT_EQ(sem.available(), 0u);
}

TEST(SemaphoreTest, WaitersQueueInFifoOrder) {
  Simulator sim;
  Semaphore sem(&sim, 1);
  std::vector<int> order;
  sem.Acquire([&] { order.push_back(0); });
  sem.Acquire([&] { order.push_back(1); });
  sem.Acquire([&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0}));
  EXPECT_EQ(sem.waiters(), 2u);
  sem.Release();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  sem.Release();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SemaphoreTest, ReleaseWithoutWaitersRestoresTokens) {
  Simulator sim;
  Semaphore sem(&sim, 3);
  sem.Acquire([] {});
  sim.Run();
  sem.Release();
  EXPECT_EQ(sem.available(), 3u);
}

TEST(SemaphoreTest, PipelinedAcquireRelease) {
  Simulator sim;
  Semaphore sem(&sim, 2);
  int completed = 0;
  // Each holder keeps the token for 1 s; 6 tasks with 2 tokens => 3 waves.
  for (int i = 0; i < 6; ++i) {
    sem.Acquire([&] {
      sim.ScheduleAfter(Seconds(1), [&] {
        ++completed;
        sem.Release();
      });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(sim.Now(), TimeAt(Seconds(3)));
  EXPECT_EQ(sem.available(), 2u);
}

}  // namespace
}  // namespace bdio::sim
