#include "sim/calendar_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "common/inline_fn.h"
#include "common/random.h"
#include "sim/event_pool.h"
#include "sim/simulator.h"

namespace bdio::sim {
namespace {

/// Reference ordering: the exact (time, seq) total order the simulator
/// promises. Any correct priority queue must pop in this sequence.
struct RefCmp {
  bool operator()(const std::pair<SimTime, uint64_t>& a,
                  const std::pair<SimTime, uint64_t>& b) const {
    return a > b;  // min-queue
  }
};
using RefQueue =
    std::priority_queue<std::pair<SimTime, uint64_t>,
                        std::vector<std::pair<SimTime, uint64_t>>, RefCmp>;

class CalendarQueueTest : public ::testing::Test {
 protected:
  EventNode* Node(SimTime t) {
    EventNode* n = pool_.Alloc();
    n->time = t;
    n->seq = next_seq_++;
    return n;
  }

  EventPool pool_;
  uint64_t next_seq_ = 0;
};

TEST_F(CalendarQueueTest, PopsInTimeOrder) {
  CalendarQueue q;
  q.Push(Node(TimeAt(Millis(5))));
  q.Push(Node(TimeAt(Millis(1))));
  q.Push(Node(TimeAt(Millis(3))));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.PopMin()->time, TimeAt(Millis(1)));
  EXPECT_EQ(q.PopMin()->time, TimeAt(Millis(3)));
  EXPECT_EQ(q.PopMin()->time, TimeAt(Millis(5)));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.PopMin(), nullptr);
}

TEST_F(CalendarQueueTest, SameTimestampBreaksTiesBySeq) {
  CalendarQueue q;
  // All in one bucket, inserted out of heap order.
  std::vector<EventNode*> nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(Node(TimeAt(Millis(7))));
  // Push in a scrambled order; pops must still follow insertion seq.
  for (int i : {5, 0, 12, 3, 15, 8, 1, 9, 2, 14, 6, 11, 4, 13, 10, 7}) {
    q.Push(nodes[i]);
  }
  for (uint64_t want = 0; want < 16; ++want) {
    EventNode* n = q.PopMin();
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->seq, want);
    pool_.Free(n);
  }
}

TEST_F(CalendarQueueTest, MatchesReferenceHeapOnRandomSchedules) {
  // Randomized workloads with interleaved push/pop, across several seeds
  // and time scales (nanosecond-dense through multi-second-sparse) so both
  // the dense fast path and the sparse fallback sweep get exercised.
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (uint64_t span : {uint64_t{1000}, Millis(1).ns(), Seconds(2).ns()}) {
      CalendarQueue q;
      RefQueue ref;
      EventPool pool;
      Rng rng(seed);
      uint64_t seq = 0;
      SimTime now;
      for (int round = 0; round < 2000; ++round) {
        // Bursty arrivals: sometimes push a clump, sometimes drain a bit.
        const uint64_t pushes = rng.Uniform(4);
        for (uint64_t i = 0; i < pushes; ++i) {
          EventNode* n = pool.Alloc();
          n->time = now + SimDuration(rng.Uniform(span));
          n->seq = seq++;
          ref.emplace(n->time, n->seq);
          q.Push(n);
        }
        const uint64_t pops = rng.Uniform(4);
        for (uint64_t i = 0; i < pops && !ref.empty(); ++i) {
          EventNode* n = q.PopMin();
          ASSERT_NE(n, nullptr);
          EXPECT_EQ(n->time, ref.top().first);
          EXPECT_EQ(n->seq, ref.top().second);
          now = n->time;  // simulated clock only moves forward
          ref.pop();
          pool.Free(n);
        }
        ASSERT_EQ(q.size(), ref.size());
      }
      while (!ref.empty()) {
        EventNode* n = q.PopMin();
        ASSERT_NE(n, nullptr);
        EXPECT_EQ(n->time, ref.top().first);
        EXPECT_EQ(n->seq, ref.top().second);
        ref.pop();
        pool.Free(n);
      }
      EXPECT_TRUE(q.empty());
    }
  }
}

TEST_F(CalendarQueueTest, SurvivesResizeCrossings) {
  // Push far past the grow threshold, then drain past the shrink
  // threshold, checking order the whole way.
  CalendarQueue q;
  Rng rng(9);
  const int n = 20000;  // >> initial 16 buckets * 2
  for (int i = 0; i < n; ++i) q.Push(Node(SimTime(rng.Uniform(Seconds(1).ns()))));
  const size_t grown = q.bucket_count();
  EXPECT_GT(grown, 16u);
  SimTime prev;
  uint64_t prev_seq = 0;
  for (int i = 0; i < n; ++i) {
    EventNode* node = q.PopMin();
    ASSERT_NE(node, nullptr);
    EXPECT_TRUE(node->time > prev ||
                (node->time == prev && node->seq > prev_seq) || i == 0);
    prev = node->time;
    prev_seq = node->seq;
    pool_.Free(node);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LT(q.bucket_count(), grown);  // shrank back down while draining
}

TEST_F(CalendarQueueTest, DistantThenNearEventsBothFound) {
  // An event a simulated hour out (far beyond one bucket rotation) must be
  // found via the sparse sweep; a near event pushed later (epoch rewind)
  // must still pop first.
  CalendarQueue q;
  q.Push(Node(TimeAt(Seconds(3600))));
  EXPECT_EQ(q.PeekMin()->time, TimeAt(Seconds(3600)));
  q.Push(Node(TimeAt(Millis(1))));
  EXPECT_EQ(q.PopMin()->time, TimeAt(Millis(1)));
  EXPECT_EQ(q.PopMin()->time, TimeAt(Seconds(3600)));
}

TEST(SimulatorQueueTest, RunUntilWithDrainedQueueAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(Millis(1), [&] { ++fired; });
  sim.RunUntil(TimeAt(Millis(10)));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), TimeAt(Millis(10)));  // clock reaches t even after drain
  EXPECT_EQ(sim.pending(), 0u);
  // RunUntil at or before Now() is a no-op.
  sim.RunUntil(TimeAt(Millis(5)));
  EXPECT_EQ(sim.Now(), TimeAt(Millis(10)));
}

TEST(SimulatorQueueTest, PoolRecyclesNodesAcrossSelfScheduling) {
  // A self-rescheduling chain reuses the node freed before each invoke:
  // capacity must stay at one block no matter how many events run.
  Simulator sim;
  int hops = 0;
  std::function<void()> chain = [&] {
    if (++hops < 10000) sim.ScheduleAfter(kNanosecond, chain);
  };
  sim.ScheduleAfter(SimDuration{}, chain);
  sim.Run();
  EXPECT_EQ(hops, 10000);
  EXPECT_EQ(sim.events_processed(), 10000u);
}

// ---------------------------------------------------------------------------
// InlineFn

struct DtorCounter {
  explicit DtorCounter(int* c) : count(c) {}
  DtorCounter(DtorCounter&& o) noexcept : count(o.count) { o.count = nullptr; }
  DtorCounter(const DtorCounter& o) = default;
  ~DtorCounter() {
    if (count != nullptr) ++*count;
  }
  void operator()() {}
  int* count;
};

TEST(InlineFnTest, EmptyAndBoolAndNullptr) {
  InlineFn f;
  EXPECT_FALSE(f);
  InlineFn g = nullptr;
  EXPECT_FALSE(g);
  g = [] {};
  EXPECT_TRUE(g);
  g = nullptr;
  EXPECT_FALSE(g);
}

TEST(InlineFnTest, MoveTransfersOwnershipAndEmptiesSource) {
  int calls = 0;
  InlineFn a = [&] { ++calls; };
  InlineFn b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): testing moved-from
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(calls, 1);
  InlineFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFnTest, DestroysCaptureExactlyOnce) {
  int dtors = 0;
  {
    InlineFn f{DtorCounter(&dtors)};
    InlineFn g = std::move(f);  // relocation must not double-destroy
    g();
  }
  EXPECT_EQ(dtors, 1);
}

TEST(InlineFnTest, HeapFallbackForOversizedCaptures) {
  // A capture bigger than the inline buffer still works (heap path).
  struct Big {
    char blob[InlineFn::kInlineSize * 2] = {};
    int* out;
  };
  int result = 0;
  Big big;
  big.out = &result;
  big.blob[0] = 42;
  InlineFn f = [big] { *big.out = big.blob[0]; };
  static_assert(sizeof(Big) > InlineFn::kInlineSize);
  InlineFn g = std::move(f);
  g();
  EXPECT_EQ(result, 42);
}

TEST(InlineFnTest, SharedPtrCapturesReleaseOnDestruction) {
  auto token = std::make_shared<int>(5);
  std::weak_ptr<int> weak = token;
  {
    InlineFn f = [token] { (void)*token; };
    token.reset();
    EXPECT_FALSE(weak.expired());  // closure keeps it alive
    f();
  }
  EXPECT_TRUE(weak.expired());  // destroyed with the closure
}

TEST(InlineFnTest, WrappingEmptyNullableCallableYieldsEmpty) {
  // Mirrors std::function: an empty std::function or null function pointer
  // wraps to an empty InlineFn instead of a live wrapper that would throw.
  std::function<void()> empty;
  InlineFn f = std::move(empty);
  EXPECT_FALSE(f);
  void (*fp)() = nullptr;
  InlineFn g = fp;
  EXPECT_FALSE(g);
}

TEST(InlineFnTest, StdFunctionConvertsWithoutSlicing) {
  int calls = 0;
  std::function<void()> sf = [&] { ++calls; };
  InlineFn f = sf;  // copyable callable, by-value capture
  f();
  sf();
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace bdio::sim
