#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace bdio::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime{});
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(TimeAt(Seconds(3)), [&] { order.push_back(3); });
  sim.ScheduleAt(TimeAt(Seconds(1)), [&] { order.push_back(1); });
  sim.ScheduleAt(TimeAt(Seconds(2)), [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), TimeAt(Seconds(3)));
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleAt(TimeAt(Seconds(1)), [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, CallbacksCanScheduleMore) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) sim.ScheduleAfter(Millis(10), chain);
  };
  sim.ScheduleAfter(SimDuration{}, chain);
  sim.Run();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), TimeAt(Millis(40)));
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleAt(TimeAt(Seconds(1)), [&] { ++ran; });
  sim.ScheduleAt(TimeAt(Seconds(10)), [&] { ++ran; });
  sim.RunUntil(TimeAt(Seconds(5)));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), TimeAt(Seconds(5)));
  EXPECT_EQ(sim.pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(SimulatorTest, SameTimeScheduleFromCallbackRuns) {
  Simulator sim;
  bool inner = false;
  sim.ScheduleAt(TimeAt(Seconds(1)), [&] {
    sim.ScheduleAt(sim.Now(), [&] { inner = true; });
  });
  sim.Run();
  EXPECT_TRUE(inner);
}

TEST(SimulatorTest, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(Nanos(static_cast<uint64_t>(i)), [] {});
  sim.Run();
  EXPECT_EQ(sim.events_processed(), 7u);
}

}  // namespace
}  // namespace bdio::sim
