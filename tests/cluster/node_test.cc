#include "cluster/node.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "sim/simulator.h"

namespace bdio::cluster {
namespace {

TEST(NodeParamsTest, CacheBytesSubtractsDaemonsAndHeaps) {
  NodeParams p;
  p.memory_bytes = GiB(16);
  p.daemon_bytes = GiB(2);
  p.per_slot_heap_bytes = MiB(200);
  // 16 slots: 16G - 2G - 3.125G = ~10.875G.
  EXPECT_EQ(p.CacheBytes(16), GiB(16) - GiB(2) - 16 * MiB(200));
}

TEST(NodeParamsTest, CacheBytesHasFloor) {
  NodeParams p;
  p.memory_bytes = GiB(2);
  p.daemon_bytes = GiB(2);
  EXPECT_EQ(p.CacheBytes(8), p.min_cache_bytes);
}

TEST(NodeParamsTest, MoreMemoryMeansMoreCache) {
  NodeParams p16, p32;
  p16.memory_bytes = GiB(16);
  p32.memory_bytes = GiB(32);
  EXPECT_EQ(p32.CacheBytes(16) - p16.CacheBytes(16), GiB(16));
}

TEST(NodeTest, BuildsPaperTestbedLayout) {
  sim::Simulator sim;
  NodeParams p;
  Node node(&sim, 3, p, /*total_slots=*/16, Rng(1));
  EXPECT_EQ(node.id(), 3u);
  EXPECT_EQ(node.num_hdfs_disks(), 3u);
  EXPECT_EQ(node.num_mr_disks(), 3u);
  EXPECT_EQ(node.cpu()->cores(), 12u);
  EXPECT_NE(node.hdfs_disk(0), nullptr);
  EXPECT_NE(node.mr_fs(2), nullptr);
  // Device names identify node and class.
  EXPECT_EQ(node.hdfs_disk(1)->name(), "n3-hdfs1");
  EXPECT_EQ(node.mr_disk(0)->name(), "n3-mr0");
}

TEST(NodeTest, RoundRobinPlacement) {
  sim::Simulator sim;
  Node node(&sim, 0, NodeParams{}, 16, Rng(1));
  os::FileSystem* first = node.NextHdfsFs();
  os::FileSystem* second = node.NextHdfsFs();
  os::FileSystem* third = node.NextHdfsFs();
  os::FileSystem* fourth = node.NextHdfsFs();
  EXPECT_NE(first, second);
  EXPECT_NE(second, third);
  EXPECT_EQ(first, fourth);  // wraps around 3 disks
}

TEST(ClusterTest, BuildsWorkers) {
  sim::Simulator sim;
  ClusterParams cp;
  cp.num_workers = 4;
  Cluster cluster(&sim, cp, 16, Rng(1));
  EXPECT_EQ(cluster.num_workers(), 4u);
  EXPECT_EQ(cluster.network()->num_nodes(), 4u);
  EXPECT_NE(cluster.node(3), nullptr);
  EXPECT_EQ(cluster.node(2)->id(), 2u);
}

TEST(ClusterTest, SharedCachePerNode) {
  sim::Simulator sim;
  ClusterParams cp;
  cp.num_workers = 2;
  Cluster cluster(&sim, cp, 16, Rng(1));
  // Both disk classes share the node's page cache.
  EXPECT_EQ(cluster.node(0)->hdfs_fs(0)->cache(),
            cluster.node(0)->mr_fs(0)->cache());
  EXPECT_NE(cluster.node(0)->cache(), cluster.node(1)->cache());
}

}  // namespace
}  // namespace bdio::cluster
