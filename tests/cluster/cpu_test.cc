#include "cluster/cpu.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace bdio::cluster {
namespace {

TEST(CpuSchedulerTest, SingleJobRunsAtFullSpeed) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 4);
  bool done = false;
  cpu.Run(Seconds(2), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ToSeconds(sim.Now()), 2.0, 0.01);
}

TEST(CpuSchedulerTest, FewerJobsThanCoresDontInterfere) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 4);
  int done = 0;
  for (int i = 0; i < 4; ++i) cpu.Run(Seconds(1), [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(ToSeconds(sim.Now()), 1.0, 0.01);
}

TEST(CpuSchedulerTest, OversubscriptionStretchesRuntime) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 2);
  int done = 0;
  // 8 jobs of 1 CPU-second each on 2 cores => 4 seconds total.
  for (int i = 0; i < 8; ++i) cpu.Run(Seconds(1), [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 8);
  EXPECT_NEAR(ToSeconds(sim.Now()), 4.0, 0.05);
}

TEST(CpuSchedulerTest, LateArrivalSharesFairly) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 1);
  double first_done = 0, second_done = 0;
  cpu.Run(Seconds(2), [&] { first_done = ToSeconds(sim.Now()); });
  sim.RunUntil(TimeAt(Seconds(1)));
  cpu.Run(Seconds(2), [&] { second_done = ToSeconds(sim.Now()); });
  sim.Run();
  // First job: 1 s alone + 2 s shared (gets 1 more CPU-s) => done at 3 s.
  EXPECT_NEAR(first_done, 3.0, 0.05);
  // Second: 1 CPU-s left at t=3 running alone => done at 4 s.
  EXPECT_NEAR(second_done, 4.0, 0.05);
}

TEST(CpuSchedulerTest, ZeroWorkCompletesImmediately) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 2);
  bool done = false;
  cpu.Run(SimDuration{}, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_LT(ToSeconds(sim.Now()), 0.001);
}

TEST(CpuSchedulerTest, UtilizationAccounting) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 4);
  cpu.Run(Seconds(4), [] {});  // 1 core busy of 4 for 4 s
  sim.Run();
  EXPECT_NEAR(cpu.cpu_seconds_used(), 4.0, 0.05);
  EXPECT_NEAR(cpu.Utilization(), 0.25, 0.02);
}

TEST(CpuSchedulerTest, ManyWavesComplete) {
  sim::Simulator sim;
  CpuScheduler cpu(&sim, 3);
  int done = 0;
  // Chain: each completion launches another, 30 total.
  std::function<void()> launch = [&] {
    ++done;
    if (done < 30) cpu.Run(Millis(100), launch);
  };
  cpu.Run(Millis(100), launch);
  sim.Run();
  EXPECT_EQ(done, 30);
}

}  // namespace
}  // namespace bdio::cluster
