#include "net/network.h"

#include <gtest/gtest.h>

namespace bdio::net {
namespace {

TEST(NetworkTest, SingleFlowRunsAtLinkRate) {
  sim::Simulator sim;
  Network net(&sim, 4);
  bool done = false;
  const uint64_t bytes = 118'000'000;  // exactly 1 s at link rate
  net.Transfer(0, 1, bytes, [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(ToSeconds(sim.Now()), 1.0, 0.01);
}

TEST(NetworkTest, LoopbackIsNearInstant) {
  sim::Simulator sim;
  Network net(&sim, 2);
  bool done = false;
  net.Transfer(1, 1, GiB(1), [&] { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_LT(sim.Now(), TimeAt(Millis(1)));
}

TEST(NetworkTest, TwoFlowsShareEgressLink) {
  sim::Simulator sim;
  Network net(&sim, 4);
  int done = 0;
  const uint64_t bytes = 59'000'000;  // 0.5 s alone, 1 s when sharing
  net.Transfer(0, 1, bytes, [&] { ++done; });
  net.Transfer(0, 2, bytes, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(ToSeconds(sim.Now()), 1.0, 0.05);
}

TEST(NetworkTest, DisjointPairsDontInterfere) {
  sim::Simulator sim;
  Network net(&sim, 4);
  int done = 0;
  const uint64_t bytes = 118'000'000;
  net.Transfer(0, 1, bytes, [&] { ++done; });
  net.Transfer(2, 3, bytes, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(ToSeconds(sim.Now()), 1.0, 0.05);
}

TEST(NetworkTest, IngressBottleneckShared) {
  sim::Simulator sim;
  Network net(&sim, 4);
  int done = 0;
  const uint64_t bytes = 59'000'000;
  // Two senders into one receiver: receiver NIC is the bottleneck.
  net.Transfer(0, 2, bytes, [&] { ++done; });
  net.Transfer(1, 2, bytes, [&] { ++done; });
  sim.Run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR(ToSeconds(sim.Now()), 1.0, 0.05);
}

TEST(NetworkTest, LateFlowFinishesAfterShare) {
  sim::Simulator sim;
  Network net(&sim, 2);
  std::vector<double> finish(2);
  const uint64_t bytes = 118'000'000;
  net.Transfer(0, 1, bytes, [&] { finish[0] = ToSeconds(sim.Now()); });
  sim.RunUntil(TimeAt(Millis(500)));
  net.Transfer(0, 1, bytes, [&] { finish[1] = ToSeconds(sim.Now()); });
  sim.Run();
  // First flow: 0.5 s alone + ~1 s shared = ~1.5 s total at completion.
  EXPECT_NEAR(finish[0], 1.5, 0.1);
  EXPECT_NEAR(finish[1], 2.0, 0.1);
}

TEST(NetworkTest, StatsAccumulate) {
  sim::Simulator sim;
  Network net(&sim, 3);
  net.Transfer(0, 1, 1000, nullptr);
  net.Transfer(0, 2, 500, nullptr);
  sim.Run();
  EXPECT_EQ(net.node_stats(0).bytes_sent, 1500u);
  EXPECT_EQ(net.node_stats(1).bytes_received, 1000u);
  EXPECT_EQ(net.total_bytes(), 1500u);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(NetworkTest, ManyFlowsAllComplete) {
  sim::Simulator sim;
  Network net(&sim, 8);
  int done = 0;
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (s != d) net.Transfer(s, d, MiB(1), [&] { ++done; });
    }
  }
  sim.Run();
  EXPECT_EQ(done, 56);
}

}  // namespace
}  // namespace bdio::net
