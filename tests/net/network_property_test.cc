// Property sweep of the fair-share network: random flow sets must conserve
// bytes, complete, and respect capacity.

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/network.h"

namespace bdio::net {
namespace {

class NetworkProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NetworkProperty, RandomFlowSetConservesAndCompletes) {
  sim::Simulator sim;
  const uint32_t nodes = 6;
  Network net(&sim, nodes);
  Rng rng(GetParam());

  uint64_t total = 0;
  int completions = 0;
  int launched = 0;
  std::vector<uint64_t> sent(nodes, 0), received(nodes, 0);
  // Random arrivals over ~2 simulated seconds.
  for (int i = 0; i < 60; ++i) {
    const uint32_t src = static_cast<uint32_t>(rng.Uniform(nodes));
    const uint32_t dst = static_cast<uint32_t>(rng.Uniform(nodes));
    const uint64_t bytes = KiB(64) + rng.Uniform(MiB(8));
    const SimTime at = SimTime(rng.Uniform(Seconds(2).ns()));
    total += bytes;
    sent[src] += bytes;
    received[dst] += bytes;
    ++launched;
    sim.ScheduleAt(at, [&net, &completions, src, dst, bytes] {
      net.Transfer(src, dst, bytes, [&completions] { ++completions; });
    });
  }
  sim.Run();

  EXPECT_EQ(completions, launched);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_EQ(net.total_bytes(), total);
  for (uint32_t n = 0; n < nodes; ++n) {
    EXPECT_EQ(net.node_stats(n).bytes_sent, sent[n]);
    EXPECT_EQ(net.node_stats(n).bytes_received, received[n]);
  }
  // Aggregate throughput bounded by the bisection: every byte crossed one
  // egress NIC, so elapsed >= non-loopback bytes / (nodes * link rate).
  uint64_t wire_bytes = 0;
  for (uint32_t n = 0; n < nodes; ++n) wire_bytes += sent[n];
  const double min_seconds = static_cast<double>(wire_bytes) /
                             (nodes * Network::kGigabitPayloadBytesPerSec);
  EXPECT_GE(ToSeconds(sim.Now()) + 2.0, min_seconds);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkProperty,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace bdio::net
