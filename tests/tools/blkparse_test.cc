// bdio-blkparse analyzer coverage: binary round trip, corruption handling,
// and the lifecycle replay's latency/sequentiality arithmetic on a
// hand-built trace with known timings.

#include "bdio_blkparse/blkparse.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/units.h"
#include "obs/blktrace.h"
#include "sim/simulator.h"

namespace bdio::blkparse {
namespace {

using obs::BlkAction;

// Two devices, two classes; one clean read lifecycle on each plus a merge
// and a second request on sda, laid out on a known timeline.
void BuildSession(sim::Simulator* sim, obs::BlktraceSession* session) {
  const uint16_t sda = session->RegisterDevice("sda", "hdfs", 0);
  const uint16_t sdb = session->RegisterDevice("sdb", "mr", 0);
  // t=0: request 1 queued on sda (tag 1, job 2), merged +8 sectors.
  session->Record(sda, BlkAction::kQueue, 0, 1000, 8, 1, 1, 2, 1);
  session->Record(sda, BlkAction::kMerge, 0, 1008, 8, 1, 1, 2, 1);
  sim->ScheduleAfter(Millis(1), [=] {
    // t=1ms: dispatched (wait 1 ms); queue drains to depth 0.
    session->Record(sda, BlkAction::kDispatch, 0, 1000, 16, 1, 1, 2, 0);
  });
  sim->ScheduleAfter(Millis(3), [=] {
    // t=3ms: completed (service 2 ms, await 3 ms).
    session->Record(sda, BlkAction::kComplete, 0, 1000, 16, 1, 1, 2, 0);
    // Request 2: a read, sequential with request 1 (starts at its end).
    session->Record(sda, BlkAction::kQueue, 0, 1016, 8, 2, 1, 2, 1);
  });
  sim->ScheduleAfter(Millis(4), [=] {
    session->Record(sda, BlkAction::kDispatch, 0, 1016, 8, 2, 1, 2, 0);
  });
  sim->ScheduleAfter(Millis(5), [=] {
    session->Record(sda, BlkAction::kComplete, 0, 1016, 8, 2, 1, 2, 0);
    // One write lifecycle on the mr device, unattributed.
    session->Record(sdb, BlkAction::kQueue, 1, 64, 32, 1, 0, 0, 1);
  });
  sim->ScheduleAfter(Millis(6), [=] {
    session->Record(sdb, BlkAction::kDispatch, 1, 64, 32, 1, 0, 0, 0);
  });
  sim->ScheduleAfter(Millis(9), [=] {
    session->Record(sdb, BlkAction::kComplete, 1, 64, 32, 1, 0, 0, 0);
  });
  sim->Run();
}

TEST(BlkparseTest, SerializeParseRoundTrip) {
  sim::Simulator sim;
  obs::BlktraceSession session(&sim);
  BuildSession(&sim, &session);

  const Result<BlktraceFile> parsed = ParseBytes(session.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const BlktraceFile direct = FromSession(session);

  ASSERT_EQ(parsed.value().devices.size(), direct.devices.size());
  for (size_t i = 0; i < direct.devices.size(); ++i) {
    const DeviceTrace& a = parsed.value().devices[i];
    const DeviceTrace& b = direct.devices[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.dev_class, b.dev_class);
    EXPECT_EQ(a.node, b.node);
    EXPECT_EQ(a.dropped, b.dropped);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (size_t r = 0; r < a.records.size(); ++r) {
      EXPECT_EQ(0, std::memcmp(&a.records[r], &b.records[r],
                               sizeof(obs::BlktraceRecord)));
    }
  }
}

TEST(BlkparseTest, RejectsCorruptArtifacts) {
  EXPECT_FALSE(ParseBytes("").ok());
  EXPECT_FALSE(ParseBytes("NOTBLK!!rest").ok());

  sim::Simulator sim;
  obs::BlktraceSession session(&sim);
  BuildSession(&sim, &session);
  const std::string good = session.Serialize();
  ASSERT_TRUE(ParseBytes(good).ok());

  // Truncation anywhere inside the stream is caught.
  EXPECT_FALSE(ParseBytes(good.substr(0, good.size() - 1)).ok());
  EXPECT_FALSE(ParseBytes(good.substr(0, 10)).ok());
  // Trailing garbage is caught.
  EXPECT_FALSE(ParseBytes(good + "x").ok());
  // A record-size mismatch (future format) is caught, not misparsed.
  std::string resized = good;
  resized[8] = 39;
  EXPECT_FALSE(ParseBytes(resized).ok());
}

TEST(BlkparseTest, AnalyzeComputesLatenciesAndScopes) {
  sim::Simulator sim;
  obs::BlktraceSession session(&sim);
  BuildSession(&sim, &session);
  const Report report = Analyze(FromSession(session));

  EXPECT_EQ(report.num_devices, 2u);
  EXPECT_EQ(report.dropped_records, 0u);
  EXPECT_EQ(report.action_totals[0], 3u);  // Q
  EXPECT_EQ(report.action_totals[1], 1u);  // M
  EXPECT_EQ(report.action_totals[2], 3u);  // D
  EXPECT_EQ(report.action_totals[3], 3u);  // C

  ASSERT_EQ(report.classes.count("hdfs"), 1u);
  const ScopeSummary& hdfs = report.classes.at("hdfs");
  EXPECT_EQ(hdfs.requests, 2u);
  EXPECT_EQ(hdfs.read_requests, 2u);
  EXPECT_EQ(hdfs.bios, 3u);  // 2 Q + 1 M
  EXPECT_EQ(hdfs.merged_bios, 1u);
  EXPECT_EQ(hdfs.sectors, 24u);
  EXPECT_DOUBLE_EQ(hdfs.read_fraction, 1.0);
  EXPECT_DOUBLE_EQ(hdfs.avgrq_sectors, 12.0);
  // Request 1: await 3 ms (Q at 0, C at 3), wait 1 ms, service 2 ms.
  // Request 2: await 2 ms (Q at 3, C at 5), wait 1 ms, service 1 ms.
  EXPECT_DOUBLE_EQ(hdfs.await_ms.mean, 2.5);
  EXPECT_DOUBLE_EQ(hdfs.wait_ms.mean, 1.0);
  EXPECT_DOUBLE_EQ(hdfs.service_ms.mean, 1.5);
  // Request 2 dispatched exactly at request 1's end: sequential.
  EXPECT_EQ(hdfs.dispatches, 2u);
  EXPECT_EQ(hdfs.seq_dispatches, 1u);
  EXPECT_DOUBLE_EQ(hdfs.seq_score, 0.5);
  // One Q-to-Q gap on sda: 3 ms.
  EXPECT_EQ(hdfs.interarrival_ms.count, 1u);
  EXPECT_DOUBLE_EQ(hdfs.interarrival_ms.mean, 3.0);

  const ScopeSummary& mr = report.classes.at("mr");
  EXPECT_EQ(mr.requests, 1u);
  EXPECT_EQ(mr.read_requests, 0u);
  EXPECT_DOUBLE_EQ(mr.await_ms.mean, 4.0);
  EXPECT_DOUBLE_EQ(mr.service_ms.mean, 3.0);
  EXPECT_DOUBLE_EQ(mr.seq_score, 0.0);  // a single dispatch has no previous

  // Tag and job scopes: sda traffic is tag 1 / job 2 (printed as job 1),
  // sdb traffic unattributed.
  ASSERT_EQ(report.tags.count(1u), 1u);
  EXPECT_EQ(report.tags.at(1u).requests, 2u);
  EXPECT_EQ(report.tags.at(1u).merged_bios, 1u);
  ASSERT_EQ(report.tags.count(0u), 1u);
  EXPECT_EQ(report.tags.at(0u).requests, 1u);
  ASSERT_EQ(report.jobs.count(2u), 1u);
  EXPECT_EQ(report.jobs.at(2u).sectors, 24u);
}

TEST(BlkparseTest, OrphanedLifecyclesAfterDropsAreSkipped) {
  // Ring of 2: the Q is overwritten by D and C, leaving orphans.
  sim::Simulator sim;
  obs::BlktraceSession session(&sim, /*max_records_per_device=*/2);
  const uint16_t dev = session.RegisterDevice("sda", "hdfs", 0);
  session.Record(dev, BlkAction::kQueue, 0, 0, 8, 1, 0, 0, 1);
  session.Record(dev, BlkAction::kQueue, 0, 512, 8, 2, 0, 0, 2);
  sim.ScheduleAfter(Millis(1), [&] {
    session.Record(dev, BlkAction::kDispatch, 0, 0, 8, 1, 0, 0, 1);
  });
  sim.ScheduleAfter(Millis(2), [&] {
    session.Record(dev, BlkAction::kComplete, 0, 0, 8, 1, 0, 0, 1);
  });
  sim.Run();

  const Report report = Analyze(FromSession(session));
  EXPECT_EQ(report.dropped_records, 2u);
  const ScopeSummary& hdfs = report.classes.at("hdfs");
  // The completion still counts (C records are self-contained) but no
  // latency can be joined for it.
  EXPECT_EQ(hdfs.requests, 1u);
  EXPECT_EQ(hdfs.await_ms.count, 0u);
  EXPECT_EQ(hdfs.service_ms.count, 0u);
}

TEST(BlkparseTest, RendersTextAndSignature) {
  sim::Simulator sim;
  obs::BlktraceSession session(&sim);
  BuildSession(&sim, &session);
  const Report report = Analyze(FromSession(session));

  const std::string text = RenderText(report);
  EXPECT_NE(text.find("device class hdfs:"), std::string::npos);
  EXPECT_NE(text.find("Q=3 M=1 D=3 C=3"), std::string::npos);
  EXPECT_NE(text.find("io tag hdfs-input:"), std::string::npos);
  EXPECT_NE(text.find("job 1:"), std::string::npos);
  EXPECT_NE(text.find("job (unattributed):"), std::string::npos);

  const std::string json = RenderSignatureJson(report);
  EXPECT_NE(json.find("\"schema\":1"), std::string::npos);
  EXPECT_NE(json.find("\"hdfs\":{"), std::string::npos);
  EXPECT_NE(json.find("\"dropped_records\":0"), std::string::npos);
  EXPECT_NE(json.find("\"seq_score\":0.5"), std::string::npos);
}

}  // namespace
}  // namespace bdio::blkparse
