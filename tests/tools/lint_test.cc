// bdio-lint rule engine: each rule against minimal positive and negative
// fixtures, plus the comment/string stripper and the annotation grammar.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bdio_lint/lint.h"

namespace bdio::lint {
namespace {

std::vector<Diagnostic> Lint(const std::string& code, bool in_src = true,
                             const std::string& sibling = {}) {
  FileInput in;
  in.path = in_src ? "src/fixture.cc" : "tests/fixture.cc";
  in.content = code;
  in.sibling = sibling;
  in.in_src = in_src;
  return LintFile(in);
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ---- StripCommentsAndStrings -------------------------------------------

TEST(StripTest, RemovesCommentsAndLiteralsKeepsLines) {
  const std::string in =
      "int a; // rand() here\n"
      "/* srand(1)\n"
      "   more */ int b;\n"
      "const char* s = \"random_device\";\n"
      "char c = '\\'';\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("random_device"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Line structure intact: same newline count at the same offsets.
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in[i] == '\n', out[i] == '\n') << "offset " << i;
  }
}

TEST(StripTest, HandlesRawStrings) {
  const std::string in =
      "auto s = R\"(system_clock \" unbalanced)\";\n"
      "high_resolution_clock x;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("high_resolution_clock"), std::string::npos);
}

// ---- R1: hash-order iteration ------------------------------------------

TEST(R1Test, FlagsRangeForOverUnorderedMap) {
  const auto diags = Lint(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void f() { for (const auto& [k, v] : m) { (void)k; } }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(R1Test, FlagsExplicitIteratorLoop) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "void f() { for (auto it = s.begin(); it != s.end(); ++it) {} }\n");
  EXPECT_GE(CountRule(diags, "R1"), 1u);
}

TEST(R1Test, IgnoresOrderedContainersAndPointLookups) {
  const auto diags = Lint(
      "std::map<int, int> m;\n"
      "std::unordered_map<int, int> u;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : m) { (void)k; }\n"
      "  u.find(3); u.count(4); u[5] = 6;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);
}

TEST(R1Test, SiblingHeaderDeclaresTheMember) {
  const auto diags =
      Lint("void C::f() { for (const auto& kv : index_) { (void)kv; } }\n",
           true, "std::unordered_map<uint64_t, int> index_;\n");
  EXPECT_EQ(CountRule(diags, "R1"), 1u);
}

TEST(R1Test, AnnotationWithJustificationAllows) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive -- summing, order cannot leak\n"
      "void f() { for (int x : s) { (void)x; } }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);
  EXPECT_EQ(CountRule(diags, "A0"), 0u);
}

TEST(R1Test, AnnotationWithoutJustificationIsItselfADiagnostic) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive\n"
      "void f() { for (int x : s) { (void)x; } }\n");
  EXPECT_EQ(CountRule(diags, "A0"), 1u);
}

// ---- R2: wall-clock and unseeded randomness ----------------------------

TEST(R2Test, FlagsBannedSources) {
  const auto diags = Lint(
      "int a = rand();\n"
      "std::random_device rd;\n"
      "auto t = std::chrono::system_clock::now();\n"
      "auto h = std::chrono::high_resolution_clock::now();\n"
      "time_t now = time(nullptr);\n");
  EXPECT_EQ(CountRule(diags, "R2"), 5u);
}

TEST(R2Test, IgnoresLookalikes) {
  const auto diags = Lint(
      "uint64_t start_time(int x);\n"
      "auto t = obj.time();\n"
      "auto u = ptr->rand();\n"
      "auto s = std::chrono::steady_clock::now();\n"
      "int randomize = 3; (void)randomize;\n");
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
}

TEST(R2Test, AllowAnnotationSuppresses) {
  const auto diags = Lint(
      "// bdio-lint: allow(R2) -- wall clock for log decoration only\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
}

// ---- R3: pointer-keyed ordering/hashing --------------------------------

TEST(R3Test, FlagsPointerKeys) {
  const auto diags = Lint(
      "std::map<Node*, int> by_ptr;\n"
      "std::set<const Task*> tasks;\n"
      "std::unordered_map<Foo*, Bar> h;\n"
      "std::hash<void*> hasher;\n");
  EXPECT_EQ(CountRule(diags, "R3"), 4u);
}

TEST(R3Test, IgnoresPointerValuesAndValueKeys) {
  const auto diags = Lint(
      "std::map<uint64_t, Node*> by_id;\n"
      "std::map<std::string, int> names;\n"
      "std::set<std::pair<uint64_t, uint32_t>> pairs;\n");
  EXPECT_EQ(CountRule(diags, "R3"), 0u);
}

// ---- R4: float accumulation in threaded callbacks ----------------------

TEST(R4Test, FlagsFloatAccumulationInPoolCallback) {
  const auto diags = Lint(
      "double total = 0;\n"
      "void f(ThreadPool& pool) {\n"
      "  pool.Submit([&] { total += Compute(); });\n"
      "  pool.Async([&] { total += Compute(); });\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R4"), 2u);
}

TEST(R4Test, IgnoresIntegersAndNonPoolSubmit) {
  const auto diags = Lint(
      "uint64_t count = 0;\n"
      "double total = 0;\n"
      "void f(ThreadPool& pool, BlockDevice& dev) {\n"
      "  pool.Submit([&] { count += 1; });\n"
      "  dev.Submit(req);\n"
      "  total += 1.0;  // single-threaded context\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R4"), 0u);
}

// ---- R5: uninitialized POD members (src/ only) -------------------------

TEST(R5Test, FlagsUninitializedScalarAndPointerMembers) {
  const auto diags = Lint(
      "struct S {\n"
      "  uint64_t bytes;\n"
      "  bool done;\n"
      "  Node* node;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 3u);
}

TEST(R5Test, AcceptsInitializedAndNonPodMembers) {
  const auto diags = Lint(
      "struct S {\n"
      "  uint64_t bytes = 0;\n"
      "  bool done{false};\n"
      "  Node* node = nullptr;\n"
      "  std::string name;\n"
      "  std::vector<int> items;\n"
      "  std::function<void()> cb;\n"
      "  static constexpr int kMax = 4;\n"
      "  uint64_t total() const { return bytes; }\n"
      "  S() = default;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, TemplateMembersWithPointerArgumentsAreNotFlagged) {
  // Class-template instances default-construct; the comma and '*' inside
  // the template arguments must not be misread as extra POD members.
  const auto diags = Lint(
      "struct S {\n"
      "  FlatMultiMap<uint64_t, IoRequest*> by_start;\n"
      "  FlatMultiMap<uint64_t, uint64_t> by_end;\n"
      "  std::map<uint64_t, Unit*> units;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, OnlyAppliesUnderSrc) {
  const auto diags = Lint("struct S { int x; };\n", /*in_src=*/false);
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, NamesOutOfLineNestedStructs) {
  const auto diags = Lint("struct Outer::Inner { int x; };\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1u);
  EXPECT_NE(diags[0].message.find("Outer::Inner"), std::string::npos)
      << diags[0].message;
}

// ---- Diagnostics never fire inside comments or strings -----------------

TEST(LintTest, AnnotationInsideStringLiteralIsIgnored) {
  // Only a real comment can carry an annotation; quoting one in a string
  // (as this very test file does) must neither allow nor diagnose.
  const auto diags =
      Lint("const char* fixture = \"// bdio-lint: order-insensitive\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTest, CommentsAndStringsAreInert) {
  const auto diags = Lint(
      "// rand() time(nullptr) std::unordered_map<int,int> m;\n"
      "const char* doc = \"std::map<Node*, int> and random_device\";\n");
  EXPECT_TRUE(diags.empty());
}

// ---- R6: pooled-object lifetime ----------------------------------------

TEST(R6Test, FlagsUseAfterUnconditionalRelease) {
  const auto diags = Lint(
      "void f() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  pool_.Release(e);\n"
      "  e->Fire();\n"
      "}\n");
  ASSERT_EQ(CountRule(diags, "R6"), 1u);
  EXPECT_EQ(diags[0].line, 4u);
  EXPECT_NE(diags[0].message.find("used after Release"), std::string::npos);
}

TEST(R6Test, UseAfterReleaseReportsOncePerPointer) {
  const auto diags = Lint(
      "void f() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  pool_.Release(e);\n"
      "  e->Fire();\n"
      "  e->Fire();\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 1u);
}

TEST(R6Test, FlagsDoubleRelease) {
  const auto diags = Lint(
      "void f() {\n"
      "  IoRequest* r = req_pool_.Alloc();\n"
      "  req_pool_.Release(r);\n"
      "  req_pool_.Release(r);\n"
      "}\n");
  ASSERT_EQ(CountRule(diags, "R6"), 1u);
  EXPECT_EQ(diags[0].line, 4u);
  EXPECT_NE(diags[0].message.find("released twice"), std::string::npos);
}

TEST(R6Test, FlagsScopeExitWhileStillAllocated) {
  const auto diags = Lint(
      "void f() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  e->deadline = t;\n"
      "}\n");
  ASSERT_EQ(CountRule(diags, "R6"), 1u);
  EXPECT_EQ(diags[0].line, 2u);  // reported at the allocation
  EXPECT_NE(diags[0].message.find("out of scope"), std::string::npos);
}

TEST(R6Test, ReleaseInNestedScopeIsConditionalNotFlagged) {
  // A release inside a branch may or may not run; neither the later use
  // nor the scope exit is certain enough to flag.
  const auto diags = Lint(
      "void f(bool ok) {\n"
      "  Event* e = pool_.Alloc();\n"
      "  if (ok) { pool_.Release(e); return; }\n"
      "  e->Fire();\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 0u);
}

TEST(R6Test, HandOffAsCallArgumentEndsTracking) {
  const auto diags = Lint(
      "void f() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  queue_.Push(e);\n"
      "}\n"
      "Event* g() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  return e;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 0u);
}

TEST(R6Test, ReassignmentDropsTheOldPointer) {
  // After `e = other;` the tracked pool block is no longer reachable via
  // e, so neither the release nor the use refers to the tracked object.
  const auto diags = Lint(
      "void f() {\n"
      "  Event* e = pool_.Alloc();\n"
      "  queue_.Push(e);\n"
      "  e = queue_.Pop();\n"
      "  e->Fire();\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 0u);
}

TEST(R6Test, NonPoolAllocIsNotTracked) {
  const auto diags = Lint(
      "void f() {\n"
      "  Buffer* b = arena_.Alloc();\n"
      "  (void)b;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 0u);
}

TEST(R6Test, AllowAnnotationSuppressesTheLeak) {
  const auto diags = Lint(
      "void f() {\n"
      "  // bdio-lint: allow(R6) -- registry teardown releases it\n"
      "  Event* e = pool_.Alloc();\n"
      "  e->deadline = t;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R6"), 0u);
  EXPECT_EQ(CountRule(diags, "A1"), 0u);  // annotation was used, not stale
}

// ---- R7: unit-suffix safety --------------------------------------------

TEST(R7Test, FlagsCrossFamilyArithmetic) {
  const auto diags = Lint(
      "uint64_t f(uint64_t submit_ms, uint64_t delay_ns) {\n"
      "  return submit_ms + delay_ns;\n"
      "}\n");
  ASSERT_EQ(CountRule(diags, "R7"), 1u);
  EXPECT_EQ(diags[0].line, 2u);
  EXPECT_NE(diags[0].message.find("unit mismatch"), std::string::npos);
}

TEST(R7Test, FlagsCrossFamilyComparisonAndAssignment) {
  const auto diags = Lint(
      "void f(uint64_t total_bytes, uint64_t span_sectors) {\n"
      "  if (total_bytes < span_sectors) { total_bytes = span_sectors; }\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R7"), 2u);
}

TEST(R7Test, SameFamilyAndMemberSuffixesAreFine) {
  // Trailing member underscores strip before classification, so
  // total_bytes_ and chunk_bytes are the same family.
  const auto diags = Lint(
      "void f(uint64_t chunk_bytes) {\n"
      "  total_bytes_ += chunk_bytes;\n"
      "  if (elapsed_ns_ > budget_ns_) { return; }\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R7"), 0u);
}

TEST(R7Test, FlagsLiteralScaleFactors) {
  const auto diags = Lint(
      "uint64_t f(uint64_t timeout_ms, uint64_t len_bytes) {\n"
      "  uint64_t a = timeout_ms * 1000000;\n"
      "  uint64_t b = len_bytes / 512;\n"
      "  return a + b;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R7"), 2u);
}

TEST(R7Test, UnsuffixedLiteralsAndScalingAreFine) {
  const auto diags = Lint(
      "uint64_t f(uint64_t count_ms) {\n"
      "  return count_ms * 2;\n"  // doubling is not a unit conversion
      "}\n");
  EXPECT_EQ(CountRule(diags, "R7"), 0u);
}

TEST(R7Test, UnitsHeaderIsExempt) {
  FileInput in;
  in.path = "src/common/units.h";
  in.content = "constexpr uint64_t M(uint64_t v_ms) { return v_ms * 1000000; }\n";
  in.in_src = true;
  EXPECT_EQ(CountRule(LintFile(in), "R7"), 0u);
}

TEST(R7Test, AllowAnnotationSuppresses) {
  const auto diags = Lint(
      "uint64_t f(uint64_t raw_ms) {\n"
      "  // bdio-lint: allow(R7) -- wire format stores scaled integers\n"
      "  return raw_ms * 1000;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R7"), 0u);
}

// ---- Annotation grammar edge cases -------------------------------------

TEST(AnnotationTest, StaleAllowIsReported) {
  const auto diags = Lint(
      "// bdio-lint: allow(R2) -- nothing clock-related follows\n"
      "int x = 0;\n");
  ASSERT_EQ(CountRule(diags, "A1"), 1u);
  EXPECT_EQ(diags[0].line, 1u);
}

TEST(AnnotationTest, MultipleAnnotationsOnOneLineEachApply) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive -- summing only "
      "bdio-lint: allow(R2) -- log decoration\n"
      "void f() { for (int x : s) { (void)x; } "
      "auto t = std::chrono::system_clock::now(); (void)t; }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
  EXPECT_EQ(CountRule(diags, "A0"), 0u);
  EXPECT_EQ(CountRule(diags, "A1"), 0u);
}

TEST(AnnotationTest, MissingJustificationOnSecondAnnotationIsA0) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive -- summing only "
      "bdio-lint: allow(R2)\n"
      "void f() { for (int x : s) { (void)x; } }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);  // first annotation still works
  EXPECT_EQ(CountRule(diags, "A0"), 1u);  // second lacks a justification
}

TEST(AnnotationTest, JustificationMayContainDoubleDash) {
  // Only the first "--" separates the rule list from the justification.
  const auto diags = Lint(
      "// bdio-lint: allow(R2) -- mirrors the --wall-clock CLI flag\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
  EXPECT_EQ(CountRule(diags, "A0"), 0u);
}

// ---- R8: metric call-site harvesting and schema audit ------------------

MetricsSchema MakeSchema(std::vector<MetricSchemaEntry> entries) {
  MetricsSchema s;
  s.path = "docs/metrics_schema.json";
  s.entries = std::move(entries);
  return s;
}

TEST(R8Test, CollectsCallSitesWithInlineLabels) {
  FileInput in;
  in.path = "src/storage/fixture.cc";
  in.content =
      "void f(obs::MetricsRegistry& m, const std::string& cls) {\n"
      "  m.GetCounter(\"disk.read_bytes\", {{\"class\", cls}})->Add(1);\n"
      "  m.GetHistogram(\"disk.await_ms\", {{\"class\", cls}}, b_)\n"
      "      ->Observe(1.0);\n"
      "}\n";
  in.in_src = true;
  const auto sites = CollectMetricCalls(in);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].kind, "counter");
  EXPECT_EQ(sites[0].name, "disk.read_bytes");
  ASSERT_TRUE(sites[0].labels_known);
  EXPECT_EQ(sites[0].label_keys, std::vector<std::string>{"class"});
  EXPECT_EQ(sites[1].kind, "histogram");
  EXPECT_EQ(sites[1].name, "disk.await_ms");
}

TEST(R8Test, ResolvesLocalLabelsVariable) {
  FileInput in;
  in.path = "src/mr/fixture.cc";
  in.content =
      "void f(obs::MetricsRegistry& m) {\n"
      "  const obs::Labels labels = {{\"job\", name_}};\n"
      "  m.GetGauge(\"mr.job.slots\", labels)->Set(1);\n"
      "}\n";
  in.in_src = true;
  const auto sites = CollectMetricCalls(in);
  ASSERT_EQ(sites.size(), 1u);
  EXPECT_EQ(sites[0].kind, "gauge");
  ASSERT_TRUE(sites[0].labels_known);
  EXPECT_EQ(sites[0].label_keys, std::vector<std::string>{"job"});
}

TEST(R8Test, UnknownMetricNameIsFlagged) {
  FileInput in;
  in.path = "src/fixture.cc";
  in.content = "void f(obs::MetricsRegistry& m) {\n"
               "  m.GetCounter(\"disk.read_byte\")->Add(1);\n"  // typo
               "}\n";
  in.in_src = true;
  const auto schema = MakeSchema(
      {{"disk.read_bytes", "counter", {}, "storage", "doc", 4}});
  const auto diags = CheckMetricsSchema(schema, CollectMetricCalls(in));
  // The typo'd name is unknown AND the real entry has no call site left.
  ASSERT_EQ(CountRule(diags, "R8"), 2u);
  EXPECT_NE(diags[0].message.find("unknown metric"), std::string::npos);
}

TEST(R8Test, KindMismatchIsFlagged) {
  FileInput in;
  in.path = "src/fixture.cc";
  in.content = "void f(obs::MetricsRegistry& m) {\n"
               "  m.GetGauge(\"disk.requests\")->Set(1);\n"
               "}\n";
  in.in_src = true;
  const auto schema = MakeSchema(
      {{"disk.requests", "counter", {}, "storage", "doc", 4}});
  const auto diags = CheckMetricsSchema(schema, CollectMetricCalls(in));
  ASSERT_EQ(CountRule(diags, "R8"), 1u);
  EXPECT_NE(diags[0].message.find("fetched as a gauge"), std::string::npos);
}

TEST(R8Test, LabelKeyMismatchIsFlagged) {
  FileInput in;
  in.path = "src/fixture.cc";
  in.content =
      "void f(obs::MetricsRegistry& m) {\n"
      "  m.GetCounter(\"disk.requests\", {{\"device\", d_}})->Add(1);\n"
      "}\n";
  in.in_src = true;
  const auto schema = MakeSchema(
      {{"disk.requests", "counter", {"class"}, "storage", "doc", 4}});
  const auto diags = CheckMetricsSchema(schema, CollectMetricCalls(in));
  ASSERT_EQ(CountRule(diags, "R8"), 1u);
  EXPECT_NE(diags[0].message.find("label keys"), std::string::npos);
}

TEST(R8Test, SchemaEntryWithNoCallSiteIsFlaggedAtTheSchema) {
  const auto schema = MakeSchema(
      {{"mr.ghost_metric", "counter", {}, "mapreduce", "doc", 12}});
  const auto diags = CheckMetricsSchema(schema, {});
  ASSERT_EQ(CountRule(diags, "R8"), 1u);
  EXPECT_EQ(diags[0].file, "docs/metrics_schema.json");
  EXPECT_EQ(diags[0].line, 12u);
  EXPECT_NE(diags[0].message.find("no call site"), std::string::npos);
}

TEST(R8Test, NonLiteralNameIsFlagged) {
  FileInput in;
  in.path = "src/fixture.cc";
  in.content = "void f(obs::MetricsRegistry& m, const std::string& n) {\n"
               "  m.GetCounter(n)->Add(1);\n"
               "}\n";
  in.in_src = true;
  const auto diags = CheckMetricsSchema(MakeSchema({}), CollectMetricCalls(in));
  ASSERT_EQ(CountRule(diags, "R8"), 1u);
  EXPECT_NE(diags[0].message.find("not a string literal"), std::string::npos);
}

TEST(R8Test, ParseRejectsMalformedSchema) {
  MetricsSchema out;
  std::string error;
  EXPECT_FALSE(ParseMetricsSchema("{\"metrics\": [", &out, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(ParseMetricsSchema(
      "{\"metrics\": [{\"name\": \"x\", \"type\": \"timer\", "
      "\"labels\": [], \"subsystem\": \"s\", \"doc\": \"d\"}]}",
      &out, &error));
  EXPECT_NE(error.find("counter, gauge or histogram"), std::string::npos);
}

TEST(R8Test, DumpRoundTripsThroughParse) {
  FileInput in;
  in.path = "src/storage/fixture.cc";
  in.content =
      "void f(obs::MetricsRegistry& m, const std::string& c) {\n"
      "  m.GetCounter(\"disk.read_bytes\", {{\"class\", c}})->Add(1);\n"
      "  m.GetHistogram(\"disk.await_ms\", {{\"class\", c}}, b_)->O(1);\n"
      "}\n";
  in.in_src = true;
  const auto sites = CollectMetricCalls(in);
  const std::string dump = DumpMetricsSchema(nullptr, sites);
  MetricsSchema parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsSchema(dump, &parsed, &error)) << error;
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].name, "disk.await_ms");  // sorted by name
  EXPECT_EQ(parsed.entries[1].name, "disk.read_bytes");
  // Docs carry over by name, so re-dumping against the parse is stable.
  EXPECT_EQ(DumpMetricsSchema(&parsed, sites), dump);
}

// ---- Diagnostic format: columns, ordering, JSON ------------------------

TEST(OutputTest, ColumnsAreOneBasedAndSortedWithinALine) {
  const auto diags = Lint(
      "std::map<Node*, int> a; std::set<Task*> b;\n");
  ASSERT_EQ(CountRule(diags, "R3"), 2u);
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_GE(diags[0].col, 1u);
  EXPECT_LT(diags[0].col, diags[1].col);
}

TEST(OutputTest, DiagnosticsToJsonEscapesAndStructures) {
  const std::vector<Diagnostic> diags = {
      {"src/a.cc", 3, 7, "R2", "uses \"wall\" clock"},
  };
  const std::string json = DiagnosticsToJson(diags);
  EXPECT_NE(json.find("\"file\": \"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"col\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"R2\""), std::string::npos);
  EXPECT_NE(json.find("uses \\\"wall\\\" clock"), std::string::npos);
  EXPECT_EQ(DiagnosticsToJson({}), "[]\n");
}

}  // namespace
}  // namespace bdio::lint
