// bdio-lint rule engine: each rule against minimal positive and negative
// fixtures, plus the comment/string stripper and the annotation grammar.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bdio_lint/lint.h"

namespace bdio::lint {
namespace {

std::vector<Diagnostic> Lint(const std::string& code, bool in_src = true,
                             const std::string& sibling = {}) {
  FileInput in;
  in.path = in_src ? "src/fixture.cc" : "tests/fixture.cc";
  in.content = code;
  in.sibling = sibling;
  in.in_src = in_src;
  return LintFile(in);
}

size_t CountRule(const std::vector<Diagnostic>& diags,
                 const std::string& rule) {
  size_t n = 0;
  for (const Diagnostic& d : diags) {
    if (d.rule == rule) ++n;
  }
  return n;
}

// ---- StripCommentsAndStrings -------------------------------------------

TEST(StripTest, RemovesCommentsAndLiteralsKeepsLines) {
  const std::string in =
      "int a; // rand() here\n"
      "/* srand(1)\n"
      "   more */ int b;\n"
      "const char* s = \"random_device\";\n"
      "char c = '\\'';\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("random_device"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Line structure intact: same newline count at the same offsets.
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(in[i] == '\n', out[i] == '\n') << "offset " << i;
  }
}

TEST(StripTest, HandlesRawStrings) {
  const std::string in =
      "auto s = R\"(system_clock \" unbalanced)\";\n"
      "high_resolution_clock x;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("system_clock"), std::string::npos);
  EXPECT_NE(out.find("high_resolution_clock"), std::string::npos);
}

// ---- R1: hash-order iteration ------------------------------------------

TEST(R1Test, FlagsRangeForOverUnorderedMap) {
  const auto diags = Lint(
      "#include <unordered_map>\n"
      "std::unordered_map<int, int> m;\n"
      "void f() { for (const auto& [k, v] : m) { (void)k; } }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 1u);
  EXPECT_EQ(diags[0].line, 3u);
}

TEST(R1Test, FlagsExplicitIteratorLoop) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "void f() { for (auto it = s.begin(); it != s.end(); ++it) {} }\n");
  EXPECT_GE(CountRule(diags, "R1"), 1u);
}

TEST(R1Test, IgnoresOrderedContainersAndPointLookups) {
  const auto diags = Lint(
      "std::map<int, int> m;\n"
      "std::unordered_map<int, int> u;\n"
      "void f() {\n"
      "  for (const auto& [k, v] : m) { (void)k; }\n"
      "  u.find(3); u.count(4); u[5] = 6;\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);
}

TEST(R1Test, SiblingHeaderDeclaresTheMember) {
  const auto diags =
      Lint("void C::f() { for (const auto& kv : index_) { (void)kv; } }\n",
           true, "std::unordered_map<uint64_t, int> index_;\n");
  EXPECT_EQ(CountRule(diags, "R1"), 1u);
}

TEST(R1Test, AnnotationWithJustificationAllows) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive -- summing, order cannot leak\n"
      "void f() { for (int x : s) { (void)x; } }\n");
  EXPECT_EQ(CountRule(diags, "R1"), 0u);
  EXPECT_EQ(CountRule(diags, "A0"), 0u);
}

TEST(R1Test, AnnotationWithoutJustificationIsItselfADiagnostic) {
  const auto diags = Lint(
      "std::unordered_set<int> s;\n"
      "// bdio-lint: order-insensitive\n"
      "void f() { for (int x : s) { (void)x; } }\n");
  EXPECT_EQ(CountRule(diags, "A0"), 1u);
}

// ---- R2: wall-clock and unseeded randomness ----------------------------

TEST(R2Test, FlagsBannedSources) {
  const auto diags = Lint(
      "int a = rand();\n"
      "std::random_device rd;\n"
      "auto t = std::chrono::system_clock::now();\n"
      "auto h = std::chrono::high_resolution_clock::now();\n"
      "time_t now = time(nullptr);\n");
  EXPECT_EQ(CountRule(diags, "R2"), 5u);
}

TEST(R2Test, IgnoresLookalikes) {
  const auto diags = Lint(
      "uint64_t start_time(int x);\n"
      "auto t = obj.time();\n"
      "auto u = ptr->rand();\n"
      "auto s = std::chrono::steady_clock::now();\n"
      "int randomize = 3; (void)randomize;\n");
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
}

TEST(R2Test, AllowAnnotationSuppresses) {
  const auto diags = Lint(
      "// bdio-lint: allow(R2) -- wall clock for log decoration only\n"
      "auto t = std::chrono::system_clock::now();\n");
  EXPECT_EQ(CountRule(diags, "R2"), 0u);
}

// ---- R3: pointer-keyed ordering/hashing --------------------------------

TEST(R3Test, FlagsPointerKeys) {
  const auto diags = Lint(
      "std::map<Node*, int> by_ptr;\n"
      "std::set<const Task*> tasks;\n"
      "std::unordered_map<Foo*, Bar> h;\n"
      "std::hash<void*> hasher;\n");
  EXPECT_EQ(CountRule(diags, "R3"), 4u);
}

TEST(R3Test, IgnoresPointerValuesAndValueKeys) {
  const auto diags = Lint(
      "std::map<uint64_t, Node*> by_id;\n"
      "std::map<std::string, int> names;\n"
      "std::set<std::pair<uint64_t, uint32_t>> pairs;\n");
  EXPECT_EQ(CountRule(diags, "R3"), 0u);
}

// ---- R4: float accumulation in threaded callbacks ----------------------

TEST(R4Test, FlagsFloatAccumulationInPoolCallback) {
  const auto diags = Lint(
      "double total = 0;\n"
      "void f(ThreadPool& pool) {\n"
      "  pool.Submit([&] { total += Compute(); });\n"
      "  pool.Async([&] { total += Compute(); });\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R4"), 2u);
}

TEST(R4Test, IgnoresIntegersAndNonPoolSubmit) {
  const auto diags = Lint(
      "uint64_t count = 0;\n"
      "double total = 0;\n"
      "void f(ThreadPool& pool, BlockDevice& dev) {\n"
      "  pool.Submit([&] { count += 1; });\n"
      "  dev.Submit(req);\n"
      "  total += 1.0;  // single-threaded context\n"
      "}\n");
  EXPECT_EQ(CountRule(diags, "R4"), 0u);
}

// ---- R5: uninitialized POD members (src/ only) -------------------------

TEST(R5Test, FlagsUninitializedScalarAndPointerMembers) {
  const auto diags = Lint(
      "struct S {\n"
      "  uint64_t bytes;\n"
      "  bool done;\n"
      "  Node* node;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 3u);
}

TEST(R5Test, AcceptsInitializedAndNonPodMembers) {
  const auto diags = Lint(
      "struct S {\n"
      "  uint64_t bytes = 0;\n"
      "  bool done{false};\n"
      "  Node* node = nullptr;\n"
      "  std::string name;\n"
      "  std::vector<int> items;\n"
      "  std::function<void()> cb;\n"
      "  static constexpr int kMax = 4;\n"
      "  uint64_t total() const { return bytes; }\n"
      "  S() = default;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, TemplateMembersWithPointerArgumentsAreNotFlagged) {
  // Class-template instances default-construct; the comma and '*' inside
  // the template arguments must not be misread as extra POD members.
  const auto diags = Lint(
      "struct S {\n"
      "  FlatMultiMap<uint64_t, IoRequest*> by_start;\n"
      "  FlatMultiMap<uint64_t, uint64_t> by_end;\n"
      "  std::map<uint64_t, Unit*> units;\n"
      "};\n");
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, OnlyAppliesUnderSrc) {
  const auto diags = Lint("struct S { int x; };\n", /*in_src=*/false);
  EXPECT_EQ(CountRule(diags, "R5"), 0u);
}

TEST(R5Test, NamesOutOfLineNestedStructs) {
  const auto diags = Lint("struct Outer::Inner { int x; };\n");
  ASSERT_EQ(CountRule(diags, "R5"), 1u);
  EXPECT_NE(diags[0].message.find("Outer::Inner"), std::string::npos)
      << diags[0].message;
}

// ---- Diagnostics never fire inside comments or strings -----------------

TEST(LintTest, AnnotationInsideStringLiteralIsIgnored) {
  // Only a real comment can carry an annotation; quoting one in a string
  // (as this very test file does) must neither allow nor diagnose.
  const auto diags =
      Lint("const char* fixture = \"// bdio-lint: order-insensitive\";\n");
  EXPECT_TRUE(diags.empty());
}

TEST(LintTest, CommentsAndStringsAreInert) {
  const auto diags = Lint(
      "// rand() time(nullptr) std::unordered_map<int,int> m;\n"
      "const char* doc = \"std::map<Node*, int> and random_device\";\n");
  EXPECT_TRUE(diags.empty());
}

}  // namespace
}  // namespace bdio::lint
