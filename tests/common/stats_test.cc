#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bdio {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    double v = std::sin(i) * 10;
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, empty;
  a.Add(3);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.mean(), 3.0);
}

TEST(PercentileTest, ExactValues) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.5);
}

TEST(PercentileTest, EmptyAndSingle) {
  EXPECT_EQ(Percentile({}, 50), 0.0);
  EXPECT_EQ(Percentile({7.0}, 99), 7.0);
}

TEST(PercentileTest, MultiCutSharesSort) {
  std::vector<double> v{5, 1, 3, 2, 4};
  auto ps = Percentiles(v, {0, 50, 100});
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[0], 1.0);
  EXPECT_DOUBLE_EQ(ps[1], 3.0);
  EXPECT_DOUBLE_EQ(ps[2], 5.0);
}

TEST(PercentileTest, MultiCutEdgeCases) {
  // Empty input: every cut point is 0 (mirrors Percentile({}, p)).
  const auto none = Percentiles({}, {0, 50, 100});
  ASSERT_EQ(none.size(), 3u);
  for (double v : none) EXPECT_EQ(v, 0.0);

  // One element: every cut point returns it, boundaries included.
  const auto one = Percentiles({7.5}, {0, 1, 50, 99, 100});
  ASSERT_EQ(one.size(), 5u);
  for (double v : one) EXPECT_DOUBLE_EQ(v, 7.5);

  // No cut points: an empty result, not a crash.
  EXPECT_TRUE(Percentiles({1.0, 2.0}, {}).empty());
}

TEST(FractionAboveTest, CountsStrictlyGreater) {
  std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(FractionAbove(v, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(FractionAbove(v, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAbove({}, 1.0), 0.0);
}

}  // namespace
}  // namespace bdio
