#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bdio {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.ValueAtPercentile(50), 100.0, 100 * 0.3);
}

TEST(HistogramTest, PercentileAccuracyOnUniform) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.UniformDouble(0, 10000));
  // Log buckets give bounded relative error.
  EXPECT_NEAR(h.ValueAtPercentile(50), 5000, 5000 * 0.15);
  EXPECT_NEAR(h.ValueAtPercentile(90), 9000, 9000 * 0.15);
  EXPECT_NEAR(h.mean(), 5000, 100);
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, all;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(0, 100);
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_NEAR(a.ValueAtPercentile(50), all.ValueAtPercentile(50), 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, MonotonePercentiles) {
  Histogram h;
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Exponential(1000));
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double v = h.ValueAtPercentile(p);
    EXPECT_GE(v, prev) << "at p=" << p;
    prev = v;
  }
  EXPECT_LE(prev, h.max());
}

TEST(HistogramTest, ToStringContainsSummary) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace bdio
