#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace bdio {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ValueAtPercentile(50), 0.0);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Add(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 100.0);
  EXPECT_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.ValueAtPercentile(50), 100.0, 100 * 0.3);
}

TEST(HistogramTest, PercentileAccuracyOnUniform) {
  Histogram h;
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.UniformDouble(0, 10000));
  // Log buckets give bounded relative error.
  EXPECT_NEAR(h.ValueAtPercentile(50), 5000, 5000 * 0.15);
  EXPECT_NEAR(h.ValueAtPercentile(90), 9000, 9000 * 0.15);
  EXPECT_NEAR(h.mean(), 5000, 100);
}

TEST(HistogramTest, MergeEqualsCombined) {
  Histogram a, b, all;
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble(0, 100);
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.sum(), all.sum(), 1e-6);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  EXPECT_NEAR(a.ValueAtPercentile(50), all.ValueAtPercentile(50), 1e-9);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, MonotonePercentiles) {
  Histogram h;
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) h.Add(rng.Exponential(1000));
  double prev = 0;
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9}) {
    double v = h.ValueAtPercentile(p);
    EXPECT_GE(v, prev) << "at p=" << p;
    prev = v;
  }
  EXPECT_LE(prev, h.max());
}

TEST(HistogramTest, PercentileEdgeCases) {
  // Empty: every percentile is 0, including the boundaries.
  Histogram empty;
  EXPECT_EQ(empty.ValueAtPercentile(0), 0.0);
  EXPECT_EQ(empty.ValueAtPercentile(100), 0.0);

  // p=0 and p=100 are clamped into the observed range — never below min
  // or above max, even though the bucket edges extend past both.
  Histogram h;
  for (double v : {3.0, 5.0, 7.0}) h.Add(v);
  EXPECT_GE(h.ValueAtPercentile(0), h.min());
  EXPECT_EQ(h.ValueAtPercentile(100), h.max());
  double prev = 0;
  for (double p : {0.0, 50.0, 100.0}) {
    const double v = h.ValueAtPercentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }

  // All mass in a single bucket: every percentile collapses onto the one
  // observed value (the min/max clamp, not the bucket edges).
  Histogram single;
  for (int i = 0; i < 100; ++i) single.Add(42.0);
  EXPECT_EQ(single.ValueAtPercentile(0), 42.0);
  EXPECT_EQ(single.ValueAtPercentile(50), 42.0);
  EXPECT_EQ(single.ValueAtPercentile(99.9), 42.0);
  EXPECT_EQ(single.ValueAtPercentile(100), 42.0);
}

TEST(HistogramTest, ToStringContainsSummary) {
  Histogram h;
  h.Add(1);
  h.Add(2);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos);
  EXPECT_NE(s.find("p99"), std::string::npos);
}

}  // namespace
}  // namespace bdio
