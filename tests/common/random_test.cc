#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace bdio {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ZipfSkewsTowardHead) {
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.Zipf(1000, 0.99)];
  // Rank 0 must dominate any mid-tail rank by a wide margin.
  EXPECT_GT(counts[0], 20 * (counts[500] + 1));
  for (auto& [k, v] : counts) EXPECT_LT(k, 1000u);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
  // Large-mean path (normal approximation).
  sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(200));
  EXPECT_NEAR(sum / n, 200, 2.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ForkStreamsDependOnlyOnForkOrder) {
  // A child's stream is fixed at the moment of the fork: it must not depend
  // on when the parent or sibling streams are drawn from afterwards. This
  // is what lets one seed fan out over cluster/hdfs/engine (and per-job
  // streams) while keeping multi-job interleavings deterministic.
  Rng a(101);
  Rng a1 = a.Fork();
  Rng a2 = a.Fork();
  std::vector<uint64_t> a1_vals, a2_vals, parent_vals;
  for (int i = 0; i < 50; ++i) a1_vals.push_back(a1.Next());
  for (int i = 0; i < 50; ++i) a2_vals.push_back(a2.Next());
  for (int i = 0; i < 50; ++i) parent_vals.push_back(a.Next());

  // Same fork order, maximally interleaved draw order.
  Rng b(101);
  Rng b1 = b.Fork();
  Rng b2 = b.Fork();
  std::vector<uint64_t> b1_vals, b2_vals, bparent_vals;
  for (int i = 0; i < 50; ++i) {
    bparent_vals.push_back(b.Next());
    b2_vals.push_back(b2.Next());
    b1_vals.push_back(b1.Next());
  }
  EXPECT_EQ(a1_vals, b1_vals);
  EXPECT_EQ(a2_vals, b2_vals);
  EXPECT_EQ(parent_vals, bparent_vals);

  // Forking after draws DOES shift the child stream: fork order is part of
  // the seed path.
  Rng c(101);
  c.Next();
  Rng c1 = c.Fork();
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (c1.Next() == a1_vals[static_cast<size_t>(i)]) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, ShuffleKeepsAllElements) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  Shuffle(&v, &rng);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace bdio
