#include "common/table.h"

#include <gtest/gtest.h>

namespace bdio {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.SetHeader({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t;
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, NumberFormatting) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Num(3.0, 0), "3");
  EXPECT_EQ(TextTable::Percent(0.226), "22.6%");
  EXPECT_EQ(TextTable::Percent(0.0015, 2), "0.15%");
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable t;
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  // Should not crash and should contain the cell.
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

}  // namespace
}  // namespace bdio
