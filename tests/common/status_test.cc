#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace bdio {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk exploded");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk exploded");
  EXPECT_EQ(s.ToString(), "IOError: disk exploded");
}

TEST(StatusTest, AllFactoriesProduceMatchingPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  BDIO_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseAssignOrReturn(int x, int* out) {
  BDIO_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UseAssignOrReturn(7, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace bdio
