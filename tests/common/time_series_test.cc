#include "common/time_series.h"

#include <gtest/gtest.h>

namespace bdio {
namespace {

TEST(TimeSeriesTest, AppendAndAccess) {
  TimeSeries ts;
  ts.Append(1.0);
  ts.Append(2.0);
  ts.Append(3.0);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.at(1), 2.0);
  EXPECT_DOUBLE_EQ(ts.TimeAt(0), 1.0);  // end of first 1 s interval
  EXPECT_DOUBLE_EQ(ts.TimeAt(2), 3.0);
}

TEST(TimeSeriesTest, Aggregates) {
  TimeSeries ts;
  for (double v : {0.0, 10.0, 20.0, 0.0, 30.0}) ts.Append(v);
  EXPECT_DOUBLE_EQ(ts.Mean(), 12.0);
  EXPECT_DOUBLE_EQ(ts.Peak(), 30.0);
  EXPECT_DOUBLE_EQ(ts.Min(), 0.0);
  EXPECT_DOUBLE_EQ(ts.ActiveMean(), 20.0);
  EXPECT_DOUBLE_EQ(ts.FractionAbove(9.0), 0.6);
  EXPECT_DOUBLE_EQ(ts.FractionAbove(30.0), 0.0);
}

TEST(TimeSeriesTest, EmptyAggregates) {
  TimeSeries ts;
  EXPECT_EQ(ts.Mean(), 0.0);
  EXPECT_EQ(ts.Peak(), 0.0);
  EXPECT_EQ(ts.ActiveMean(), 0.0);
  EXPECT_EQ(ts.FractionAbove(0), 0.0);
}

TEST(TimeSeriesTest, SumZeroExtendsShorter) {
  TimeSeries a, b;
  a.Append(1);
  a.Append(2);
  b.Append(10);
  TimeSeries sum = TimeSeries::Sum({&a, &b});
  ASSERT_EQ(sum.size(), 2u);
  EXPECT_DOUBLE_EQ(sum.at(0), 11.0);
  EXPECT_DOUBLE_EQ(sum.at(1), 2.0);
}

TEST(TimeSeriesTest, AverageAcrossSeries) {
  TimeSeries a, b;
  a.Append(2);
  b.Append(4);
  TimeSeries avg = TimeSeries::Average({&a, &b});
  ASSERT_EQ(avg.size(), 1u);
  EXPECT_DOUBLE_EQ(avg.at(0), 3.0);
}

TEST(TimeSeriesTest, CsvFormat) {
  TimeSeries ts;
  ts.Append(5.5);
  std::string csv = ts.ToCsv("util");
  EXPECT_EQ(csv, "time_s,util\n1,5.5\n");
}

TEST(TimeSeriesTest, StatsMatchesSamples) {
  TimeSeries ts;
  ts.Append(1);
  ts.Append(3);
  auto st = ts.Stats();
  EXPECT_EQ(st.count(), 2u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.0);
}

}  // namespace
}  // namespace bdio
