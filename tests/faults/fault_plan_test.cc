#include "faults/fault_plan.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace bdio::faults {
namespace {

TEST(FaultPlanTest, EmptyPlan) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.size(), 0u);
  EXPECT_EQ(plan.ToString(), "");
  auto parsed = FaultPlan::Parse("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(FaultPlanTest, BuilderAccumulatesEvents) {
  FaultPlan plan = FaultPlan{}
                       .KillDataNode(3, TimeAt(Seconds(10)))
                       .DegradeDisk(1, /*mr_disk=*/true, 2, 4.0, TimeAt(Seconds(1)),
                                    TimeAt(Seconds(5)))
                       .CorruptReplica("/in/part-0", 7, 1, TimeAt(Seconds(2)))
                       .ThrottleLink(0, 8.0, TimeAt(Seconds(3)), SimTime{});
  ASSERT_EQ(plan.size(), 4u);
  const auto& e = plan.events();

  EXPECT_EQ(e[0].kind, FaultKind::kKillDataNode);
  EXPECT_EQ(e[0].node, 3u);
  EXPECT_EQ(e[0].at, TimeAt(Seconds(10)));

  EXPECT_EQ(e[1].kind, FaultKind::kDegradeDisk);
  EXPECT_EQ(e[1].node, 1u);
  EXPECT_TRUE(e[1].mr_disk);
  EXPECT_EQ(e[1].disk, 2u);
  EXPECT_DOUBLE_EQ(e[1].factor, 4.0);
  EXPECT_EQ(e[1].at, TimeAt(Seconds(1)));
  EXPECT_EQ(e[1].until, TimeAt(Seconds(5)));

  EXPECT_EQ(e[2].kind, FaultKind::kCorruptReplica);
  EXPECT_EQ(e[2].path, "/in/part-0");
  EXPECT_EQ(e[2].block_idx, 7u);
  EXPECT_EQ(e[2].replica_idx, 1u);
  EXPECT_EQ(e[2].at, TimeAt(Seconds(2)));

  EXPECT_EQ(e[3].kind, FaultKind::kThrottleLink);
  EXPECT_EQ(e[3].node, 0u);
  EXPECT_DOUBLE_EQ(e[3].factor, 8.0);
  EXPECT_EQ(e[3].at, TimeAt(Seconds(3)));
  EXPECT_EQ(e[3].until, SimTime{});  // open-ended window
}

TEST(FaultPlanTest, ParsesFullGrammar) {
  const std::string text =
      "# chaos scenario: one of everything\n"
      "kill-datanode 3 @ 12.5\n"
      "\n"
      "degrade-disk 1 mr 2 x4 @ 1..5   # fail-slow spindle\n"
      "degrade-disk 0 hdfs 0 x1.5 @ 0..0\n"
      "corrupt-replica /in/data 7 1 @ 2\n"
      "throttle-link 2 x8 @ 3..6\n";
  auto parsed = FaultPlan::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& e = parsed.value().events();
  ASSERT_EQ(e.size(), 5u);

  EXPECT_EQ(e[0].kind, FaultKind::kKillDataNode);
  EXPECT_EQ(e[0].node, 3u);
  EXPECT_EQ(e[0].at, TimeAt(FromSeconds(12.5)));

  EXPECT_EQ(e[1].kind, FaultKind::kDegradeDisk);
  EXPECT_TRUE(e[1].mr_disk);
  EXPECT_EQ(e[1].disk, 2u);
  EXPECT_DOUBLE_EQ(e[1].factor, 4.0);

  EXPECT_EQ(e[2].kind, FaultKind::kDegradeDisk);
  EXPECT_FALSE(e[2].mr_disk);
  EXPECT_DOUBLE_EQ(e[2].factor, 1.5);

  EXPECT_EQ(e[3].kind, FaultKind::kCorruptReplica);
  EXPECT_EQ(e[3].path, "/in/data");
  EXPECT_EQ(e[3].block_idx, 7u);
  EXPECT_EQ(e[3].replica_idx, 1u);

  EXPECT_EQ(e[4].kind, FaultKind::kThrottleLink);
  EXPECT_EQ(e[4].node, 2u);
  EXPECT_DOUBLE_EQ(e[4].factor, 8.0);
  EXPECT_EQ(e[4].at, TimeAt(Seconds(3)));
  EXPECT_EQ(e[4].until, TimeAt(Seconds(6)));
}

TEST(FaultPlanTest, ToStringRoundTrips) {
  const FaultPlan plan =
      FaultPlan{}
          .KillDataNode(3, TimeAt(FromSeconds(12.5)))
          .DegradeDisk(1, /*mr_disk=*/true, 2, 4.0, TimeAt(Seconds(1)), TimeAt(Seconds(5)))
          .DegradeDisk(0, /*mr_disk=*/false, 0, 1.5, SimTime{}, TimeAt(Seconds(9)))
          .CorruptReplica("/in/data", 7, 1, TimeAt(Seconds(2)))
          .ThrottleLink(2, 8.0, TimeAt(Seconds(3)), TimeAt(Seconds(6)));
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed.value().size(), plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    const FaultEvent& a = plan.events()[i];
    const FaultEvent& b = reparsed.value().events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.at, b.at) << "event " << i;
    EXPECT_EQ(a.until, b.until) << "event " << i;
    EXPECT_EQ(a.node, b.node) << "event " << i;
    EXPECT_EQ(a.mr_disk, b.mr_disk) << "event " << i;
    EXPECT_EQ(a.disk, b.disk) << "event " << i;
    EXPECT_DOUBLE_EQ(a.factor, b.factor) << "event " << i;
    EXPECT_EQ(a.path, b.path) << "event " << i;
    EXPECT_EQ(a.block_idx, b.block_idx) << "event " << i;
    EXPECT_EQ(a.replica_idx, b.replica_idx) << "event " << i;
  }
  // And the text itself is a fixed point.
  EXPECT_EQ(reparsed.value().ToString(), plan.ToString());
}

TEST(FaultPlanTest, ParseErrorsCarryLineNumbers) {
  auto r = FaultPlan::Parse("kill-datanode 0 @ 1\nset-on-fire 3 @ 2\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().ToString().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(FaultPlanTest, ParseRejectsMalformedLines) {
  // Missing '@'.
  EXPECT_FALSE(FaultPlan::Parse("kill-datanode 0 1\n").ok());
  // Non-numeric node.
  EXPECT_FALSE(FaultPlan::Parse("kill-datanode abc @ 1\n").ok());
  // Negative time.
  EXPECT_FALSE(FaultPlan::Parse("kill-datanode 0 @ -1\n").ok());
  // Bad disk group.
  EXPECT_FALSE(
      FaultPlan::Parse("degrade-disk 0 ssd 0 x2 @ 0..1\n").ok());
  // Factor without the 'x' prefix.
  EXPECT_FALSE(FaultPlan::Parse("degrade-disk 0 mr 0 2 @ 0..1\n").ok());
  // Zero factor.
  EXPECT_FALSE(FaultPlan::Parse("throttle-link 0 x0 @ 0..1\n").ok());
  // Inverted window.
  EXPECT_FALSE(FaultPlan::Parse("throttle-link 0 x2 @ 5..1\n").ok());
  // Trailing junk.
  EXPECT_FALSE(FaultPlan::Parse("kill-datanode 0 @ 1 extra\n").ok());
}

TEST(FaultPlanTest, KindNames) {
  EXPECT_EQ(FaultKindToString(FaultKind::kKillDataNode), "kill-datanode");
  EXPECT_EQ(FaultKindToString(FaultKind::kDegradeDisk), "degrade-disk");
  EXPECT_EQ(FaultKindToString(FaultKind::kCorruptReplica),
            "corrupt-replica");
  EXPECT_EQ(FaultKindToString(FaultKind::kThrottleLink), "throttle-link");
  EXPECT_EQ(FaultKindToString(FaultKind::kKillTaskTracker),
            "kill-tasktracker");
  EXPECT_EQ(FaultKindToString(FaultKind::kCrashTask), "crash-task");
}

TEST(FaultPlanTest, ParsesComputeVerbs) {
  auto parsed = FaultPlan::Parse(
      "kill-tasktracker 3 @ 12.5  # compute side only\n"
      "crash-task 5 @ 2\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const auto& e = parsed.value().events();
  ASSERT_EQ(e.size(), 2u);
  EXPECT_EQ(e[0].kind, FaultKind::kKillTaskTracker);
  EXPECT_EQ(e[0].node, 3u);
  EXPECT_EQ(e[0].at, TimeAt(FromSeconds(12.5)));
  EXPECT_EQ(e[1].kind, FaultKind::kCrashTask);
  EXPECT_EQ(e[1].node, 5u);
  EXPECT_EQ(e[1].at, TimeAt(Seconds(2)));
}

TEST(FaultPlanTest, ComputeVerbsRoundTrip) {
  const FaultPlan plan = FaultPlan{}
                             .KillTaskTracker(3, TimeAt(FromSeconds(12.5)))
                             .CrashTask(5, TimeAt(Seconds(2)));
  auto reparsed = FaultPlan::Parse(plan.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ASSERT_EQ(reparsed.value().size(), 2u);
  EXPECT_EQ(reparsed.value().events()[0].kind, FaultKind::kKillTaskTracker);
  EXPECT_EQ(reparsed.value().events()[0].at, TimeAt(FromSeconds(12.5)));
  EXPECT_EQ(reparsed.value().events()[1].kind, FaultKind::kCrashTask);
  EXPECT_EQ(reparsed.value().ToString(), plan.ToString());
}

TEST(FaultPlanTest, ParseRejectsMalformedComputeVerbs) {
  // Missing '@'.
  EXPECT_FALSE(FaultPlan::Parse("kill-tasktracker 0 1\n").ok());
  // Non-numeric node.
  EXPECT_FALSE(FaultPlan::Parse("crash-task abc @ 1\n").ok());
  // Negative time.
  EXPECT_FALSE(FaultPlan::Parse("kill-tasktracker 0 @ -1\n").ok());
  // Trailing junk.
  EXPECT_FALSE(FaultPlan::Parse("crash-task 0 @ 1 extra\n").ok());
}

}  // namespace
}  // namespace bdio::faults
