#include "faults/injector.h"

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/random.h"
#include "faults/fault_plan.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::faults {
namespace {

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest() {
    cluster::ClusterParams cp;
    cp.num_workers = 4;
    cp.node.memory_bytes = GiB(2);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, cp,
                                                  /*total_slots=*/4, Rng(1));
    hdfs::HdfsParams hp;
    hp.block_bytes = Bytes(MiB(16));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hp, Rng(2));
    engine_ = std::make_unique<mapreduce::MrEngine>(
        cluster_.get(), dfs_.get(), mapreduce::SlotConfig{2, 2, "t"},
        Rng(3));
    injector_ = std::make_unique<FaultInjector>(cluster_.get(), dfs_.get(),
                                                engine_.get());
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<mapreduce::MrEngine> engine_;
  std::unique_ptr<FaultInjector> injector_;
};

TEST_F(InjectorTest, EmptyPlanSchedulesNothing) {
  const size_t pending_before = sim_.pending();
  ASSERT_TRUE(injector_->Arm(FaultPlan{}).ok());
  EXPECT_EQ(sim_.pending(), pending_before);
  sim_.Run();
  EXPECT_EQ(injector_->injected(), 0u);
}

TEST_F(InjectorTest, RejectsOutOfRangeNode) {
  const size_t pending_before = sim_.pending();
  const Status s = injector_->Arm(FaultPlan{}.KillDataNode(4, TimeAt(Seconds(1))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(sim_.pending(), pending_before);  // nothing was scheduled
}

TEST_F(InjectorTest, RejectsOutOfRangeDisk) {
  const uint32_t bad = cluster_->node(0)->num_hdfs_disks();
  const Status s = injector_->Arm(FaultPlan{}.DegradeDisk(
      0, /*mr_disk=*/false, bad, 2.0, SimTime{}, TimeAt(Seconds(1))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(InjectorTest, RejectsSpeedupThrottle) {
  // A throttle's slowdown maps to capacity fraction 1/factor; factors below
  // one would mean a faster-than-line-rate NIC.
  const Status s =
      injector_->Arm(FaultPlan{}.ThrottleLink(0, 0.5, SimTime{}, TimeAt(Seconds(1))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(InjectorTest, ValidationIsAllOrNothing) {
  const size_t pending_before = sim_.pending();
  const Status s = injector_->Arm(FaultPlan{}
                                      .KillDataNode(1, TimeAt(Seconds(1)))  // valid
                                      .KillDataNode(9, TimeAt(Seconds(2))));
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(sim_.pending(), pending_before);
  sim_.Run();
  EXPECT_EQ(injector_->injected(), 0u);
  EXPECT_FALSE(dfs_->name_node()->node_dead(1));
}

TEST_F(InjectorTest, DegradeDiskAppliesAndRestores) {
  storage::BlockDevice* dev = cluster_->node(1)->hdfs_disk(0);
  ASSERT_TRUE(injector_
                  ->Arm(FaultPlan{}.DegradeDisk(1, /*mr_disk=*/false, 0,
                                                4.0, TimeAt(Seconds(1)), TimeAt(Seconds(2))))
                  .ok());
  double factor_in_window = 0;
  sim_.ScheduleAt(TimeAt(FromSeconds(1.5)),
                  [&] { factor_in_window = dev->service_factor(); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(factor_in_window, 4.0);
  EXPECT_DOUBLE_EQ(dev->service_factor(), 1.0);  // restored at window end
  EXPECT_EQ(injector_->injected(), 1u);
  EXPECT_EQ(injector_->disks_degraded(), 1u);
}

TEST_F(InjectorTest, OpenEndedDegradeIsNeverRestored) {
  storage::BlockDevice* dev = cluster_->node(0)->mr_disk(1);
  ASSERT_TRUE(injector_
                  ->Arm(FaultPlan{}.DegradeDisk(0, /*mr_disk=*/true, 1, 6.0,
                                                TimeAt(Seconds(1)), /*until=*/SimTime{}))
                  .ok());
  sim_.Run();
  EXPECT_DOUBLE_EQ(dev->service_factor(), 6.0);
}

TEST_F(InjectorTest, ThrottleLinkAppliesAndRestores) {
  net::Network* net = cluster_->network();
  ASSERT_TRUE(
      injector_->Arm(FaultPlan{}.ThrottleLink(2, 4.0, TimeAt(Seconds(1)), TimeAt(Seconds(2))))
          .ok());
  double factor_in_window = 0;
  sim_.ScheduleAt(TimeAt(FromSeconds(1.5)),
                  [&] { factor_in_window = net->node_link_factor(2); });
  sim_.Run();
  EXPECT_DOUBLE_EQ(factor_in_window, 0.25);  // x4 slowdown = 1/4 capacity
  EXPECT_DOUBLE_EQ(net->node_link_factor(2), 1.0);
  EXPECT_EQ(injector_->links_throttled(), 1u);
}

TEST_F(InjectorTest, RejectsOverlappingWindowsOnOneTarget) {
  // The end-of-window restore resets the factor unconditionally, so a
  // second window overlapping the first on the same disk or link would be
  // clobbered at start or cancelled at the first window's expiry.
  const size_t pending_before = sim_.pending();
  Status s = injector_->Arm(
      FaultPlan{}
          .DegradeDisk(1, /*mr_disk=*/false, 0, 4.0, TimeAt(Seconds(1)), TimeAt(Seconds(3)))
          .DegradeDisk(1, /*mr_disk=*/false, 0, 2.0, TimeAt(Seconds(2)), TimeAt(Seconds(4))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(sim_.pending(), pending_before);  // all-or-nothing

  // An open-ended window (until = 0) extends forever: any later window on
  // the same link overlaps it — including across separate Arm calls.
  ASSERT_TRUE(
      injector_->Arm(FaultPlan{}.ThrottleLink(2, 4.0, TimeAt(Seconds(1)), SimTime{})).ok());
  s = injector_->Arm(FaultPlan{}.ThrottleLink(2, 2.0, TimeAt(Seconds(9)),
                                              TimeAt(Seconds(10))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(InjectorTest, DisjointWindowsPerTargetAreAccepted) {
  // Same disk, non-touching windows; same window span on a different disk
  // and a different node; and a link window — all legal in one plan.
  ASSERT_TRUE(
      injector_
          ->Arm(FaultPlan{}
                    .DegradeDisk(1, /*mr_disk=*/false, 0, 4.0, TimeAt(Seconds(1)),
                                 TimeAt(Seconds(2)))
                    .DegradeDisk(1, /*mr_disk=*/false, 0, 2.0,
                                 TimeAt(Seconds(2) + kNanosecond), TimeAt(Seconds(3)))
                    .DegradeDisk(1, /*mr_disk=*/true, 0, 4.0, TimeAt(Seconds(1)),
                                 TimeAt(Seconds(2)))
                    .DegradeDisk(2, /*mr_disk=*/false, 0, 4.0, TimeAt(Seconds(1)),
                                 TimeAt(Seconds(2)))
                    .ThrottleLink(1, 4.0, TimeAt(Seconds(1)), TimeAt(Seconds(2))))
          .ok());
  sim_.Run();
  EXPECT_EQ(injector_->disks_degraded(), 4u);
  EXPECT_EQ(injector_->links_throttled(), 1u);
  EXPECT_DOUBLE_EQ(cluster_->node(1)->hdfs_disk(0)->service_factor(), 1.0);
}

TEST_F(InjectorTest, KillDrivesBothFailureDomains) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  ASSERT_TRUE(injector_->Arm(FaultPlan{}.KillDataNode(2, TimeAt(Millis(10)))).ok());
  sim_.Run();
  EXPECT_TRUE(dfs_->name_node()->node_dead(2));
  EXPECT_TRUE(engine_->node_failed(2));
  EXPECT_EQ(injector_->datanodes_killed(), 1u);
  EXPECT_EQ(injector_->injected(), 1u);
}

TEST_F(InjectorTest, NullEngineSkipsTaskTrackerSide) {
  FaultInjector hdfs_only(cluster_.get(), dfs_.get(), /*engine=*/nullptr);
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  ASSERT_TRUE(hdfs_only.Arm(FaultPlan{}.KillDataNode(1, TimeAt(Millis(10)))).ok());
  sim_.Run();
  EXPECT_TRUE(dfs_->name_node()->node_dead(1));
  EXPECT_FALSE(engine_->node_failed(1));  // engine was not told
}

TEST_F(InjectorTest, MissingCorruptionTargetIsSkippedNotFatal) {
  ASSERT_TRUE(
      injector_->Arm(FaultPlan{}.CorruptReplica("/nope", 0, 0, TimeAt(Millis(5))))
          .ok());
  sim_.Run();
  // The event fired (and warned) but planted nothing.
  EXPECT_EQ(injector_->replicas_corrupted(), 1u);
  EXPECT_EQ(dfs_->checksum_failures(), 0u);
}

TEST_F(InjectorTest, KillTaskTrackerTouchesOnlyTheComputeSide) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  ASSERT_TRUE(
      injector_->Arm(FaultPlan{}.KillTaskTracker(2, TimeAt(Millis(10)))).ok());
  sim_.Run();
  EXPECT_TRUE(engine_->node_failed(2));
  EXPECT_FALSE(dfs_->name_node()->node_dead(2));  // replicas stay healthy
  EXPECT_EQ(injector_->tasktrackers_killed(), 1u);
  EXPECT_EQ(injector_->datanodes_killed(), 0u);
}

TEST_F(InjectorTest, CrashTaskFiresWithoutKillingTheNode) {
  ASSERT_TRUE(injector_->Arm(FaultPlan{}.CrashTask(1, TimeAt(Millis(10)))).ok());
  sim_.Run();
  EXPECT_EQ(injector_->tasks_crashed(), 1u);
  EXPECT_FALSE(engine_->node_failed(1));
  EXPECT_FALSE(dfs_->name_node()->node_dead(1));
}

TEST_F(InjectorTest, ComputeVerbsRequireAnEngine) {
  FaultInjector hdfs_only(cluster_.get(), dfs_.get(), /*engine=*/nullptr);
  const size_t pending_before = sim_.pending();
  Status s = hdfs_only.Arm(FaultPlan{}.KillTaskTracker(1, TimeAt(Millis(10))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = hdfs_only.Arm(FaultPlan{}.CrashTask(1, TimeAt(Millis(10))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(sim_.pending(), pending_before);
}

TEST_F(InjectorTest, RejectsDuplicateOneShotsInOnePlan) {
  // A node dies once; a replica rots once. The second event describes
  // nothing the first doesn't, so the plan is rejected whole.
  const size_t pending_before = sim_.pending();
  Status s = injector_->Arm(FaultPlan{}
                                .KillDataNode(1, TimeAt(Seconds(1)))
                                .KillDataNode(1, TimeAt(Seconds(2))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = injector_->Arm(FaultPlan{}
                         .CorruptReplica("/in", 0, 0, TimeAt(Seconds(1)))
                         .CorruptReplica("/in", 0, 0, TimeAt(Seconds(2))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  EXPECT_EQ(sim_.pending(), pending_before);
}

TEST_F(InjectorTest, RejectsDuplicateOneShotsAcrossArmCalls) {
  ASSERT_TRUE(injector_->Arm(FaultPlan{}.KillDataNode(1, TimeAt(Seconds(1)))).ok());
  const Status s = injector_->Arm(FaultPlan{}.KillDataNode(1, TimeAt(Seconds(5))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
}

TEST_F(InjectorTest, DataNodeKillSubsumesTaskTrackerKillOnOneHost) {
  // The DataNode kill already takes the shared host's TaskTracker down, so
  // the pair conflicts in either order.
  Status s = injector_->Arm(FaultPlan{}
                                .KillDataNode(2, TimeAt(Seconds(1)))
                                .KillTaskTracker(2, TimeAt(Seconds(2))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  s = injector_->Arm(FaultPlan{}
                         .KillTaskTracker(2, TimeAt(Seconds(1)))
                         .KillDataNode(2, TimeAt(Seconds(2))));
  EXPECT_TRUE(s.IsInvalidArgument()) << s.ToString();
  // Different hosts don't conflict.
  EXPECT_TRUE(injector_
                  ->Arm(FaultPlan{}
                            .KillDataNode(1, TimeAt(Seconds(1)))
                            .KillTaskTracker(3, TimeAt(Seconds(1))))
                  .ok());
}

TEST_F(InjectorTest, CrashTaskAndDistinctCorruptionsMayRepeat) {
  // crash-task is re-armable (each firing crashes whatever runs then), and
  // corrupting two different replicas of one block is two distinct faults.
  EXPECT_TRUE(injector_
                  ->Arm(FaultPlan{}
                            .CrashTask(1, TimeAt(Seconds(1)))
                            .CrashTask(1, TimeAt(Seconds(2)))
                            .CorruptReplica("/in", 0, 0, TimeAt(Seconds(1)))
                            .CorruptReplica("/in", 0, 1, TimeAt(Seconds(1)))
                            .CorruptReplica("/in", 1, 0, TimeAt(Seconds(1))))
                  .ok());
}

TEST_F(InjectorTest, ParsedPlanArmsEndToEnd) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  auto plan = FaultPlan::Parse(
      "kill-datanode 3 @ 0.01\n"
      "degrade-disk 1 hdfs 0 x2 @ 0.02..0.03\n");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE(injector_->Arm(plan.value()).ok());
  sim_.Run();
  EXPECT_EQ(injector_->injected(), 2u);
  EXPECT_TRUE(dfs_->name_node()->node_dead(3));
  EXPECT_DOUBLE_EQ(cluster_->node(1)->hdfs_disk(0)->service_factor(), 1.0);
}

}  // namespace
}  // namespace bdio::faults
