#include "compress/codec.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace bdio::compress {
namespace {

std::string RandomBytes(Rng* rng, size_t n) {
  std::string s(n, 0);
  for (auto& c : s) c = static_cast<char>(rng->Uniform(256));
  return s;
}

std::string TextLike(Rng* rng, size_t n) {
  static const char* kWords[] = {"the",  "quick", "brown",  "fox",
                                 "jumps", "over", "lazy",   "dog",
                                 "hadoop", "hdfs", "mapreduce", "disk"};
  std::string s;
  while (s.size() < n) {
    s += kWords[rng->Uniform(12)];
    s += ' ';
  }
  s.resize(n);
  return s;
}

TEST(FastLzCodecTest, RoundTripEmpty) {
  FastLzCodec codec;
  std::string c, d;
  ASSERT_TRUE(codec.Compress("", &c).ok());
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, "");
}

TEST(FastLzCodecTest, RoundTripShortStrings) {
  FastLzCodec codec;
  for (const char* s : {"a", "ab", "abc", "abcd", "aaaa", "abcabcabcabc"}) {
    std::string c, d;
    ASSERT_TRUE(codec.Compress(s, &c).ok());
    ASSERT_TRUE(codec.Decompress(c, &d).ok()) << s;
    EXPECT_EQ(d, s);
  }
}

TEST(FastLzCodecTest, RoundTripHighlyRepetitive) {
  FastLzCodec codec;
  std::string input(100000, 'x');
  std::string c, d;
  ASSERT_TRUE(codec.Compress(input, &c).ok());
  EXPECT_LT(c.size(), input.size() / 50);  // massive compression
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, input);
}

TEST(FastLzCodecTest, RoundTripText) {
  FastLzCodec codec;
  Rng rng(1);
  std::string input = TextLike(&rng, 200000);
  std::string c, d;
  ASSERT_TRUE(codec.Compress(input, &c).ok());
  EXPECT_LT(c.size(), input.size() * 6 / 10);  // text compresses well
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, input);
}

TEST(FastLzCodecTest, RandomDataBarelyExpands) {
  FastLzCodec codec;
  Rng rng(2);
  std::string input = RandomBytes(&rng, 100000);
  std::string c, d;
  ASSERT_TRUE(codec.Compress(input, &c).ok());
  EXPECT_LT(c.size(), input.size() + input.size() / 10 + 64);
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, input);
}

class FastLzRoundTrip : public ::testing::TestWithParam<size_t> {};

TEST_P(FastLzRoundTrip, RandomizedMixedContent) {
  FastLzCodec codec;
  Rng rng(GetParam());
  // Mix runs, text and noise to stress token boundaries.
  std::string input;
  const int segments = 1 + static_cast<int>(rng.Uniform(20));
  for (int i = 0; i < segments; ++i) {
    switch (rng.Uniform(3)) {
      case 0:
        input += std::string(rng.Uniform(5000), static_cast<char>(
                                                    rng.Uniform(256)));
        break;
      case 1:
        input += TextLike(&rng, rng.Uniform(5000));
        break;
      default:
        input += RandomBytes(&rng, rng.Uniform(5000));
    }
  }
  std::string c, d;
  ASSERT_TRUE(codec.Compress(input, &c).ok());
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastLzRoundTrip,
                         ::testing::Range<size_t>(1, 33));

TEST(FastLzCodecTest, DetectsTruncation) {
  FastLzCodec codec;
  Rng rng(3);
  std::string input = TextLike(&rng, 10000);
  std::string c, d;
  ASSERT_TRUE(codec.Compress(input, &c).ok());
  for (size_t cut : {c.size() / 2, c.size() - 1, size_t{1}}) {
    EXPECT_FALSE(codec.Decompress(std::string_view(c.data(), cut), &d).ok());
  }
}

TEST(FastLzCodecTest, DetectsGarbage) {
  FastLzCodec codec;
  std::string d;
  // Claims 1000 bytes then provides an invalid match offset.
  std::string bad;
  bad.push_back(static_cast<char>(0xE8));
  bad.push_back(0x07);  // varint 1000
  bad.push_back(0x00);  // token: 0 literals, match len 4
  bad.push_back(0x09);
  bad.push_back(0x00);  // offset 9 > output size 0
  EXPECT_FALSE(codec.Decompress(bad, &d).ok());
}

TEST(NullCodecTest, Identity) {
  NullCodec codec;
  std::string c, d;
  ASSERT_TRUE(codec.Compress("hello", &c).ok());
  EXPECT_EQ(c, "hello");
  ASSERT_TRUE(codec.Decompress(c, &d).ok());
  EXPECT_EQ(d, "hello");
}

TEST(CodecFactoryTest, Names) {
  EXPECT_EQ(MakeCodec("null")->name(), "null");
  EXPECT_EQ(MakeCodec("fastlz")->name(), "fastlz");
}

TEST(CompressedFractionTest, OrderedByCompressibility) {
  FastLzCodec codec;
  Rng rng(4);
  const double repetitive =
      CompressedFraction(codec, std::string(50000, 'a'));
  const double text = CompressedFraction(codec, TextLike(&rng, 50000));
  const double random = CompressedFraction(codec, RandomBytes(&rng, 50000));
  EXPECT_LT(repetitive, text);
  EXPECT_LT(text, random);
  EXPECT_LE(random, 1.15);
  EXPECT_EQ(CompressedFraction(codec, ""), 1.0);
}

}  // namespace
}  // namespace bdio::compress
