#include "sched/scheduler.h"

#include <gtest/gtest.h>

namespace bdio::sched {
namespace {

JobSchedState Job(uint32_t id, uint64_t seq, const std::string& pool,
                  double weight, uint32_t runnable_maps,
                  uint32_t running_maps) {
  JobSchedState j;
  j.job_id = id;
  j.seq = seq;
  j.pool = pool;
  j.weight = weight;
  j.runnable_maps = runnable_maps;
  j.running_maps = running_maps;
  return j;
}

TEST(FifoSchedulerTest, PicksEarliestRunnableJob) {
  FifoScheduler fifo;
  std::vector<JobSchedState> jobs = {
      Job(0, 5, "a", 1, 3, 0),
      Job(1, 2, "a", 1, 1, 7),
      Job(2, 9, "a", 1, 2, 0),
  };
  EXPECT_EQ(fifo.PickJob(SlotKind::kMap, jobs), 1u);
}

TEST(FifoSchedulerTest, SkipsJobsWithNothingRunnable) {
  FifoScheduler fifo;
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 0, 4),  // earliest, but no runnable maps
      Job(1, 3, "a", 1, 2, 0),
  };
  EXPECT_EQ(fifo.PickJob(SlotKind::kMap, jobs), 1u);
}

TEST(FifoSchedulerTest, NoJobWhenNothingRunnable) {
  FifoScheduler fifo;
  std::vector<JobSchedState> jobs = {Job(0, 1, "a", 1, 0, 4)};
  EXPECT_EQ(fifo.PickJob(SlotKind::kMap, jobs), Scheduler::kNoJob);
  EXPECT_EQ(fifo.PickJob(SlotKind::kMap, {}), Scheduler::kNoJob);
}

TEST(FifoSchedulerTest, SlotKindsAreIndependent) {
  FifoScheduler fifo;
  std::vector<JobSchedState> jobs = {Job(0, 1, "a", 1, 2, 0)};
  jobs[0].runnable_reduces = 0;
  EXPECT_EQ(fifo.PickJob(SlotKind::kMap, jobs), 0u);
  EXPECT_EQ(fifo.PickJob(SlotKind::kReduce, jobs), Scheduler::kNoJob);
}

TEST(FifoSchedulerTest, NeverPreempts) {
  FifoScheduler fifo;
  std::vector<JobSchedState> jobs = {Job(0, 1, "a", 1, 5, 10)};
  EXPECT_EQ(fifo.PreemptionVictim(jobs), Scheduler::kNoJob);
}

TEST(FairSchedulerTest, MostStarvedPoolWins) {
  FairScheduler fair;
  // Pool "b" runs 1 task vs "a"'s 6: b is further below its share.
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 4, 6),
      Job(1, 2, "b", 1, 4, 1),
  };
  EXPECT_EQ(fair.PickJob(SlotKind::kMap, jobs), 1u);
}

TEST(FairSchedulerTest, WeightScalesTheShare) {
  FairScheduler fair;
  // Equal running counts, but "a" weight 4 => ratio 1 vs "b"'s 4: "a" is
  // entitled to more, so it gets the slot.
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 4.0, 2, 4),
      Job(1, 2, "b", 1.0, 2, 4),
  };
  EXPECT_EQ(fair.PickJob(SlotKind::kMap, jobs), 0u);
}

TEST(FairSchedulerTest, FifoWithinPool) {
  FairScheduler fair;
  std::vector<JobSchedState> jobs = {
      Job(0, 7, "a", 1, 2, 0),
      Job(1, 3, "a", 1, 2, 0),  // same pool, earlier seq
  };
  EXPECT_EQ(fair.PickJob(SlotKind::kMap, jobs), 1u);
}

TEST(FairSchedulerTest, RatioTieBreaksOnEarliestPool) {
  FairScheduler fair;
  // Both pools at running/weight == 0; pool of seq-1 job wins.
  std::vector<JobSchedState> jobs = {
      Job(0, 4, "late", 1, 1, 0),
      Job(1, 1, "early", 1, 1, 0),
  };
  EXPECT_EQ(fair.PickJob(SlotKind::kMap, jobs), 1u);
}

TEST(FairSchedulerTest, PoolRunningAggregatesAcrossMembers) {
  FairScheduler fair;
  // Pool "a" collectively runs 5 even though its runnable member runs 0;
  // pool "b" runs 4, so "b" is more starved.
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 0, 5),
      Job(1, 2, "a", 1, 3, 0),
      Job(2, 3, "b", 1, 3, 4),
  };
  EXPECT_EQ(fair.PickJob(SlotKind::kMap, jobs), 2u);
}

TEST(FairSchedulerTest, NoPreemptionUnlessEnabled) {
  FairScheduler fair;  // preempt_speculative defaults to false
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 0, 10),
      Job(1, 2, "b", 1, 5, 0),
  };
  EXPECT_EQ(fair.PreemptionVictim(jobs), Scheduler::kNoJob);
}

TEST(FairSchedulerTest, PreemptsTheMostOverServedJob) {
  FairSchedulerOptions options;
  options.preempt_speculative = true;
  FairScheduler fair(options);
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 0, 6),
      Job(1, 2, "b", 2.0, 0, 8),  // ratio 4 < job 0's 6
      Job(2, 3, "c", 1, 5, 0),    // the starved job; never a victim (0 < 2)
  };
  EXPECT_EQ(fair.PreemptionVictim(jobs), 0u);
}

TEST(FairSchedulerTest, SingleSlotHoldersAreNeverVictims) {
  FairSchedulerOptions options;
  options.preempt_speculative = true;
  FairScheduler fair(options);
  std::vector<JobSchedState> jobs = {
      Job(0, 1, "a", 1, 0, 1),
      Job(1, 2, "b", 1, 5, 0),
  };
  EXPECT_EQ(fair.PreemptionVictim(jobs), Scheduler::kNoJob);
}

TEST(MakeSchedulerTest, ResolvesPolicyNames) {
  auto fifo = MakeScheduler("fifo");
  auto fair = MakeScheduler("fair");
  auto preempt = MakeScheduler("fair-preempt");
  ASSERT_NE(fifo, nullptr);
  ASSERT_NE(fair, nullptr);
  ASSERT_NE(preempt, nullptr);
  EXPECT_STREQ(fifo->name(), "fifo");
  EXPECT_STREQ(fair->name(), "fair");
  // fair-preempt differs from fair only in its victim rule.
  std::vector<JobSchedState> jobs = {Job(0, 1, "a", 1, 0, 2),
                                     Job(1, 2, "b", 1, 3, 0)};
  EXPECT_EQ(fair->PreemptionVictim(jobs), Scheduler::kNoJob);
  EXPECT_EQ(preempt->PreemptionVictim(jobs), 0u);
  EXPECT_EQ(MakeScheduler("capacity"), nullptr);
}

}  // namespace
}  // namespace bdio::sched
