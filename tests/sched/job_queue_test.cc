#include "sched/job_queue.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace bdio::sched {
namespace {

/// Records (index, admit time) and completes each job `service` later.
struct Harness {
  Harness(sim::Simulator* sim, uint32_t max_concurrent, SimDuration service)
      : sim(sim) {
    queue = std::make_unique<JobQueue>(
        sim, max_concurrent, [this, service](size_t index) {
          launches.emplace_back(index, this->sim->Now());
          this->sim->ScheduleAfter(service,
                                   [this, index] { queue->OnJobDone(index); });
        });
  }

  sim::Simulator* sim;
  std::unique_ptr<JobQueue> queue;
  std::vector<std::pair<size_t, SimTime>> launches;
};

TEST(JobQueueTest, UnlimitedAdmitsAtArrival) {
  sim::Simulator sim;
  Harness h(&sim, 0, Seconds(10));
  h.queue->Submit(TimeAt(Seconds(0)));
  h.queue->Submit(TimeAt(Seconds(1)));
  h.queue->Submit(TimeAt(Seconds(2)));
  sim.Run();
  ASSERT_EQ(h.launches.size(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(h.launches[j].first, j);
    EXPECT_EQ(h.launches[j].second, TimeAt(Seconds(j)));
    EXPECT_EQ(h.queue->QueueWait(j), SimDuration{});
  }
}

TEST(JobQueueTest, TokenLimitSerializesAdmission) {
  sim::Simulator sim;
  Harness h(&sim, 1, Seconds(10));
  h.queue->Submit(TimeAt(Seconds(0)));
  h.queue->Submit(TimeAt(Seconds(0)));
  h.queue->Submit(TimeAt(Seconds(0)));
  sim.Run();
  ASSERT_EQ(h.launches.size(), 3u);
  // One at a time, in submission order, back to back.
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_EQ(h.launches[j].first, j);
    EXPECT_EQ(h.launches[j].second, TimeAt(Seconds(10 * j)));
  }
  EXPECT_EQ(h.queue->QueueWait(0), SimDuration{});
  EXPECT_EQ(h.queue->QueueWait(1), Seconds(10));
  EXPECT_EQ(h.queue->QueueWait(2), Seconds(20));
}

TEST(JobQueueTest, FreedTokenGoesToEarliestWaiter) {
  sim::Simulator sim;
  Harness h(&sim, 2, Seconds(10));
  h.queue->Submit(TimeAt(Seconds(0)));  // admitted
  h.queue->Submit(TimeAt(Seconds(0)));  // admitted
  h.queue->Submit(TimeAt(Seconds(5)));  // waits; arrived first
  h.queue->Submit(TimeAt(Seconds(6)));  // waits
  sim.Run();
  ASSERT_EQ(h.launches.size(), 4u);
  EXPECT_EQ(h.launches[2].first, 2u);
  EXPECT_EQ(h.launches[2].second, TimeAt(Seconds(10)));
  EXPECT_EQ(h.launches[3].first, 3u);
  EXPECT_EQ(h.launches[3].second, TimeAt(Seconds(10)));
  EXPECT_EQ(h.queue->QueueWait(2), Seconds(5));
  EXPECT_EQ(h.queue->QueueWait(3), Seconds(4));
}

TEST(JobQueueTest, CountersTrackLifecycle) {
  sim::Simulator sim;
  Harness h(&sim, 1, Seconds(10));
  h.queue->Submit(TimeAt(Seconds(0)));
  h.queue->Submit(TimeAt(Seconds(0)));
  EXPECT_EQ(h.queue->submitted(), 2u);
  EXPECT_EQ(h.queue->admitted(), 0u);
  sim.RunUntil(TimeAt(Seconds(1)));
  EXPECT_EQ(h.queue->admitted(), 1u);
  EXPECT_EQ(h.queue->waiting(), 1u);
  EXPECT_EQ(h.queue->completed(), 0u);
  sim.Run();
  EXPECT_EQ(h.queue->admitted(), 2u);
  EXPECT_EQ(h.queue->waiting(), 0u);
  EXPECT_EQ(h.queue->completed(), 2u);
}

TEST(JobQueueTest, DrainedFiresOnceAfterLastCompletion) {
  sim::Simulator sim;
  Harness h(&sim, 2, Seconds(3));
  int drained = 0;
  SimTime drain_time;
  h.queue->OnDrained([&] {
    ++drained;
    drain_time = sim.Now();
  });
  h.queue->Submit(TimeAt(Seconds(0)));
  h.queue->Submit(TimeAt(Seconds(1)));
  sim.Run();
  EXPECT_EQ(drained, 1);
  EXPECT_EQ(drain_time, TimeAt(Seconds(4)));  // last arrival 1s + 3s service
}

TEST(JobQueueTest, AdmissionOrderIndependentOfCompletionOrder) {
  // Job 0 is slow and job 1 fast, yet the two waiters are admitted in
  // arrival order as tokens free up — admission order is a pure function
  // of the arrival stream.
  sim::Simulator sim;
  std::unique_ptr<JobQueue> queue;
  std::vector<size_t> admitted;
  queue = std::make_unique<JobQueue>(&sim, 2, [&](size_t index) {
    admitted.push_back(index);
    sim.ScheduleAfter(index == 0 ? Seconds(100) : Seconds(1),
                      [&queue, index] { queue->OnJobDone(index); });
  });
  queue->Submit(TimeAt(Seconds(0)));
  queue->Submit(TimeAt(Seconds(0)));
  queue->Submit(TimeAt(Seconds(0)));
  queue->Submit(TimeAt(Seconds(0)));
  sim.Run();
  EXPECT_EQ(admitted, (std::vector<size_t>{0, 1, 2, 3}));
  // Fast chain: job 1 done at 1s frees a token for job 2, etc.
  EXPECT_EQ(queue->AdmitTime(2), TimeAt(Seconds(1)));
  EXPECT_EQ(queue->AdmitTime(3), TimeAt(Seconds(2)));
}

}  // namespace
}  // namespace bdio::sched
