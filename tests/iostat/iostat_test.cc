#include "iostat/iostat.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::iostat {
namespace {

storage::DiskStatsSnapshot Snap(uint64_t rios, uint64_t wios, uint64_t rsec,
                                uint64_t wsec, SimDuration rticks,
                                SimDuration wticks, SimDuration io_ticks,
                                SimDuration queue) {
  storage::DiskStatsSnapshot s;
  s.ios[0] = rios;
  s.ios[1] = wios;
  s.sectors[0] = rsec;
  s.sectors[1] = wsec;
  s.ticks[0] = rticks;
  s.ticks[1] = wticks;
  s.io_ticks = io_ticks;
  s.time_in_queue = queue;
  return s;
}

TEST(ComputeSampleTest, MatchesSysstatFormulas) {
  storage::DiskStatsSnapshot prev;  // zeros
  // Over 1 s: 100 reads of 8 sectors, 50 writes of 16 sectors,
  // read ticks 500 ms, write ticks 600 ms, busy 800 ms, queue 2 s.
  auto cur = Snap(100, 50, 800, 800, Millis(500), Millis(600), Millis(800),
                  Seconds(2));
  Sample s = ComputeSample(prev, cur, Seconds(1));
  EXPECT_DOUBLE_EQ(s.r_s, 100);
  EXPECT_DOUBLE_EQ(s.w_s, 50);
  EXPECT_DOUBLE_EQ(s.rmb_s, 800 * 512.0 / 1e6);
  EXPECT_DOUBLE_EQ(s.wmb_s, 800 * 512.0 / 1e6);
  EXPECT_DOUBLE_EQ(s.avgrq_sz, 1600.0 / 150.0);
  EXPECT_DOUBLE_EQ(s.await_ms, 1100.0 / 150.0);
  EXPECT_DOUBLE_EQ(s.svctm_ms, 800.0 / 150.0);
  EXPECT_DOUBLE_EQ(s.util_pct, 80.0);
  EXPECT_DOUBLE_EQ(s.avgqu_sz, 2.0);
  EXPECT_GT(s.await_ms, s.svctm_ms);
  EXPECT_NEAR(s.wait_ms(), 2.0, 1e-9);
}

TEST(ComputeSampleTest, IdleDeviceIsAllZero) {
  storage::DiskStatsSnapshot prev, cur;
  Sample s = ComputeSample(prev, cur, Seconds(1));
  EXPECT_EQ(s.r_s, 0);
  EXPECT_EQ(s.util_pct, 0);
  EXPECT_EQ(s.avgrq_sz, 0);
}

TEST(ComputeSampleTest, UtilCappedAt100) {
  storage::DiskStatsSnapshot prev;
  auto cur = Snap(1, 0, 8, 0, Millis(1), SimDuration{}, Millis(1500), Millis(1500));
  Sample s = ComputeSample(prev, cur, Seconds(1));
  EXPECT_DOUBLE_EQ(s.util_pct, 100.0);
}

TEST(MetricTest, NamesAndSelectors) {
  Sample s;
  s.rmb_s = 5;
  s.await_ms = 10;
  s.svctm_ms = 4;
  EXPECT_EQ(SampleMetric(s, Metric::kReadMBps), 5.0);
  EXPECT_EQ(SampleMetric(s, Metric::kWait), 6.0);
  EXPECT_STREQ(MetricName(Metric::kUtil), "%util");
  EXPECT_STREQ(MetricName(Metric::kAvgRqSz), "avgrq-sz");
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest()
      : dev_a_(&sim_, "sda", storage::DiskParameters{}, Rng(1)),
        dev_b_(&sim_, "sdb", storage::DiskParameters{}, Rng(2)),
        monitor_(&sim_, Seconds(1)) {}

  sim::Simulator sim_;
  storage::BlockDevice dev_a_;
  storage::BlockDevice dev_b_;
  Monitor monitor_;
};

TEST_F(MonitorTest, SamplesAtInterval) {
  monitor_.AddDevice(&dev_a_, "hdfs");
  monitor_.Start();
  // Issue I/O over ~3 s of simulated time.
  for (int i = 0; i < 30; ++i) {
    sim_.ScheduleAt(TimeAt(Millis(100 * i)), [this, i] {
      dev_a_.Submit(storage::IoType::kRead, Sectors(100000 + i * 1024), Sectors(128), nullptr);
    });
  }
  sim_.RunUntil(TimeAt(Seconds(3)) + Millis(500));
  monitor_.Stop();
  sim_.Run();
  EXPECT_GE(monitor_.num_samples(), 3u);
  const auto& samples = monitor_.DeviceSamples("sda");
  EXPECT_EQ(samples.size(), monitor_.num_samples());
  // Total reads across samples equals issued reads.
  double total_rs = 0;
  for (const auto& s : samples) total_rs += s.r_s;
  EXPECT_GT(total_rs, 0);
}

TEST_F(MonitorTest, GroupAggregation) {
  monitor_.AddDevice(&dev_a_, "hdfs");
  monitor_.AddDevice(&dev_b_, "hdfs");
  monitor_.Start();
  sim_.ScheduleAt(TimeAt(Millis(100)), [this] {
    dev_a_.Submit(storage::IoType::kWrite, Sectors(0), Sectors(1024), nullptr);
    dev_b_.Submit(storage::IoType::kWrite, Sectors(0), Sectors(1024), nullptr);
  });
  sim_.RunUntil(TimeAt(Seconds(2)));
  monitor_.Stop();
  sim_.Run();
  TimeSeries mean = monitor_.GroupMean("hdfs", Metric::kWriteMBps);
  TimeSeries sum = monitor_.GroupSum("hdfs", Metric::kWriteMBps);
  ASSERT_GE(mean.size(), 1u);
  EXPECT_NEAR(sum.at(0), 2 * mean.at(0), 1e-9);
}

TEST_F(MonitorTest, ActiveMeanIgnoresIdleDisks) {
  monitor_.AddDevice(&dev_a_, "hdfs");
  monitor_.AddDevice(&dev_b_, "hdfs");  // stays idle
  monitor_.Start();
  sim_.ScheduleAt(TimeAt(Millis(10)), [this] {
    for (int i = 0; i < 8; ++i) {
      dev_a_.Submit(storage::IoType::kRead, Sectors(i * 1024), Sectors(1024), nullptr);
    }
  });
  sim_.RunUntil(TimeAt(Seconds(1)) + Millis(1));
  monitor_.Stop();
  sim_.Run();
  const TimeSeries plain = monitor_.GroupMean("hdfs", Metric::kAvgRqSz);
  const TimeSeries active =
      monitor_.GroupActiveMean("hdfs", Metric::kAvgRqSz);
  ASSERT_GE(plain.size(), 1u);
  // Idle disk halves the plain mean; the active mean reports the real size.
  EXPECT_NEAR(active.at(0), 1024, 1.0);
  EXPECT_NEAR(plain.at(0), 512, 1.0);
}

TEST_F(MonitorTest, UtilFractionAboveThreshold) {
  monitor_.AddDevice(&dev_a_, "mr");
  monitor_.Start();
  // Saturate the disk with random I/O for ~2 s, then idle for ~2 s.
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    dev_a_.Submit(storage::IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8),
                  nullptr);
  }
  sim_.RunUntil(TimeAt(Seconds(4)));
  monitor_.Stop();
  sim_.Run();
  const double above90 = monitor_.GroupUtilFractionAbove("mr", 90.0);
  EXPECT_GT(above90, 0.2);
  EXPECT_LT(above90, 1.0);
  EXPECT_LE(monitor_.GroupUtilFractionAbove("mr", 99.0), above90);
}

TEST_F(MonitorTest, ReportFormatting) {
  monitor_.AddDevice(&dev_a_, "hdfs");
  monitor_.Start();
  sim_.ScheduleAt(TimeAt(Millis(1)), [this] {
    dev_a_.Submit(storage::IoType::kRead, Sectors(0), Sectors(8), nullptr);
  });
  sim_.RunUntil(TimeAt(Seconds(1)) + Millis(1));
  monitor_.Stop();
  sim_.Run();
  std::string report = monitor_.LatestReport();
  EXPECT_NE(report.find("Device:"), std::string::npos);
  EXPECT_NE(report.find("sda"), std::string::npos);
  EXPECT_NE(report.find("%util"), std::string::npos);
}

}  // namespace
}  // namespace bdio::iostat
