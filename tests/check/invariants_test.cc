// bdio::invariants: the debug-mode runtime checker must pass cleanly on a
// healthy run, catch planted accounting violations, and perturb nothing —
// a checked run stays byte-identical to an unchecked one.

#include <cstdlib>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "check/invariants.h"
#include "cluster/cluster.h"
#include "common/io_tag.h"
#include "core/experiment.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace bdio::invariants {
namespace {

CheckerConfig NonFatal(uint64_t interval = 256) {
  CheckerConfig config;
  config.audit_interval = interval;
  config.fatal = false;
  return config;
}

TEST(InvariantCheckerTest, EnabledFromEnvParsesStrictly) {
  ::unsetenv("BDIO_CHECK_INVARIANTS");
  EXPECT_FALSE(InvariantChecker::EnabledFromEnv());
  ::setenv("BDIO_CHECK_INVARIANTS", "1", 1);
  EXPECT_TRUE(InvariantChecker::EnabledFromEnv());
  for (const char* off : {"0", "", "yes", "11"}) {
    ::setenv("BDIO_CHECK_INVARIANTS", off, 1);
    EXPECT_FALSE(InvariantChecker::EnabledFromEnv()) << "'" << off << "'";
  }
  ::unsetenv("BDIO_CHECK_INVARIANTS");
}

TEST(InvariantCheckerTest, MaybeAttachFromEnvHonorsTheSwitch) {
  sim::Simulator sim;
  ::unsetenv("BDIO_CHECK_INVARIANTS");
  EXPECT_EQ(MaybeAttachFromEnv(&sim, nullptr, nullptr, nullptr, nullptr),
            nullptr);
  ::setenv("BDIO_CHECK_INVARIANTS", "1", 1);
  auto checker = MaybeAttachFromEnv(&sim, nullptr, nullptr, nullptr, nullptr);
  ASSERT_NE(checker, nullptr);
  ::unsetenv("BDIO_CHECK_INVARIANTS");
}

TEST(InvariantCheckerTest, DetectsIncompleteTagAttribution) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  InvariantChecker checker(&sim, NonFatal());
  checker.WatchMetrics(&metrics);

  checker.CheckNow();
  EXPECT_TRUE(checker.last_violation().empty()) << checker.last_violation();

  // Tagged bytes with no matching total: attribution no longer sums up.
  const obs::Labels labels{{"source", IoTagName(IoTag::kHdfsInput)}};
  metrics.GetCounter("pagecache.tag_disk_read_bytes", labels)->Add(4096);
  checker.CheckNow();
  EXPECT_NE(checker.last_violation().find("tagged pagecache reads"),
            std::string::npos)
      << checker.last_violation();
}

TEST(InvariantCheckerTest, BalancedTagAttributionPasses) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  const obs::Labels in{{"source", IoTagName(IoTag::kHdfsInput)}};
  const obs::Labels spill{{"source", IoTagName(IoTag::kMapSpill)}};
  metrics.GetCounter("pagecache.tag_disk_read_bytes", in)->Add(4096);
  metrics.GetCounter("pagecache.tag_disk_read_bytes", spill)->Add(512);
  metrics.GetCounter("pagecache.disk_read_bytes")->Add(4608);
  metrics.GetCounter("pagecache.tag_disk_write_bytes", spill)->Add(100);
  metrics.GetCounter("pagecache.writeback_bytes")->Add(100);

  InvariantChecker checker(&sim, NonFatal());
  checker.WatchMetrics(&metrics);
  checker.CheckNow();
  EXPECT_TRUE(checker.last_violation().empty()) << checker.last_violation();
}

TEST(InvariantCheckerTest, HookDetachesOnDestruction) {
  sim::Simulator sim;
  int fired = 0;
  {
    InvariantChecker checker(&sim, NonFatal());
    sim.ScheduleAfter(Seconds(1), [&fired] { ++fired; });
    sim.Run();
    EXPECT_EQ(checker.events_checked(), 1u);
  }
  // The destroyed checker's hook must be gone: events still run fine.
  sim.ScheduleAfter(Seconds(1), [&fired] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(InvariantCheckerTest, CleanTeraSortRunPassesEveryAudit) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 4;
  cp.node.memory_bytes = GiB(16) / 256;
  cp.node.daemon_bytes = GiB(2) / 256;
  cp.node.per_slot_heap_bytes = MiB(200) / 256;
  cp.node.min_cache_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 16, Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));
  mapreduce::MrEngine engine(&cluster, &dfs,
                             mapreduce::SlotConfig::Paper_1_8(), Rng(3));
  obs::MetricsRegistry metrics;
  cluster.AttachObs(nullptr, &metrics);
  dfs.AttachObs(nullptr, &metrics);
  engine.AttachObs(nullptr, &metrics);

  InvariantChecker checker(&sim, NonFatal(/*interval=*/128));
  checker.WatchCluster(&cluster);
  checker.WatchHdfs(&dfs);
  checker.WatchEngine(&engine);
  checker.WatchMetrics(&metrics);

  workloads::PlanOptions options;
  options.scale = 1.0 / 256;
  auto plan =
      workloads::BuildPlan(workloads::WorkloadKind::kTeraSort, options);
  ASSERT_TRUE(dfs.Preload(plan.dataset_path, plan.dataset_bytes).ok());
  bool done = false;
  engine.RunJob(plan.jobs[0].spec,
                [&](Status s, const mapreduce::JobCounters&) {
                  ASSERT_TRUE(s.ok());
                  done = true;
                });
  sim.Run();
  ASSERT_TRUE(done);

  EXPECT_GT(checker.events_checked(), 0u);
  EXPECT_GT(checker.audits_run(), 0u) << "audit interval never reached";
  EXPECT_TRUE(checker.last_violation().empty()) << checker.last_violation();
  checker.CheckNow();  // post-drain state must hold too
  EXPECT_TRUE(checker.last_violation().empty()) << checker.last_violation();
}

TEST(InvariantCheckerTest, CheckedExperimentIsByteIdenticalToUnchecked) {
  core::ExperimentSpec spec;
  spec.workload = workloads::WorkloadKind::kTeraSort;
  spec.scale = 1.0 / 512;
  spec.seed = 42;

  ::unsetenv("BDIO_CHECK_INVARIANTS");
  auto plain = core::RunExperiment(spec);
  ASSERT_TRUE(plain.ok());

  ::setenv("BDIO_CHECK_INVARIANTS", "1", 1);
  auto checked = core::RunExperiment(spec);
  ::unsetenv("BDIO_CHECK_INVARIANTS");
  ASSERT_TRUE(checked.ok());

  // The checker is read-only: not one metric may move.
  EXPECT_EQ(plain->duration_s, checked->duration_s);
  EXPECT_EQ(plain->metrics->ToCsv(), checked->metrics->ToCsv());
}

}  // namespace
}  // namespace bdio::invariants
