#include "hdfs/hdfs.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::hdfs {
namespace {

class HdfsTest : public ::testing::Test {
 protected:
  HdfsTest() { Reset(4); }

  void Reset(uint32_t workers) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = workers;
    // Small fast test cluster.
    cp.node.memory_bytes = GiB(2);
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  /*total_slots=*/4, Rng(1));
    HdfsParams hp;
    hp.block_bytes = Bytes(MiB(16));
    hdfs_ = std::make_unique<Hdfs>(cluster_.get(), hp, Rng(2));
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<Hdfs> hdfs_;
};

TEST_F(HdfsTest, WriteCreatesReplicatedBlocks) {
  Status result = Status::Internal("not called");
  hdfs_->Write("/data/f1", MiB(40), 0, [&](Status s) { result = s; });
  sim_->Run();
  ASSERT_TRUE(result.ok()) << result.ToString();
  auto locs = hdfs_->Locations("/data/f1");
  ASSERT_TRUE(locs.ok());
  ASSERT_EQ(locs.value().size(), 3u);  // 16+16+8 MiB
  EXPECT_EQ(locs.value()[0].bytes, MiB(16));
  EXPECT_EQ(locs.value()[2].bytes, MiB(8));
  for (const auto& b : locs.value()) {
    EXPECT_EQ(b.nodes.size(), 3u);
    EXPECT_EQ(b.nodes[0], 0u);  // first replica local to the writer
    // Replicas are on distinct nodes.
    EXPECT_NE(b.nodes[0], b.nodes[1]);
    EXPECT_NE(b.nodes[1], b.nodes[2]);
    EXPECT_NE(b.nodes[0], b.nodes[2]);
    for (uint32_t n : b.nodes) {
      EXPECT_TRUE(hdfs_->data_node(n)->HasBlock(b.block_id));
    }
  }
}

TEST_F(HdfsTest, WriteMovesReplicationTrafficOverNetwork) {
  hdfs_->Write("/f", MiB(32), 1, [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  // Two remote replicas per block: 2x file size over the network.
  EXPECT_EQ(cluster_->network()->total_bytes(), 2 * MiB(32));
}

TEST_F(HdfsTest, WriteLandsOnHdfsDisks) {
  hdfs_->Write("/f", MiB(48), 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  uint64_t hdfs_sectors = 0, mr_sectors = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster_->node(n)->num_hdfs_disks(); ++d) {
      hdfs_sectors += cluster_->node(n)->hdfs_disk(d)->Stats().sectors[1];
    }
    for (uint32_t d = 0; d < cluster_->node(n)->num_mr_disks(); ++d) {
      mr_sectors += cluster_->node(n)->mr_disk(d)->Stats().sectors[1];
    }
  }
  // 3 replicas of 48 MiB, all on HDFS-class disks.
  EXPECT_EQ(hdfs_sectors * kSectorSize, 3 * MiB(48));
  EXPECT_EQ(mr_sectors, 0u);
}

TEST_F(HdfsTest, DuplicateCreateFails) {
  hdfs_->Write("/f", MiB(1), 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  Status second = Status::OK();
  hdfs_->Write("/f", MiB(1), 0, [&](Status s) { second = s; });
  sim_->Run();
  EXPECT_TRUE(second.IsAlreadyExists());
}

TEST_F(HdfsTest, PreloadIsColdAndInstant) {
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(64)).ok());
  EXPECT_EQ(sim_->pending(), 0u);  // no simulated I/O
  auto locs = hdfs_->Locations("/input");
  ASSERT_TRUE(locs.ok());
  EXPECT_EQ(locs.value().size(), 4u);
  // Blocks spread across writers round-robin.
  EXPECT_NE(locs.value()[0].nodes[0], locs.value()[1].nodes[0]);
  // Reading it must hit the disks (cold).
  Status result = Status::Internal("x");
  hdfs_->Read("/input", 0, MiB(16), 0, [&](Status s) { result = s; });
  sim_->Run();
  ASSERT_TRUE(result.ok());
  uint64_t read_sectors = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    for (uint32_t d = 0; d < 3; ++d) {
      read_sectors += cluster_->node(n)->hdfs_disk(d)->Stats().sectors[0];
    }
  }
  EXPECT_GE(read_sectors * kSectorSize, MiB(16));
}

TEST_F(HdfsTest, LocalReadAvoidsNetwork) {
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(16)).ok());
  auto locs = hdfs_->Locations("/input").value();
  const uint32_t holder = locs[0].nodes[0];
  hdfs_->Read("/input", 0, MiB(16), holder,
              [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  EXPECT_EQ(cluster_->network()->total_bytes(), 0u);
}

TEST_F(HdfsTest, RemoteReadUsesNetwork) {
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(16)).ok());
  auto locs = hdfs_->Locations("/input").value();
  // Find a node that holds no replica of block 0.
  uint32_t reader = 0;
  for (uint32_t n = 0; n < cluster_->num_workers(); ++n) {
    if (std::find(locs[0].nodes.begin(), locs[0].nodes.end(), n) ==
        locs[0].nodes.end()) {
      reader = n;
      break;
    }
  }
  hdfs_->Read("/input", 0, MiB(16), reader,
              [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  EXPECT_EQ(cluster_->network()->total_bytes(), MiB(16));
}

TEST_F(HdfsTest, ReadPastEofFails) {
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(1)).ok());
  Status result = Status::OK();
  hdfs_->Read("/input", 0, MiB(2), 0, [&](Status s) { result = s; });
  sim_->Run();
  EXPECT_TRUE(result.IsOutOfRange());
}

TEST_F(HdfsTest, ReadMissingFileFails) {
  Status result = Status::OK();
  hdfs_->Read("/nope", 0, 1, 0, [&](Status s) { result = s; });
  sim_->Run();
  EXPECT_TRUE(result.IsNotFound());
}

TEST_F(HdfsTest, RangeReadCrossesBlockBoundary) {
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(48)).ok());
  Status result = Status::Internal("x");
  // Read 8 MiB straddling the first block boundary.
  hdfs_->Read("/input", MiB(12), MiB(8), 0, [&](Status s) { result = s; });
  sim_->Run();
  EXPECT_TRUE(result.ok());
}

TEST_F(HdfsTest, DeleteRemovesReplicas) {
  ASSERT_TRUE(hdfs_->Preload("/f", MiB(16)).ok());
  auto locs = hdfs_->Locations("/f").value();
  ASSERT_TRUE(hdfs_->Delete("/f").ok());
  for (uint32_t n : locs[0].nodes) {
    EXPECT_FALSE(hdfs_->data_node(n)->HasBlock(locs[0].block_id));
  }
  EXPECT_FALSE(hdfs_->name_node()->Exists("/f"));
  EXPECT_TRUE(hdfs_->Delete("/f").IsNotFound());
}

TEST_F(HdfsTest, ListByPrefix) {
  ASSERT_TRUE(hdfs_->Preload("/job/part-0", MiB(1)).ok());
  ASSERT_TRUE(hdfs_->Preload("/job/part-1", MiB(1)).ok());
  ASSERT_TRUE(hdfs_->Preload("/other", MiB(1)).ok());
  auto files = hdfs_->name_node()->List("/job/");
  EXPECT_EQ(files.size(), 2u);
  EXPECT_EQ(hdfs_->name_node()->total_bytes(), MiB(3));
}

TEST_F(HdfsTest, WholeFileReadTakesSensibleTime) {
  // 64 MiB local sequential read: at ~150 MB/s this is ~0.45 s; with cache
  // unit granularity and readahead, allow 0.3-3 s.
  Reset(4);
  ASSERT_TRUE(hdfs_->Preload("/input", MiB(64)).ok());
  hdfs_->ReadAll("/input", 0, [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_->Run();
  const double secs = ToSeconds(sim_->Now());
  EXPECT_GT(secs, 0.2);
  EXPECT_LT(secs, 5.0);
}

}  // namespace
}  // namespace bdio::hdfs
