// Coverage for the less-travelled HDFS paths: per-file replication, prefix
// reads, name-node bookkeeping, pipeline accounting.

#include <gtest/gtest.h>

#include "hdfs/hdfs.h"
#include "sim/simulator.h"

namespace bdio::hdfs {
namespace {

class HdfsExtraTest : public ::testing::Test {
 protected:
  HdfsExtraTest() {
    cluster::ClusterParams cp;
    cp.num_workers = 5;
    cp.node.memory_bytes = GiB(2);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, cp, 4, Rng(1));
    HdfsParams hp;
    hp.block_bytes = Bytes(MiB(8));
    hdfs_ = std::make_unique<Hdfs>(cluster_.get(), hp, Rng(2));
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<Hdfs> hdfs_;
};

TEST_F(HdfsExtraTest, WriteReplicatedHonoursFactor) {
  hdfs_->WriteReplicated("/r1", MiB(16), 0, 1,
                         [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_.Run();
  auto locs = hdfs_->Locations("/r1").value();
  for (const auto& b : locs) {
    EXPECT_EQ(b.nodes.size(), 1u);
    EXPECT_EQ(b.nodes[0], 0u);  // writer-local only
  }
  // Replication 1: nothing crossed the network.
  EXPECT_EQ(cluster_->network()->total_bytes(), 0u);

  hdfs_->WriteReplicated("/r2", MiB(8), 1, 2,
                         [](Status s) { ASSERT_TRUE(s.ok()); });
  sim_.Run();
  auto locs2 = hdfs_->Locations("/r2").value();
  EXPECT_EQ(locs2[0].nodes.size(), 2u);
  EXPECT_EQ(cluster_->network()->total_bytes(), MiB(8));
}

TEST_F(HdfsExtraTest, ReplicationCappedByClusterSize) {
  NameNode nn(2, 3, Rng(3));
  const BlockLocation loc = nn.AllocateBlock(0, MiB(1));
  EXPECT_EQ(loc.nodes.size(), 2u);  // can't place 3 replicas on 2 nodes
}

TEST_F(HdfsExtraTest, ZeroByteFile) {
  Status result = Status::Internal("x");
  hdfs_->Write("/empty", 0, 0, [&](Status s) { result = s; });
  sim_.Run();
  ASSERT_TRUE(result.ok());
  auto entry = hdfs_->name_node()->GetFile("/empty");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry.value()->bytes, 0u);
  EXPECT_TRUE(entry.value()->complete);
  EXPECT_TRUE(entry.value()->blocks.empty());
  // Reading zero bytes of it succeeds immediately.
  bool read = false;
  hdfs_->Read("/empty", 0, 0, 0, [&](Status s) {
    ASSERT_TRUE(s.ok());
    read = true;
  });
  sim_.Run();
  EXPECT_TRUE(read);
}

TEST_F(HdfsExtraTest, ConcurrentWritersToDistinctFiles) {
  int done = 0;
  for (uint32_t w = 0; w < 5; ++w) {
    hdfs_->Write("/f" + std::to_string(w), MiB(8), w, [&](Status s) {
      ASSERT_TRUE(s.ok());
      ++done;
    });
  }
  sim_.Run();
  EXPECT_EQ(done, 5);
  EXPECT_EQ(hdfs_->name_node()->file_count(), 5u);
  EXPECT_EQ(hdfs_->name_node()->total_bytes(), 5 * MiB(8));
}

TEST_F(HdfsExtraTest, BlockCountMatchesSize) {
  ASSERT_TRUE(hdfs_->Preload("/x", MiB(8) * 3 + 1).ok());
  auto locs = hdfs_->Locations("/x").value();
  ASSERT_EQ(locs.size(), 4u);  // 3 full blocks + 1 byte
  EXPECT_EQ(locs[3].bytes, 1u);
}

TEST_F(HdfsExtraTest, DataNodeBookkeeping) {
  ASSERT_TRUE(hdfs_->Preload("/x", MiB(8)).ok());
  auto locs = hdfs_->Locations("/x").value();
  DataNode* dn = hdfs_->data_node(locs[0].nodes[0]);
  EXPECT_EQ(dn->block_count(), 1u);
  EXPECT_TRUE(dn->GetBlock(locs[0].block_id).ok());
  EXPECT_TRUE(dn->GetBlock(9999).status().IsNotFound());
  EXPECT_NE(dn->FsOf(locs[0].block_id), nullptr);
  EXPECT_EQ(dn->FsOf(9999), nullptr);
  EXPECT_TRUE(dn->DeleteBlock(9999).IsNotFound());
  // Double-register rejected.
  EXPECT_TRUE(dn->CreateExistingBlock(locs[0].block_id, MiB(1))
                  .status()
                  .IsAlreadyExists());
}

TEST_F(HdfsExtraTest, PreloadedInputColdTagging) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(8)).ok());
  auto locs = hdfs_->Locations("/in").value();
  auto* dn = hdfs_->data_node(locs[0].nodes[0]);
  auto file = dn->GetBlock(locs[0].block_id).value();
  EXPECT_EQ(file->io_tag(), static_cast<uint32_t>(IoTag::kHdfsInput));
}

}  // namespace
}  // namespace bdio::hdfs
