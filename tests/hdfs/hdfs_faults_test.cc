// Recovery-path tests: DataNode death, write-pipeline recovery, checksum
// repair, and data loss when every replica is gone. The healthy-path
// counterpart (no fault ever injected => every recovery counter stays zero)
// rides along in each test's baseline assertions.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>

#include "common/random.h"
#include "hdfs/hdfs.h"
#include "sim/simulator.h"

namespace bdio::hdfs {
namespace {

class HdfsFaultsTest : public ::testing::Test {
 protected:
  HdfsFaultsTest() { Reset(4); }

  void Reset(uint32_t workers) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = workers;
    cp.node.memory_bytes = GiB(2);
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  /*total_slots=*/4, Rng(1));
    HdfsParams hp;
    hp.block_bytes = Bytes(MiB(16));
    hdfs_ = std::make_unique<Hdfs>(cluster_.get(), hp, Rng(2));
  }

  // Asserts every block of `path` has `replicas` distinct live holders,
  // none of them `dead_node` (pass num_workers for "no constraint").
  void ExpectFullyReplicated(const std::string& path, size_t replicas,
                            uint32_t dead_node) {
    auto locs = hdfs_->Locations(path);
    ASSERT_TRUE(locs.ok()) << locs.status().ToString();
    for (const auto& b : locs.value()) {
      EXPECT_EQ(b.nodes.size(), replicas) << "block " << b.block_id;
      std::set<uint32_t> distinct(b.nodes.begin(), b.nodes.end());
      EXPECT_EQ(distinct.size(), b.nodes.size());
      EXPECT_FALSE(distinct.contains(dead_node)) << "block " << b.block_id;
      for (uint32_t n : b.nodes) {
        EXPECT_TRUE(hdfs_->data_node(n)->HasBlock(b.block_id));
      }
    }
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<Hdfs> hdfs_;
};

TEST_F(HdfsFaultsTest, DataNodeDeathTriggersReReplication) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(64)).ok());  // 4 x 16 MiB blocks
  EXPECT_EQ(hdfs_->rereplicated_blocks(), 0u);  // healthy: nothing to do

  hdfs_->InjectDataNodeFailure(1);
  sim_->Run();

  // Every block that held a replica on node 1 re-homed it; the namespace is
  // back at full replication on the three survivors.
  EXPECT_GT(hdfs_->lost_replicas(), 0u);
  EXPECT_EQ(hdfs_->rereplicated_blocks(), hdfs_->lost_replicas());
  EXPECT_EQ(hdfs_->rereplicated_bytes(),
            hdfs_->rereplicated_blocks() * MiB(16));
  EXPECT_EQ(hdfs_->pending_rereplications(), 0u);
  EXPECT_EQ(hdfs_->unrecoverable_blocks(), 0u);
  ExpectFullyReplicated("/in", 3, /*dead_node=*/1);
}

TEST_F(HdfsFaultsTest, InjectFailureIsIdempotent) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(64)).ok());
  hdfs_->InjectDataNodeFailure(1);
  sim_->Run();
  const uint64_t once = hdfs_->rereplicated_blocks();
  hdfs_->InjectDataNodeFailure(1);  // again: replicas already struck
  sim_->Run();
  EXPECT_EQ(hdfs_->rereplicated_blocks(), once);
}

TEST_F(HdfsFaultsTest, WritePipelineRecoversFromMidWriteDeath) {
  // Throttle the writer's NIC so the remote pipeline legs pace the write:
  // page caches would otherwise absorb them near-instantly and the kill
  // below could never catch a remote leg mid-stream. The healthy run (same
  // seeds => same placement and timing as the faulted one) calibrates the
  // close() time; the kill is placed strictly inside a block's transfer.
  cluster_->network()->SetNodeLinkFactor(0, 0.1);
  SimTime write_close;  // close() time, not queue-drain time
  hdfs_->Write("/f", MiB(128), 0, [&](Status s) {
    ASSERT_TRUE(s.ok());
    write_close = sim_->Now();
  });
  sim_->Run();
  ASSERT_GT(write_close, SimTime{});
  EXPECT_EQ(hdfs_->pipeline_recoveries(), 0u);

  Reset(4);
  cluster_->network()->SetNodeLinkFactor(0, 0.1);
  Status result = Status::Internal("not called");
  uint32_t victim = 0;
  hdfs_->Write("/f", MiB(128), 0, [&](Status s) { result = s; });
  // Mid-write, kill a remote pipeline stage of the block that is in flight
  // right now (the last one allocated by the NameNode).
  sim_->ScheduleAt(SimTime(write_close.ns() * 7 / 16), [&] {
    auto now_locs = hdfs_->Locations("/f");
    ASSERT_TRUE(now_locs.ok());
    ASSERT_GE(now_locs.value().back().nodes.size(), 2u);
    victim = now_locs.value().back().nodes[1];
    hdfs_->InjectDataNodeFailure(victim);
  });
  // pending_rereplications() must not report a false quiescence: repairs of
  // the in-flight block defer (source replica still being written) and park
  // in a retry delay, but remain counted as pending. Sample it finely and
  // flag any 0 -> nonzero bounce after recovery started.
  enum class Phase { kIdle, kActive, kQuiet };
  Phase phase = Phase::kIdle;
  bool bounced = false;
  const SimTime horizon = SimTime(write_close.ns() * 3);
  std::function<void()> poll = [&] {
    const size_t p = hdfs_->pending_rereplications();
    if (p > 0) {
      if (phase == Phase::kQuiet) bounced = true;
      phase = Phase::kActive;
    } else if (phase == Phase::kActive) {
      phase = Phase::kQuiet;
    }
    if (sim_->Now() < horizon) sim_->ScheduleAfter(Millis(5), poll);
  };
  sim_->ScheduleAfter(Millis(5), poll);
  sim_->Run();
  EXPECT_EQ(phase, Phase::kQuiet);  // recovery ran, then truly drained
  EXPECT_FALSE(bounced) << "pending_rereplications dropped to 0 while a "
                           "deferred repair was still outstanding";

  // The client never saw the death: dead pipeline stages were spliced out
  // at a chunk boundary and the write completed.
  ASSERT_TRUE(result.ok()) << result.ToString();
  EXPECT_GT(hdfs_->pipeline_recoveries(), 0u);
  // After re-replication drains, every block is back at full replication on
  // the three survivors.
  EXPECT_EQ(hdfs_->pending_rereplications(), 0u);
  ExpectFullyReplicated("/f", 3, victim);
}

TEST_F(HdfsFaultsTest, ReadFailsOverWhenHolderDiesMidRead) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(128)).ok());
  // Reader on node 0 streams the whole file; node 1 (a replica holder for
  // some blocks) dies mid-read.
  Status result = Status::Internal("not called");
  hdfs_->ReadAll("/in", 0, [&](Status s) { result = s; });
  sim_->ScheduleAt(TimeAt(Millis(200)), [&] { hdfs_->InjectDataNodeFailure(1); });
  sim_->Run();
  ASSERT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(hdfs_->checksum_failures(), 0u);
  ExpectFullyReplicated("/in", 3, /*dead_node=*/1);
}

TEST_F(HdfsFaultsTest, CorruptReplicaDetectedAndRepaired) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(16)).ok());  // one block
  auto locs = hdfs_->Locations("/in");
  ASSERT_TRUE(locs.ok());
  ASSERT_EQ(locs.value().size(), 1u);
  const uint32_t corrupt_holder = locs.value()[0].nodes[0];
  ASSERT_TRUE(hdfs_->CorruptReplica("/in", 0, 0).ok());

  // Local-read preference guarantees a reader on the corrupt holder is
  // served from the rotten replica.
  Status result = Status::Internal("not called");
  hdfs_->ReadAll("/in", corrupt_holder, [&](Status s) { result = s; });
  sim_->Run();

  // The read still succeeded: checksum failure detected, replica struck,
  // the range restarted on another holder, and a repair copy queued.
  ASSERT_TRUE(result.ok()) << result.ToString();
  EXPECT_EQ(hdfs_->checksum_failures(), 1u);
  EXPECT_EQ(hdfs_->lost_replicas(), 1u);
  EXPECT_EQ(hdfs_->rereplicated_blocks(), 1u);
  // The quarantined holder is excluded from the repair target choice.
  ExpectFullyReplicated("/in", 3, /*dead_node=*/corrupt_holder);

  // Corruption was one-shot: a second full read is clean.
  result = Status::Internal("not called");
  hdfs_->ReadAll("/in", corrupt_holder, [&](Status s) { result = s; });
  sim_->Run();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(hdfs_->checksum_failures(), 1u);
}

TEST_F(HdfsFaultsTest, CorruptReplicaValidatesTarget) {
  ASSERT_TRUE(hdfs_->Preload("/in", MiB(16)).ok());
  EXPECT_FALSE(hdfs_->CorruptReplica("/nope", 0, 0).ok());
  EXPECT_FALSE(hdfs_->CorruptReplica("/in", 9, 0).ok());
  EXPECT_FALSE(hdfs_->CorruptReplica("/in", 0, 9).ok());
}

TEST_F(HdfsFaultsTest, LosingEveryReplicaIsUnrecoverable) {
  // A single-replica file (TeraSort-output style) on node 1 only.
  Status wrote = Status::Internal("not called");
  hdfs_->WriteReplicated("/f", MiB(16), /*writer=*/1, /*replication=*/1,
                         [&](Status s) { wrote = s; });
  sim_->Run();
  ASSERT_TRUE(wrote.ok());

  hdfs_->InjectDataNodeFailure(1);
  sim_->Run();
  EXPECT_GE(hdfs_->unrecoverable_blocks(), 1u);

  Status read = Status::OK();
  hdfs_->ReadAll("/f", 0, [&](Status s) { read = s; });
  sim_->Run();
  EXPECT_FALSE(read.ok());  // data is gone and the reader is told so
}

}  // namespace
}  // namespace bdio::hdfs
