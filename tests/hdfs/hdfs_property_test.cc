// Property sweep over HDFS: random mixes of preloads, writes, reads and
// deletes with varying replication must keep namespace, block store and
// traffic accounting consistent.

#include <gtest/gtest.h>

#include "hdfs/hdfs.h"
#include "sim/simulator.h"

namespace bdio::hdfs {
namespace {

class HdfsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HdfsProperty, RandomWorkloadKeepsInvariants) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 4;
  cp.node.memory_bytes = GiB(2);
  cluster::Cluster cluster(&sim, cp, 8, Rng(1));
  HdfsParams hp;
  hp.block_bytes = Bytes(MiB(8));
  Hdfs dfs(&cluster, hp, Rng(GetParam()));
  Rng rng(GetParam() * 31 + 5);

  int pending = 0, completed = 0;
  std::vector<std::string> files;
  uint64_t logical_bytes = 0;
  for (int op = 0; op < 40; ++op) {
    const uint64_t kind = rng.Uniform(10);
    const std::string name = "/f" + std::to_string(op);
    if (kind < 3) {
      const uint64_t bytes = KiB(64) + rng.Uniform(MiB(20));
      ASSERT_TRUE(dfs.Preload(name, bytes).ok());
      files.push_back(name);
      logical_bytes += bytes;
    } else if (kind < 6) {
      const uint64_t bytes = KiB(64) + rng.Uniform(MiB(20));
      const uint32_t repl = 1 + static_cast<uint32_t>(rng.Uniform(3));
      ++pending;
      dfs.WriteReplicated(name, bytes,
                          static_cast<uint32_t>(rng.Uniform(4)), repl,
                          [&](Status s) {
                            ASSERT_TRUE(s.ok());
                            ++completed;
                          });
      files.push_back(name);
      logical_bytes += bytes;
    } else if (kind < 9 && !files.empty()) {
      // Read a random whole file (may be mid-write: only preloaded or
      // completed entries have stable metadata, so read preloaded ones).
      const std::string& victim = files[rng.Uniform(files.size())];
      auto entry = dfs.name_node()->GetFile(victim);
      if (entry.ok() && entry.value()->complete &&
          entry.value()->bytes > 0) {
        ++pending;
        dfs.Read(victim, 0, entry.value()->bytes,
                 static_cast<uint32_t>(rng.Uniform(4)), [&](Status s) {
                   ASSERT_TRUE(s.ok());
                   ++completed;
                 });
      }
    } else {
      sim.RunUntil(sim.Now() + Millis(rng.Uniform(300)));
    }
  }
  sim.Run();
  EXPECT_EQ(completed, pending);

  // Namespace bytes match what we created.
  EXPECT_EQ(dfs.name_node()->total_bytes(), logical_bytes);

  // Every block in the namespace is present on every listed holder, with
  // the advertised size.
  for (const FileEntry* f : dfs.name_node()->List("/")) {
    EXPECT_TRUE(f->complete);
    uint64_t file_bytes = 0;
    for (const BlockLocation& b : f->blocks) {
      file_bytes += b.bytes;
      EXPECT_GE(b.nodes.size(), 1u);
      EXPECT_LE(b.nodes.size(), 3u);
      for (uint32_t n : b.nodes) {
        auto blk = dfs.data_node(n)->GetBlock(b.block_id);
        ASSERT_TRUE(blk.ok());
        EXPECT_EQ(blk.value()->size(), b.bytes);
      }
      // Replicas on distinct nodes.
      for (size_t i = 0; i < b.nodes.size(); ++i) {
        for (size_t j = i + 1; j < b.nodes.size(); ++j) {
          EXPECT_NE(b.nodes[i], b.nodes[j]);
        }
      }
    }
    EXPECT_EQ(file_bytes, f->bytes);
  }

  // Deleting everything empties the block stores.
  for (const FileEntry* f : dfs.name_node()->List("/")) {
    ASSERT_TRUE(dfs.Delete(f->path).ok());
  }
  for (uint32_t n = 0; n < 4; ++n) {
    EXPECT_EQ(dfs.data_node(n)->block_count(), 0u);
  }
  EXPECT_EQ(dfs.name_node()->file_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HdfsProperty,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace bdio::hdfs
