#include "storage/disk_model.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/units.h"

namespace bdio::storage {
namespace {

IoRequest MakeReq(IoType t, uint64_t sector, uint64_t sectors) {
  IoRequest r;
  r.type = t;
  r.sector = Sectors(sector);
  r.sectors = Sectors(sectors);
  return r;
}

TEST(DiskModelTest, SequentialStreamHitsSustainedRate) {
  DiskParameters p;
  DiskModel model(p, Rng(1));
  // Stream 256 MiB in 512 KiB requests from sector 0.
  const uint64_t req_sectors = 1024;
  uint64_t sector = 0;
  SimDuration total;
  // First request pays positioning once.
  for (int i = 0; i < 512; ++i) {
    total += model.Service(MakeReq(IoType::kRead, sector, req_sectors));
    sector += req_sectors;
  }
  const double seconds = ToSeconds(total);
  const double mb = 512.0 * 0.5;  // 256 MiB
  const double rate = mb / seconds;
  // Outer zone is 150 MB/s; allow a little positioning amortization.
  EXPECT_GT(rate, 130.0);
  EXPECT_LE(rate, 151.0);
}

TEST(DiskModelTest, RandomAccessAveragesSeekPlusRotation) {
  DiskParameters p;
  DiskModel model(p, Rng(2));
  Rng rng(3);
  SimDuration total;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const uint64_t sector =
        rng.Uniform(p.TotalSectors() - 8) / 8 * 8;
    total += model.Service(MakeReq(IoType::kRead, sector, 8));  // 4 KiB
  }
  const double avg_ms = ToMillis(total) / n;
  // Avg seek 8.5 ms + avg rotation 4.17 ms + tiny transfer: ~12.7 ms.
  EXPECT_GT(avg_ms, 9.0);
  EXPECT_LT(avg_ms, 16.0);
}

TEST(DiskModelTest, InnerZoneSlowerThanOuter) {
  DiskParameters p;
  DiskModel model(p, Rng(4));
  const double outer = model.RateAtSector(Sectors(0));
  const double inner = model.RateAtSector(Sectors(p.TotalSectors() - 1));
  EXPECT_NEAR(outer, 150e6, 1e6);
  EXPECT_NEAR(inner, 75e6, 1e6);
  EXPECT_GT(outer, inner);
}

TEST(DiskModelTest, SequentialContinuationHasZeroPositioning) {
  DiskParameters p;
  DiskModel model(p, Rng(5));
  model.Service(MakeReq(IoType::kWrite, 1000, 100));
  EXPECT_EQ(model.head_sector(), Sectors(1100));
  EXPECT_EQ(model.PositioningTime(Sectors(1100)), SimDuration{});
  EXPECT_GT(model.PositioningTime(Sectors(5000000)), SimDuration{});
}

TEST(DiskModelTest, LongerSeeksCostMore) {
  DiskParameters p;
  // Compare expected positioning cost over many draws (rotational latency is
  // random, so average it out).
  double near_total = 0, far_total = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    DiskModel near_model(p, Rng(100 + i));
    near_model.Service(MakeReq(IoType::kRead, 0, 8));
    near_total += static_cast<double>(
        near_model.PositioningTime(Sectors(p.TotalSectors() / 100)).ns());
    DiskModel far_model(p, Rng(100 + i));
    far_model.Service(MakeReq(IoType::kRead, 0, 8));
    far_total += static_cast<double>(
        far_model.PositioningTime(Sectors(p.TotalSectors() - 8)).ns());
  }
  EXPECT_GT(far_total, near_total * 1.5);
}

TEST(DiskModelTest, WholeDiskScanTakesHours) {
  // Sanity: 1 TB at <=150 MB/s must take >= 6500 s.
  DiskParameters p;
  DiskModel model(p, Rng(6));
  // Extrapolate from a 1 GiB scan at the outer edge (fastest zone).
  uint64_t sector = 0;
  SimDuration total;
  for (int i = 0; i < 2048; ++i) {
    total += model.Service(MakeReq(IoType::kRead, sector, 1024));
    sector += 1024;
  }
  const double sec_per_gib = ToSeconds(total);
  EXPECT_GT(sec_per_gib * 1024, 6500.0);
}

}  // namespace
}  // namespace bdio::storage
