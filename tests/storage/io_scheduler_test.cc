#include "storage/io_scheduler.h"

#include <gtest/gtest.h>

#include <vector>

#include "storage/io_request.h"

namespace bdio::storage {
namespace {

/// Test fixture owning the request pool the scheduler-bound bios live in
/// (mirrors BlockDevice, which owns the pool in production).
class SchedTest : public ::testing::Test {
 protected:
  IoRequest* Bio(IoType t, uint64_t sector, uint64_t sectors,
                 SimTime submit = SimTime{}) {
    IoRequest* r = pool_.Alloc();
    r->type = t;
    r->sector = Sectors(sector);
    r->sectors = Sectors(sectors);
    r->submit_time = submit;
    return r;
  }

  IoRequestPool pool_;
};

using NoopSchedulerTest = SchedTest;
using DeadlineSchedulerTest = SchedTest;

TEST_F(NoopSchedulerTest, FifoOrder) {
  NoopScheduler s(1024);
  s.Add(Bio(IoType::kRead, 100, 8));
  s.Add(Bio(IoType::kRead, 0, 8));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(100));
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(0));
  EXPECT_TRUE(s.empty());
}

TEST_F(NoopSchedulerTest, BackMergesOntoTail) {
  NoopScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 0, 8));
  IoRequest* next = Bio(IoType::kWrite, 8, 8);
  EXPECT_TRUE(s.TryMerge(next));
  EXPECT_EQ(s.size(), 1u);
  IoRequest* merged = s.PopNext(SimTime{});
  EXPECT_EQ(merged->sectors, Sectors(16));
  EXPECT_EQ(merged->bio_count, 2u);
}

TEST_F(NoopSchedulerTest, NoMergeAcrossDirections) {
  NoopScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 0, 8));
  EXPECT_FALSE(s.TryMerge(Bio(IoType::kRead, 8, 8)));
}

TEST_F(NoopSchedulerTest, MergeRespectsMaxSize) {
  NoopScheduler s(16);
  s.Add(Bio(IoType::kWrite, 0, 12));
  EXPECT_FALSE(s.TryMerge(Bio(IoType::kWrite, 12, 8)));  // 20 > 16
}

TEST_F(DeadlineSchedulerTest, SortsBySectorWithinBatch) {
  DeadlineScheduler s(1024);
  s.Add(Bio(IoType::kRead, 500, 8, SimTime{}));
  s.Add(Bio(IoType::kRead, 100, 8, SimTime{}));
  s.Add(Bio(IoType::kRead, 300, 8, SimTime{}));
  // No deadline expired at t=1ms: elevator order from position 0.
  EXPECT_EQ(s.PopNext(TimeAt(Millis(1)))->sector, Sectors(100));
  EXPECT_EQ(s.PopNext(TimeAt(Millis(1)))->sector, Sectors(300));
  EXPECT_EQ(s.PopNext(TimeAt(Millis(1)))->sector, Sectors(500));
}

TEST_F(DeadlineSchedulerTest, ExpiredReadJumpsQueue) {
  DeadlineScheduler s(1024);
  s.Add(Bio(IoType::kRead, 900, 8, SimTime{}));  // oldest, far sector
  s.Add(Bio(IoType::kRead, 10, 8, TimeAt(Millis(400))));
  // At t=600ms the first bio (submit 0, expiry 500ms) is expired.
  EXPECT_EQ(s.PopNext(TimeAt(Millis(600)))->sector, Sectors(900));
}

TEST_F(DeadlineSchedulerTest, ReadsPreferredOverWrites) {
  DeadlineScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 50, 8, SimTime{}));
  s.Add(Bio(IoType::kRead, 700, 8, SimTime{}));
  EXPECT_TRUE(s.PopNext(TimeAt(Millis(1)))->is_read());
}

TEST_F(DeadlineSchedulerTest, WritesNotStarvedForever) {
  DeadlineScheduler s(1024);
  // Keep a write queued while many read batches pass.
  s.Add(Bio(IoType::kWrite, 1, 8, SimTime{}));
  int pops_until_write = 0;
  bool saw_write = false;
  for (int batch = 0; batch < 64 && !saw_write; ++batch) {
    // Top up reads so the read queue is never empty.
    for (int i = 0; i < DeadlineScheduler::kFifoBatch; ++i) {
      s.Add(Bio(IoType::kRead, 1000 + 8 * (batch * 32 + i), 8, TimeAt(Millis(1))));
    }
    for (int i = 0; i < DeadlineScheduler::kFifoBatch; ++i) {
      IoRequest* r = s.PopNext(TimeAt(Millis(2)));
      ++pops_until_write;
      if (!r->is_read()) {
        saw_write = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_write);
  // Bounded by kWritesStarved+1 full batches.
  EXPECT_LE(pops_until_write,
            (DeadlineScheduler::kWritesStarved + 2) *
                DeadlineScheduler::kFifoBatch);
}

TEST_F(DeadlineSchedulerTest, BackAndFrontMerge) {
  DeadlineScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 100, 8));
  EXPECT_TRUE(s.TryMerge(Bio(IoType::kWrite, 108, 8)));
  EXPECT_TRUE(s.TryMerge(Bio(IoType::kWrite, 92, 8)));
  EXPECT_EQ(s.size(), 1u);
  IoRequest* merged = s.PopNext(SimTime{});
  EXPECT_EQ(merged->sector, Sectors(92));
  EXPECT_EQ(merged->sectors, Sectors(24));
  EXPECT_EQ(merged->bio_count, 3u);
}

TEST_F(DeadlineSchedulerTest, MergedCallbacksAllFire) {
  DeadlineScheduler s(1024);
  int fired = 0;
  IoRequest* a = Bio(IoType::kWrite, 0, 8);
  a->on_complete.push_back(InlineFn([&] { ++fired; }));
  s.Add(a);
  IoRequest* b = Bio(IoType::kWrite, 8, 8);
  b->on_complete.push_back(InlineFn([&] { ++fired; }));
  ASSERT_TRUE(s.TryMerge(b));
  IoRequest* merged = s.PopNext(SimTime{});
  for (auto& cb : merged->on_complete) cb();
  EXPECT_EQ(fired, 2);
}

TEST_F(DeadlineSchedulerTest, ElevatorWrapsAround) {
  DeadlineScheduler s(1024);
  s.Add(Bio(IoType::kRead, 100, 8));
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(100));  // position now 108
  s.Add(Bio(IoType::kRead, 50, 8));
  // Only request is below the position: elevator wraps.
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(50));
}

TEST(MakeSchedulerTest, FactoryNames) {
  EXPECT_EQ(MakeScheduler("noop", 1024)->name(), "noop");
  EXPECT_EQ(MakeScheduler("deadline", 1024)->name(), "deadline");
}

}  // namespace
}  // namespace bdio::storage
