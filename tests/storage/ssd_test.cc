#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "storage/disk_model.h"

namespace bdio::storage {
namespace {

IoRequest Req(IoType t, uint64_t sector, uint64_t sectors) {
  IoRequest r;
  r.type = t;
  r.sector = Sectors(sector);
  r.sectors = Sectors(sectors);
  return r;
}

TEST(SsdTest, FlatPositioningLatency) {
  DiskParameters p = DiskParameters::SataSsd2013();
  DiskModel model(p, Rng(1));
  const SimDuration near = model.PositioningTime(Sectors(8));
  model.Service(Req(IoType::kRead, 0, 8));
  const SimDuration far = model.PositioningTime(Sectors(p.TotalSectors() - 8));
  EXPECT_EQ(near, far);
  EXPECT_EQ(ToMillis(near), p.access_latency_ms);
}

TEST(SsdTest, UniformTransferRateAcrossLba) {
  DiskParameters p = DiskParameters::SataSsd2013();
  DiskModel model(p, Rng(2));
  EXPECT_DOUBLE_EQ(model.RateAtSector(Sectors(0)),
                   model.RateAtSector(Sectors(p.TotalSectors() - 1)));
  EXPECT_NEAR(model.RateAtSector(Sectors(0)), 500e6, 1e6);
}

TEST(SsdTest, RandomIoVastlyFasterThanHdd) {
  auto run = [](const DiskParameters& p) {
    sim::Simulator sim;
    BlockDevice dev(&sim, "d", p, Rng(3));
    Rng rng(4);
    const uint64_t slots = p.TotalSectors() / 8 - 1;
    for (int i = 0; i < 300; ++i) {
      dev.Submit(IoType::kRead, Sectors(rng.Uniform(slots) * 8), Sectors(8), nullptr);
    }
    sim.Run();
    return sim.Now();
  };
  const SimTime hdd = run(DiskParameters::Seagate1TB7200());
  const SimTime ssd = run(DiskParameters::SataSsd2013());
  EXPECT_LT(ssd.ns() * 20, hdd.ns());  // > 20x on 4 KiB random reads
}

TEST(SsdTest, SequentialThroughputNearSpec) {
  sim::Simulator sim;
  BlockDevice dev(&sim, "d", DiskParameters::SataSsd2013(), Rng(5));
  for (int i = 0; i < 256; ++i) {
    dev.Submit(IoType::kRead, Sectors(static_cast<uint64_t>(i) * 1024), Sectors(1024),
               nullptr);
  }
  sim.Run();
  const double mb_s = 128.0 / ToSeconds(sim.Now());
  EXPECT_GT(mb_s, 350.0);  // 500 MB/s minus per-request latency
  EXPECT_LE(mb_s, 501.0);
}

TEST(SsdTest, AwaitTinyUnderRandomLoad) {
  sim::Simulator sim;
  BlockDevice dev(&sim, "d", DiskParameters::SataSsd2013(), Rng(6));
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    dev.Submit(IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8), nullptr);
  }
  sim.Run();
  auto st = dev.Stats();
  const double await_ms =
      ToMillis(st.ticks[0]) / static_cast<double>(st.ios[0]);
  EXPECT_LT(await_ms, 10.0);  // HDD equivalent would be hundreds of ms
}

}  // namespace
}  // namespace bdio::storage
