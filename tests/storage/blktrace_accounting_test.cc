// Regression coverage for the blktrace <-> DiskStats accounting contract:
// every elevator merge emits exactly one M record, every request exactly
// one Q and one C, and BlockDevice::AuditInvariants (the hook
// check::InvariantChecker runs per device) cross-checks the two ledgers.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "obs/blktrace.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::storage {
namespace {

class BlktraceAccountingTest : public ::testing::Test {
 protected:
  BlktraceAccountingTest() {
    dev_idx_ = session_.RegisterDevice("sda", "hdfs", 0);
    dev_.AttachBlktrace(&session_, dev_idx_);
  }

  sim::Simulator sim_;
  obs::BlktraceSession session_{&sim_};
  BlockDevice dev_{&sim_, "sda", DiskParameters{}, Rng(1)};
  uint16_t dev_idx_ = 0;
};

TEST_F(BlktraceAccountingTest, MergesEqualMRecords) {
  // Sequential bios merge in the elevator (cf. BlockDeviceTest
  // AdjacentBiosMerge); interleave random ones so not everything folds.
  Rng rng(2);
  for (int burst = 0; burst < 4; ++burst) {
    const uint64_t base = rng.Uniform(100000) * 8;
    for (int i = 0; i < 8; ++i) {
      dev_.Submit(IoType::kWrite, Sectors(base + i * 8), Sectors(8), nullptr);
    }
    dev_.Submit(IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8), nullptr);
  }
  sim_.Run();

  const DiskStatsSnapshot st = dev_.Stats();
  EXPECT_GT(st.merges[1], 0u);
  EXPECT_EQ(st.merges[0] + st.merges[1],
            session_.ActionCount(dev_idx_, obs::BlkAction::kMerge));
  EXPECT_EQ(st.ios[0] + st.ios[1],
            session_.ActionCount(dev_idx_, obs::BlkAction::kComplete));
  EXPECT_EQ(session_.ActionCount(dev_idx_, obs::BlkAction::kQueue),
            session_.ActionCount(dev_idx_, obs::BlkAction::kDispatch));
  // The invariant checker's per-device audit accepts the matched ledgers.
  EXPECT_EQ(dev_.AuditInvariants(), "");
}

TEST_F(BlktraceAccountingTest, LifecycleJoinsPerRequestId) {
  dev_.Submit(IoType::kRead, Sectors(512), Sectors(8), nullptr);
  sim_.Run();

  const auto records = session_.DeviceRecords(dev_idx_);
  ASSERT_EQ(records.size(), 3u);  // Q, D, C — no merges possible
  EXPECT_EQ(records[0].action, 'Q');
  EXPECT_EQ(records[1].action, 'D');
  EXPECT_EQ(records[2].action, 'C');
  // One request id threads the lifecycle; time is monotone through it.
  EXPECT_EQ(records[0].request_id, records[1].request_id);
  EXPECT_EQ(records[1].request_id, records[2].request_id);
  EXPECT_LE(records[0].time_ns, records[1].time_ns);
  EXPECT_LT(records[1].time_ns, records[2].time_ns);
  EXPECT_EQ(records[0].dir, 0);  // read
  EXPECT_EQ(records[2].sectors, 8u);

  // The C-Q delta is exactly the await DiskStats accumulated.
  const DiskStatsSnapshot st = dev_.Stats();
  EXPECT_EQ(st.ticks[0].ns(), records[2].time_ns - records[0].time_ns);
}

TEST_F(BlktraceAccountingTest, MergedBiosKeepTheirOwnGeometry) {
  // Two blockers fill the drive (one in service + one staged in the NCQ
  // pool at ncq_depth 1), so the two adjacent writes behind them sit in
  // the elevator long enough for the second to fold into the first. The M
  // record must carry the merged bio's own sector/length but the
  // *surviving* request's id.
  dev_.Submit(IoType::kRead, Sectors(500000), Sectors(8), nullptr);  // blocker, in service
  dev_.Submit(IoType::kRead, Sectors(600000), Sectors(8), nullptr);  // blocker, staged
  dev_.Submit(IoType::kWrite, Sectors(1000), Sectors(8), nullptr);
  dev_.Submit(IoType::kWrite, Sectors(1008), Sectors(8), nullptr);
  sim_.Run();

  const auto records = session_.DeviceRecords(dev_idx_);
  std::map<char, obs::BlktraceRecord> merged;  // the merged request's rows
  uint32_t merges = 0;
  uint32_t survivor_id = 0;
  for (const auto& r : records) {
    if (r.action == 'M') {
      ++merges;
      survivor_id = r.request_id;
      merged['M'] = r;
    }
  }
  ASSERT_EQ(merges, 1u);
  for (const auto& r : records) {
    if (r.request_id == survivor_id && r.action != 'M') {
      merged[static_cast<char>(r.action)] = r;
    }
  }
  EXPECT_EQ(merged['Q'].sector, 1000u);
  EXPECT_EQ(merged['M'].sector, 1008u);
  EXPECT_EQ(merged['M'].sectors, 8u);
  EXPECT_EQ(merged['M'].dir, 1);  // write
  // The dispatched/completed request covers the merged span.
  EXPECT_EQ(merged['D'].sector, 1000u);
  EXPECT_EQ(merged['D'].sectors, 16u);
  EXPECT_EQ(merged['C'].sectors, 16u);
  EXPECT_EQ(dev_.AuditInvariants(), "");
}

}  // namespace
}  // namespace bdio::storage
