// Property sweep over the storage stack: for every combination of elevator,
// NCQ depth and access mix, a batch of bios must complete with consistent
// accounting.

#include <gtest/gtest.h>

#include <tuple>

#include "common/random.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::storage {
namespace {

enum class Mix { kSeqRead, kSeqWrite, kRandomRead, kRandomMixed };

const char* MixName(Mix m) {
  switch (m) {
    case Mix::kSeqRead:
      return "SeqRead";
    case Mix::kSeqWrite:
      return "SeqWrite";
    case Mix::kRandomRead:
      return "RandomRead";
    case Mix::kRandomMixed:
      return "RandomMixed";
  }
  return "?";
}

using Param = std::tuple<const char* /*elevator*/, uint32_t /*ncq*/, Mix>;

class StorageProperty : public ::testing::TestWithParam<Param> {};

TEST_P(StorageProperty, BatchCompletesWithConsistentAccounting) {
  const auto [elevator, ncq, mix] = GetParam();
  sim::Simulator sim;
  DiskParameters p;
  p.ncq_depth = ncq;
  BlockDevice dev(&sim, "sda", p, Rng(1), elevator);
  Rng rng(42);

  constexpr int kBios = 300;
  uint64_t submitted_sectors = 0;
  int completions = 0;
  uint64_t seq_pos = 4096;
  for (int i = 0; i < kBios; ++i) {
    IoType type = IoType::kRead;
    uint64_t sector = 0;
    uint64_t sectors = 8 + 8 * rng.Uniform(16);
    switch (mix) {
      case Mix::kSeqRead:
        sector = seq_pos;
        seq_pos += sectors;
        break;
      case Mix::kSeqWrite:
        type = IoType::kWrite;
        sector = seq_pos;
        seq_pos += sectors;
        break;
      case Mix::kRandomRead:
        sector = rng.Uniform(p.TotalSectors() / 2048) * 1024;
        break;
      case Mix::kRandomMixed:
        type = rng.Bernoulli(0.5) ? IoType::kRead : IoType::kWrite;
        sector = rng.Uniform(p.TotalSectors() / 2048) * 1024;
        break;
    }
    submitted_sectors += sectors;
    dev.Submit(type, Sectors(sector), Sectors(sectors), [&] { ++completions; });
  }
  sim.Run();

  EXPECT_EQ(completions, kBios);
  const DiskStatsSnapshot st = dev.Stats();
  // Sector conservation: merged or not, every submitted sector is serviced
  // exactly once.
  EXPECT_EQ(st.TotalSectors(), submitted_sectors);
  // Completed requests + merges == submitted bios.
  EXPECT_EQ(st.TotalIos() + st.merges[0] + st.merges[1],
            static_cast<uint64_t>(kBios));
  EXPECT_EQ(st.in_flight, 0u);
  // Busy time bounded by wall clock and positive.
  EXPECT_GT(st.io_ticks, SimDuration{});
  EXPECT_LE(st.io_ticks.ns(), sim.Now().ns());
  // Latency accounting: total latency >= total busy time (queueing >= 0).
  EXPECT_GE(st.ticks[0] + st.ticks[1], st.io_ticks);
  // Weighted queue time >= busy time whenever anything queued.
  EXPECT_GE(st.time_in_queue, st.io_ticks);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StorageProperty,
    ::testing::Combine(::testing::Values("noop", "deadline", "cfq"),
                       ::testing::Values(1u, 8u, 32u),
                       ::testing::Values(Mix::kSeqRead, Mix::kSeqWrite,
                                         Mix::kRandomRead,
                                         Mix::kRandomMixed)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(std::get<0>(info.param)) + "_ncq" +
             std::to_string(std::get<1>(info.param)) + "_" +
             MixName(std::get<2>(info.param));
    });

class SeqThroughputProperty
    : public ::testing::TestWithParam<std::tuple<const char*, uint32_t>> {};

TEST_P(SeqThroughputProperty, SequentialStreamNearSustainedRate) {
  const auto [elevator, ncq] = GetParam();
  sim::Simulator sim;
  DiskParameters p;
  p.ncq_depth = ncq;
  BlockDevice dev(&sim, "sda", p, Rng(2), elevator);
  // 128 MiB sequential read in 512 KiB bios.
  int completions = 0;
  for (int i = 0; i < 256; ++i) {
    dev.Submit(IoType::kRead, Sectors(static_cast<uint64_t>(i) * 1024), Sectors(1024),
               [&] { ++completions; });
  }
  sim.Run();
  EXPECT_EQ(completions, 256);
  const double mb_per_s = 128.0 / ToSeconds(sim.Now());
  EXPECT_GT(mb_per_s, 120.0);  // outer zone is 150 MB/s
  EXPECT_LE(mb_per_s, 151.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SeqThroughputProperty,
    ::testing::Combine(::testing::Values("noop", "deadline"),
                       ::testing::Values(1u, 32u)),
    [](const ::testing::TestParamInfo<std::tuple<const char*, uint32_t>>&
           info) {
      return std::string(std::get<0>(info.param)) + "_ncq" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace bdio::storage
