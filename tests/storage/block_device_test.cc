#include "storage/block_device.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::storage {
namespace {

class BlockDeviceTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  DiskParameters params_;
  BlockDevice dev_{&sim_, "sda", DiskParameters{}, Rng(1)};
};

TEST_F(BlockDeviceTest, SingleReadCompletes) {
  bool done = false;
  dev_.Submit(IoType::kRead, Sectors(0), Sectors(8), [&] { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
  auto st = dev_.Stats();
  EXPECT_EQ(st.ios[0], 1u);
  EXPECT_EQ(st.sectors[0], 8u);
  EXPECT_EQ(st.in_flight, 0u);
  EXPECT_GT(st.io_ticks, SimDuration{});
}

TEST_F(BlockDeviceTest, AwaitAtLeastServiceTime) {
  // Saturate with random reads; await >= svctm must hold in aggregate.
  Rng rng(2);
  int remaining = 200;
  for (int i = 0; i < 200; ++i) {
    dev_.Submit(IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8),
                [&] { --remaining; });
  }
  sim_.Run();
  EXPECT_EQ(remaining, 0);
  auto st = dev_.Stats();
  EXPECT_EQ(st.ios[0], 200u);
  const double await =
      static_cast<double>(st.ticks[0].ns()) / static_cast<double>(st.ios[0]);
  const double svctm =
      static_cast<double>(st.io_ticks.ns()) / static_cast<double>(st.ios[0]);
  EXPECT_GE(await, svctm * 0.999);
  // With a deep queue, waiting dominates service.
  EXPECT_GT(await, 2 * svctm);
}

TEST_F(BlockDeviceTest, UtilizationBoundedByWallClock) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    dev_.Submit(IoType::kWrite, Sectors(rng.Uniform(100000) * 8), Sectors(16), nullptr);
  }
  sim_.Run();
  auto st = dev_.Stats();
  EXPECT_LE(st.io_ticks.ns(), sim_.Now().ns());
  EXPECT_GT(st.io_ticks, SimDuration{});
}

TEST_F(BlockDeviceTest, AdjacentBiosMerge) {
  // Sequential 4 KiB bios submitted together should merge in the elevator.
  int completions = 0;
  for (int i = 0; i < 16; ++i) {
    dev_.Submit(IoType::kWrite, Sectors(1000 + i * 8), Sectors(8), [&] { ++completions; });
  }
  sim_.Run();
  EXPECT_EQ(completions, 16);
  auto st = dev_.Stats();
  EXPECT_EQ(st.sectors[1], 16u * 8);
  EXPECT_GT(st.merges[1], 0u);
  EXPECT_LT(st.ios[1], 16u);
}

TEST_F(BlockDeviceTest, SequentialFasterThanRandom) {
  sim::Simulator sim_seq, sim_rnd;
  BlockDevice seq(&sim_seq, "seq", params_, Rng(4));
  BlockDevice rnd(&sim_rnd, "rnd", params_, Rng(4));
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    seq.Submit(IoType::kRead, Sectors(i * 128), Sectors(128), nullptr);
  }
  Rng rng(5);
  for (int i = 0; i < n; ++i) {
    rnd.Submit(IoType::kRead, Sectors(rng.Uniform(1000000) * 128), Sectors(128), nullptr);
  }
  sim_seq.Run();
  sim_rnd.Run();
  EXPECT_LT(sim_seq.Now().ns(), sim_rnd.Now().ns() / 5);
}

TEST_F(BlockDeviceTest, CompletionObserverSeesRequests) {
  std::vector<uint64_t> sizes;
  dev_.SetCompletionObserver(
      [&](const IoRequest& r) { sizes.push_back(r.sectors.count()); });
  dev_.Submit(IoType::kRead, Sectors(0), Sectors(8), nullptr);
  dev_.Submit(IoType::kWrite, Sectors(5000), Sectors(16), nullptr);
  sim_.Run();
  ASSERT_EQ(sizes.size(), 2u);
}

TEST_F(BlockDeviceTest, TimeInQueueGrowsWithDepth) {
  // Submit a burst; weighted queue time must exceed busy time when depth>1.
  Rng rng(6);
  for (int i = 0; i < 64; ++i) {
    dev_.Submit(IoType::kRead, Sectors(rng.Uniform(1000000) * 8), Sectors(8), nullptr);
  }
  sim_.Run();
  auto st = dev_.Stats();
  EXPECT_GT(st.time_in_queue, st.io_ticks);
}

TEST_F(BlockDeviceTest, StatsSnapshotIsMonotone) {
  Rng rng(7);
  for (int i = 0; i < 32; ++i) {
    dev_.Submit(IoType::kRead, Sectors(rng.Uniform(100000) * 8), Sectors(8), nullptr);
  }
  uint64_t last_ios = 0;
  SimDuration last_ticks;
  while (sim_.Step()) {
    auto st = dev_.Stats();
    EXPECT_GE(st.TotalIos(), last_ios);
    EXPECT_GE(st.io_ticks, last_ticks);
    last_ios = st.TotalIos();
    last_ticks = st.io_ticks;
  }
}

}  // namespace
}  // namespace bdio::storage
