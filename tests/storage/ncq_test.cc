#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::storage {
namespace {

/// Issues `n` random 4 KiB reads and returns total completion time. Uses
/// the noop elevator so the drive's own reordering is what's under test
/// (the deadline elevator already sector-sorts, leaving SPTF little room).
SimTime RunRandomLoad(uint32_t ncq_depth, uint64_t seed,
                      const char* elevator = "noop") {
  sim::Simulator sim;
  DiskParameters p;
  p.ncq_depth = ncq_depth;
  BlockDevice dev(&sim, "sda", p, Rng(1), elevator);
  Rng rng(seed);
  int remaining = 400;
  // Spread across the full stroke so seek time (what SPTF optimizes)
  // actually matters.
  const uint64_t slots = p.TotalSectors() / 8 - 1;
  for (int i = 0; i < 400; ++i) {
    dev.Submit(IoType::kRead, Sectors(rng.Uniform(slots) * 8), Sectors(8),
               [&] { --remaining; });
  }
  sim.Run();
  EXPECT_EQ(remaining, 0);
  return sim.Now();
}

TEST(NcqTest, SptfImprovesRandomThroughput) {
  const SimTime fifo = RunRandomLoad(1, 7);
  const SimTime ncq = RunRandomLoad(32, 7);
  // Shortest-positioning-first among 32 candidates cuts seek distance.
  EXPECT_LT(ncq.ns(), fifo.ns() * 7 / 10);
}

TEST(NcqTest, SptfAddsLittleOverSortingElevator) {
  // The deadline elevator already dispatches in ascending-sector batches;
  // the drive's SPTF must not make things worse.
  const SimTime plain = RunRandomLoad(1, 9, "deadline");
  const SimTime ncq = RunRandomLoad(32, 9, "deadline");
  EXPECT_LE(ncq.ns(), plain.ns() * 105 / 100);
}

TEST(NcqTest, AllRequestsStillComplete) {
  sim::Simulator sim;
  DiskParameters p;
  p.ncq_depth = 8;
  BlockDevice dev(&sim, "sda", p, Rng(2));
  Rng rng(3);
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    dev.Submit(rng.Bernoulli(0.5) ? IoType::kRead : IoType::kWrite,
               Sectors(rng.Uniform(100000) * 8), Sectors(8), [&] { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 100);
  auto st = dev.Stats();
  EXPECT_EQ(st.TotalIos(), 100u);
  EXPECT_EQ(st.in_flight, 0u);
}

TEST(NcqTest, DepthOneMatchesLegacyBehaviour) {
  // With depth 1 the device must service in elevator order (deterministic
  // equality of final clock for the same seed).
  const SimTime a = RunRandomLoad(1, 11);
  const SimTime b = RunRandomLoad(1, 11);
  EXPECT_EQ(a, b);
}

TEST(NcqTest, StatsInvariantsHoldUnderReordering) {
  sim::Simulator sim;
  DiskParameters p;
  p.ncq_depth = 16;
  BlockDevice dev(&sim, "sda", p, Rng(4));
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    dev.Submit(IoType::kRead, Sectors(rng.Uniform(500000) * 8), Sectors(8), nullptr);
  }
  sim.Run();
  auto st = dev.Stats();
  EXPECT_LE(st.io_ticks.ns(), sim.Now().ns());
  // await >= svctm even with out-of-order service.
  const double await = static_cast<double>(st.ticks[0].ns()) /
                       static_cast<double>(st.ios[0]);
  const double svctm = static_cast<double>(st.io_ticks.ns()) /
                       static_cast<double>(st.ios[0]);
  EXPECT_GE(await, svctm * 0.999);
}

}  // namespace
}  // namespace bdio::storage
