#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "storage/io_request.h"
#include "storage/io_scheduler.h"

namespace bdio::storage {
namespace {

class CfqSchedulerTest : public ::testing::Test {
 protected:
  IoRequest* Bio(IoType t, uint64_t sector, uint64_t sectors, uint64_t ctx) {
    IoRequest* r = pool_.Alloc();
    r->type = t;
    r->sector = Sectors(sector);
    r->sectors = Sectors(sectors);
    r->io_context = ctx;
    return r;
  }

  IoRequestPool pool_;
};

TEST_F(CfqSchedulerTest, RoundRobinsBetweenContexts) {
  CfqScheduler s(1024);
  // Two streams, plenty of requests each.
  for (int i = 0; i < 3 * CfqScheduler::kQuantum; ++i) {
    s.Add(Bio(IoType::kRead, 1000 + i * 16, 8, /*ctx=*/1));
    s.Add(Bio(IoType::kRead, 900000 + i * 16, 8, /*ctx=*/2));
  }
  // Track the order of contexts served.
  std::vector<uint64_t> served;
  while (!s.empty()) {
    served.push_back(s.PopNext(SimTime{})->io_context);
  }
  // Slices alternate: after at most kQuantum requests of one stream, the
  // other gets service.
  int run = 1;
  int max_run = 1;
  for (size_t i = 1; i < served.size(); ++i) {
    run = served[i] == served[i - 1] ? run + 1 : 1;
    max_run = std::max(max_run, run);
  }
  EXPECT_LE(max_run, CfqScheduler::kQuantum);
  // Both streams fully served.
  EXPECT_EQ(served.size(), size_t{6 * CfqScheduler::kQuantum});
}

TEST_F(CfqSchedulerTest, AscendingWithinSlice) {
  CfqScheduler s(1024);
  s.Add(Bio(IoType::kRead, 500, 8, 1));
  s.Add(Bio(IoType::kRead, 100, 8, 1));
  s.Add(Bio(IoType::kRead, 300, 8, 1));
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(100));
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(300));
  EXPECT_EQ(s.PopNext(SimTime{})->sector, Sectors(500));
}

TEST_F(CfqSchedulerTest, MergesOnlyWithinContext) {
  CfqScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 100, 8, 1));
  EXPECT_TRUE(s.TryMerge(Bio(IoType::kWrite, 108, 8, 1)));
  IoRequest* other_ctx = Bio(IoType::kWrite, 116, 8, 2);
  EXPECT_FALSE(s.TryMerge(other_ctx));
  s.Add(other_ctx);
  EXPECT_EQ(s.size(), 2u);
  // Front merge within context 1.
  EXPECT_TRUE(s.TryMerge(Bio(IoType::kWrite, 92, 8, 1)));
  bool saw_merged = false;
  while (!s.empty()) {
    IoRequest* r = s.PopNext(SimTime{});
    if (r->io_context == 1) {
      EXPECT_EQ(r->sector, Sectors(92));
      EXPECT_EQ(r->sectors, Sectors(24));
      EXPECT_EQ(r->bio_count, 3u);
      saw_merged = true;
    }
  }
  EXPECT_TRUE(saw_merged);
}

TEST_F(CfqSchedulerTest, NoMergeAcrossDirections) {
  CfqScheduler s(1024);
  s.Add(Bio(IoType::kWrite, 100, 8, 1));
  EXPECT_FALSE(s.TryMerge(Bio(IoType::kRead, 108, 8, 1)));
}

TEST_F(CfqSchedulerTest, SingleContextDegeneratesToElevator) {
  CfqScheduler s(1024);
  Rng rng(1);
  std::vector<uint64_t> sectors;
  for (int i = 0; i < 40; ++i) {
    const uint64_t sec = rng.Uniform(1000000) * 8;
    sectors.push_back(sec);
    s.Add(Bio(IoType::kRead, sec, 8, 7));
  }
  // Dispatch must be a sequence of ascending runs (elevator sweeps).
  uint64_t prev = 0;
  int descents = 0;
  while (!s.empty()) {
    const uint64_t cur = s.PopNext(SimTime{})->sector.count();
    if (cur < prev) ++descents;
    prev = cur;
  }
  EXPECT_LE(descents, 1 + 40 / CfqScheduler::kQuantum);
}

TEST(CfqDeviceTest, TwoStreamsShareSeekyDisk) {
  // One stream hammers a far region; the other reads nearby. Under CFQ
  // both make steady progress (bounded completion-time gap).
  sim::Simulator sim;
  DiskParameters p;
  BlockDevice dev(&sim, "sda", p, Rng(2), "cfq");
  const uint64_t far_base = p.TotalSectors() - 4096000;
  std::map<uint64_t, SimTime> last_done;
  int done_near = 0, done_far = 0;
  for (int i = 0; i < 64; ++i) {
    dev.Submit(IoType::kRead, Sectors(1000 + i * 1024), Sectors(128),
               [&] {
                 ++done_near;
                 last_done[1] = sim.Now();
               },
               /*ctx=*/1);
    dev.Submit(IoType::kRead, Sectors(far_base + i * 1024), Sectors(128),
               [&] {
                 ++done_far;
                 last_done[2] = sim.Now();
               },
               /*ctx=*/2);
  }
  sim.Run();
  EXPECT_EQ(done_near, 64);
  EXPECT_EQ(done_far, 64);
  // Both streams finish within 40% of each other (fair slicing).
  const double a = ToSeconds(last_done[1]);
  const double b = ToSeconds(last_done[2]);
  EXPECT_LT(std::abs(a - b), 0.4 * std::max(a, b));
}

}  // namespace
}  // namespace bdio::storage
