// BlktraceSession coverage: recording, ring-overflow accounting, serialized
// artifact determinism across --jobs, and the iostat-reproduction guarantee
// (the trace carries enough to recompute await/avgrq-sz exactly).

#include "obs/blktrace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/report.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace bdio::obs {
namespace {

TEST(BlktraceSessionTest, RecordsCarryDeviceAndSimTime) {
  sim::Simulator sim;
  BlktraceSession session(&sim);
  const uint16_t sda = session.RegisterDevice("sda", "hdfs", 0);
  const uint16_t sdb = session.RegisterDevice("sdb", "mr", 0);
  EXPECT_EQ(sda, 0);
  EXPECT_EQ(sdb, 1);
  ASSERT_EQ(session.num_devices(), 2u);
  EXPECT_EQ(session.device(sdb).dev_class, "mr");

  session.Record(sda, BlkAction::kQueue, 0, 100, 8, 1, 2, 3, 1);
  sim.ScheduleAfter(Millis(2), [&] {
    session.Record(sda, BlkAction::kComplete, 0, 100, 8, 1, 2, 3, 0);
  });
  sim.Run();

  EXPECT_EQ(session.num_records(), 2u);
  EXPECT_EQ(session.ActionCount(sda, BlkAction::kQueue), 1u);
  EXPECT_EQ(session.ActionCount(sda, BlkAction::kComplete), 1u);
  EXPECT_EQ(session.ActionCount(sdb, BlkAction::kQueue), 0u);

  const auto records = session.DeviceRecords(sda);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].action, 'Q');
  EXPECT_EQ(records[0].time_ns, 0u);
  EXPECT_EQ(records[0].device, sda);
  EXPECT_EQ(records[0].tag, 2u);
  EXPECT_EQ(records[0].job, 3u);
  EXPECT_EQ(records[1].action, 'C');
  EXPECT_EQ(records[1].time_ns, Millis(2).ns());
}

TEST(BlktraceSessionTest, RingOverflowCountsDropsLoudly) {
  sim::Simulator sim;
  MetricsRegistry metrics;
  BlktraceSession session(&sim, /*max_records_per_device=*/4);
  session.AttachMetrics(&metrics);
  const uint16_t dev = session.RegisterDevice("sda", "hdfs", 0);

  for (uint32_t i = 0; i < 6; ++i) {
    session.Record(dev, BlkAction::kQueue, 0, i * 8, 8, i, 0, 0, 1);
  }
  // The two oldest records were overwritten; totals keep counting.
  EXPECT_EQ(session.num_records(), 4u);
  EXPECT_EQ(session.dropped_records(), 2u);
  EXPECT_EQ(session.device(dev).dropped, 2u);
  EXPECT_EQ(session.ActionCount(dev, BlkAction::kQueue), 6u);
  EXPECT_EQ(metrics.CounterValue("blktrace.dropped_records"), 2u);

  // The ring unwinds oldest-first: ids 2,3,4,5 survive in order.
  const auto records = session.DeviceRecords(dev);
  ASSERT_EQ(records.size(), 4u);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].request_id, i + 2);
  }
}

TEST(BlktraceSessionTest, SerializeIsDeterministicAndTagged) {
  sim::Simulator sim;
  BlktraceSession session(&sim);
  session.RegisterDevice("sda", "hdfs", 3);
  session.Record(0, BlkAction::kQueue, 1, 64, 8, 1, 0, 0, 1);

  const std::string bytes = session.Serialize();
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes.substr(0, 8), "BDIOBLK1");
  EXPECT_EQ(bytes, session.Serialize());  // repeat-stable
}

// Runs the small TeraSort cell with lifecycle tracing on, exactly as a
// bench with --blktrace-out does.
core::ExperimentResult BlktraceAtJobs(uint32_t jobs) {
  core::BenchOptions options;
  options.scale = 1.0 / 512;  // tiny for test speed
  options.jobs = jobs;
  // Nonempty blktrace_out (no trace_label filter) makes every grid cell
  // collect lifecycle records; nothing is written to this path here.
  options.blktrace_out = "enabled";
  core::GridRunner grid(options);
  const core::Factors factors = core::SlotsLevels()[0];
  // Two experiments in flight so jobs=4 actually runs them concurrently.
  grid.Prefetch(workloads::WorkloadKind::kTeraSort, factors);
  grid.Prefetch(workloads::WorkloadKind::kAggregation, factors);
  core::ExperimentResult copy = grid.Get(workloads::WorkloadKind::kTeraSort,
                                         factors);
  return copy;
}

TEST(BlktraceDeterminismTest, ArtifactByteIdenticalAcrossJobs) {
  const core::ExperimentResult serial = BlktraceAtJobs(1);
  const core::ExperimentResult parallel = BlktraceAtJobs(4);
  ASSERT_NE(serial.blktrace, nullptr);
  ASSERT_NE(parallel.blktrace, nullptr);
  EXPECT_GT(serial.blktrace->num_records(), 0u);
  EXPECT_EQ(serial.blktrace->dropped_records(), 0u);
  // The tentpole determinism guarantee.
  EXPECT_EQ(serial.blktrace->Serialize(), parallel.blktrace->Serialize());
}

TEST(BlktraceDeterminismTest, TraceReproducesIostatAwaitAndAvgrq) {
  const core::ExperimentResult res = BlktraceAtJobs(1);
  ASSERT_NE(res.blktrace, nullptr);
  ASSERT_NE(res.metrics, nullptr);

  // Recompute iostat's await and avgrq-sz per device class purely from the
  // trace: join each C to its Q by request id, sum the deltas.
  struct ClassAgg {
    double await_ms_sum = 0;
    uint64_t sectors = 0;
    uint64_t requests = 0;
  };
  std::map<std::string, ClassAgg> agg;
  const BlktraceSession& session = *res.blktrace;
  for (size_t i = 0; i < session.num_devices(); ++i) {
    ClassAgg& a = agg[session.device(i).dev_class];
    std::map<uint32_t, uint64_t> queued_at;
    for (const BlktraceRecord& rec :
         session.DeviceRecords(static_cast<uint16_t>(i))) {
      if (rec.action == 'Q') {
        queued_at[rec.request_id] = rec.time_ns;
      } else if (rec.action == 'C') {
        auto it = queued_at.find(rec.request_id);
        ASSERT_NE(it, queued_at.end());
        a.await_ms_sum +=
            static_cast<double>(rec.time_ns - it->second) / 1e6;
        a.sectors += rec.sectors;
        ++a.requests;
        queued_at.erase(it);
      }
    }
    EXPECT_TRUE(queued_at.empty()) << "requests left open in the trace";
  }

  for (const char* cls : {"hdfs", "mr"}) {
    SCOPED_TRACE(cls);
    const ClassAgg& a = agg[cls];
    ASSERT_GT(a.requests, 0u);
    const Labels labels{{"class", cls}};
    Histogram* await = res.metrics->GetHistogram("disk.await_ms", labels, {});
    Histogram* rqsz =
        res.metrics->GetHistogram("disk.request_sectors", labels, {});
    ASSERT_EQ(await->count(), a.requests);
    // Identical values summed in different orders: rounding-only slack.
    EXPECT_NEAR(await->Mean(),
                a.await_ms_sum / static_cast<double>(a.requests),
                1e-9 * await->Mean());
    EXPECT_NEAR(rqsz->Mean(),
                static_cast<double>(a.sectors) /
                    static_cast<double>(a.requests),
                1e-9 * rqsz->Mean());
  }
}

}  // namespace
}  // namespace bdio::obs
