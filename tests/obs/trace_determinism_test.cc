// Trace-session coverage: event emission and the tentpole guarantee that
// the exported Chrome trace JSON is byte-identical whether the bench runs
// its experiments serially or on a parallel grid (--jobs 1 vs --jobs N).

#include <gtest/gtest.h>

#include <string>

#include "core/report.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace bdio::obs {
namespace {

// Minimal structural validation: braces/brackets balance outside strings
// and the document is a single object. (Full parsing is CI's job, via
// `python3 -m json.tool`.)
bool JsonBalanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(TraceSessionTest, SpansFlowsAndMetadataSerialize) {
  sim::Simulator sim;
  TraceSession trace(&sim);
  trace.SetProcessName(0, "cluster");
  const uint64_t span = trace.BeginSpan(0, "mr", "job", "{\"splits\":4}");
  const uint64_t flow = trace.NewFlow();
  ASSERT_NE(flow, 0u);
  trace.FlowStart(flow, 0);
  trace.FlowStep(flow, 1);
  trace.FlowEnd(flow, 1);
  trace.Instant(1, "sched", "merge");
  trace.EndSpan(span);
  trace.EndSpan(span);  // double-end is a no-op (failure paths)
  trace.EndSpan(0);     // zero id is a no-op
  // begin + 3 flow hops + instant + one end.
  EXPECT_EQ(trace.num_events(), 6u);

  const std::string json = trace.ToJson();
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  // Flow terminators bind to the enclosing slice's end.
  EXPECT_NE(json.find("\"ph\":\"f\",\"pid\":1,\"tid\":0,"
                      "\"cat\":\"flow\",\"name\":\"io\""),
            std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"splits\":4}"), std::string::npos);
}

TEST(TraceSessionTest, FlowScopePropagatesAndUnwinds) {
  sim::Simulator sim;
  TraceSession trace(&sim);
  EXPECT_EQ(trace.current_flow(), 0u);
  {
    FlowScope outer(&trace, 7);
    EXPECT_EQ(trace.current_flow(), 7u);
    {
      FlowScope inner(&trace, 9);
      EXPECT_EQ(trace.current_flow(), 9u);
    }
    EXPECT_EQ(trace.current_flow(), 7u);
    FlowScope zero(&trace, 0);  // zero flow: transparent
    EXPECT_EQ(trace.current_flow(), 7u);
  }
  EXPECT_EQ(trace.current_flow(), 0u);
  FlowScope null_session(nullptr, 5);  // null session: no-op, no crash
}

std::string TraceJsonAtJobs(uint32_t jobs) {
  core::BenchOptions options;
  options.scale = 1.0 / 512;  // tiny for test speed
  options.jobs = jobs;
  // A nonempty trace_out (with no trace_label filter) makes every grid
  // cell collect a trace; nothing is written to this path by GridRunner.
  options.trace_out = "enabled";
  core::GridRunner grid(options);
  const core::Factors factors = core::SlotsLevels()[0];
  // Two experiments in flight so jobs=4 actually runs them concurrently.
  grid.Prefetch(workloads::WorkloadKind::kTeraSort, factors);
  grid.Prefetch(workloads::WorkloadKind::kAggregation, factors);
  const auto& res = grid.Get(workloads::WorkloadKind::kTeraSort, factors);
  EXPECT_NE(res.trace, nullptr);
  return res.trace ? res.trace->ToJson() : std::string();
}

TEST(TraceDeterminismTest, JsonByteIdenticalAcrossJobs) {
  const std::string serial = TraceJsonAtJobs(1);
  const std::string parallel = TraceJsonAtJobs(4);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);  // the tentpole determinism guarantee
  EXPECT_TRUE(JsonBalanced(serial));

  // The trace links spans from every layer of the I/O lifecycle.
  for (const char* needle :
       {"\"cat\":\"mr\"", "\"cat\":\"hdfs\"", "\"cat\":\"pagecache\"",
        "\"cat\":\"sched\"", "\"cat\":\"disk\"", "\"cat\":\"net\"",
        "\"ph\":\"s\"", "\"ph\":\"t\"", "\"ph\":\"f\""}) {
    EXPECT_NE(serial.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace bdio::obs
