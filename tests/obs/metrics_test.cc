// Unit coverage for the metrics registry: instrument identity, label
// canonicalization, histogram bucketing, and the serialized forms.

#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace bdio::obs {
namespace {

TEST(MetricsRegistryTest, CounterIdentityAndAccumulation) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("disk.read_bytes", {{"class", "hdfs"}});
  EXPECT_EQ(reg.GetCounter("disk.read_bytes", {{"class", "hdfs"}}), c);
  c->Inc();
  c->Add(41);
  EXPECT_EQ(c->value(), 42u);
  EXPECT_EQ(reg.CounterValue("disk.read_bytes", {{"class", "hdfs"}}), 42u);
  // Different labels => different instrument.
  EXPECT_NE(reg.GetCounter("disk.read_bytes", {{"class", "mr"}}), c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotMatter) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("m", {{"a", "1"}, {"b", "2"}});
  Counter* b = reg.GetCounter("m", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
  a->Add(7);
  EXPECT_EQ(reg.CounterValue("m", {{"b", "2"}, {"a", "1"}}), 7u);
}

TEST(MetricsRegistryTest, AbsentCounterReadsAsZero) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.CounterValue("never.registered"), 0u);
  EXPECT_EQ(reg.CounterValue("never.registered", {{"x", "y"}}), 0u);
}

TEST(MetricsRegistryTest, GaugeLastWriteWins) {
  MetricsRegistry reg;
  Gauge* g = reg.GetGauge("queue.depth");
  g->Set(3);
  g->Set(1.5);
  EXPECT_DOUBLE_EQ(g->value(), 1.5);
}

TEST(HistogramTest, InclusiveUpperEdgesAndOverflow) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (inclusive upper edge)
  h.Observe(3.0);  // bucket 2
  h.Observe(100);  // overflow
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 0u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  EXPECT_DOUBLE_EQ(h.Mean(), 104.5 / 4);
}

TEST(MetricsRegistryTest, HistogramBoundsFixedAtCreation) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("await", {}, {1, 10});
  // A later lookup with different bounds returns the original instrument.
  Histogram* again = reg.GetHistogram("await", {}, {5, 50, 500});
  EXPECT_EQ(h, again);
  EXPECT_EQ(h->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, JsonIsSortedAndWellFormed) {
  MetricsRegistry reg;
  reg.GetCounter("zeta")->Add(3);
  reg.GetCounter("alpha", {{"k", "v"}})->Add(1);
  reg.GetHistogram("hist", {}, {2.5})->Observe(5);
  const std::string json = reg.ToJson();
  // Lexicographic ordering of the canonical keys.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"hist\""));
  EXPECT_LT(json.find("\"hist\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("{\"name\":\"alpha\",\"labels\":{\"k\":\"v\"},"
                      "\"type\":\"counter\",\"value\":1}"),
            std::string::npos);
  EXPECT_NE(json.find("\"buckets\":[{\"le\":2.5,\"count\":0},"
                      "{\"le\":\"inf\",\"count\":1}]"),
            std::string::npos);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
}

TEST(MetricsRegistryTest, CsvRowsWithPrefixAndHistogramExpansion) {
  MetricsRegistry reg;
  reg.GetCounter("c", {{"a", "b"}})->Add(9);
  reg.GetHistogram("h", {}, {1.0})->Observe(0.5);
  const std::string csv = reg.ToCsv("exp1");
  EXPECT_NE(csv.find("exp1,c,a=b,value,9\n"), std::string::npos);
  EXPECT_NE(csv.find("exp1,h,,count,1\n"), std::string::npos);
  EXPECT_NE(csv.find("exp1,h,,sum,0.5\n"), std::string::npos);
  EXPECT_NE(csv.find("exp1,h,,le_1,1\n"), std::string::npos);
  EXPECT_NE(csv.find("exp1,h,,le_inf,0\n"), std::string::npos);
  // Without a prefix the label column is simply absent.
  EXPECT_NE(reg.ToCsv().find("c,a=b,value,9\n"), std::string::npos);
}

}  // namespace
}  // namespace bdio::obs
