#include "mrfunc/local_runner.h"

#include <gtest/gtest.h>

#include <map>

#include "mrfunc/api.h"

namespace bdio::mrfunc {
namespace {

/// Word-count style mapper: splits the value on spaces.
class WordMapper : public Mapper {
 public:
  void Map(const KeyValue& record, Emitter* out) override {
    size_t start = 0;
    const std::string& v = record.value;
    while (start < v.size()) {
      size_t end = v.find(' ', start);
      if (end == std::string::npos) end = v.size();
      if (end > start) out->Emit(v.substr(start, end - start), "1");
      start = end + 1;
    }
  }
};

class CountReducer : public Reducer {
 public:
  void Reduce(const std::string& key, const std::vector<std::string>& values,
              Emitter* out) override {
    uint64_t total = 0;
    for (const auto& v : values) total += std::stoull(v);
    out->Emit(key, std::to_string(total));
  }
};

std::map<std::string, uint64_t> AsMap(const std::vector<KeyValue>& kvs) {
  std::map<std::string, uint64_t> m;
  for (const auto& kv : kvs) m[kv.key] += std::stoull(kv.value);
  return m;
}

TEST(LocalJobRunnerTest, WordCountCorrect) {
  std::vector<KeyValue> input{
      {"1", "a b a"}, {"2", "b c"}, {"3", "a"}, {"4", ""}};
  WordMapper mapper;
  CountReducer reducer;
  LocalJobRunner runner;
  JobConfig config;
  std::vector<KeyValue> output;
  auto stats = runner.Run(input, &mapper, &reducer, config, &output);
  ASSERT_TRUE(stats.ok());
  auto counts = AsMap(output);
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 1u);
  EXPECT_EQ(stats->map_input_records, 4u);
  EXPECT_EQ(stats->map_output_records, 6u);
  EXPECT_EQ(stats->reduce_input_groups, 3u);
  EXPECT_EQ(stats->reduce_output_records, 3u);
}

TEST(LocalJobRunnerTest, CombinerPreservesResultAndShrinksShuffle) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 500; ++i) input.push_back({std::to_string(i), "x x x"});
  WordMapper mapper;
  CountReducer reducer;
  LocalJobRunner runner;
  std::vector<KeyValue> plain_out, combined_out;

  JobConfig plain;
  plain.sort_buffer_bytes = 256;  // force many spills
  auto plain_stats = runner.Run(input, &mapper, &reducer, plain, &plain_out);
  ASSERT_TRUE(plain_stats.ok());

  JobConfig combined = plain;
  combined.use_combiner = true;
  auto combined_stats =
      runner.Run(input, &mapper, &reducer, combined, &combined_out);
  ASSERT_TRUE(combined_stats.ok());

  EXPECT_EQ(AsMap(plain_out), AsMap(combined_out));
  EXPECT_LT(combined_stats->spilled_bytes, plain_stats->spilled_bytes);
  EXPECT_LT(combined_stats->shuffle_bytes, plain_stats->shuffle_bytes);
}

TEST(LocalJobRunnerTest, PartitioningCoversAllReducersDeterministically) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 100; ++i) input.push_back({std::to_string(i), "w" + std::to_string(i)});
  WordMapper mapper;
  CountReducer reducer;
  LocalJobRunner runner;
  JobConfig config;
  config.num_reduce_tasks = 8;
  std::vector<KeyValue> out1, out2;
  ASSERT_TRUE(runner.Run(input, &mapper, &reducer, config, &out1).ok());
  ASSERT_TRUE(runner.Run(input, &mapper, &reducer, config, &out2).ok());
  EXPECT_EQ(out1, out2);  // deterministic
  EXPECT_EQ(AsMap(out1).size(), 100u);
}

TEST(LocalJobRunnerTest, CompressionMeasuredHonestly) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 2000; ++i) {
    input.push_back({std::to_string(i), "repeat repeat repeat repeat"});
  }
  WordMapper mapper;
  CountReducer reducer;
  LocalJobRunner runner;
  JobConfig config;
  config.compress_map_output = true;
  config.sort_buffer_bytes = KiB(16);
  std::vector<KeyValue> output;
  auto stats = runner.Run(input, &mapper, &reducer, config, &output);
  ASSERT_TRUE(stats.ok());
  EXPECT_LT(stats->intermediate_compression_ratio, 0.5);
  EXPECT_GT(stats->intermediate_compression_ratio, 0.0);
  EXPECT_LT(stats->spilled_bytes, stats->map_output_bytes);
}

TEST(LocalJobRunnerTest, RejectsNullArguments) {
  LocalJobRunner runner;
  WordMapper mapper;
  CountReducer reducer;
  std::vector<KeyValue> output;
  JobConfig config;
  EXPECT_TRUE(runner
                  .Run({}, nullptr, &reducer, config, &output)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(runner
                  .Run({}, &mapper, nullptr, config, &output)
                  .status()
                  .IsInvalidArgument());
  config.num_map_tasks = 0;
  EXPECT_TRUE(runner
                  .Run({}, &mapper, &reducer, config, &output)
                  .status()
                  .IsInvalidArgument());
}

TEST(LocalJobRunnerTest, SpillCountGrowsAsBufferShrinks) {
  std::vector<KeyValue> input;
  for (int i = 0; i < 1000; ++i) input.push_back({std::to_string(i), "abc"});
  WordMapper mapper;
  CountReducer reducer;
  LocalJobRunner runner;
  std::vector<KeyValue> output;
  JobConfig big;
  big.sort_buffer_bytes = MiB(8);
  JobConfig small = big;
  small.sort_buffer_bytes = 128;
  auto big_stats = runner.Run(input, &mapper, &reducer, big, &output);
  auto small_stats = runner.Run(input, &mapper, &reducer, small, &output);
  ASSERT_TRUE(big_stats.ok());
  ASSERT_TRUE(small_stats.ok());
  EXPECT_GT(small_stats->spill_count, big_stats->spill_count);
}

TEST(SerializeTest, SizeMatchesSerializedOutput) {
  std::vector<KeyValue> records{{"key", "value"}, {"", ""}, {"a", "bb"}};
  uint64_t expected = 0;
  for (const auto& kv : records) expected += SerializedSize(kv);
  EXPECT_EQ(SerializeRecords(records).size(), expected);
}

TEST(PartitionerTest, HashIsStableAndInRange) {
  HashPartitioner p;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key" + std::to_string(i);
    const uint32_t part = p.Partition(key, 7);
    EXPECT_LT(part, 7u);
    EXPECT_EQ(part, p.Partition(key, 7));
  }
}

TEST(PartitionerTest, TotalOrderRespectsSplitPoints) {
  TotalOrderPartitioner p({"f", "m"});
  EXPECT_EQ(p.Partition("a", 3), 0u);
  EXPECT_EQ(p.Partition("f", 3), 1u);  // key equal to a split point goes right
  EXPECT_EQ(p.Partition("g", 3), 1u);
  EXPECT_EQ(p.Partition("z", 3), 2u);
}

TEST(PartitionerTest, SampleSplitsAreSortedAndBalanced) {
  std::vector<std::string> sample;
  for (int i = 999; i >= 0; --i) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "%04d", i);
    sample.push_back(buf);
  }
  auto splits = TotalOrderPartitioner::SampleSplits(sample, 4);
  ASSERT_EQ(splits.size(), 3u);
  EXPECT_TRUE(std::is_sorted(splits.begin(), splits.end()));
  EXPECT_EQ(splits[0], "0250");
  EXPECT_EQ(splits[1], "0500");
  EXPECT_EQ(splits[2], "0750");
}

}  // namespace
}  // namespace bdio::mrfunc
