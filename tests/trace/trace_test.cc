#include "trace/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::trace {
namespace {

TEST(RecorderTest, CapturesCompletions) {
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "sda", storage::DiskParameters{}, Rng(1));
  Recorder rec;
  rec.Attach(&dev);
  dev.Submit(storage::IoType::kRead, Sectors(100), Sectors(8), nullptr);
  dev.Submit(storage::IoType::kWrite, Sectors(5000), Sectors(16), nullptr);
  sim.Run();
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.events()[0].device, "sda");
  EXPECT_GT(rec.events()[0].complete_time, rec.events()[0].submit_time);
  EXPECT_GE(rec.events()[0].dispatch_time, rec.events()[0].submit_time);
}

TEST(TraceIoTest, RoundTrip) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i) {
    TraceEvent e;
    e.device = i % 2 ? "sda" : "sdb";
    e.type = i % 3 ? storage::IoType::kWrite : storage::IoType::kRead;
    e.sector = i * 1000;
    e.sectors = 8 + i;
    e.bio_count = 1 + i % 4;
    e.submit_time = SimTime(i * 100);
    e.dispatch_time = SimTime(i * 100 + 10);
    e.complete_time = SimTime(i * 100 + 50);
    events.push_back(e);
  }
  std::ostringstream os;
  WriteTrace(events, os);
  std::istringstream is(os.str());
  auto loaded = ReadTrace(is);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*loaded)[i].device, events[i].device);
    EXPECT_EQ((*loaded)[i].type, events[i].type);
    EXPECT_EQ((*loaded)[i].sector, events[i].sector);
    EXPECT_EQ((*loaded)[i].complete_time, events[i].complete_time);
  }
}

TEST(TraceIoTest, RejectsGarbage) {
  std::istringstream is("this is not a trace\n");
  EXPECT_TRUE(ReadTrace(is).status().IsCorruption());
  std::istringstream is2("sda X 0 8 1 0 0 0\n");
  EXPECT_TRUE(ReadTrace(is2).status().IsCorruption());
}

TEST(AnalyzerTest, SequentialVersusRandom) {
  // Sequential stream on sda.
  std::vector<TraceEvent> seq;
  for (int i = 0; i < 100; ++i) {
    TraceEvent e;
    e.device = "sda";
    e.sector = i * 8;
    e.sectors = 8;
    e.submit_time = SimTime(i * 1000);
    e.complete_time = SimTime(i * 1000 + 100);
    seq.push_back(e);
  }
  Analyzer seq_an(seq);
  EXPECT_GT(seq_an.SequentialFraction(), 0.98);

  Rng rng(2);
  std::vector<TraceEvent> rnd;
  for (int i = 0; i < 100; ++i) {
    TraceEvent e;
    e.device = "sda";
    e.sector = rng.Uniform(1000000) * 8;
    e.sectors = 8;
    e.submit_time = SimTime(i * 1000);
    e.complete_time = SimTime(i * 1000 + 100);
    rnd.push_back(e);
  }
  Analyzer rnd_an(rnd);
  EXPECT_LT(rnd_an.SequentialFraction(), 0.1);
}

TEST(AnalyzerTest, AggregatesSizesAndLatencies) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < 50; ++i) {
    TraceEvent e;
    e.device = "sda";
    e.type = storage::IoType::kRead;
    e.sector = i * 100;
    e.sectors = 64;
    e.submit_time = SimTime(i * 1000000);
    e.dispatch_time = e.submit_time + Nanos(500000);
    e.complete_time = e.submit_time + Nanos(2000000);  // 2 ms
    events.push_back(e);
  }
  Analyzer an(events);
  EXPECT_EQ(an.num_requests(), 50u);
  EXPECT_EQ(an.total_bytes(), 50u * 64 * 512);
  EXPECT_DOUBLE_EQ(an.read_fraction(), 1.0);
  EXPECT_NEAR(an.MeanRequestSectors(), 64, 1);
  EXPECT_NEAR(an.latency_ms().mean(), 2.0, 0.1);
  EXPECT_NEAR(an.queue_wait_ms().mean(), 0.5, 0.05);
  std::string summary = an.Summary();
  EXPECT_NE(summary.find("requests: 50"), std::string::npos);
}

TEST(AnalyzerTest, EmptyTrace) {
  Analyzer an({});
  EXPECT_EQ(an.num_requests(), 0u);
  EXPECT_EQ(an.read_fraction(), 0.0);
  EXPECT_EQ(an.SequentialFraction(), 0.0);
}

}  // namespace
}  // namespace bdio::trace
