#include "trace/replay.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::trace {
namespace {

std::vector<TraceEvent> RecordRandomLoad(uint64_t seed, int n) {
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "src", storage::DiskParameters{}, Rng(1));
  Recorder rec;
  rec.Attach(&dev);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    sim.ScheduleAt(TimeAt(Millis(10 * i)), [&dev, &rng] {
      dev.Submit(storage::IoType::kRead, Sectors(rng.Uniform(100000) * 8), Sectors(16),
                 nullptr);
    });
  }
  sim.Run();
  return rec.events();
}

TEST(ReplayerTest, ReplaysEveryEvent) {
  const auto events = RecordRandomLoad(1, 50);
  ASSERT_EQ(events.size(), 50u);
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "dst", storage::DiskParameters{}, Rng(2));
  Replayer replayer(&sim, &dev);
  bool done = false;
  ASSERT_TRUE(replayer.Replay(events, [&] { done = true; }).ok());
  sim.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(replayer.submitted(), 50u);
  EXPECT_EQ(replayer.completed(), 50u);
  EXPECT_EQ(dev.Stats().ios[0], 50u);
  EXPECT_EQ(dev.Stats().sectors[0], 50u * 16);
}

TEST(ReplayerTest, PreservesArrivalPattern) {
  const auto events = RecordRandomLoad(2, 20);
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "dst", storage::DiskParameters{}, Rng(3));
  Recorder rec;
  rec.Attach(&dev);
  Replayer replayer(&sim, &dev);
  ASSERT_TRUE(replayer.Replay(events, nullptr).ok());
  sim.Run();
  ASSERT_EQ(rec.size(), events.size());
  // Relative submit spacing preserved (10 ms grid from the recording).
  const SimDuration gap =
      rec.events()[1].submit_time - rec.events()[0].submit_time;
  EXPECT_EQ(gap, Millis(10));
}

TEST(ReplayerTest, TimeScaleCompresses) {
  const auto events = RecordRandomLoad(3, 20);
  auto run = [&](double scale) {
    sim::Simulator sim;
    storage::BlockDevice dev(&sim, "dst", storage::DiskParameters{},
                             Rng(4));
    Replayer replayer(&sim, &dev);
    replayer.set_time_scale(scale);
    EXPECT_TRUE(replayer.Replay(events, nullptr).ok());
    sim.Run();
    return sim.Now();
  };
  EXPECT_LT(run(0.1), run(1.0));
}

TEST(ReplayerTest, RejectsOutOfBoundsEvents) {
  TraceEvent bad;
  bad.sector = storage::DiskParameters{}.TotalSectors();
  bad.sectors = 8;
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "dst", storage::DiskParameters{}, Rng(5));
  Replayer replayer(&sim, &dev);
  EXPECT_TRUE(replayer.Replay({bad}, nullptr).IsInvalidArgument());
  TraceEvent huge;
  huge.sector = 0;
  huge.sectors = 4096;  // above max_request_sectors
  EXPECT_TRUE(replayer.Replay({huge}, nullptr).IsInvalidArgument());
}

TEST(ReplayerTest, EmptyTraceCompletesImmediately) {
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "dst", storage::DiskParameters{}, Rng(6));
  Replayer replayer(&sim, &dev);
  bool done = false;
  ASSERT_TRUE(replayer.Replay({}, [&] { done = true; }).ok());
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(ReplayerTest, CrossDeviceWhatIf) {
  // Record on a default disk, replay on an NCQ-32 disk: same I/O finishes
  // no later (usually earlier) under SPTF.
  const auto events = RecordRandomLoad(7, 200);
  auto run = [&](uint32_t depth) {
    sim::Simulator sim;
    storage::DiskParameters p;
    p.ncq_depth = depth;
    storage::BlockDevice dev(&sim, "dst", p, Rng(8));
    Replayer replayer(&sim, &dev);
    EXPECT_TRUE(replayer.Replay(events, nullptr).ok());
    sim.Run();
    return sim.Now();
  };
  EXPECT_LE(run(32), run(1));
}

}  // namespace
}  // namespace bdio::trace
