// JobDag driver semantics: dependency ordering, controller-driven rounds,
// the publish/expire lifecycle of intermediate outputs, failure draining,
// and the AuditInvariants contract.

#include "dag/job_dag.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::dag {
namespace {

class JobDagTest : public ::testing::Test {
 protected:
  JobDagTest() {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = 4;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    const mapreduce::SlotConfig slots{4, 4, "test"};
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  slots.total(), Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<mapreduce::MrEngine>(cluster_.get(),
                                                    dfs_.get(), slots,
                                                    Rng(3));
  }

  static DagNode Node(const std::string& name, const std::string& in,
                      const std::string& out) {
    DagNode node;
    node.spec.name = name;
    node.spec.input_path = in;
    node.spec.output_path = out;
    node.spec.num_reduce_tasks = 2;
    return node;
  }

  /// Bytes left in the namespace exactly under `root` (boundary match).
  uint64_t BytesUnder(const std::string& root) {
    uint64_t bytes = 0;
    for (const hdfs::FileEntry* file : dfs_->name_node()->List(root)) {
      if (file->path != root &&
          file->path.compare(0, root.size() + 1, root + "/") != 0) {
        continue;
      }
      bytes += file->bytes;
    }
    return bytes;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<mapreduce::MrEngine> engine_;
};

TEST_F(JobDagTest, EmptyDagCompletesImmediately) {
  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), DagSpec{});
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  sim_->Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(jobdag.nodes_completed(), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, LinearChainPublishesAndExpiresIntermediates) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  DagSpec spec;
  spec.name = "chain";
  spec.nodes.push_back(Node("a", "/in", "/mid"));
  DagNode b = Node("b", "/mid", "/out");
  b.deps.push_back(0);
  spec.nodes.push_back(std::move(b));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);

  EXPECT_EQ(jobdag.nodes_completed(), 2u);
  EXPECT_EQ(jobdag.rounds_completed(), 1u);
  // /mid was published to b, then expired once b finished; /out survives.
  EXPECT_GT(jobdag.intermediate_published_bytes(), 0u);
  EXPECT_EQ(jobdag.intermediate_expired_bytes(),
            jobdag.intermediate_published_bytes());
  EXPECT_GT(jobdag.intermediate_expired_files(), 0u);
  EXPECT_EQ(BytesUnder("/mid"), 0u);
  EXPECT_GT(BytesUnder("/out"), 0u);
  // The dependent ran strictly after its producer.
  const auto& records = jobdag.node_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_GE(records[1].counters.start_time, records[0].counters.end_time);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, RetainsIntermediatesWhenExpiryDisabled) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  DagSpec spec;
  spec.expire_intermediates = false;
  spec.nodes.push_back(Node("a", "/in", "/mid"));
  DagNode b = Node("b", "/mid", "/out");
  b.deps.push_back(0);
  spec.nodes.push_back(std::move(b));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  jobdag.Run([](Status s) { EXPECT_TRUE(s.ok()); });
  sim_->Run();
  EXPECT_GT(jobdag.intermediate_published_bytes(), 0u);
  EXPECT_EQ(jobdag.intermediate_expired_bytes(), 0u);
  EXPECT_GT(BytesUnder("/mid"), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, DiamondRunsFanOutConcurrentlyAndJoins) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  DagSpec spec;
  spec.nodes.push_back(Node("src", "/in", "/stage"));
  DagNode left = Node("left", "/stage", "/left");
  left.deps.push_back(0);
  spec.nodes.push_back(std::move(left));
  DagNode right = Node("right", "/stage", "/right");
  right.deps.push_back(0);
  spec.nodes.push_back(std::move(right));
  DagNode join = Node("join", "/left", "/joined");
  join.deps = {1, 2};
  spec.nodes.push_back(std::move(join));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);
  const auto& records = jobdag.node_records();
  ASSERT_EQ(records.size(), 4u);
  // left and right both start after src and overlap each other (they share
  // the cluster concurrently rather than serializing).
  EXPECT_GE(records[1].counters.start_time, records[0].counters.end_time);
  EXPECT_GE(records[2].counters.start_time, records[0].counters.end_time);
  EXPECT_LT(records[1].counters.start_time, records[2].counters.end_time);
  EXPECT_LT(records[2].counters.start_time, records[1].counters.end_time);
  // join waits for both.
  EXPECT_GE(records[3].counters.start_time, records[1].counters.end_time);
  EXPECT_GE(records[3].counters.start_time, records[2].counters.end_time);
  // /stage fed two consumers; expired only after both closed. /right was
  // published to nobody — it is a final output and survives.
  EXPECT_EQ(BytesUnder("/stage"), 0u);
  EXPECT_GT(BytesUnder("/right"), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

/// Emits `rounds` extra single-node rounds, chaining /r<k> -> /r<k+1>.
class CountingController : public IterationController {
 public:
  explicit CountingController(uint32_t rounds) : rounds_(rounds) {}

  std::vector<DagNode> NextRound(const RoundResult& completed) override {
    observed_rounds_.push_back(completed.round);
    uint64_t written = 0;
    for (const auto& counters : completed.counters) {
      written += counters.hdfs_write_bytes;
    }
    EXPECT_GT(written, 0u);  // Every round writes state in this test.
    if (next_ > rounds_) return {};
    DagNode node;
    node.spec.name = "iter" + std::to_string(next_);
    node.spec.input_path = "/r" + std::to_string(next_ - 1);
    node.spec.output_path = "/r" + std::to_string(next_);
    node.spec.num_reduce_tasks = 2;
    ++next_;
    return {node};
  }

  const std::vector<uint32_t>& observed_rounds() const {
    return observed_rounds_;
  }

 private:
  uint32_t rounds_;
  uint32_t next_ = 1;
  std::vector<uint32_t> observed_rounds_;
};

TEST_F(JobDagTest, ControllerAppendsRoundsUntilConverged) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  auto controller = std::make_shared<CountingController>(3);
  DagSpec spec;
  spec.name = "iter";
  spec.nodes.push_back(Node("iter0", "/in", "/r0"));
  spec.controller = controller;

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);
  // Rounds 0..3 ran (1 static + 3 appended); the controller saw each one.
  EXPECT_EQ(jobdag.rounds_completed(), 4u);
  EXPECT_EQ(jobdag.nodes_completed(), 4u);
  EXPECT_EQ(controller->observed_rounds(),
            (std::vector<uint32_t>{0, 1, 2, 3}));
  // Iteration state expired round by round; the last output survives.
  EXPECT_EQ(BytesUnder("/r0"), 0u);
  EXPECT_EQ(BytesUnder("/r1"), 0u);
  EXPECT_EQ(BytesUnder("/r2"), 0u);
  EXPECT_GT(BytesUnder("/r3"), 0u);
  const auto& rounds = jobdag.round_records();
  ASSERT_EQ(rounds.size(), 4u);
  for (size_t r = 0; r < rounds.size(); ++r) {
    EXPECT_EQ(rounds[r].round, r);
    EXPECT_GT(rounds[r].hdfs_write_bytes, 0u);
    if (r + 1 < rounds.size()) {
      // Every round's state was consumed and expired by the next round.
      EXPECT_GT(rounds[r].expired_bytes, 0u);
    }
  }
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, MaxRoundsCapsARunawayController) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  auto controller = std::make_shared<CountingController>(1000);
  DagSpec spec;
  spec.nodes.push_back(Node("iter0", "/in", "/r0"));
  spec.controller = controller;
  spec.max_rounds = 3;

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  bool done = false;
  jobdag.Run([&](Status s) {
    EXPECT_TRUE(s.ok());
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(jobdag.rounds_completed(), 3u);
}

TEST_F(JobDagTest, MissingInputFailsTheDagAfterDraining) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  DagSpec spec;
  spec.name = "bad";
  spec.nodes.push_back(Node("ok", "/in", "/out1"));
  spec.nodes.push_back(Node("broken", "/missing", "/out2"));
  DagNode never = Node("never", "/out1", "/out3");
  never.deps = {0, 1};
  spec.nodes.push_back(std::move(never));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  Status status = Status::OK();
  bool done = false;
  jobdag.Run([&](Status s) {
    status = s;
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // The failure names the dag and the node.
  EXPECT_NE(status.message().find("bad"), std::string::npos);
  EXPECT_NE(status.message().find("broken"), std::string::npos);
  // No further submissions after the failure: "never" stayed unsubmitted.
  EXPECT_EQ(jobdag.nodes_submitted(), 2u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, ObsCountersMirrorTheLedger) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  obs::MetricsRegistry metrics;
  DagSpec spec;
  spec.name = "obsdag";
  spec.nodes.push_back(Node("a", "/in", "/mid"));
  DagNode b = Node("b", "/mid", "/out");
  b.deps.push_back(0);
  spec.nodes.push_back(std::move(b));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  jobdag.AttachObs(&metrics);
  jobdag.Run([](Status s) { EXPECT_TRUE(s.ok()); });
  sim_->Run();

  const obs::Labels labels{{"dag", "obsdag"}};
  EXPECT_EQ(metrics.CounterValue("mr.dag.nodes_submitted", labels), 2u);
  EXPECT_EQ(metrics.CounterValue("mr.dag.nodes_completed", labels), 2u);
  EXPECT_EQ(metrics.CounterValue("mr.dag.rounds_completed", labels), 1u);
  EXPECT_EQ(
      metrics.CounterValue("mr.dag.intermediate_published_bytes", labels),
      jobdag.intermediate_published_bytes());
  EXPECT_EQ(metrics.CounterValue("mr.dag.intermediate_expired_bytes", labels),
            jobdag.intermediate_expired_bytes());
  EXPECT_EQ(metrics.CounterValue("mr.dag.intermediate_expired_files", labels),
            jobdag.intermediate_expired_files());
}

TEST_F(JobDagTest, PathBoundaryNeverSweepsSiblingPrefixes) {
  // /x/iter1 expiring must not delete /x/iter10 (prefix with boundary).
  ASSERT_TRUE(dfs_->Preload("/x/iter10", MiB(16)).ok());
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  DagSpec spec;
  spec.nodes.push_back(Node("a", "/in", "/x/iter1"));
  DagNode b = Node("b", "/x/iter1", "/x/out");
  b.deps.push_back(0);
  spec.nodes.push_back(std::move(b));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  jobdag.Run([](Status s) { EXPECT_TRUE(s.ok()); });
  sim_->Run();
  EXPECT_EQ(BytesUnder("/x/iter1"), 0u);     // Expired.
  EXPECT_EQ(BytesUnder("/x/iter10"), MiB(16));  // Untouched.
}

TEST_F(JobDagTest, NodeRetryRecoversFromAnExhaustedAttemptBudget) {
  // A one-shot crash-task volley exhausts node a's single task attempt, so
  // its first engine job fails ResourceExhausted; the dag-level retry
  // resubmits the same spec and the second run — no crash armed — lands.
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  DagSpec spec;
  spec.name = "recover";
  spec.retry.max_node_retries = 1;
  DagNode a = Node("a", "/in", "/out");
  a.spec.max_task_attempts = 1;
  spec.nodes.push_back(std::move(a));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  Status status = Status::Internal("not run");
  jobdag.Run([&](Status s) { status = s; });
  sim_->ScheduleAt(TimeAt(Millis(600)), [&] {
    for (uint32_t node = 0; node < 4; ++node) {
      engine_->InjectTaskCrash(node);
    }
  });
  sim_->Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(jobdag.node_retries(), 1u);
  EXPECT_EQ(jobdag.node_failures(), 1u);
  EXPECT_EQ(jobdag.nodes_written_off(), 0u);
  EXPECT_FALSE(jobdag.degraded());
  const auto& records = jobdag.node_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].attempts, 2u);
  EXPECT_EQ(records[0].failures, 1u);
  EXPECT_FALSE(records[0].skipped);
  EXPECT_GT(BytesUnder("/out"), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, ExhaustedRetriesFailTheDagByDefault) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(32)).ok());
  obs::MetricsRegistry metrics;
  DagSpec spec;
  spec.name = "retrydag";
  spec.retry.max_node_retries = 2;  // default on_exhausted: kFailDag
  spec.nodes.push_back(Node("ok", "/in", "/out1"));
  spec.nodes.push_back(Node("poison", "/missing", "/out2"));
  DagNode never = Node("never", "/out2", "/out3");
  never.deps = {1};
  spec.nodes.push_back(std::move(never));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  jobdag.AttachObs(&metrics);
  Status status = Status::OK();
  bool done = false;
  jobdag.Run([&](Status s) {
    status = s;
    done = true;
  });
  sim_->Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  // Every retry re-ran the poisoned node; the budget is attempts - 1.
  EXPECT_EQ(jobdag.node_retries(), 2u);
  EXPECT_EQ(jobdag.node_failures(), 3u);
  EXPECT_EQ(jobdag.nodes_written_off(), 1u);
  EXPECT_EQ(jobdag.nodes_skipped(), 0u);
  EXPECT_EQ(jobdag.nodes_submitted(), 2u);  // "never" stayed unsubmitted
  const auto& records = jobdag.node_records();
  EXPECT_EQ(records[1].attempts, 3u);
  EXPECT_EQ(records[1].failures, 3u);
  EXPECT_NE(records[1].last_error.find("no input"), std::string::npos)
      << records[1].last_error;
  const obs::Labels labels{{"dag", "retrydag"}};
  EXPECT_EQ(metrics.CounterValue("mr.dag.node_retries", labels), 2u);
  EXPECT_EQ(metrics.CounterValue("mr.dag.node_failures", labels), 3u);
  EXPECT_EQ(metrics.CounterValue("mr.dag.nodes_skipped", labels), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, SkipSubtreePolicyDegradesButCompletes) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  DagSpec spec;
  spec.name = "degrade";
  spec.retry.max_node_retries = 1;
  spec.retry.on_exhausted = RetryPolicy::OnExhausted::kSkipSubtree;
  spec.nodes.push_back(Node("a", "/in", "/outa"));         // 0: healthy
  spec.nodes.push_back(Node("b", "/missing", "/outb"));    // 1: poisoned
  DagNode c = Node("c", "/outb", "/outc");                 // 2: starved
  c.deps = {1};
  spec.nodes.push_back(std::move(c));
  DagNode d = Node("d", "/outa", "/outd");                 // 3: unaffected
  d.deps = {0};
  spec.nodes.push_back(std::move(d));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  Status status = Status::Internal("not run");
  jobdag.Run([&](Status s) { status = s; });
  sim_->Run();
  // The dag finishes OK — degraded, not dead.
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(jobdag.degraded());
  EXPECT_EQ(jobdag.node_retries(), 1u);
  EXPECT_EQ(jobdag.nodes_written_off(), 1u);
  EXPECT_EQ(jobdag.nodes_skipped(), 1u);
  EXPECT_EQ(jobdag.nodes_submitted(), 3u);  // a, b, d — never c
  const auto& records = jobdag.node_records();
  EXPECT_EQ(records[1].attempts, 2u);
  EXPECT_FALSE(records[1].skipped);  // written off, not skipped
  EXPECT_TRUE(records[2].skipped);
  EXPECT_EQ(records[2].attempts, 0u);
  // The healthy branch ran to completion.
  EXPECT_GT(BytesUnder("/outd"), 0u);
  EXPECT_EQ(BytesUnder("/outc"), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

TEST_F(JobDagTest, SkippedConsumersStillExpireTheirIntermediates) {
  // c is skipped (its other parent is poisoned) while a — the producer of
  // c's input — is still running. c's claim on /mid is released before
  // /mid is published; /mid must still expire the moment a publishes it,
  // or the dead round's data would leak in the namespace forever.
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  DagSpec spec;
  spec.name = "skipexpire";
  spec.retry.on_exhausted = RetryPolicy::OnExhausted::kSkipSubtree;
  spec.nodes.push_back(Node("a", "/in", "/mid"));        // 0: slow producer
  spec.nodes.push_back(Node("p", "/missing", "/pout"));  // 1: fails at t~0
  DagNode c = Node("c", "/mid", "/out");
  c.deps = {0, 1};
  spec.nodes.push_back(std::move(c));

  JobDag jobdag(sim_.get(), engine_.get(), dfs_.get(), std::move(spec));
  Status status = Status::Internal("not run");
  jobdag.Run([&](Status s) { status = s; });
  sim_->Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(jobdag.degraded());
  EXPECT_EQ(jobdag.nodes_skipped(), 1u);
  // /mid was published, then expired unread.
  EXPECT_GT(jobdag.intermediate_published_bytes(), 0u);
  EXPECT_EQ(jobdag.intermediate_expired_bytes(),
            jobdag.intermediate_published_bytes());
  EXPECT_EQ(BytesUnder("/mid"), 0u);
  EXPECT_EQ(jobdag.AuditInvariants(), "");
}

}  // namespace
}  // namespace bdio::dag
