// Engine-wide job-completion hooks (MrEngine::AddJobCompletionHook): the
// observer API the JobDag driver is built on. The contract under test:
// exactly one firing per submitted job — including the early failure paths
// that never launch a task — after the job's own callback, in registration
// order, with the engine-assigned job id.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

class CompletionHookTest : public ::testing::Test {
 protected:
  CompletionHookTest() {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = 4;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    const SlotConfig slots{4, 4, "test"};
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  slots.total(), Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<MrEngine>(cluster_.get(), dfs_.get(), slots,
                                         Rng(3));
  }

  static SimJobSpec Spec(const std::string& name, const std::string& in,
                         const std::string& out) {
    SimJobSpec spec;
    spec.name = name;
    spec.input_path = in;
    spec.output_path = out;
    spec.num_reduce_tasks = 4;
    return spec;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<MrEngine> engine_;
};

TEST_F(CompletionHookTest, FiresOncePerJobUnderConcurrentSubmission) {
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(128)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(64)).ok());
  ASSERT_TRUE(dfs_->Preload("/inC", MiB(32)).ok());

  std::vector<uint32_t> hook_ids;
  std::vector<bool> hook_after_callback;
  std::vector<bool> callback_done(3, false);
  engine_->AddJobCompletionHook(
      [&](uint32_t job_id, const Status& s, const JobCounters& counters) {
        EXPECT_TRUE(s.ok());
        EXPECT_GT(counters.hdfs_read_bytes, 0u);
        hook_ids.push_back(job_id);
        // The hook contract: fired after the job's own callback.
        hook_after_callback.push_back(callback_done[job_id]);
      });

  // Three jobs in flight at once, sharing the slot pool.
  const SimJobSpec specs[] = {Spec("A", "/inA", "/outA"),
                              Spec("B", "/inB", "/outB"),
                              Spec("C", "/inC", "/outC")};
  for (uint32_t j = 0; j < 3; ++j) {
    const uint32_t id = engine_->SubmitJob(
        specs[j], [&, j](Status s, const JobCounters&) {
          EXPECT_TRUE(s.ok());
          callback_done[j] = true;
        });
    EXPECT_EQ(id, j);  // Ids are monotone in submission order.
  }
  sim_->Run();

  ASSERT_EQ(hook_ids.size(), 3u);  // Once per job, no more.
  std::vector<uint32_t> sorted = hook_ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<uint32_t>{0, 1, 2}));
  for (const bool after : hook_after_callback) EXPECT_TRUE(after);
}

TEST_F(CompletionHookTest, FiresOnMissingAndEmptyInputFailures) {
  ASSERT_TRUE(dfs_->Preload("/empty", 0).ok());

  std::vector<std::pair<uint32_t, StatusCode>> fired;
  engine_->AddJobCompletionHook(
      [&](uint32_t job_id, const Status& s, const JobCounters&) {
        fired.emplace_back(job_id, s.code());
      });

  int callbacks = 0;
  engine_->SubmitJob(Spec("missing", "/does-not-exist", "/out1"),
                     [&](Status s, const JobCounters&) {
                       EXPECT_EQ(s.code(), StatusCode::kNotFound);
                       ++callbacks;
                     });
  engine_->SubmitJob(Spec("empty", "/empty", "/out2"),
                     [&](Status s, const JobCounters&) {
                       // Zero-byte input is rejected before any task runs.
                       EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
                       ++callbacks;
                     });
  sim_->Run();

  EXPECT_EQ(callbacks, 2);
  ASSERT_EQ(fired.size(), 2u);  // The early-exit paths still fire hooks.
  EXPECT_EQ(fired[0].first, 0u);
  EXPECT_EQ(fired[0].second, StatusCode::kNotFound);
  EXPECT_EQ(fired[1].first, 1u);
  EXPECT_EQ(fired[1].second, StatusCode::kInvalidArgument);
}

TEST_F(CompletionHookTest, HooksRunInRegistrationOrder) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  std::vector<int> order;
  engine_->AddJobCompletionHook(
      [&](uint32_t, const Status&, const JobCounters&) {
        order.push_back(1);
      });
  engine_->AddJobCompletionHook(
      [&](uint32_t, const Status&, const JobCounters&) {
        order.push_back(2);
      });
  engine_->RunJob(Spec("J", "/in", "/out"),
                  [](Status s, const JobCounters&) { EXPECT_TRUE(s.ok()); });
  sim_->Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(CompletionHookTest, HookSeesChainedSubmissionFromCallback) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  // A callback that chains the next job (the pre-dag iteration idiom): the
  // hook fires in the same event, after the chain submitted — so a driver
  // keyed on job ids observes the successor already registered.
  uint32_t chained_id = 0;
  bool second_done = false;
  std::vector<uint32_t> hook_ids;
  engine_->AddJobCompletionHook(
      [&](uint32_t job_id, const Status&, const JobCounters&) {
        hook_ids.push_back(job_id);
        if (job_id == 0) {
          // The chained job must already exist when the hook runs.
          EXPECT_EQ(chained_id, 1u);
        }
      });
  engine_->SubmitJob(Spec("first", "/in", "/stage1"),
                     [&](Status s, const JobCounters&) {
                       ASSERT_TRUE(s.ok());
                       chained_id = engine_->SubmitJob(
                           Spec("second", "/stage1", "/stage2"),
                           [&](Status s2, const JobCounters&) {
                             EXPECT_TRUE(s2.ok());
                             second_done = true;
                           });
                     });
  sim_->Run();
  EXPECT_TRUE(second_done);
  EXPECT_EQ(hook_ids, (std::vector<uint32_t>{0, 1}));
}

}  // namespace
}  // namespace bdio::mapreduce
