#include "mapreduce/engine.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() { Reset(4, SlotConfig{4, 4, "test"}); }

  void Reset(uint32_t workers, const SlotConfig& slots) {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = workers;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  slots.total(), Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<MrEngine>(cluster_.get(), dfs_.get(), slots,
                                         Rng(3));
  }

  JobCounters RunToCompletion(const SimJobSpec& spec) {
    Status status = Status::Internal("not run");
    JobCounters counters;
    engine_->RunJob(spec, [&](Status s, const JobCounters& c) {
      status = s;
      counters = c;
    });
    sim_->Run();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return counters;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<MrEngine> engine_;
};

TEST_F(EngineTest, SimpleJobCompletes) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  SimJobSpec spec;
  spec.name = "test";
  spec.input_path = "/in";
  spec.output_path = "/out";
  JobCounters c = RunToCompletion(spec);
  EXPECT_EQ(c.maps_launched, 4u);  // 256 MiB / 64 MiB blocks
  EXPECT_EQ(c.reduces_launched, 16u);
  EXPECT_EQ(c.hdfs_read_bytes, MiB(256));
  EXPECT_NEAR(static_cast<double>(c.hdfs_write_bytes),
              static_cast<double>(MiB(256)), 1e6);
  EXPECT_GT(c.DurationSeconds(), 0);
}

TEST_F(EngineTest, MissingInputFails) {
  SimJobSpec spec;
  spec.input_path = "/nope";
  spec.output_path = "/out";
  Status status = Status::OK();
  engine_->RunJob(spec, [&](Status s, const JobCounters&) { status = s; });
  sim_->Run();
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(EngineTest, MapOnlyJobWritesDirectlyToHdfs) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(128)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.num_reduce_tasks = 0;  // map-only
  spec.output_ratio = 0.5;
  JobCounters c = RunToCompletion(spec);
  EXPECT_EQ(c.reduces_launched, 0u);
  EXPECT_EQ(c.intermediate_write_bytes, 0u);
  EXPECT_NEAR(static_cast<double>(c.hdfs_write_bytes),
              static_cast<double>(MiB(64)), 1e6);
  // Output files exist per map.
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 2u);
}

TEST_F(EngineTest, IntermediateVolumeFollowsRatio) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(128)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.map_output_ratio = 0.5;
  spec.output_ratio = 0.1;
  JobCounters c = RunToCompletion(spec);
  // Spill writes ~= 64 MiB (plus reduce-side runs if buffers overflow).
  EXPECT_GE(c.intermediate_write_bytes, MiB(64) * 95 / 100);
  EXPECT_GT(c.spills, 0u);
  EXPECT_NEAR(static_cast<double>(c.hdfs_write_bytes),
              static_cast<double>(MiB(128)) * 0.1, 2e6);
}

TEST_F(EngineTest, CompressionShrinksIntermediateData) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  SimJobSpec off;
  off.input_path = "/in";
  off.output_path = "/out_off";
  SimJobSpec on = off;
  on.output_path = "/out_on";
  on.compress_intermediate = true;
  on.compress_ratio = 0.5;
  JobCounters c_off = RunToCompletion(off);
  JobCounters c_on = RunToCompletion(on);
  EXPECT_LT(c_on.intermediate_write_bytes,
            c_off.intermediate_write_bytes * 6 / 10);
  EXPECT_LT(c_on.shuffle_network_bytes, c_off.shuffle_network_bytes * 6 / 10);
  // HDFS volumes unaffected by intermediate compression.
  EXPECT_EQ(c_on.hdfs_read_bytes, c_off.hdfs_read_bytes);
}

TEST_F(EngineTest, LocalityPreferredScheduling) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  JobCounters c = RunToCompletion(spec);
  // With 3 replicas on 4 nodes nearly every split can run node-local.
  EXPECT_GE(c.maps_local, c.maps_launched * 3 / 4);
}

TEST_F(EngineTest, SlotsLimitConcurrencyButAllTasksRun) {
  Reset(2, SlotConfig{1, 1, "tiny"});
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  JobCounters c = RunToCompletion(spec);
  EXPECT_EQ(c.maps_launched, 8u);
  EXPECT_EQ(c.reduces_launched, 2u);  // one wave of 1 slot x 2 nodes
}

TEST_F(EngineTest, MoreSlotsShortenCpuBoundJobs) {
  // More splits than slots in both configurations, so slot count is the
  // binding constraint.
  auto run_with = [&](SlotConfig slots) {
    Reset(4, slots);
    EXPECT_TRUE(dfs_->Preload("/in", GiB(2)).ok());
    SimJobSpec spec;
    spec.input_path = "/in";
    spec.output_path = "/out";
    spec.map_cpu_ns_per_byte = 60;  // CPU bound
    JobCounters c = RunToCompletion(spec);
    return c.DurationSeconds();
  };
  const double slow = run_with(SlotConfig{2, 4, "small"});
  const double fast = run_with(SlotConfig{8, 4, "big"});
  EXPECT_LT(fast, slow * 0.75);
}

TEST_F(EngineTest, ChainedJobsShareEngine) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(128)).ok());
  SimJobSpec first;
  first.input_path = "/in";
  first.output_path = "/stage1";
  first.output_ratio = 1.0;
  SimJobSpec second;
  second.input_path = "/stage1";
  second.output_path = "/stage2";

  int completed = 0;
  engine_->RunJob(first, [&](Status s, const JobCounters&) {
    ASSERT_TRUE(s.ok());
    ++completed;
    engine_->RunJob(second, [&](Status s2, const JobCounters&) {
      ASSERT_TRUE(s2.ok());
      ++completed;
    });
  });
  sim_->Run();
  EXPECT_EQ(completed, 2);
  EXPECT_FALSE(dfs_->name_node()->List("/stage2").empty());
}

TEST_F(EngineTest, StreamHelpersMoveExactVolumes) {
  auto* node = cluster_->node(0);
  os::FileSystem* fs = node->mr_fs(0);
  auto file = fs->Create("f").value();
  bool wrote = false;
  AppendStream(sim_.get(), fs, file, MiB(3) + 123, KiB(256),
               [&] { wrote = true; });
  sim_->Run();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(file->size(), MiB(3) + 123);
  bool read = false;
  ReadStream(sim_.get(), fs, file, 0, MiB(3), KiB(256), [&] { read = true; });
  sim_->Run();
  EXPECT_TRUE(read);
}

}  // namespace
}  // namespace bdio::mapreduce
