// Task-retry tests: crashed attempts charge budgets and retry after a
// deterministic backoff; exhausted budgets fail the job (or abandon the
// split under max_failures_percent); strikes blacklist the node and decay;
// none of it may perturb determinism across thread schedules.

#include <future>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "core/runner/thread_pool.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

class RetryTest : public ::testing::Test {
 protected:
  RetryTest() {
    cluster::ClusterParams cp;
    cp.num_workers = 5;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, cp, 8, Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<MrEngine>(cluster_.get(), dfs_.get(),
                                         SlotConfig{4, 4, "t"}, Rng(3));
  }

  SimJobSpec BasicSpec() const {
    SimJobSpec spec;
    spec.name = "retry";
    spec.input_path = "/in";
    spec.output_path = "/out";
    return spec;
  }

  /// Runs `spec` with a crash-task injection on `node` at `when`; returns
  /// the completion status through `status`.
  JobCounters RunWithCrashAt(const SimJobSpec& spec, uint32_t node,
                             SimDuration when, Status* status) {
    *status = Status::Internal("not run");
    JobCounters counters;
    engine_->RunJob(spec, [&](Status s, const JobCounters& c) {
      *status = s;
      counters = c;
    });
    sim_.ScheduleAt(TimeAt(when), [&, node] { engine_->InjectTaskCrash(node); });
    sim_.Run();
    return counters;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<MrEngine> engine_;
};

TEST_F(RetryTest, CrashedAttemptsRetryAndTheJobSucceeds) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  Status status;
  const JobCounters c =
      RunWithCrashAt(BasicSpec(), 2, Millis(600), &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(c.task_failures, 0u);
  EXPECT_EQ(c.retries_scheduled, c.task_failures);
  EXPECT_GT(c.wasted_work_bytes, 0u);
  // Crashed attempts re-ran: more launches than splits.
  EXPECT_GT(c.maps_launched, 8u);
  EXPECT_EQ(c.maps_launched, 8u + c.task_failures);
  // The node stays alive — it was the attempts that died.
  EXPECT_FALSE(engine_->node_failed(2));
  // All output present.
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 20u);
}

TEST_F(RetryTest, CrashAfterMapPhaseIsHarmless) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  Status status;
  const JobCounters c =
      RunWithCrashAt(BasicSpec(), 2, Seconds(3600), &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(c.task_failures, 0u);  // nothing was running by then
}

TEST_F(RetryTest, ExhaustedBudgetFailsTheJobCleanly) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec = BasicSpec();
  spec.max_task_attempts = 1;  // the first crash exhausts the budget
  Status status;
  const JobCounters c = RunWithCrashAt(spec, 2, Millis(600), &status);
  EXPECT_TRUE(status.IsResourceExhausted()) << status.ToString();
  EXPECT_GT(c.task_failures, 0u);
  EXPECT_EQ(c.retries_scheduled, 0u);
  // Failing attempts' I/O is written off, partial output deleted.
  EXPECT_GT(c.wasted_work_bytes, 0u);
  EXPECT_TRUE(dfs_->name_node()->List("/out/").empty());
  // The engine drained clean: a follow-up job on the same engine works.
  SimJobSpec again = BasicSpec();
  again.output_path = "/out2";
  Status second = Status::Internal("not run");
  engine_->RunJob(again, [&](Status s, const JobCounters&) { second = s; });
  sim_.Run();
  EXPECT_TRUE(second.ok()) << second.ToString();
  EXPECT_EQ(dfs_->name_node()->List("/out2/").size(), 20u);
}

TEST_F(RetryTest, MaxFailuresPercentCommitsWithPartialInput) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec = BasicSpec();
  spec.max_task_attempts = 1;
  spec.max_failures_percent = 50.0;  // may abandon up to 4 of 8 splits
  Status status;
  const JobCounters c = RunWithCrashAt(spec, 2, Millis(600), &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(c.splits_abandoned, 0u);
  EXPECT_LE(c.splits_abandoned, 4u);
  EXPECT_EQ(c.splits_abandoned, c.task_failures);
  // Abandoned splits were never re-read: the job read less than the input.
  EXPECT_LT(c.hdfs_read_bytes, MiB(512));
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 20u);
}

TEST_F(RetryTest, StrikesBlacklistTheNodeAndDecayRestoresIt) {
  ASSERT_TRUE(dfs_->Preload("/in", GiB(1)).ok());
  FaultToleranceConfig ft;
  ft.blacklist_strikes = 2;
  ft.blacklist_decay = Seconds(5);
  engine_->SetFaultTolerance(ft);
  Status status;
  bool blacklisted_during_run = false;
  sim_.ScheduleAt(TimeAt(Millis(700)),
                  [&] { blacklisted_during_run = engine_->node_blacklisted(2); });
  const JobCounters c =
      RunWithCrashAt(BasicSpec(), 2, Millis(600), &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(c.task_failures, 2u);
  EXPECT_TRUE(blacklisted_during_run);
  EXPECT_EQ(engine_->nodes_blacklisted(), 1u);
  // The decay window has long passed by job end.
  EXPECT_FALSE(engine_->node_blacklisted(2));
}

TEST_F(RetryTest, TaskTrackerDeathDoesNotChargeTheBudget) {
  // Hadoop semantics: attempts lost to a TaskTracker death are KILLED, not
  // FAILED — even a budget of one survives the node loss.
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec = BasicSpec();
  spec.max_task_attempts = 1;
  Status status = Status::Internal("not run");
  JobCounters c;
  engine_->RunJob(spec, [&](Status s, const JobCounters& counters) {
    status = s;
    c = counters;
  });
  sim_.ScheduleAt(TimeAt(Millis(600)), [&] { engine_->InjectNodeFailure(2); });
  sim_.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(c.task_failures, 0u);
  EXPECT_GE(c.maps_launched, 8u);
}

TEST_F(RetryTest, LostOutputsReexecuteWithChargedCounters) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  Status status = Status::Internal("not run");
  JobCounters c;
  engine_->RunJob(BasicSpec(), [&](Status s, const JobCounters& counters) {
    status = s;
    c = counters;
  });
  // Late enough that node 1 committed maps, early enough that reducers
  // still need their outputs.
  sim_.ScheduleAt(TimeAt(Seconds(3)), [&] { engine_->InjectNodeFailure(1); });
  sim_.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(c.maps_reexecuted, 0u);
  EXPECT_GT(c.reexec_read_bytes, 0u);   // fresh HDFS reads
  EXPECT_GT(c.reexec_write_bytes, 0u);  // fresh spills
  EXPECT_GT(c.wasted_work_bytes, 0u);   // the outputs that died
  EXPECT_GE(c.hdfs_read_bytes, MiB(512) + c.reexec_read_bytes / 2);
}

/// One full crash-retry scenario as a summary string — every field that
/// could drift if backoff jitter or event ordering were nondeterministic.
std::string CrashScenarioSummary(uint64_t seed) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 5;
  cp.node.memory_bytes = GiB(4);
  cp.node.daemon_bytes = MiB(256);
  cp.node.per_slot_heap_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 8, Rng(seed));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(seed + 1));
  MrEngine engine(&cluster, &dfs, SlotConfig{4, 4, "t"}, Rng(seed + 2));
  EXPECT_TRUE(dfs.Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.name = "det";
  spec.input_path = "/in";
  spec.output_path = "/out";
  Status status = Status::Internal("not run");
  JobCounters c;
  engine.RunJob(spec, [&](Status s, const JobCounters& counters) {
    status = s;
    c = counters;
  });
  sim.ScheduleAt(TimeAt(Millis(600)), [&] { engine.InjectTaskCrash(2); });
  sim.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  std::ostringstream out;
  out << c.end_time << "/" << c.maps_launched << "/" << c.task_failures
      << "/" << c.retries_scheduled << "/" << c.hdfs_read_bytes << "/"
      << c.wasted_work_bytes << "/" << engine.retries_scheduled();
  return out.str();
}

TEST(RetryDeterminismTest, BackoffIsIdenticalSerialAndPooledAcrossSeeds) {
  // The retry backoff draws jitter from a forked Rng in sim-event order —
  // never from the wall clock or the host thread schedule. A serial run
  // and four concurrent runs in a thread pool must agree byte for byte,
  // for every seed.
  const std::vector<uint64_t> seeds = {1, 7, 13, 101};
  std::vector<std::string> serial;
  for (const uint64_t seed : seeds) {
    serial.push_back(CrashScenarioSummary(seed));
  }
  core::runner::ThreadPool pool(4);
  std::vector<std::future<std::string>> pooled;
  for (const uint64_t seed : seeds) {
    pooled.push_back(
        pool.Async([seed] { return CrashScenarioSummary(seed); }));
  }
  for (size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(pooled[i].get(), serial[i]) << "seed " << seeds[i];
  }
  // And the scenario is genuinely exercising the machinery.
  for (const std::string& summary : serial) {
    EXPECT_NE(summary.find('/'), std::string::npos);
  }
}

}  // namespace
}  // namespace bdio::mapreduce
