// Parameterized sweep of the simulated engine over workload plans x
// compression x slot configs: every combination must complete with
// conserved volumes and sane durations.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"
#include "workloads/profile.h"

namespace bdio::mapreduce {
namespace {

using workloads::WorkloadKind;
using Param = std::tuple<WorkloadKind, bool /*compress*/, bool /*big slots*/>;

class EngineSweep : public ::testing::TestWithParam<Param> {};

TEST_P(EngineSweep, PlanExecutesWithConservedVolumes) {
  const auto [workload, compress, big_slots] = GetParam();
  const double scale = 1.0 / 512;

  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 4;
  cp.node.memory_bytes = static_cast<uint64_t>(GiB(16) * scale);
  cp.node.daemon_bytes = static_cast<uint64_t>(GiB(2) * scale);
  cp.node.per_slot_heap_bytes = static_cast<uint64_t>(MiB(200) * scale);
  cp.node.min_cache_bytes = MiB(16);
  const SlotConfig slots =
      big_slots ? SlotConfig::Paper_2_16() : SlotConfig::Paper_1_8();
  cluster::Cluster cluster(&sim, cp, slots.total(), Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));

  workloads::PlanOptions options;
  options.scale = scale;
  options.compress_intermediate = compress;
  options.kmeans_iterations = 1;
  options.pagerank_iterations = 2;
  const auto plan = workloads::BuildPlan(workload, options);
  ASSERT_TRUE(dfs.Preload(plan.dataset_path, plan.dataset_bytes).ok());

  MrEngine engine(&cluster, &dfs, slots, Rng(3));
  std::vector<JobCounters> jobs;
  size_t next = 0;
  std::function<void()> run_next = [&] {
    if (next >= plan.jobs.size()) return;
    const auto& spec = plan.jobs[next++].spec;
    engine.RunJob(spec, [&](Status s, const JobCounters& c) {
      ASSERT_TRUE(s.ok()) << s.ToString();
      jobs.push_back(c);
      run_next();
    });
  };
  run_next();
  sim.Run();

  ASSERT_EQ(jobs.size(), plan.jobs.size());
  for (const auto& c : jobs) {
    EXPECT_GT(c.maps_launched, 0u);
    EXPECT_GT(c.hdfs_read_bytes, 0u);
    EXPECT_GT(c.DurationSeconds(), 0.0);
    // Intermediate reads never exceed what exists to read: map outputs are
    // read once by the shuffle, plus merge passes on both sides (<= 3x).
    EXPECT_LE(c.intermediate_read_bytes,
              3 * c.intermediate_write_bytes + MiB(1));
    // Shuffle moves at most what was spilled (plus framing minimums).
    EXPECT_LE(c.shuffle_network_bytes,
              c.intermediate_write_bytes + MiB(1));
  }
  // First job reads the whole (scaled) dataset.
  EXPECT_EQ(jobs[0].hdfs_read_bytes, plan.dataset_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineSweep,
    ::testing::Combine(::testing::Values(WorkloadKind::kTeraSort,
                                         WorkloadKind::kAggregation,
                                         WorkloadKind::kKMeans,
                                         WorkloadKind::kPageRank),
                       ::testing::Bool(), ::testing::Bool()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(
                 workloads::WorkloadShortName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_on" : "_off") +
             (std::get<2>(info.param) ? "_2_16" : "_1_8");
    });

}  // namespace
}  // namespace bdio::mapreduce
