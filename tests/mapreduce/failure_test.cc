// Fault-tolerance tests: TaskTracker failures mid-job must not lose work
// or wedge the engine; re-execution shows up in the counters.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() {
    cluster::ClusterParams cp;
    cp.num_workers = 5;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, cp, 8, Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<MrEngine>(cluster_.get(), dfs_.get(),
                                         SlotConfig{4, 4, "t"}, Rng(3));
  }

  JobCounters RunWithFailureAt(const SimJobSpec& spec, uint32_t node,
                               SimDuration when) {
    Status status = Status::Internal("not run");
    JobCounters counters;
    engine_->RunJob(spec, [&](Status s, const JobCounters& c) {
      status = s;
      counters = c;
    });
    sim_.ScheduleAt(TimeAt(when), [&] { engine_->InjectNodeFailure(node); });
    sim_.Run();
    EXPECT_TRUE(status.ok()) << status.ToString();
    return counters;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<MrEngine> engine_;
};

TEST_F(FailureTest, JobSurvivesEarlyFailure) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  const JobCounters c = RunWithFailureAt(spec, 2, Millis(600));
  // All 8 splits processed despite losing a node; some maps re-ran.
  EXPECT_GE(c.maps_launched, 8u);
  EXPECT_TRUE(engine_->node_failed(2));
  // Output files all present.
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 20u);  // 4 slots x 5
}

TEST_F(FailureTest, LostMapOutputsAreReExecuted) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  // Fail late enough that node 1 finished some maps, early enough that
  // reducers still need those outputs.
  const JobCounters c = RunWithFailureAt(spec, 1, Seconds(3));
  EXPECT_GE(c.maps_launched, 8u);
  // The job still read at least the full input (re-reads add more).
  EXPECT_GE(c.hdfs_read_bytes, MiB(512));
}

TEST_F(FailureTest, FailureDuringReducePhase) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.map_cpu_ns_per_byte = 1;  // short map phase, long-ish reduce
  const JobCounters c = RunWithFailureAt(spec, 3, Seconds(6));
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 20u);
  EXPECT_GE(c.reduces_launched, 20u);
}

TEST_F(FailureTest, MapOnlyJobSurvives) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.num_reduce_tasks = 0;
  spec.output_ratio = 0.5;
  const JobCounters c = RunWithFailureAt(spec, 0, Seconds(1));
  EXPECT_GE(c.maps_launched, 8u);
  // One output per split, no duplicates from discarded attempts.
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 8u);
}

TEST_F(FailureTest, FailureAfterJobEndIsHarmless) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(64)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  bool done = false;
  engine_->RunJob(spec, [&](Status s, const JobCounters&) {
    ASSERT_TRUE(s.ok());
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  engine_->InjectNodeFailure(4);  // no active job: must not crash
  sim_.Run();
  EXPECT_TRUE(engine_->node_failed(4));
}

TEST_F(FailureTest, DoubleInjectionIsIdempotent) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  Status status = Status::Internal("x");
  engine_->RunJob(spec, [&](Status s, const JobCounters&) { status = s; });
  sim_.ScheduleAt(TimeAt(Millis(500)), [&] {
    engine_->InjectNodeFailure(2);
    engine_->InjectNodeFailure(2);
  });
  sim_.Run();
  EXPECT_TRUE(status.ok());
}

TEST_F(FailureTest, TwoNodeFailures) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(512)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  Status status = Status::Internal("x");
  engine_->RunJob(spec, [&](Status s, const JobCounters&) { status = s; });
  sim_.ScheduleAt(TimeAt(Millis(800)), [&] { engine_->InjectNodeFailure(0); });
  sim_.ScheduleAt(TimeAt(Seconds(4)), [&] { engine_->InjectNodeFailure(1); });
  sim_.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  // Reducers land on the surviving 3 nodes only: 12 partitions... the wave
  // was sized before the failures (20), so all 20 must still complete.
  EXPECT_EQ(dfs_->name_node()->List("/out/").size(), 20u);
}

}  // namespace
}  // namespace bdio::mapreduce
