// Speculative-execution tests: a straggler node's maps get backup attempts
// on spare slots, exactly one attempt per split commits, losers are killed
// and their spills deleted, and the whole mechanism is deterministic.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

struct SpecRun {
  JobCounters counters;
  uint64_t launched = 0;
  uint64_t killed = 0;
  uint64_t wasted_bytes = 0;
  size_t output_files = 0;
  size_t leftover_spills = 0;  ///< MR-disk files after the sim drained.
};

// Builds a fresh 5-node stack, makes node 4 a straggler (every disk 8x
// slower), runs one 32-split job, and reports the engine's speculation
// totals. Fixed seeds: two calls must produce identical results.
SpecRun RunWithStraggler(bool speculation) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 5;
  cp.node.memory_bytes = GiB(4);
  cp.node.daemon_bytes = MiB(256);
  cp.node.per_slot_heap_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 8, Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));
  MrEngine engine(&cluster, &dfs, SlotConfig{4, 4, "t"}, Rng(3));

  cluster::Node* straggler = cluster.node(4);
  for (uint32_t d = 0; d < straggler->num_hdfs_disks(); ++d) {
    straggler->hdfs_disk(d)->SetServiceFactor(8.0);
  }
  for (uint32_t d = 0; d < straggler->num_mr_disks(); ++d) {
    straggler->mr_disk(d)->SetServiceFactor(8.0);
  }

  // 32 splits > 16 fast-node map slots, so the scheduler must place maps on
  // the slow node; those become the stragglers worth backing up.
  EXPECT_TRUE(dfs.Preload("/in", GiB(2)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.speculative_execution = speculation;

  SpecRun out;
  Status status = Status::Internal("not run");
  engine.RunJob(spec, [&](Status s, const JobCounters& c) {
    status = s;
    out.counters = c;
  });
  sim.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();

  out.launched = engine.speculative_launched();
  out.killed = engine.speculative_killed();
  out.wasted_bytes = engine.speculative_wasted_bytes();
  out.output_files = dfs.name_node()->List("/out/").size();
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster.node(n)->num_mr_disks(); ++d) {
      out.leftover_spills += cluster.node(n)->mr_fs(d)->file_count();
    }
  }
  return out;
}

TEST(SpeculativeTest, BackupsRescueStragglerNode) {
  const SpecRun r = RunWithStraggler(/*speculation=*/true);
  // Stragglers crossed the slowdown threshold while spare slots existed.
  EXPECT_GT(r.launched, 0u);
  // Every backup race ends with exactly one loser killed: no node died, so
  // each split that got a backup had both attempts run to the finish line.
  EXPECT_EQ(r.killed, r.launched);
  EXPECT_EQ(r.counters.maps_launched, 32 + r.launched);
  // The losers' duplicate input reads and deleted spills are charged.
  EXPECT_GT(r.wasted_bytes, 0u);
  // One commit per split: the output is exactly one reduce wave, and every
  // loser's spill files were deleted when it was killed.
  EXPECT_EQ(r.output_files, 20u);  // 4 reduce slots x 5 nodes
  EXPECT_EQ(r.leftover_spills, 0u);
}

TEST(SpeculativeTest, OffByDefaultLaunchesNothing) {
  const SpecRun r = RunWithStraggler(/*speculation=*/false);
  EXPECT_EQ(r.launched, 0u);
  EXPECT_EQ(r.killed, 0u);
  EXPECT_EQ(r.wasted_bytes, 0u);
  EXPECT_EQ(r.counters.maps_launched, 32u);
  EXPECT_EQ(r.counters.speculative_launched, 0u);
  EXPECT_EQ(r.output_files, 20u);
}

TEST(SpeculativeTest, SpeculationHidesTheStraggler) {
  const SpecRun off = RunWithStraggler(/*speculation=*/false);
  const SpecRun on = RunWithStraggler(/*speculation=*/true);
  // Backups re-run the slow node's maps on healthy nodes, so the map phase
  // (and the job) finishes sooner — the whole point of the mechanism.
  EXPECT_LT(on.counters.DurationSeconds(), off.counters.DurationSeconds());
}

TEST(SpeculativeTest, SpeculationIsDeterministic) {
  const SpecRun a = RunWithStraggler(/*speculation=*/true);
  const SpecRun b = RunWithStraggler(/*speculation=*/true);
  EXPECT_EQ(a.launched, b.launched);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.counters.maps_launched, b.counters.maps_launched);
  EXPECT_EQ(a.counters.hdfs_read_bytes, b.counters.hdfs_read_bytes);
  EXPECT_EQ(a.counters.intermediate_write_bytes,
            b.counters.intermediate_write_bytes);
  EXPECT_EQ(a.counters.DurationSeconds(), b.counters.DurationSeconds());
}

}  // namespace
}  // namespace bdio::mapreduce
