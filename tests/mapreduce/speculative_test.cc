// Speculative-execution tests: a straggler node's maps get backup attempts
// on spare slots, exactly one attempt per split commits, losers are killed
// and their spills deleted, and the whole mechanism is deterministic.

#include <gtest/gtest.h>

#include <functional>

#include "cluster/cluster.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

struct SpecRun {
  JobCounters counters;
  uint64_t launched = 0;
  uint64_t killed = 0;
  uint64_t wasted_bytes = 0;
  size_t output_files = 0;
  size_t leftover_spills = 0;  ///< MR-disk files after the sim drained.
};

// Builds a fresh 5-node stack, makes node 4 a straggler (every disk 8x
// slower), runs one 32-split job, and reports the engine's speculation
// totals. Fixed seeds: two calls must produce identical results.
SpecRun RunWithStraggler(bool speculation) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 5;
  cp.node.memory_bytes = GiB(4);
  cp.node.daemon_bytes = MiB(256);
  cp.node.per_slot_heap_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 8, Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));
  MrEngine engine(&cluster, &dfs, SlotConfig{4, 4, "t"}, Rng(3));

  cluster::Node* straggler = cluster.node(4);
  for (uint32_t d = 0; d < straggler->num_hdfs_disks(); ++d) {
    straggler->hdfs_disk(d)->SetServiceFactor(8.0);
  }
  for (uint32_t d = 0; d < straggler->num_mr_disks(); ++d) {
    straggler->mr_disk(d)->SetServiceFactor(8.0);
  }

  // 32 splits > 16 fast-node map slots, so the scheduler must place maps on
  // the slow node; those become the stragglers worth backing up.
  EXPECT_TRUE(dfs.Preload("/in", GiB(2)).ok());
  SimJobSpec spec;
  spec.input_path = "/in";
  spec.output_path = "/out";
  spec.speculative_execution = speculation;

  SpecRun out;
  Status status = Status::Internal("not run");
  engine.RunJob(spec, [&](Status s, const JobCounters& c) {
    status = s;
    out.counters = c;
  });
  sim.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();

  out.launched = engine.speculative_launched();
  out.killed = engine.speculative_killed();
  out.wasted_bytes = engine.speculative_wasted_bytes();
  out.output_files = dfs.name_node()->List("/out/").size();
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster.node(n)->num_mr_disks(); ++d) {
      out.leftover_spills += cluster.node(n)->mr_fs(d)->file_count();
    }
  }
  return out;
}

TEST(SpeculativeTest, BackupsRescueStragglerNode) {
  const SpecRun r = RunWithStraggler(/*speculation=*/true);
  // Stragglers crossed the slowdown threshold while spare slots existed.
  EXPECT_GT(r.launched, 0u);
  // Every backup race ends with exactly one loser killed: no node died, so
  // each split that got a backup had both attempts run to the finish line.
  EXPECT_EQ(r.killed, r.launched);
  EXPECT_EQ(r.counters.maps_launched, 32 + r.launched);
  // The losers' duplicate input reads and deleted spills are charged.
  EXPECT_GT(r.wasted_bytes, 0u);
  // One commit per split: the output is exactly one reduce wave, and every
  // loser's spill files were deleted when it was killed.
  EXPECT_EQ(r.output_files, 20u);  // 4 reduce slots x 5 nodes
  EXPECT_EQ(r.leftover_spills, 0u);
}

TEST(SpeculativeTest, OffByDefaultLaunchesNothing) {
  const SpecRun r = RunWithStraggler(/*speculation=*/false);
  EXPECT_EQ(r.launched, 0u);
  EXPECT_EQ(r.killed, 0u);
  EXPECT_EQ(r.wasted_bytes, 0u);
  EXPECT_EQ(r.counters.maps_launched, 32u);
  EXPECT_EQ(r.counters.speculative_launched, 0u);
  EXPECT_EQ(r.output_files, 20u);
}

TEST(SpeculativeTest, SpeculationHidesTheStraggler) {
  const SpecRun off = RunWithStraggler(/*speculation=*/false);
  const SpecRun on = RunWithStraggler(/*speculation=*/true);
  // Backups re-run the slow node's maps on healthy nodes, so the map phase
  // (and the job) finishes sooner — the whole point of the mechanism.
  EXPECT_LT(on.counters.DurationSeconds(), off.counters.DurationSeconds());
}

// Regression: a split must re-queue when its backup is preempted after the
// original attempt is already gone. Sequence: node 4's maps straggle and
// one gets a backup; node 4 then dies, and once the dead originals' queued
// I/O has fully drained (the backed-up split's stale completion skipped
// re-queueing because the backup was alive — the split's only attempt is
// now the backup), a second job is admitted with no free slot anywhere, so
// its fair-preempt reclamation marks the backup. If OnMapPreempted then
// drops the split because the attempt was "only a backup", no attempt and
// no pending entry remain and the job can never finish.
TEST(SpeculativeTest, PreemptedBackupRequeuesAfterOriginalDied) {
  sim::Simulator sim;
  cluster::ClusterParams cp;
  cp.num_workers = 5;
  cp.node.memory_bytes = GiB(4);
  cp.node.daemon_bytes = MiB(256);
  cp.node.per_slot_heap_bytes = MiB(16);
  cluster::Cluster cluster(&sim, cp, 8, Rng(1));
  hdfs::Hdfs dfs(&cluster, hdfs::HdfsParams{}, Rng(2));
  MrEngine engine(&cluster, &dfs, SlotConfig{4, 4, "t"}, Rng(3));
  sched::FairSchedulerOptions options;
  options.preempt_speculative = true;
  sched::FairScheduler fair(options);
  engine.SetScheduler(&fair);

  cluster::Node* straggler = cluster.node(4);
  for (uint32_t d = 0; d < straggler->num_hdfs_disks(); ++d) {
    straggler->hdfs_disk(d)->SetServiceFactor(8.0);
  }
  for (uint32_t d = 0; d < straggler->num_mr_disks(); ++d) {
    straggler->mr_disk(d)->SetServiceFactor(8.0);
  }

  ASSERT_TRUE(dfs.Preload("/inA", GiB(2)).ok());
  ASSERT_TRUE(dfs.Preload("/inB", MiB(128)).ok());
  ASSERT_TRUE(dfs.Preload("/inC", GiB(2)).ok());
  SimJobSpec a;
  a.name = "A";
  a.input_path = "/inA";
  a.output_path = "/outA";
  a.speculative_execution = true;
  // Only the 8x-slow node-4 originals may cross the backup threshold:
  // post-kill re-executions on healthy nodes must never earn backups of
  // their own, so every backup alive in phase 2 is its split's only
  // attempt (the scenario under test).
  a.speculative_slowdown = 5.0;
  SimJobSpec b;
  b.name = "B";
  b.input_path = "/inB";
  b.output_path = "/outB";

  Status sa = Status::Internal("not run"), sb = sa, sc = sa;
  JobCounters ca, cb;
  engine.SubmitJob(a,
                   [&](Status s, const JobCounters& c) {
                     sa = s;
                     ca = c;
                   },
                   "poolA");

  // Phase 1: as soon as a backup attempt is live, kill node 4 — every
  // straggling original goes stale (it runs on, but its result will be
  // discarded on completion). Its disks return to full speed so the dead
  // originals — already most of the way through their splits — finish
  // before the fresh backups do.
  // Phase 2: once every stale original has drained (each skipped
  // re-queueing its split because the backup was alive, so the backups are
  // now the splits' only attempts) and backups still run, saturate the
  // free slots with filler job C, then admit B: it finds no free slot, and
  // its fair-preempt reclamation marks a backup.
  bool killed = false, submitted = false;
  std::function<void()> poll = [&] {
    if (submitted || !sa.IsInternal()) return;
    if (!killed && engine.speculative_launched() > 0) {
      killed = true;
      engine.InjectNodeFailure(4);
      for (uint32_t d = 0; d < straggler->num_hdfs_disks(); ++d) {
        straggler->hdfs_disk(d)->SetServiceFactor(1.0);
      }
      for (uint32_t d = 0; d < straggler->num_mr_disks(); ++d) {
        straggler->mr_disk(d)->SetServiceFactor(1.0);
      }
    } else if (killed && engine.stale_map_attempts() == 0 &&
               engine.speculative_running() > 0) {
      submitted = true;
      SimJobSpec c;
      c.name = "C";
      c.input_path = "/inC";
      c.output_path = "/outC";
      engine.SubmitJob(c, [&](Status s, const JobCounters&) { sc = s; },
                       "poolC");
      EXPECT_EQ(engine.free_map_slot_count(), 0u);  // C saturated the slots
      EXPECT_GT(engine.speculative_running(), 0u);
      engine.SubmitJob(b,
                       [&](Status s, const JobCounters& c2) {
                         sb = s;
                         cb = c2;
                       },
                       "poolB");
      return;
    }
    sim.ScheduleAfter(Millis(1), poll);
  };
  sim.ScheduleAfter(Millis(1), poll);
  sim.Run();

  ASSERT_TRUE(killed && submitted) << "trigger state never reached";
  // Liveness is the regression: every job drains to completion.
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  ASSERT_TRUE(sc.ok()) << sc.ToString();
  // B's admission found no free slot, so it preempted A (the live backup
  // first under fair-preempt's speculative pass).
  EXPECT_GT(ca.maps_preempted, 0u);
  EXPECT_EQ(cb.maps_preempted, 0u);
  // All of A's output eventually materialized despite the node loss.
  EXPECT_FALSE(dfs.name_node()->List("/outA/").empty());
  EXPECT_FALSE(dfs.name_node()->List("/outB/").empty());
}

TEST(SpeculativeTest, SpeculationIsDeterministic) {
  const SpecRun a = RunWithStraggler(/*speculation=*/true);
  const SpecRun b = RunWithStraggler(/*speculation=*/true);
  EXPECT_EQ(a.launched, b.launched);
  EXPECT_EQ(a.killed, b.killed);
  EXPECT_EQ(a.wasted_bytes, b.wasted_bytes);
  EXPECT_EQ(a.counters.maps_launched, b.counters.maps_launched);
  EXPECT_EQ(a.counters.hdfs_read_bytes, b.counters.hdfs_read_bytes);
  EXPECT_EQ(a.counters.intermediate_write_bytes,
            b.counters.intermediate_write_bytes);
  EXPECT_EQ(a.counters.DurationSeconds(), b.counters.DurationSeconds());
}

}  // namespace
}  // namespace bdio::mapreduce
