// Multi-tenant engine behaviour: per-job counter isolation, equivalence of
// the scheduler path with the single-job path, determinism, and fair-share
// preemption. Companion to engine_test.cc, which covers single-job volume
// accounting.

#include <gtest/gtest.h>

#include <memory>

#include "common/random.h"
#include "mapreduce/engine.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace bdio::mapreduce {
namespace {

class MultiJobTest : public ::testing::Test {
 protected:
  MultiJobTest() { Reset(); }

  void Reset() {
    sim_ = std::make_unique<sim::Simulator>();
    cluster::ClusterParams cp;
    cp.num_workers = 4;
    cp.node.memory_bytes = GiB(4);
    cp.node.daemon_bytes = MiB(256);
    cp.node.per_slot_heap_bytes = MiB(16);
    const SlotConfig slots{4, 4, "test"};
    cluster_ = std::make_unique<cluster::Cluster>(sim_.get(), cp,
                                                  slots.total(), Rng(1));
    dfs_ = std::make_unique<hdfs::Hdfs>(cluster_.get(), hdfs::HdfsParams{},
                                        Rng(2));
    engine_ = std::make_unique<MrEngine>(cluster_.get(), dfs_.get(), slots,
                                         Rng(3));
  }

  static SimJobSpec Spec(const std::string& name, const std::string& in,
                         const std::string& out) {
    SimJobSpec spec;
    spec.name = name;
    spec.input_path = in;
    spec.output_path = out;
    spec.num_reduce_tasks = 4;
    return spec;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<hdfs::Hdfs> dfs_;
  std::unique_ptr<MrEngine> engine_;
};

TEST_F(MultiJobTest, ConcurrentJobsKeepIsolatedCounters) {
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(256)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
  SimJobSpec a = Spec("A", "/inA", "/outA");
  SimJobSpec b = Spec("B", "/inB", "/outB");
  b.output_ratio = 0.5;

  JobCounters ca, cb;
  Status sa = Status::Internal("not run"), sb = sa;
  engine_->SubmitJob(a, [&](Status s, const JobCounters& c) {
    sa = s;
    ca = c;
  });
  engine_->SubmitJob(b, [&](Status s, const JobCounters& c) {
    sb = s;
    cb = c;
  });
  EXPECT_EQ(engine_->active_jobs(), 2u);
  sim_->Run();
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  EXPECT_EQ(engine_->active_jobs(), 0u);

  // Each job's volume counters reflect only its own I/O, even though the
  // two shared slots, disks, and the network while running.
  EXPECT_EQ(ca.hdfs_read_bytes, MiB(256));
  EXPECT_EQ(cb.hdfs_read_bytes, MiB(128));
  EXPECT_EQ(ca.maps_launched, 4u);
  EXPECT_EQ(cb.maps_launched, 2u);
  EXPECT_EQ(ca.reduces_launched, 4u);
  EXPECT_EQ(cb.reduces_launched, 4u);
  EXPECT_NEAR(static_cast<double>(ca.hdfs_write_bytes),
              static_cast<double>(MiB(256)), 1e6);
  EXPECT_NEAR(static_cast<double>(cb.hdfs_write_bytes),
              static_cast<double>(MiB(64)), 1e6);
}

TEST_F(MultiJobTest, VolumeCountersMatchSoloRuns) {
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(256)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
  const SimJobSpec a = Spec("A", "/inA", "/outA");
  const SimJobSpec b = Spec("B", "/inB", "/outB");

  JobCounters solo_a, solo_b;
  engine_->RunJob(a, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    solo_a = c;
  });
  sim_->Run();
  Reset();
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(256)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
  engine_->RunJob(b, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    solo_b = c;
  });
  sim_->Run();

  Reset();
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(256)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
  JobCounters ca, cb;
  engine_->SubmitJob(a, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    ca = c;
  });
  engine_->SubmitJob(b, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    cb = c;
  });
  sim_->Run();

  // Contention changes timing, never volumes.
  EXPECT_EQ(ca.hdfs_read_bytes, solo_a.hdfs_read_bytes);
  EXPECT_EQ(ca.hdfs_write_bytes, solo_a.hdfs_write_bytes);
  EXPECT_EQ(ca.shuffle_network_bytes, solo_a.shuffle_network_bytes);
  EXPECT_EQ(cb.hdfs_read_bytes, solo_b.hdfs_read_bytes);
  EXPECT_EQ(cb.hdfs_write_bytes, solo_b.hdfs_write_bytes);
  EXPECT_EQ(cb.shuffle_network_bytes, solo_b.shuffle_network_bytes);
  // And the concurrent run finishes no earlier than either solo run.
  EXPECT_GE(ca.end_time, solo_a.end_time);
  EXPECT_GE(cb.end_time, solo_b.end_time);
}

TEST_F(MultiJobTest, SchedulerPathMatchesSingleJobPath) {
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  const SimJobSpec spec = Spec("solo", "/in", "/out");
  JobCounters via_default;
  engine_->RunJob(spec, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    via_default = c;
  });
  sim_->Run();

  Reset();
  ASSERT_TRUE(dfs_->Preload("/in", MiB(256)).ok());
  sched::FairScheduler fair;
  engine_->SetScheduler(&fair);
  JobCounters via_fair;
  engine_->SubmitJob(spec, [&](Status s, const JobCounters& c) {
    ASSERT_TRUE(s.ok());
    via_fair = c;
  });
  sim_->Run();

  // With one job, every policy makes the same picks as the built-in FIFO
  // path: identical event order, hence identical timings and volumes.
  EXPECT_EQ(via_fair.start_time, via_default.start_time);
  EXPECT_EQ(via_fair.end_time, via_default.end_time);
  EXPECT_EQ(via_fair.hdfs_read_bytes, via_default.hdfs_read_bytes);
  EXPECT_EQ(via_fair.hdfs_write_bytes, via_default.hdfs_write_bytes);
  EXPECT_EQ(via_fair.spills, via_default.spills);
}

TEST_F(MultiJobTest, ConcurrentScheduleIsDeterministic) {
  SimTime first_a, first_b;
  for (int round = 0; round < 2; ++round) {
    Reset();
    ASSERT_TRUE(dfs_->Preload("/inA", MiB(512)).ok());
    ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
    sched::FairScheduler fair;
    engine_->SetScheduler(&fair);
    JobCounters ca, cb;
    engine_->SubmitJob(Spec("A", "/inA", "/outA"),
                       [&](Status s, const JobCounters& c) {
                         ASSERT_TRUE(s.ok());
                         ca = c;
                       },
                       "poolA");
    engine_->SubmitJob(Spec("B", "/inB", "/outB"),
                       [&](Status s, const JobCounters& c) {
                         ASSERT_TRUE(s.ok());
                         cb = c;
                       },
                       "poolB");
    sim_->Run();
    if (round == 0) {
      first_a = ca.end_time;
      first_b = cb.end_time;
      EXPECT_GT(first_a, SimTime{});
      EXPECT_GT(first_b, SimTime{});
    } else {
      EXPECT_EQ(ca.end_time, first_a);
      EXPECT_EQ(cb.end_time, first_b);
    }
  }
}

TEST_F(MultiJobTest, FairPreemptReclaimsSlotsForStarvedJob) {
  // Job A's 16 splits fill all 16 map slots; B arrives with nothing free.
  // Under fair-preempt, B's admission marks A's slots beyond its half
  // share, the marked tasks die at their next chunk boundary, and their
  // splits re-run later.
  ASSERT_TRUE(dfs_->Preload("/inA", MiB(1024)).ok());
  ASSERT_TRUE(dfs_->Preload("/inB", MiB(128)).ok());
  sched::FairSchedulerOptions options;
  options.preempt_speculative = true;
  sched::FairScheduler fair(options);
  engine_->SetScheduler(&fair);

  JobCounters ca, cb;
  Status sa = Status::Internal("not run"), sb = sa;
  engine_->SubmitJob(Spec("A", "/inA", "/outA"),
                     [&](Status s, const JobCounters& c) {
                       sa = s;
                       ca = c;
                     },
                     "poolA");
  engine_->SubmitJob(Spec("B", "/inB", "/outB"),
                     [&](Status s, const JobCounters& c) {
                       sb = s;
                       cb = c;
                     },
                     "poolB");
  sim_->Run();
  ASSERT_TRUE(sa.ok()) << sa.ToString();
  ASSERT_TRUE(sb.ok()) << sb.ToString();
  EXPECT_GT(ca.maps_preempted, 0u);
  EXPECT_EQ(cb.maps_preempted, 0u);
  // Every preempted attempt re-ran, so A still read its whole input (the
  // re-reads are extra) and launched more attempts than it has splits.
  EXPECT_EQ(ca.maps_launched, 16u + ca.maps_preempted);
  EXPECT_GE(ca.hdfs_read_bytes, MiB(1024));
}

}  // namespace
}  // namespace bdio::mapreduce
