#include "os/file_system.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/simulator.h"

namespace bdio::os {
namespace {

class FileSystemTest : public ::testing::Test {
 protected:
  FileSystemTest()
      : dev_(&sim_, "sdb", storage::DiskParameters{}, Rng(1)),
        cache_(&sim_, PageCacheParams{}),
        fs_(&sim_, &dev_, &cache_) {}

  sim::Simulator sim_;
  storage::BlockDevice dev_;
  PageCache cache_;
  FileSystem fs_;
};

TEST_F(FileSystemTest, CreateOpenDelete) {
  auto f = fs_.Create("x");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->name(), "x");
  EXPECT_EQ(f.value()->size(), 0u);
  auto again = fs_.Create("x");
  EXPECT_TRUE(again.status().IsAlreadyExists());
  auto opened = fs_.Open("x");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value(), f.value());
  EXPECT_TRUE(fs_.Delete("x").ok());
  EXPECT_TRUE(fs_.Open("x").status().IsNotFound());
  EXPECT_TRUE(fs_.Delete("x").IsNotFound());
}

TEST_F(FileSystemTest, AppendGrowsSizeAndAllocatesExtents) {
  auto f = fs_.Create("x").value();
  fs_.Append(f, MiB(3) + 100, nullptr);
  sim_.Run();
  EXPECT_EQ(f->size(), MiB(3) + 100);
  EXPECT_EQ(f->extent_count(), 4u);  // 1 MiB extents
  EXPECT_EQ(fs_.used_bytes(), MiB(4));
}

TEST_F(FileSystemTest, SectorMappingContiguousWithinExtent) {
  auto f = fs_.Create("x").value();
  fs_.Append(f, MiB(2), nullptr);
  sim_.Run();
  const uint64_t s0 = f->SectorFor(0);
  EXPECT_EQ(f->SectorFor(KiB(512)), s0 + KiB(512) / kSectorSize);
}

TEST_F(FileSystemTest, InterleavedAppendersFragment) {
  auto a = fs_.Create("a").value();
  auto b = fs_.Create("b").value();
  for (int i = 0; i < 4; ++i) {
    fs_.Append(a, MiB(1), nullptr);
    fs_.Append(b, MiB(1), nullptr);
  }
  sim_.Run();
  // The two files' extents interleave: a's second extent is not adjacent to
  // its first.
  const uint64_t gap = a->SectorFor(MiB(1)) - a->SectorFor(0);
  EXPECT_GT(gap, MiB(1) / kSectorSize);
}

TEST_F(FileSystemTest, DeleteRecyclesExtents) {
  auto a = fs_.Create("a").value();
  fs_.Append(a, MiB(4), nullptr);
  sim_.Run();
  const uint64_t used = fs_.used_bytes();
  ASSERT_TRUE(fs_.Delete("a").ok());
  EXPECT_EQ(fs_.used_bytes(), used - MiB(4));
  // New allocations reuse the freed extents (first-fit from the free list).
  auto b = fs_.Create("b").value();
  fs_.Append(b, MiB(1), nullptr);
  sim_.Run();
  EXPECT_EQ(b->SectorFor(0), 0u);
}

TEST_F(FileSystemTest, ReadBackAfterSync) {
  auto f = fs_.Create("x").value();
  fs_.Append(f, MiB(1), nullptr);
  sim_.Run();
  bool synced = false;
  fs_.Sync(f, [&] { synced = true; });
  sim_.Run();
  ASSERT_TRUE(synced);
  bool read = false;
  fs_.Read(f, 0, MiB(1), [&] { read = true; });
  sim_.Run();
  EXPECT_TRUE(read);
}

TEST_F(FileSystemTest, FreeBytesDecreasesWithAllocation) {
  const uint64_t before = fs_.free_bytes();
  auto f = fs_.Create("x").value();
  fs_.Append(f, MiB(10), nullptr);
  sim_.Run();
  EXPECT_EQ(fs_.free_bytes(), before - MiB(10));
}

}  // namespace
}  // namespace bdio::os
