// Randomized operation fuzzing of the page cache + filesystem pair: apply
// random sequences of writes, reads, syncs and deletes across several files
// and check global invariants at every quiescent point.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "os/file_system.h"
#include "os/page_cache.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::os {
namespace {

class PageCacheFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageCacheFuzz, RandomOpSequenceKeepsInvariants) {
  sim::Simulator sim;
  storage::BlockDevice dev(&sim, "sda", storage::DiskParameters{},
                           Rng(GetParam()));
  PageCacheParams params;
  params.capacity_bytes = MiB(8);
  PageCache cache(&sim, params);
  FileSystem fs(&sim, &dev, &cache);
  Rng rng(GetParam() * 7919 + 1);

  struct LiveFile {
    File* file;
    std::string name;
  };
  std::vector<LiveFile> files;
  int pending_callbacks = 0;
  int fired_callbacks = 0;
  auto cb = [&] { ++fired_callbacks; };

  const int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    const uint64_t kind = rng.Uniform(10);
    if (kind < 4 || files.empty()) {
      // Append to an existing or new file.
      if (files.size() < 6 && (files.empty() || rng.Bernoulli(0.3))) {
        const std::string name = "f" + std::to_string(op);
        files.push_back(LiveFile{fs.Create(name).value(), name});
      }
      auto& lf = files[rng.Uniform(files.size())];
      ++pending_callbacks;
      fs.Append(lf.file, KiB(4) + rng.Uniform(MiB(1)), cb);
    } else if (kind < 7) {
      // Read a random range of a non-empty file.
      auto& lf = files[rng.Uniform(files.size())];
      if (lf.file->size() > 0) {
        const uint64_t off = rng.Uniform(lf.file->size());
        const uint64_t len =
            1 + rng.Uniform(lf.file->size() - off);
        ++pending_callbacks;
        fs.Read(lf.file, off, len, cb);
      }
    } else if (kind < 8) {
      auto& lf = files[rng.Uniform(files.size())];
      ++pending_callbacks;
      fs.Sync(lf.file, cb);
    } else if (kind < 9 && files.size() > 1) {
      const size_t victim = rng.Uniform(files.size());
      ASSERT_TRUE(fs.Delete(files[victim].name).ok());
      files.erase(files.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      // Let the system make progress between bursts.
      sim.RunUntil(sim.Now() + Millis(rng.Uniform(500)));
    }

    // Intermittent invariants (cheap, checked often).
    EXPECT_LE(cache.dirty_bytes(),
              cache.cached_bytes() + params.unit_bytes);
  }

  // Drain everything.
  sim.Run();
  EXPECT_EQ(fired_callbacks, pending_callbacks);
  // After a full drain there is nothing dirty and the cache is bounded.
  EXPECT_EQ(cache.dirty_bytes(), 0u);
  EXPECT_LE(cache.cached_bytes(), params.capacity_bytes + params.unit_bytes);
  // Device quiet and accounting closed.
  EXPECT_EQ(dev.Stats().in_flight, 0u);
  EXPECT_FALSE(dev.busy());
  // Whatever was written back is what the device saw as writes.
  EXPECT_EQ(cache.stats().writeback_bytes,
            dev.Stats().sectors[1] * kSectorSize);
  EXPECT_EQ(cache.stats().disk_read_bytes,
            dev.Stats().sectors[0] * kSectorSize);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageCacheFuzz,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace bdio::os
