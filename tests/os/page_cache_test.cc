#include "os/page_cache.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "os/file_system.h"
#include "sim/simulator.h"

namespace bdio::os {
namespace {

class PageCacheTest : public ::testing::Test {
 protected:
  PageCacheTest() { Reset(MiB(16)); }

  void Reset(uint64_t capacity) {
    sim_ = std::make_unique<sim::Simulator>();
    dev_ = std::make_unique<storage::BlockDevice>(
        sim_.get(), "sda", storage::DiskParameters{}, Rng(1));
    PageCacheParams p;
    p.capacity_bytes = capacity;
    cache_ = std::make_unique<PageCache>(sim_.get(), p);
    fs_ = std::make_unique<FileSystem>(sim_.get(), dev_.get(), cache_.get());
  }

  // Creates a file and appends `size` bytes. Runs the simulation only far
  // enough for the buffered write to be accepted, leaving dirty state
  // observable (a full Run() would drain the periodic flusher).
  File* MakeFile(const std::string& name, uint64_t size) {
    auto f = fs_->Create(name);
    EXPECT_TRUE(f.ok());
    bool ok = false;
    fs_->Append(f.value(), size, [&] { ok = true; });
    sim_->RunUntil(sim_->Now() + Seconds(2));
    EXPECT_TRUE(ok);
    return f.value();
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<storage::BlockDevice> dev_;
  std::unique_ptr<PageCache> cache_;
  std::unique_ptr<FileSystem> fs_;
};

TEST_F(PageCacheTest, WriteThenReadHitsCache) {
  File* f = MakeFile("a", MiB(1));
  const uint64_t misses_before = cache_->stats().read_misses;
  bool read_done = false;
  cache_->Read(f, 0, MiB(1), [&] { read_done = true; });
  sim_->Run();
  EXPECT_TRUE(read_done);
  EXPECT_EQ(cache_->stats().read_misses, misses_before);
  EXPECT_GT(cache_->stats().read_hits, 0u);
}

TEST_F(PageCacheTest, ColdReadGoesToDisk) {
  File* f = MakeFile("a", MiB(4));
  // Force the data out: sync then drop via re-creating the cache is awkward;
  // instead write enough other data to evict. Simpler: sync, then evict by
  // reading a larger file.
  bool synced = false;
  cache_->Sync(f, [&] { synced = true; });
  sim_->Run();
  ASSERT_TRUE(synced);
  File* big = MakeFile("b", MiB(20));  // > capacity: evicts everything clean
  bool synced2 = false;
  cache_->Sync(big, [&] { synced2 = true; });
  sim_->Run();
  ASSERT_TRUE(synced2);
  bool read_done = false;
  const uint64_t disk_bytes_before = cache_->stats().disk_read_bytes;
  cache_->Read(f, 0, MiB(1), [&] { read_done = true; });
  sim_->Run();
  EXPECT_TRUE(read_done);
  EXPECT_GT(cache_->stats().disk_read_bytes, disk_bytes_before);
  EXPECT_EQ(dev_->Stats().ios[0] > 0, true);
}

TEST_F(PageCacheTest, DirtyDataEventuallyWrittenBack) {
  File* f = MakeFile("a", MiB(8));
  EXPECT_GT(cache_->dirty_bytes(), 0u);
  (void)f;
  // Run past the periodic flush period.
  sim_->RunUntil(TimeAt(Seconds(60)));
  sim_->Run();
  EXPECT_EQ(cache_->dirty_bytes(), 0u);
  EXPECT_GT(dev_->Stats().sectors[1], 0u);
}

TEST_F(PageCacheTest, SyncFlushesAllDirty) {
  File* f = MakeFile("a", MiB(2));
  bool synced = false;
  cache_->Sync(f, [&] { synced = true; });
  sim_->Run();
  EXPECT_TRUE(synced);
  EXPECT_EQ(cache_->dirty_bytes(), 0u);
  EXPECT_EQ(dev_->Stats().sectors[1], MiB(2) / kSectorSize);
}

TEST_F(PageCacheTest, SyncOnCleanFileCompletesImmediately) {
  File* f = MakeFile("a", KiB(64));
  cache_->Sync(f, nullptr);
  sim_->Run();
  bool synced = false;
  cache_->Sync(f, [&] { synced = true; });
  sim_->Run();
  EXPECT_TRUE(synced);
}

TEST_F(PageCacheTest, DirtyThrottlingEngages) {
  // Tiny cache: dirty limit is 20% of 4 MiB. Stream writes in chunks the
  // way a writer would, so the dirty limit is hit mid-stream.
  Reset(MiB(4));
  File* f = fs_->Create("a").value();
  const uint64_t chunk = KiB(256);
  int accepted = 0;
  std::function<void()> writer = [&] {
    ++accepted;
    if (accepted < 64) fs_->Append(f, chunk, writer);
  };
  fs_->Append(f, chunk, writer);
  sim_->Run();
  EXPECT_EQ(accepted, 64);
  EXPECT_GT(cache_->stats().throttle_events, 0u);
  // Everything drains once the writer stops.
  EXPECT_EQ(cache_->dirty_bytes(), 0u);
  EXPECT_EQ(dev_->Stats().sectors[1], 64 * chunk / kSectorSize);
}

TEST_F(PageCacheTest, EvictionKeepsCacheBounded) {
  Reset(MiB(8));
  File* f = MakeFile("a", MiB(64));
  bool synced = false;
  cache_->Sync(f, [&] { synced = true; });
  sim_->Run();
  ASSERT_TRUE(synced);
  EXPECT_LE(cache_->cached_bytes(), MiB(8) + MiB(1));
  EXPECT_GT(cache_->stats().evicted_units, 0u);
}

TEST_F(PageCacheTest, SequentialReadTriggersReadahead) {
  File* f = MakeFile("a", MiB(8));
  bool synced = false;
  cache_->Sync(f, [&] { synced = true; });
  sim_->Run();
  ASSERT_TRUE(synced);
  Reset(MiB(16));
  f = MakeFile("b", MiB(8));
  cache_->Sync(f, [&] {});
  sim_->Run();
  // Evict by reading another large file.
  File* big = MakeFile("c", MiB(20));
  cache_->Sync(big, [&] {});
  sim_->Run();
  // Now stream file b sequentially in 64 KiB reads.
  const uint64_t unit = cache_->params().unit_bytes;
  for (uint64_t off = 0; off + unit <= MiB(2); off += unit) {
    bool done = false;
    cache_->Read(f, off, unit, [&] { done = true; });
    sim_->Run();
    ASSERT_TRUE(done);
  }
  EXPECT_GT(cache_->stats().readahead_units, 0u);
  // Readahead means most reads were hits.
  EXPECT_GT(cache_->stats().read_hits, cache_->stats().read_misses);
}

TEST_F(PageCacheTest, DropDiscardsDirtyData) {
  File* f = MakeFile("a", MiB(2));
  EXPECT_GT(cache_->dirty_bytes(), 0u);
  const uint64_t id = f->file_id();
  cache_->Drop(id);
  EXPECT_EQ(cache_->dirty_bytes(), 0u);
}

TEST_F(PageCacheTest, SyncAllCleansEverything) {
  MakeFile("a", MiB(1));
  MakeFile("b", MiB(1));
  bool done = false;
  cache_->SyncAll([&] { done = true; });
  sim_->Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(cache_->dirty_bytes(), 0u);
}

TEST_F(PageCacheTest, ConcurrentReadsOfSameUnitDeduplicate) {
  File* f = MakeFile("a", MiB(1));
  cache_->Sync(f, nullptr);
  sim_->Run();
  Reset(MiB(16));
  f = MakeFile("b", MiB(1));
  cache_->Sync(f, nullptr);
  sim_->Run();
  File* big = MakeFile("c", MiB(20));
  cache_->Sync(big, nullptr);
  sim_->Run();
  const uint64_t reads_before = dev_->Stats().ios[0];
  int done = 0;
  cache_->Read(f, 0, KiB(64), [&] { ++done; });
  cache_->Read(f, 0, KiB(64), [&] { ++done; });
  cache_->Read(f, 0, KiB(64), [&] { ++done; });
  sim_->Run();
  EXPECT_EQ(done, 3);
  EXPECT_LE(dev_->Stats().ios[0] - reads_before, 2u);
}

TEST_F(PageCacheTest, LargerCacheAbsorbsRereads) {
  // Re-read pattern under small vs large cache: large cache -> fewer disk
  // reads. This is the paper's memory-size mechanism in miniature.
  auto run_with = [&](uint64_t capacity) {
    Reset(capacity);
    File* f = MakeFile("data", MiB(12));
    cache_->Sync(f, nullptr);
    sim_->Run();
    // Two sequential passes over the file.
    const uint64_t chunk = MiB(1);
    for (int pass = 0; pass < 2; ++pass) {
      for (uint64_t off = 0; off < MiB(12); off += chunk) {
        bool done = false;
        cache_->Read(f, off, chunk, [&] { done = true; });
        sim_->Run();
        EXPECT_TRUE(done);
      }
    }
    return cache_->stats().disk_read_bytes;
  };
  const uint64_t small = run_with(MiB(4));
  const uint64_t large = run_with(MiB(64));
  EXPECT_LT(large, small);
}

}  // namespace
}  // namespace bdio::os
