// Coverage for page cache corners: DropClean, readahead window behaviour,
// tag attribution, extents-only files, unit alignment.

#include <gtest/gtest.h>

#include "common/io_tag.h"
#include "common/random.h"
#include "obs/metrics.h"
#include "os/file_system.h"
#include "os/page_cache.h"
#include "sim/simulator.h"

namespace bdio::os {
namespace {

class PageCacheExtraTest : public ::testing::Test {
 protected:
  PageCacheExtraTest()
      : dev_(&sim_, "sda", storage::DiskParameters{}, Rng(1)),
        cache_(&sim_, MakeParams()),
        fs_(&sim_, &dev_, &cache_) {}

  static PageCacheParams MakeParams() {
    PageCacheParams p;
    p.capacity_bytes = MiB(32);
    return p;
  }

  sim::Simulator sim_;
  storage::BlockDevice dev_;
  PageCache cache_;
  FileSystem fs_;
};

TEST_F(PageCacheExtraTest, DropCleanEmptiesCleanUnitsOnly) {
  auto f = fs_.Create("f").value();
  fs_.Append(f, MiB(4), nullptr);
  sim_.RunUntil(TimeAt(Millis(10)));  // accepted, still dirty
  const uint64_t dirty = cache_.dirty_bytes();
  ASSERT_GT(dirty, 0u);
  cache_.DropClean();
  // Dirty data untouched.
  EXPECT_EQ(cache_.dirty_bytes(), dirty);
  // Now flush and drop: the cache empties fully.
  cache_.Sync(f, nullptr);
  sim_.Run();
  EXPECT_EQ(cache_.dirty_bytes(), 0u);
  cache_.DropClean();
  EXPECT_EQ(cache_.cached_bytes(), 0u);
  // Data still on disk: re-read goes to the device.
  const uint64_t reads_before = dev_.Stats().ios[0];
  fs_.Read(f, 0, MiB(1), nullptr);
  sim_.Run();
  EXPECT_GT(dev_.Stats().ios[0], reads_before);
}

TEST_F(PageCacheExtraTest, RandomReadsDontGrowReadaheadWindow) {
  auto f = fs_.CreateExtentsOnly("cold", MiB(16)).value();
  Rng rng(2);
  // Random 64 KiB reads: each miss should fetch ~the request plus the
  // minimum window, not megabytes.
  int done = 0;
  for (int i = 0; i < 32; ++i) {
    const uint64_t unit = cache_.params().unit_bytes;
    const uint64_t off = rng.Uniform(MiB(15) / unit) * unit;
    cache_.Read(f, off, unit, [&] { ++done; });
    sim_.Run();
  }
  EXPECT_EQ(done, 32);
  // Disk reads bounded by requests + min readahead each.
  EXPECT_LE(cache_.stats().disk_read_bytes,
            32 * (KiB(64) + cache_.params().readahead_min_bytes) + MiB(1));
}

TEST_F(PageCacheExtraTest, SequentialWindowDoubles) {
  auto f = fs_.CreateExtentsOnly("cold", MiB(16)).value();
  // Stream sequentially; after a few reads the prefetch covers multiple
  // units ahead, so most reads complete without a new device request.
  uint64_t misses_late = 0;
  const uint64_t unit = cache_.params().unit_bytes;
  for (uint64_t i = 0; i < 64; ++i) {
    const uint64_t before = cache_.stats().read_misses;
    cache_.Read(f, i * unit, unit, nullptr);
    sim_.Run();
    if (i >= 32 && cache_.stats().read_misses > before) ++misses_late;
  }
  // Steady-state hits: misses in the second half are rare.
  EXPECT_LE(misses_late, 8u);
  EXPECT_GT(cache_.stats().readahead_units, 0u);
}

TEST_F(PageCacheExtraTest, UnalignedAccessRoundsToUnits) {
  auto f = fs_.Create("f").value();
  fs_.Append(f, KiB(100), nullptr);  // not unit-aligned
  sim_.Run();
  EXPECT_EQ(cache_.dirty_bytes(), 0u);  // flushed by drain
  // The device saw whole cache units.
  EXPECT_EQ(dev_.Stats().sectors[1] %
                (cache_.params().unit_bytes / kSectorSize),
            0u);
}

TEST_F(PageCacheExtraTest, TagAttributionSeparatesFiles) {
  // Per-tag physical volumes live in the metrics registry, labelled with
  // the tag's source name.
  obs::MetricsRegistry metrics;
  cache_.AttachObs(nullptr, &metrics, 1);
  auto spill = fs_.Create("spill").value();
  spill->set_io_tag(static_cast<uint32_t>(IoTag::kMapSpill));
  auto block = fs_.Create("blk").value();
  block->set_io_tag(static_cast<uint32_t>(IoTag::kHdfsOutput));
  fs_.Append(spill, MiB(2), nullptr);
  fs_.Append(block, MiB(3), nullptr);
  cache_.SyncAll(nullptr);
  sim_.Run();
  auto written = [&](IoTag tag) {
    return metrics.CounterValue("pagecache.tag_disk_write_bytes",
                                {{"source", IoTagName(tag)}});
  };
  EXPECT_EQ(written(IoTag::kMapSpill), MiB(2));
  EXPECT_EQ(written(IoTag::kHdfsOutput), MiB(3));
  // Nothing was read back, so the read-side counters stay absent/zero.
  EXPECT_EQ(metrics.CounterValue("pagecache.tag_disk_read_bytes",
                                 {{"source", IoTagName(IoTag::kMapSpill)}}),
            0u);
}

TEST_F(PageCacheExtraTest, FileIdsAreUniqueAcrossFilesystems) {
  storage::BlockDevice dev2(&sim_, "sdb", storage::DiskParameters{}, Rng(3));
  FileSystem fs2(&sim_, &dev2, &cache_);
  auto a = fs_.Create("x").value();
  auto b = fs2.Create("x").value();  // same name, different fs: fine
  EXPECT_NE(a->file_id(), b->file_id());
}

TEST_F(PageCacheExtraTest, ExtentsOnlyFileIsColdAndSized) {
  auto f = fs_.CreateExtentsOnly("cold", MiB(4) + 17).value();
  EXPECT_EQ(f->size(), MiB(4) + 17);
  EXPECT_EQ(cache_.cached_bytes(), 0u);
  EXPECT_EQ(dev_.Stats().TotalIos(), 0u);
  bool read = false;
  fs_.Read(f, MiB(4), 17, [&] { read = true; });
  sim_.Run();
  EXPECT_TRUE(read);
  EXPECT_GT(dev_.Stats().ios[0], 0u);
}

}  // namespace
}  // namespace bdio::os
