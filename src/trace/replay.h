#ifndef BDIO_TRACE_REPLAY_H_
#define BDIO_TRACE_REPLAY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "trace/trace.h"

namespace bdio::trace {

/// Open-loop trace replay: re-submits each recorded request at its original
/// submit time (optionally time-scaled) against a target device. Useful for
/// studying a captured workload pattern on alternative device
/// configurations (different elevator, NCQ depth, disk geometry).
class Replayer {
 public:
  Replayer(sim::Simulator* sim, storage::BlockDevice* device)
      : sim_(sim), device_(device) {}

  Replayer(const Replayer&) = delete;
  Replayer& operator=(const Replayer&) = delete;

  /// Inter-arrival scaling: 0.5 issues the trace twice as fast.
  void set_time_scale(double scale) { time_scale_ = scale; }

  /// Schedules every event; `done` fires after the last completion.
  /// Events beyond the device's capacity are rejected with InvalidArgument
  /// before anything is scheduled. Submit times are taken relative to the
  /// trace's first event.
  Status Replay(const std::vector<TraceEvent>& events,
                std::function<void()> done);

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }

 private:
  sim::Simulator* sim_;
  storage::BlockDevice* device_;
  double time_scale_ = 1.0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
};

}  // namespace bdio::trace

#endif  // BDIO_TRACE_REPLAY_H_
