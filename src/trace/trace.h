#ifndef BDIO_TRACE_TRACE_H_
#define BDIO_TRACE_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "common/units.h"
#include "storage/block_device.h"

namespace bdio::trace {

/// One completed block request — the information blktrace's C (complete)
/// records carry, plus queue timestamps.
struct TraceEvent {
  std::string device;
  storage::IoType type = storage::IoType::kRead;
  uint64_t sector = 0;
  uint64_t sectors = 0;
  uint32_t bio_count = 1;
  SimTime submit_time;
  SimTime dispatch_time;
  SimTime complete_time;

  SimDuration latency() const { return complete_time - submit_time; }
  SimDuration queue_wait() const { return dispatch_time - submit_time; }
  SimDuration service_time() const { return complete_time - dispatch_time; }
};

/// Captures per-request completions from block devices.
class Recorder {
 public:
  Recorder() = default;

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Hooks the device's completion observer. One recorder may observe many
  /// devices; re-attaching replaces any previous observer on the device.
  void Attach(storage::BlockDevice* device);

  const std::vector<TraceEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }
  void Clear() { events_.clear(); }

 private:
  std::vector<TraceEvent> events_;
};

/// Serializes events to a blkparse-like text format, one per line:
/// `<device> <type R|W> <sector> <sectors> <bios> <submit_ns> <dispatch_ns>
/// <complete_ns>`.
void WriteTrace(const std::vector<TraceEvent>& events, std::ostream& os);
Result<std::vector<TraceEvent>> ReadTrace(std::istream& is);

/// Per-device and aggregate access-pattern statistics — the analysis that
/// backs the paper's "HDFS is large sequential, MapReduce is small random"
/// claim.
class Analyzer {
 public:
  explicit Analyzer(const std::vector<TraceEvent>& events);

  size_t num_requests() const { return count_; }
  uint64_t total_bytes() const { return total_bytes_; }
  double read_fraction() const;

  /// Fraction of requests starting exactly where the previous request on
  /// the same device ended (strict sequentiality).
  double SequentialFraction() const;

  /// Mean request size in sectors.
  double MeanRequestSectors() const;

  const Histogram& size_sectors() const { return size_hist_; }
  const Histogram& latency_ms() const { return latency_hist_; }
  const Histogram& queue_wait_ms() const { return wait_hist_; }
  const Histogram& seek_distance_sectors() const { return seek_hist_; }
  const Histogram& interarrival_us() const { return interarrival_hist_; }

  /// Multi-line text summary.
  std::string Summary() const;

 private:
  size_t count_ = 0;
  uint64_t total_bytes_ = 0;
  size_t reads_ = 0;
  size_t sequential_ = 0;
  Histogram size_hist_;
  Histogram latency_hist_;
  Histogram wait_hist_;
  Histogram seek_hist_;
  Histogram interarrival_hist_;
};

}  // namespace bdio::trace

#endif  // BDIO_TRACE_TRACE_H_
