#include "trace/trace.h"

#include <cmath>
#include <cstdlib>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace bdio::trace {

void Recorder::Attach(storage::BlockDevice* device) {
  BDIO_CHECK(device != nullptr);
  const std::string name = device->name();
  device->SetCompletionObserver(
      [this, name](const storage::IoRequest& req) {
        TraceEvent ev;
        ev.device = name;
        ev.type = req.type;
        ev.sector = req.sector.count();
        ev.sectors = req.sectors.count();
        ev.bio_count = req.bio_count;
        ev.submit_time = req.submit_time;
        ev.dispatch_time = req.dispatch_time;
        ev.complete_time = req.complete_time;
        events_.push_back(std::move(ev));
      });
}

void WriteTrace(const std::vector<TraceEvent>& events, std::ostream& os) {
  for (const TraceEvent& e : events) {
    os << e.device << ' ' << storage::IoTypeName(e.type) << ' ' << e.sector
       << ' ' << e.sectors << ' ' << e.bio_count << ' ' << e.submit_time
       << ' ' << e.dispatch_time << ' ' << e.complete_time << '\n';
  }
}

Result<std::vector<TraceEvent>> ReadTrace(std::istream& is) {
  std::vector<TraceEvent> events;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    TraceEvent e;
    std::string type;
    uint64_t submit_ns = 0;
    uint64_t dispatch_ns = 0;
    uint64_t complete_ns = 0;
    if (!(ls >> e.device >> type >> e.sector >> e.sectors >> e.bio_count >>
          submit_ns >> dispatch_ns >> complete_ns)) {
      return Status::Corruption("bad trace line " + std::to_string(line_no));
    }
    e.submit_time = SimTime(submit_ns);
    e.dispatch_time = SimTime(dispatch_ns);
    e.complete_time = SimTime(complete_ns);
    if (type == "R") {
      e.type = storage::IoType::kRead;
    } else if (type == "W") {
      e.type = storage::IoType::kWrite;
    } else {
      return Status::Corruption("bad request type on line " +
                                std::to_string(line_no));
    }
    events.push_back(std::move(e));
  }
  return events;
}

Analyzer::Analyzer(const std::vector<TraceEvent>& events) {
  std::map<std::string, uint64_t> last_end;
  std::map<std::string, SimTime> last_submit;
  for (const TraceEvent& e : events) {
    ++count_;
    total_bytes_ += e.sectors * kSectorSize;
    if (e.type == storage::IoType::kRead) ++reads_;
    size_hist_.Add(static_cast<double>(e.sectors));
    latency_hist_.Add(ToMillis(e.latency()));
    wait_hist_.Add(ToMillis(e.queue_wait()));

    auto it = last_end.find(e.device);
    if (it != last_end.end()) {
      if (e.sector == it->second) ++sequential_;
      const double dist = std::abs(static_cast<double>(e.sector) -
                                   static_cast<double>(it->second));
      seek_hist_.Add(dist);
    }
    last_end[e.device] = e.sector + e.sectors;

    auto st = last_submit.find(e.device);
    if (st != last_submit.end() && e.submit_time >= st->second) {
      interarrival_hist_.Add(
          static_cast<double>((e.submit_time - st->second).ns()) / 1000.0);
    }
    last_submit[e.device] = e.submit_time;
  }
}

double Analyzer::read_fraction() const {
  return count_ ? static_cast<double>(reads_) / static_cast<double>(count_)
                : 0;
}

double Analyzer::SequentialFraction() const {
  return count_ ? static_cast<double>(sequential_) /
                      static_cast<double>(count_)
                : 0;
}

double Analyzer::MeanRequestSectors() const { return size_hist_.mean(); }

std::string Analyzer::Summary() const {
  std::ostringstream os;
  os << "requests: " << count_ << "  bytes: " << total_bytes_
     << "  read_fraction: " << read_fraction()
     << "  sequential_fraction: " << SequentialFraction() << "\n"
     << "size (sectors): " << size_hist_.ToString() << "\n"
     << "latency (ms):   " << latency_hist_.ToString() << "\n"
     << "queue wait (ms): " << wait_hist_.ToString() << "\n"
     << "seek dist (sectors): " << seek_hist_.ToString() << "\n"
     << "inter-arrival (us): " << interarrival_hist_.ToString() << "\n";
  return os.str();
}

}  // namespace bdio::trace
