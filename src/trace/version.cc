namespace bdio::trace {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "trace"; }
}  // namespace bdio::trace
