#include "trace/replay.h"

#include <algorithm>

#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::trace {

Status Replayer::Replay(const std::vector<TraceEvent>& events,
                        std::function<void()> done) {
  if (events.empty()) {
    sim_->ScheduleAfter(SimDuration{}, std::move(done));
    return Status::OK();
  }
  const uint64_t total_sectors = device_->params().TotalSectors();
  const uint64_t max_sectors = device_->params().max_request_sectors;
  SimTime first = events[0].submit_time;
  for (const TraceEvent& e : events) {
    first = std::min(first, e.submit_time);
    if (e.sectors == 0 || e.sector + e.sectors > total_sectors) {
      return Status::InvalidArgument("trace event beyond device bounds");
    }
    if (e.sectors > max_sectors) {
      return Status::InvalidArgument(
          "trace event exceeds the device's max request size");
    }
  }

  auto latch = sim::Latch::Create(events.size(), std::move(done));
  for (const TraceEvent& e : events) {
    const SimDuration offset = SimDuration(static_cast<uint64_t>(
        static_cast<double>((e.submit_time - first).ns()) * time_scale_));
    sim_->ScheduleAfter(offset, [this, e, latch] {
      ++submitted_;
      device_->Submit(e.type, Sectors(e.sector), Sectors(e.sectors), [this, latch] {
        ++completed_;
        latch->Arrive();
      });
    });
  }
  return Status::OK();
}

}  // namespace bdio::trace
