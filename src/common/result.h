#ifndef BDIO_COMMON_RESULT_H_
#define BDIO_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace bdio {

/// Result<T> holds either a value of type T or a non-OK Status explaining why
/// the value is absent (the Arrow `Result` / abseil `StatusOr` idiom).
///
/// Typical use:
///
///   Result<File> f = fs.Open("path");
///   if (!f.ok()) return f.status();
///   f->Read(...);
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    BDIO_CHECK(!std::get<Status>(payload_).ok())
        << "Result constructed from OK status without a value";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the contained status: OK if a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors; it is a fatal error to access the value of a failed
  /// Result.
  T& value() & {
    BDIO_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  const T& value() const& {
    BDIO_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(payload_);
  }
  T&& value() && {
    BDIO_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(payload_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace bdio

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define BDIO_ASSIGN_OR_RETURN(lhs, rexpr)              \
  BDIO_ASSIGN_OR_RETURN_IMPL_(                         \
      BDIO_CONCAT_(_bdio_result_, __LINE__), lhs, rexpr)

#define BDIO_CONCAT_INNER_(a, b) a##b
#define BDIO_CONCAT_(a, b) BDIO_CONCAT_INNER_(a, b)
#define BDIO_ASSIGN_OR_RETURN_IMPL_(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).value()

#endif  // BDIO_COMMON_RESULT_H_
