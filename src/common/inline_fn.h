#ifndef BDIO_COMMON_INLINE_FN_H_
#define BDIO_COMMON_INLINE_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bdio {

/// Move-only type-erased `void()` continuation with a large inline buffer.
///
/// The simulator schedules millions of closures per run; `std::function`'s
/// 16-byte small-object buffer forces a heap allocation for almost every one
/// of them (a typical completion captures `this` plus a shared_ptr plus an
/// offset). InlineFn widens the inline buffer to `kInlineSize` bytes — sized
/// so the engine's chunk-streaming closures (two shared_ptrs, a callback,
/// and a length) still fit — and only falls back to the heap beyond that.
///
/// Type erasure is a single manage-function pointer handling invoke /
/// destroy / relocate, so sizeof(InlineFn) == kInlineSize + 8 and a move is
/// one indirect call (memcpy-like for trivially relocatable captures).
///
/// Contract:
///  - move-only; the moved-from InlineFn is empty (`!fn`).
///  - captured callables must be nothrow-move-constructible (lambdas over
///    POD, pointers, std::string, shared_ptr, std::function all are).
///  - invoking an empty InlineFn is undefined; test with operator bool.
class InlineFn {
 public:
  /// Inline capture capacity in bytes. 80 covers every hot closure in the
  /// tree (the largest, MrEngine's stream steps, captures 72 bytes).
  static constexpr size_t kInlineSize = 80;

  InlineFn() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): nullptr mirrors
  // std::function's empty state.
  InlineFn(std::nullptr_t) {}  // NOLINT(runtime/explicit)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): callable conversions are
  // the whole point, as with std::function.
  InlineFn(F&& f) {  // NOLINT(runtime/explicit)
    using D = std::decay_t<F>;
    // Mirror std::function: wrapping an empty nullable callable (an empty
    // std::function, a null function pointer) yields an empty InlineFn
    // rather than a live wrapper that would throw/crash when invoked.
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      manage_ = &ManageInline<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      manage_ = &ManageHeap<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : manage_(other.manage_) {
    if (manage_ != nullptr) {
      manage_(Op::kRelocate, other.buf_, buf_);
      other.manage_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      manage_ = other.manage_;
      if (manage_ != nullptr) {
        manage_(Op::kRelocate, other.buf_, buf_);
        other.manage_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() {
    if (manage_ != nullptr) {
      manage_(Op::kDestroy, buf_, nullptr);
      manage_ = nullptr;
    }
  }

  explicit operator bool() const { return manage_ != nullptr; }

  void operator()() { manage_(Op::kInvoke, buf_, nullptr); }

 private:
  enum class Op { kInvoke, kDestroy, kRelocate };
  using ManageFn = void (*)(Op, void* self, void* dest);

  template <typename D>
  static void ManageInline(Op op, void* self, void* dest) {
    D* f = static_cast<D*>(self);
    switch (op) {
      case Op::kInvoke:
        (*f)();
        break;
      case Op::kDestroy:
        f->~D();
        break;
      case Op::kRelocate:
        ::new (dest) D(std::move(*f));
        f->~D();
        break;
    }
  }

  template <typename D>
  static void ManageHeap(Op op, void* self, void* dest) {
    D** slot = static_cast<D**>(self);
    switch (op) {
      case Op::kInvoke:
        (**slot)();
        break;
      case Op::kDestroy:
        delete *slot;
        break;
      case Op::kRelocate:
        ::new (dest) D*(*slot);
        break;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  ManageFn manage_ = nullptr;
};

}  // namespace bdio

#endif  // BDIO_COMMON_INLINE_FN_H_
