#ifndef BDIO_COMMON_STATUS_H_
#define BDIO_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace bdio {

/// Error categories used across the library. Mirrors the RocksDB/Arrow
/// convention of returning rich status objects instead of throwing.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIOError,
  kCorruption,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status encapsulates the success or failure of an operation, with an
/// optional message describing the failure. Statuses are cheap to copy and
/// move; the OK status carries no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnimplemented() const { return code_ == StatusCode::kUnimplemented; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace bdio

/// Evaluates `expr`; if the resulting Status is not OK, returns it from the
/// enclosing function.
#define BDIO_RETURN_IF_ERROR(expr)                 \
  do {                                             \
    ::bdio::Status _bdio_status = (expr);          \
    if (!_bdio_status.ok()) return _bdio_status;   \
  } while (false)

#endif  // BDIO_COMMON_STATUS_H_
