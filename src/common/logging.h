#ifndef BDIO_COMMON_LOGGING_H_
#define BDIO_COMMON_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace bdio {

/// Severity levels for the library logger.
enum class LogLevel { kDebug = 0, kInfo, kWarning, kError, kFatal };

/// Global log threshold; messages below it are discarded. Defaults to
/// kWarning so library users aren't spammed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Optional simulated-time log prefix. While a clock is registered on the
/// calling thread, every BDIO_LOG line it emits is prefixed with
/// "[t=<seconds>s]" so log output correlates with trace timestamps. The
/// registration is thread-local because concurrent experiments each own a
/// simulator on their own pool thread; sim::ScopedLogClock manages it.
/// `fn` returns the current time in nanoseconds.
using LogClockFn = uint64_t (*)(const void* ctx);
void SetThreadLogClock(LogClockFn fn, const void* ctx);
void ClearThreadLogClock();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Discards everything streamed into it; used for compiled-out levels.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace bdio

#define BDIO_LOG(level)                                              \
  ::bdio::internal::LogMessage(::bdio::LogLevel::k##level, __FILE__, \
                               __LINE__)

/// Fatal assertion: evaluates `cond`; on failure logs the streamed message
/// and aborts. Active in all build types (database-style defensive checks).
#define BDIO_CHECK(cond)                                            \
  (cond) ? (void)0                                                  \
         : ::bdio::internal::LogMessageVoidify() &                  \
               ::bdio::internal::LogMessage(::bdio::LogLevel::kFatal, \
                                            __FILE__, __LINE__)     \
                   << "Check failed: " #cond " "

#define BDIO_CHECK_OK(expr)                                   \
  do {                                                        \
    ::bdio::Status _bdio_check_status = (expr);               \
    BDIO_CHECK(_bdio_check_status.ok())                       \
        << "status = " << _bdio_check_status.ToString();      \
  } while (false)

namespace bdio::internal {
/// Allows BDIO_CHECK to be used in expression position by giving the
/// ternary's branches a common (void) type.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};
}  // namespace bdio::internal

#endif  // BDIO_COMMON_LOGGING_H_
