#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace bdio {

Histogram::Histogram() {
  // Geometric bucket limits: 1, 2, 3, 4, 5, 6, 8, 10, ... growing ~1.25x,
  // covering up to ~1e19.
  double limit = 1;
  while (limit < 2e19) {
    bucket_limits_.push_back(limit);
    double next = limit * 1.25;
    // Keep limits integral below 1e15 for exactness on small counts.
    if (next < 1e15) next = std::max(std::floor(next), limit + 1);
    limit = next;
  }
  buckets_.assign(bucket_limits_.size() + 1, 0);
}

size_t Histogram::BucketFor(double value) const {
  auto it = std::lower_bound(bucket_limits_.begin(), bucket_limits_.end(),
                             value);
  return static_cast<size_t>(it - bucket_limits_.begin());
}

void Histogram::Add(double value) {
  BDIO_CHECK(value >= 0) << "Histogram only stores non-negative values";
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
}

void Histogram::Clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

double Histogram::min() const { return count_ ? min_ : 0; }
double Histogram::max() const { return count_ ? max_ : 0; }
double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double Histogram::ValueAtPercentile(double p) const {
  BDIO_CHECK(p >= 0 && p <= 100);
  if (count_ == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count_);
  double cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cumulative + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double lo = i == 0 ? 0 : bucket_limits_[i - 1];
      const double hi =
          i < bucket_limits_.size() ? bucket_limits_[i] : max_;
      const double frac =
          (target - cumulative) / static_cast<double>(buckets_[i]);
      double v = lo + frac * (hi - lo);
      return std::clamp(v, min_, max_);
    }
    cumulative = next;
  }
  return max_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " p50=" << ValueAtPercentile(50)
     << " p95=" << ValueAtPercentile(95) << " p99=" << ValueAtPercentile(99);
  return os.str();
}

}  // namespace bdio
