#ifndef BDIO_COMMON_UNITS_H_
#define BDIO_COMMON_UNITS_H_

#include <cstdint>

namespace bdio {

// ---------------------------------------------------------------------------
// Byte quantities.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// Disk sector size assumed throughout (iostat's avgrq-sz unit).
inline constexpr uint64_t kSectorSize = 512ULL;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }
constexpr uint64_t TiB(uint64_t n) { return n * kTiB; }

constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
constexpr uint64_t BytesToSectors(uint64_t bytes) {
  return (bytes + kSectorSize - 1) / kSectorSize;
}

// ---------------------------------------------------------------------------
// Simulated time: unsigned 64-bit nanoseconds since simulation start.
// ---------------------------------------------------------------------------

using SimTime = uint64_t;      ///< Absolute simulated time, ns.
using SimDuration = uint64_t;  ///< Simulated duration, ns.

inline constexpr SimDuration kNanosecond = 1ULL;
inline constexpr SimDuration kMicrosecond = 1000ULL;
inline constexpr SimDuration kMillisecond = 1000ULL * kMicrosecond;
inline constexpr SimDuration kSecond = 1000ULL * kMillisecond;

constexpr SimDuration Micros(uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(uint64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(uint64_t n) { return n * kSecond; }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
/// Converts fractional seconds to a SimDuration, rounding to nearest ns.
constexpr SimDuration FromSeconds(double seconds) {
  return static_cast<SimDuration>(seconds * static_cast<double>(kSecond) +
                                  0.5);
}

/// Duration to move `bytes` at `bytes_per_second`.
constexpr SimDuration TransferTime(uint64_t bytes, double bytes_per_second) {
  return FromSeconds(static_cast<double>(bytes) / bytes_per_second);
}

}  // namespace bdio

#endif  // BDIO_COMMON_UNITS_H_
