#ifndef BDIO_COMMON_UNITS_H_
#define BDIO_COMMON_UNITS_H_

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace bdio {

// ---------------------------------------------------------------------------
// Strong unit types.
//
// SimTime / SimDuration / Bytes / Sectors are single-word wrappers that make
// unit mistakes a compile error instead of a wrong figure: a sector count
// cannot be added to a byte count, an absolute time cannot be added to
// another absolute time, and nothing converts implicitly to or from raw
// integers. Construction is explicit; `.ns()` / `.bytes()` / `.count()` are
// the deliberate escape hatches at serialization and formatting boundaries
// (and the residual raw-integer seams those hatches open are covered by
// bdio-lint rule R7 — see docs/STATIC_ANALYSIS.md).
//
// The wrappers are trivially copyable, zero-initialized by default, and
// compile to the exact same code as the uint64_t typedefs they replaced;
// operator<< prints the raw count so log and table output is unchanged.
// ---------------------------------------------------------------------------

/// Simulated duration in nanoseconds (a vector on the sim timeline).
class SimDuration {
 public:
  constexpr SimDuration() = default;
  explicit constexpr SimDuration(uint64_t ns) : ns_(ns) {}

  /// Escape hatch: raw nanosecond count.
  constexpr uint64_t ns() const { return ns_; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimDuration& operator*=(uint64_t k) {
    ns_ *= k;
    return *this;
  }
  constexpr SimDuration& operator/=(uint64_t k) {
    ns_ /= k;
    return *this;
  }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ + b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ - b.ns_);
  }
  friend constexpr SimDuration operator*(SimDuration d, uint64_t k) {
    return SimDuration(d.ns_ * k);
  }
  friend constexpr SimDuration operator*(uint64_t k, SimDuration d) {
    return SimDuration(d.ns_ * k);
  }
  friend constexpr SimDuration operator/(SimDuration d, uint64_t k) {
    return SimDuration(d.ns_ / k);
  }
  /// Ratio of two durations (how many `b` fit in `a`).
  friend constexpr uint64_t operator/(SimDuration a, SimDuration b) {
    return a.ns_ / b.ns_;
  }
  friend constexpr SimDuration operator%(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ % b.ns_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimDuration d) {
    return os << d.ns_;
  }

  static constexpr SimDuration Max() {
    return SimDuration(std::numeric_limits<uint64_t>::max());
  }

 private:
  uint64_t ns_ = 0;
};

/// Absolute simulated time: nanoseconds since simulation start (a point on
/// the sim timeline). Points subtract to a SimDuration; only a SimDuration
/// can be added to a point.
class SimTime {
 public:
  constexpr SimTime() = default;
  explicit constexpr SimTime(uint64_t ns) : ns_(ns) {}

  /// Escape hatch: raw nanoseconds since simulation start.
  constexpr uint64_t ns() const { return ns_; }

  constexpr auto operator<=>(const SimTime&) const = default;

  constexpr SimTime& operator+=(SimDuration d) {
    ns_ += d.ns();
    return *this;
  }
  constexpr SimTime& operator-=(SimDuration d) {
    ns_ -= d.ns();
    return *this;
  }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.ns_ + d.ns());
  }
  friend constexpr SimTime operator+(SimDuration d, SimTime t) {
    return SimTime(t.ns_ + d.ns());
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime(t.ns_ - d.ns());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration(a.ns_ - b.ns_);
  }

  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.ns_;
  }

  static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<uint64_t>::max());
  }

 private:
  uint64_t ns_ = 0;
};

/// A byte quantity (size, offset, or transferred volume).
class Bytes {
 public:
  constexpr Bytes() = default;
  explicit constexpr Bytes(uint64_t n) : v_(n) {}

  /// Escape hatch: raw byte count.
  constexpr uint64_t bytes() const { return v_; }

  constexpr auto operator<=>(const Bytes&) const = default;

  constexpr Bytes& operator+=(Bytes o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    v_ -= o.v_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.v_ + b.v_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.v_ - b.v_);
  }
  friend constexpr Bytes operator*(Bytes b, uint64_t k) {
    return Bytes(b.v_ * k);
  }
  friend constexpr Bytes operator*(uint64_t k, Bytes b) {
    return Bytes(b.v_ * k);
  }
  friend constexpr Bytes operator/(Bytes b, uint64_t k) {
    return Bytes(b.v_ / k);
  }
  /// Ratio of two byte quantities.
  friend constexpr uint64_t operator/(Bytes a, Bytes b) {
    return a.v_ / b.v_;
  }
  friend constexpr Bytes operator%(Bytes a, Bytes b) {
    return Bytes(a.v_ % b.v_);
  }

  friend std::ostream& operator<<(std::ostream& os, Bytes b) {
    return os << b.v_;
  }

 private:
  uint64_t v_ = 0;
};

/// A sector quantity (512 B units): an LBA position or a run length.
class Sectors {
 public:
  constexpr Sectors() = default;
  explicit constexpr Sectors(uint64_t n) : v_(n) {}

  /// Escape hatch: raw sector count.
  constexpr uint64_t count() const { return v_; }

  constexpr auto operator<=>(const Sectors&) const = default;

  constexpr Sectors& operator+=(Sectors o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Sectors& operator-=(Sectors o) {
    v_ -= o.v_;
    return *this;
  }

  friend constexpr Sectors operator+(Sectors a, Sectors b) {
    return Sectors(a.v_ + b.v_);
  }
  friend constexpr Sectors operator-(Sectors a, Sectors b) {
    return Sectors(a.v_ - b.v_);
  }
  friend constexpr Sectors operator*(Sectors s, uint64_t k) {
    return Sectors(s.v_ * k);
  }
  friend constexpr Sectors operator*(uint64_t k, Sectors s) {
    return Sectors(s.v_ * k);
  }
  friend constexpr Sectors operator/(Sectors s, uint64_t k) {
    return Sectors(s.v_ / k);
  }
  friend constexpr uint64_t operator/(Sectors a, Sectors b) {
    return a.v_ / b.v_;
  }

  friend std::ostream& operator<<(std::ostream& os, Sectors s) {
    return os << s.v_;
  }

 private:
  uint64_t v_ = 0;
};

/// Absolute distance between two sector positions (seek length).
constexpr Sectors SectorGap(Sectors a, Sectors b) {
  return a.count() >= b.count() ? a - b : b - a;
}

// ---------------------------------------------------------------------------
// Byte quantities.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024ULL;
inline constexpr uint64_t kMiB = 1024ULL * kKiB;
inline constexpr uint64_t kGiB = 1024ULL * kMiB;
inline constexpr uint64_t kTiB = 1024ULL * kGiB;

/// Disk sector size assumed throughout (iostat's avgrq-sz unit).
inline constexpr uint64_t kSectorSize = 512ULL;

constexpr uint64_t KiB(uint64_t n) { return n * kKiB; }
constexpr uint64_t MiB(uint64_t n) { return n * kMiB; }
constexpr uint64_t GiB(uint64_t n) { return n * kGiB; }
constexpr uint64_t TiB(uint64_t n) { return n * kTiB; }

constexpr double BytesToMiB(uint64_t bytes) {
  return static_cast<double>(bytes) / static_cast<double>(kMiB);
}
constexpr double BytesToMiB(Bytes bytes) { return BytesToMiB(bytes.bytes()); }
constexpr uint64_t BytesToSectors(uint64_t bytes) {
  return (bytes + kSectorSize - 1) / kSectorSize;
}

/// Bytes -> sectors, rounding the tail sector up.
constexpr Sectors ToSectors(Bytes b) {
  return Sectors(BytesToSectors(b.bytes()));
}
/// Sectors -> bytes (exact).
constexpr Bytes ToBytes(Sectors s) { return Bytes(s.count() * kSectorSize); }

// ---------------------------------------------------------------------------
// Simulated time helpers.
// ---------------------------------------------------------------------------

inline constexpr SimDuration kNanosecond{1ULL};
inline constexpr SimDuration kMicrosecond{1000ULL};
inline constexpr SimDuration kMillisecond{1000ULL * 1000ULL};
inline constexpr SimDuration kSecond{1000ULL * 1000ULL * 1000ULL};

constexpr SimDuration Nanos(uint64_t n) { return SimDuration(n); }
constexpr SimDuration Micros(uint64_t n) { return n * kMicrosecond; }
constexpr SimDuration Millis(uint64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(uint64_t n) { return n * kSecond; }

constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d.ns()) / static_cast<double>(kSecond.ns());
}
/// Seconds since simulation start.
constexpr double ToSeconds(SimTime t) {
  return static_cast<double>(t.ns()) / static_cast<double>(kSecond.ns());
}
constexpr double ToMillis(SimDuration d) {
  return static_cast<double>(d.ns()) /
         static_cast<double>(kMillisecond.ns());
}
/// Converts fractional seconds to a SimDuration, rounding to nearest ns.
constexpr SimDuration FromSeconds(double seconds) {
  return SimDuration(static_cast<uint64_t>(
      seconds * static_cast<double>(kSecond.ns()) + 0.5));
}

/// Converts fractional milliseconds to a SimDuration. Defined in terms of
/// FromSeconds so configuration values written either way round the same.
constexpr SimDuration FromMillis(double ms) {
  return FromSeconds(ms / 1000.0);
}

/// Absolute sim time `d` after simulation start — for plan/config literals
/// ("kill the node at t = 5 s" -> TimeAt(Seconds(5))).
constexpr SimTime TimeAt(SimDuration d) { return SimTime(d.ns()); }

/// Duration to move `bytes` at `bytes_per_second`.
constexpr SimDuration TransferTime(uint64_t bytes, double bytes_per_second) {
  return FromSeconds(static_cast<double>(bytes) / bytes_per_second);
}
constexpr SimDuration TransferTime(Bytes bytes, double bytes_per_second) {
  return TransferTime(bytes.bytes(), bytes_per_second);
}

}  // namespace bdio

#endif  // BDIO_COMMON_UNITS_H_
