#ifndef BDIO_COMMON_HISTOGRAM_H_
#define BDIO_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace bdio {

/// Log-bucketed histogram of non-negative values (latencies in ns, request
/// sizes in bytes, ...). Buckets grow geometrically, giving ~2% relative
/// error on percentile estimates — the RocksDB HistogramImpl approach.
class Histogram {
 public:
  Histogram();

  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const;
  double max() const;
  double mean() const;

  /// Percentile estimate via linear interpolation inside the bucket.
  double ValueAtPercentile(double p) const;
  double Median() const { return ValueAtPercentile(50); }

  /// Multi-line human-readable summary.
  std::string ToString() const;

 private:
  size_t BucketFor(double value) const;

  std::vector<double> bucket_limits_;  // upper bounds, ascending
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace bdio

#endif  // BDIO_COMMON_HISTOGRAM_H_
