#ifndef BDIO_COMMON_RANDOM_H_
#define BDIO_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bdio {

/// Deterministic pseudo-random number generator (xoshiro256** seeded via
/// SplitMix64). Every stochastic component in the library draws from an Rng
/// so whole-cluster simulations are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  Rng(const Rng&) = default;
  Rng& operator=(const Rng&) = default;

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller.
  double Gaussian();
  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Exponential with the given mean (= 1/lambda). mean must be > 0.
  double Exponential(double mean);

  /// Zipf-distributed integer in [0, n) with exponent `theta` in (0, 1].
  /// Uses the rejection-inversion-free approximation adequate for workload
  /// skew modelling (popularity of keys/blocks).
  uint64_t Zipf(uint64_t n, double theta);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  uint64_t Poisson(double mean);

  /// Returns a new Rng whose stream is independent of this one (stream
  /// splitting for per-component generators).
  Rng Fork();

 private:
  uint64_t s_[4];
};

/// Fisher-Yates shuffle of `v` using `rng`.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng->Uniform(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

}  // namespace bdio

#endif  // BDIO_COMMON_RANDOM_H_
