#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace bdio {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace {
thread_local LogClockFn g_clock_fn = nullptr;
thread_local const void* g_clock_ctx = nullptr;
}  // namespace

void SetThreadLogClock(LogClockFn fn, const void* ctx) {
  g_clock_fn = fn;
  g_clock_ctx = ctx;
}

void ClearThreadLogClock() {
  g_clock_fn = nullptr;
  g_clock_ctx = nullptr;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  if (g_clock_fn != nullptr) {
    const uint64_t ns = g_clock_fn(g_clock_ctx);
    char buf[48];
    std::snprintf(buf, sizeof(buf), "[t=%llu.%06llus] ",
                  static_cast<unsigned long long>(ns / 1000000000ULL),
                  static_cast<unsigned long long>((ns % 1000000000ULL) /
                                                  1000ULL));
    stream_ << buf;
  }
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace bdio
