#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace bdio {

namespace {
LogLevel g_log_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level = level; }
LogLevel GetLogLevel() { return g_log_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_log_level || level_ == LogLevel::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace bdio
