#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace bdio {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  for (auto& s : s_) s = SplitMix64(&state);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  BDIO_CHECK(bound > 0) << "Uniform bound must be positive";
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  BDIO_CHECK(lo <= hi);
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

double Rng::Gaussian() {
  // Box-Muller; discards the second variate for statelessness.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

double Rng::Exponential(double mean) {
  BDIO_CHECK(mean > 0);
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double theta) {
  BDIO_CHECK(n > 0);
  BDIO_CHECK(theta > 0 && theta <= 1.0);
  // Classic YCSB-style zipfian via the Gray et al. quick formula.
  const double alpha = 1.0 / (1.0 - theta);
  const double zetan = [&] {
    // Harmonic-like normalizer; for modelling purposes an approximation over
    // a capped number of terms keeps generation O(1) amortized.
    double z = 0;
    const uint64_t terms = n < 10000 ? n : 10000;
    for (uint64_t i = 1; i <= terms; ++i) z += 1.0 / std::pow(i, theta);
    if (n > terms) {
      // Integral tail approximation for the remaining terms.
      z += (std::pow(static_cast<double>(n), 1 - theta) -
            std::pow(static_cast<double>(terms), 1 - theta)) /
           (1 - theta);
    }
    return z;
  }();
  const double eta = (1 - std::pow(2.0 / static_cast<double>(n), 1 - theta)) /
                     (1 - (1.0 / std::pow(2.0, theta)) * 2.0 / zetan);
  double u = NextDouble();
  double uz = u * zetan;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n) * std::pow(eta * u - eta + 1.0, alpha));
  return v >= n ? n - 1 : v;
}

uint64_t Rng::Poisson(double mean) {
  BDIO_CHECK(mean >= 0);
  if (mean == 0) return 0;
  if (mean > 64) {
    double v = Gaussian(mean, std::sqrt(mean));
    return v <= 0 ? 0 : static_cast<uint64_t>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = NextDouble();
  uint64_t k = 0;
  while (prod > limit) {
    prod *= NextDouble();
    ++k;
  }
  return k;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace bdio
