#ifndef BDIO_COMMON_STATS_H_
#define BDIO_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace bdio {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);
  /// Merges another accumulator into this one.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
  double sum_ = 0;
};

/// Returns the p-th percentile (p in [0,100]) of `values` using linear
/// interpolation between closest ranks. Returns 0 for an empty vector.
/// The input is copied; prefer Percentiles() for multiple cut points.
double Percentile(std::vector<double> values, double p);

/// Percentiles for several cut points with one sort.
std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& ps);

/// Fraction of values strictly greater than `threshold` (0 if empty).
double FractionAbove(const std::vector<double>& values, double threshold);

}  // namespace bdio

#endif  // BDIO_COMMON_STATS_H_
