#include "common/status.h"

namespace bdio {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

}  // namespace bdio
