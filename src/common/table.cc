#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace bdio {

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell << std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) os << "  ";
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += widths.empty() ? 0 : 2 * (widths.size() - 1);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace bdio
