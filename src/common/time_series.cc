#include "common/time_series.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace bdio {

double TimeSeries::Mean() const {
  if (samples_.empty()) return 0;
  double s = 0;
  for (double v : samples_) s += v;
  return s / static_cast<double>(samples_.size());
}

double TimeSeries::Peak() const {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double TimeSeries::Min() const {
  if (samples_.empty()) return 0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double TimeSeries::FractionAbove(double threshold) const {
  return ::bdio::FractionAbove(samples_, threshold);
}

double TimeSeries::ActiveMean() const {
  double s = 0;
  size_t n = 0;
  for (double v : samples_) {
    if (v != 0) {
      s += v;
      ++n;
    }
  }
  return n ? s / static_cast<double>(n) : 0;
}

RunningStats TimeSeries::Stats() const {
  RunningStats st;
  for (double v : samples_) st.Add(v);
  return st;
}

TimeSeries TimeSeries::Sum(const std::vector<const TimeSeries*>& series) {
  BDIO_CHECK(!series.empty());
  TimeSeries out(series[0]->interval());
  size_t n = 0;
  for (const TimeSeries* s : series) {
    BDIO_CHECK(s->interval() == out.interval())
        << "cannot sum series with different intervals";
    n = std::max(n, s->size());
  }
  for (size_t i = 0; i < n; ++i) {
    double v = 0;
    for (const TimeSeries* s : series) {
      if (i < s->size()) v += s->at(i);
    }
    out.Append(v);
  }
  return out;
}

TimeSeries TimeSeries::Average(const std::vector<const TimeSeries*>& series) {
  TimeSeries sum = Sum(series);
  TimeSeries out(sum.interval());
  for (size_t i = 0; i < sum.size(); ++i) {
    out.Append(sum.at(i) / static_cast<double>(series.size()));
  }
  return out;
}

std::string TimeSeries::ToCsv(const std::string& name) const {
  std::ostringstream os;
  os << "time_s," << name << "\n";
  for (size_t i = 0; i < samples_.size(); ++i) {
    os << TimeAt(i) << "," << samples_[i] << "\n";
  }
  return os.str();
}

}  // namespace bdio
