#ifndef BDIO_COMMON_IO_TAG_H_
#define BDIO_COMMON_IO_TAG_H_

#include <cstdint>

namespace bdio {

/// High-level source of a file's I/O demand. The paper's conclusion calls
/// for combining "a low-level description of physical resources ... and the
/// high-level functional composition of big data workloads to reveal the
/// major source of I/O demand" — files are tagged with their role so the
/// page cache can attribute every physical byte to one of these sources.
enum class IoTag : uint32_t {
  kUnknown = 0,
  kHdfsInput,    ///< Pre-existing input dataset blocks.
  kHdfsOutput,   ///< Job output blocks, including replication copies.
  kMapSpill,     ///< Map-side sort-buffer spill files.
  kMapOutput,    ///< Merged map output files served to the shuffle.
  kShuffleRun,   ///< Reduce-side shuffle merge runs.
  kNumTags,
};

inline const char* IoTagName(IoTag tag) {
  switch (tag) {
    case IoTag::kUnknown:
      return "unknown";
    case IoTag::kHdfsInput:
      return "hdfs-input";
    case IoTag::kHdfsOutput:
      return "hdfs-output";
    case IoTag::kMapSpill:
      return "map-spill";
    case IoTag::kMapOutput:
      return "map-output";
    case IoTag::kShuffleRun:
      return "shuffle-run";
    case IoTag::kNumTags:
      break;
  }
  return "?";
}

inline constexpr uint32_t kNumIoTags =
    static_cast<uint32_t>(IoTag::kNumTags);

}  // namespace bdio

#endif  // BDIO_COMMON_IO_TAG_H_
