#ifndef BDIO_COMMON_TIME_SERIES_H_
#define BDIO_COMMON_TIME_SERIES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/units.h"

namespace bdio {

/// A fixed-interval time series of doubles — one sample per iostat interval.
/// This is the data behind every figure in the paper: a metric sampled once
/// per simulated second over the execution of a workload.
class TimeSeries {
 public:
  /// `interval` is the sampling period (default 1 simulated second).
  explicit TimeSeries(SimDuration interval = Seconds(1))
      : interval_(interval) {}

  void Append(double value) { samples_.push_back(value); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double at(size_t i) const { return samples_[i]; }
  const std::vector<double>& samples() const { return samples_; }
  SimDuration interval() const { return interval_; }

  /// Timestamp (seconds) of sample i — the end of its interval.
  double TimeAt(size_t i) const {
    return ToSeconds(interval_) * static_cast<double>(i + 1);
  }

  double Mean() const;
  double Peak() const;
  double Min() const;
  /// Fraction of samples strictly above `threshold` — the Table 6/7 metric.
  double FractionAbove(double threshold) const;
  /// Mean over only the non-zero samples (active-phase average).
  double ActiveMean() const;

  RunningStats Stats() const;

  /// Element-wise sum of series (they must have equal intervals; the shorter
  /// one is zero-extended).
  static TimeSeries Sum(const std::vector<const TimeSeries*>& series);
  /// Element-wise mean across series.
  static TimeSeries Average(const std::vector<const TimeSeries*>& series);

  /// Renders "t,v" CSV lines with the given column header.
  std::string ToCsv(const std::string& name) const;

 private:
  SimDuration interval_;
  std::vector<double> samples_;
};

}  // namespace bdio

#endif  // BDIO_COMMON_TIME_SERIES_H_
