#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace bdio {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const size_t total = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(total);
  mean_ = (mean_ * static_cast<double>(count_) +
           other.mean_ * static_cast<double>(other.count_)) /
          static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ = total;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {
double PercentileSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  BDIO_CHECK(p >= 0 && p <= 100) << "percentile out of range: " << p;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}
}  // namespace

double Percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  return PercentileSorted(values, p);
}

std::vector<double> Percentiles(std::vector<double> values,
                                const std::vector<double>& ps) {
  std::sort(values.begin(), values.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(PercentileSorted(values, p));
  return out;
}

double FractionAbove(const std::vector<double>& values, double threshold) {
  if (values.empty()) return 0.0;
  size_t n = 0;
  for (double v : values) {
    if (v > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

}  // namespace bdio
