#ifndef BDIO_COMMON_TABLE_H_
#define BDIO_COMMON_TABLE_H_

#include <string>
#include <vector>

namespace bdio {

/// Column-aligned text table used by the bench harnesses to print the
/// paper's tables. Cells are strings; numeric helpers format with fixed
/// precision.
class TextTable {
 public:
  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);
  /// Appends a data row; it may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a separator line under the header.
  std::string ToString() const;
  /// Renders as CSV.
  std::string ToCsv() const;

  /// Formats a double with `precision` decimals.
  static std::string Num(double v, int precision = 1);
  /// Formats a fraction as a percentage string, e.g. 0.226 -> "22.6%".
  static std::string Percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bdio

#endif  // BDIO_COMMON_TABLE_H_
