#ifndef BDIO_COMMON_FLAT_MAP_H_
#define BDIO_COMMON_FLAT_MAP_H_

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace bdio {

/// Sorted-vector replacements for the hot-path `std::map`/`std::multimap`s
/// (page-cache dirty sets, HDFS block maps, scheduler tables).
///
/// Why: a red-black tree pays one allocation per node and chases pointers
/// on every lookup; the simulator's hot maps are small-to-medium, keyed by
/// monotonically growing ids (append-friendly), and iterated far more often
/// than they are mutated. A sorted vector keeps the same deterministic
/// iteration order (ascending by key — bdio-lint rule R1 stays satisfied)
/// with contiguous memory and zero per-entry allocation.
///
/// API: the subset of std::map/std::multimap the call sites use — find /
/// lower_bound / upper_bound / equal_range / emplace / erase — with the
/// same semantics, including multimap equal-key behaviour (insertion order
/// preserved; find returns the leftmost equal entry, as libstdc++ does).
///
/// THE difference from std::map: iterators and references are invalidated
/// by any insert or erase. Call sites must not hold them across mutations
/// — conversions in this tree were audited for that.
template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  iterator lower_bound(const K& k) {
    return std::lower_bound(v_.begin(), v_.end(), k, KeyLess{});
  }
  const_iterator lower_bound(const K& k) const {
    return std::lower_bound(v_.begin(), v_.end(), k, KeyLess{});
  }
  iterator upper_bound(const K& k) {
    return std::upper_bound(v_.begin(), v_.end(), k, LessKey{});
  }

  iterator find(const K& k) {
    iterator it = lower_bound(k);
    return (it != v_.end() && it->first == k) ? it : v_.end();
  }
  const_iterator find(const K& k) const {
    const_iterator it = lower_bound(k);
    return (it != v_.end() && it->first == k) ? it : v_.end();
  }
  size_t count(const K& k) const { return find(k) != v_.end() ? 1 : 0; }
  bool contains(const K& k) const { return find(k) != v_.end(); }

  /// No-overwrite insert, like std::map::emplace. Appending in key order
  /// (the common pattern: ids grow monotonically) is O(1) amortized.
  template <typename... Args>
  std::pair<iterator, bool> emplace(const K& k, Args&&... args) {
    if (v_.empty() || v_.back().first < k) {
      v_.emplace_back(std::piecewise_construct, std::forward_as_tuple(k),
                      std::forward_as_tuple(std::forward<Args>(args)...));
      return {std::prev(v_.end()), true};
    }
    iterator it = lower_bound(k);
    if (it != v_.end() && it->first == k) return {it, false};
    it = v_.emplace(it, std::piecewise_construct, std::forward_as_tuple(k),
                    std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  V& operator[](const K& k) { return emplace(k).first->second; }

  iterator erase(iterator it) { return v_.erase(it); }
  iterator erase(iterator first, iterator last) {
    return v_.erase(first, last);
  }
  size_t erase(const K& k) {
    iterator it = find(k);
    if (it == v_.end()) return 0;
    v_.erase(it);
    return 1;
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& a, const K& b) const {
      return a.first < b;
    }
  };
  struct LessKey {
    bool operator()(const K& a, const value_type& b) const {
      return a < b.first;
    }
  };

  std::vector<value_type> v_;
};

/// Multimap counterpart: equal keys allowed, insertion order among equal
/// keys preserved (insert lands at upper_bound, exactly like the tree
/// multimap), find returns the leftmost equal entry. Same iterator
/// invalidation caveat as FlatMap.
template <typename K, typename V>
class FlatMultiMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() { return v_.begin(); }
  iterator end() { return v_.end(); }
  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  bool empty() const { return v_.empty(); }
  size_t size() const { return v_.size(); }
  void clear() { v_.clear(); }

  iterator lower_bound(const K& k) {
    return std::lower_bound(v_.begin(), v_.end(), k, KeyLess{});
  }
  iterator upper_bound(const K& k) {
    return std::upper_bound(v_.begin(), v_.end(), k, LessKey{});
  }
  std::pair<iterator, iterator> equal_range(const K& k) {
    return {lower_bound(k), upper_bound(k)};
  }
  iterator find(const K& k) {
    iterator it = lower_bound(k);
    return (it != v_.end() && it->first == k) ? it : v_.end();
  }

  template <typename... Args>
  iterator emplace(const K& k, Args&&... args) {
    if (v_.empty() || !(k < v_.back().first)) {
      v_.emplace_back(std::piecewise_construct, std::forward_as_tuple(k),
                      std::forward_as_tuple(std::forward<Args>(args)...));
      return std::prev(v_.end());
    }
    return v_.emplace(upper_bound(k), std::piecewise_construct,
                      std::forward_as_tuple(k),
                      std::forward_as_tuple(std::forward<Args>(args)...));
  }

  iterator erase(iterator it) { return v_.erase(it); }
  iterator erase(iterator first, iterator last) {
    return v_.erase(first, last);
  }

 private:
  struct KeyLess {
    bool operator()(const value_type& a, const K& b) const {
      return a.first < b;
    }
  };
  struct LessKey {
    bool operator()(const K& a, const value_type& b) const {
      return a < b.first;
    }
  };

  std::vector<value_type> v_;
};

}  // namespace bdio

#endif  // BDIO_COMMON_FLAT_MAP_H_
