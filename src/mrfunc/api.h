#ifndef BDIO_MRFUNC_API_H_
#define BDIO_MRFUNC_API_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace bdio::mrfunc {

/// A record flowing through a MapReduce job.
struct KeyValue {
  std::string key;
  std::string value;

  bool operator==(const KeyValue& other) const = default;
};

/// Output collector handed to Mappers/Reducers.
class Emitter {
 public:
  explicit Emitter(std::vector<KeyValue>* sink) : sink_(sink) {}
  void Emit(std::string key, std::string value) {
    sink_->push_back(KeyValue{std::move(key), std::move(value)});
  }

 private:
  std::vector<KeyValue>* sink_;
};

/// User map function: input record -> zero or more intermediate records.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual void Map(const KeyValue& record, Emitter* out) = 0;
};

/// User reduce function: one key and all its values -> output records.
/// Also used as the combiner when JobConfig::use_combiner is set (the
/// Hadoop convention for algebraic aggregates).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Reduce(const std::string& key,
                      const std::vector<std::string>& values,
                      Emitter* out) = 0;
};

/// Assigns intermediate keys to reduce partitions.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual uint32_t Partition(const std::string& key,
                             uint32_t num_partitions) const;
};

/// Default partitioner: FNV-1a hash of the key (HashPartitioner).
class HashPartitioner : public Partitioner {
 public:
  uint32_t Partition(const std::string& key,
                     uint32_t num_partitions) const override;
};

/// Total-order partitioner over sampled split points (TeraSort's
/// partitioner): keys < split[0] go to partition 0, etc.
class TotalOrderPartitioner : public Partitioner {
 public:
  explicit TotalOrderPartitioner(std::vector<std::string> split_points)
      : split_points_(std::move(split_points)) {}
  uint32_t Partition(const std::string& key,
                     uint32_t num_partitions) const override;

  /// Builds split points by sampling `sample` keys for `num_partitions`
  /// partitions.
  static std::vector<std::string> SampleSplits(
      std::vector<std::string> sample, uint32_t num_partitions);

 private:
  std::vector<std::string> split_points_;
};

}  // namespace bdio::mrfunc

#endif  // BDIO_MRFUNC_API_H_
