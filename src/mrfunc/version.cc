namespace bdio::mrfunc {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "mrfunc"; }
}  // namespace bdio::mrfunc
