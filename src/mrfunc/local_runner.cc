#include "mrfunc/local_runner.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/logging.h"

namespace bdio::mrfunc {

namespace {

void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

uint64_t VarintSize(uint64_t v) {
  uint64_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// One sorted run spilled from the map sort buffer.
struct Spill {
  /// Records sorted by (partition, key).
  std::vector<std::pair<uint32_t, KeyValue>> records;
};

/// Applies the combiner to a (partition, key)-sorted record run. Consumes
/// `sorted` (group values are moved out, not copied — the spill path runs
/// once per sort-buffer fill, so the copies it saves are the large ones).
std::vector<std::pair<uint32_t, KeyValue>> Combine(
    Reducer* combiner, std::vector<std::pair<uint32_t, KeyValue>>&& sorted) {
  std::vector<std::pair<uint32_t, KeyValue>> out;
  std::vector<std::string> values;   // reused across groups
  std::vector<KeyValue> combined;    // reused across groups
  size_t i = 0;
  while (i < sorted.size()) {
    size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].first == sorted[i].first &&
           sorted[j].second.key == sorted[i].second.key) {
      values.push_back(std::move(sorted[j].second.value));
      ++j;
    }
    combined.clear();
    Emitter em(&combined);
    combiner->Reduce(sorted[i].second.key, values, &em);
    for (auto& kv : combined) {
      out.emplace_back(sorted[i].first, std::move(kv));
    }
    i = j;
  }
  return out;
}

}  // namespace

uint64_t SerializedSize(const KeyValue& kv) {
  return VarintSize(kv.key.size()) + kv.key.size() +
         VarintSize(kv.value.size()) + kv.value.size();
}

std::string SerializeRecords(const std::vector<KeyValue>& records) {
  std::string out;
  for (const KeyValue& kv : records) {
    AppendVarint(&out, kv.key.size());
    out += kv.key;
    AppendVarint(&out, kv.value.size());
    out += kv.value;
  }
  return out;
}

Result<JobStats> LocalJobRunner::Run(const std::vector<KeyValue>& input,
                                     Mapper* mapper, Reducer* reducer,
                                     const JobConfig& config,
                                     std::vector<KeyValue>* output) {
  HashPartitioner hash;
  return Run(input, mapper, reducer, /*combiner=*/nullptr, hash, config,
             output);
}

Result<JobStats> LocalJobRunner::Run(const std::vector<KeyValue>& input,
                                     Mapper* mapper, Reducer* reducer,
                                     Reducer* combiner,
                                     const Partitioner& partitioner,
                                     const JobConfig& config,
                                     std::vector<KeyValue>* output) {
  if (mapper == nullptr || reducer == nullptr || output == nullptr) {
    return Status::InvalidArgument("mapper/reducer/output must be non-null");
  }
  if (config.num_map_tasks == 0 || config.num_reduce_tasks == 0) {
    return Status::InvalidArgument("task counts must be positive");
  }
  JobStats stats;
  Reducer* effective_combiner =
      config.use_combiner ? (combiner ? combiner : reducer) : combiner;

  std::unique_ptr<compress::Codec> codec;
  if (config.compress_map_output) codec = compress::MakeCodec(config.codec);

  // Reduce-side inputs: per partition, the collected shuffled records.
  std::vector<std::vector<KeyValue>> reduce_inputs(config.num_reduce_tasks);
  uint64_t pre_codec_bytes = 0;
  uint64_t post_codec_bytes = 0;

  // -------------------------------------------------------------------
  // Map phase: each map task owns a contiguous slice of the input.
  // -------------------------------------------------------------------
  for (uint32_t task = 0; task < config.num_map_tasks; ++task) {
    const size_t begin = input.size() * task / config.num_map_tasks;
    const size_t end = input.size() * (task + 1) / config.num_map_tasks;

    std::vector<Spill> spills;
    std::vector<std::pair<uint32_t, KeyValue>> buffer;
    uint64_t buffer_bytes = 0;

    auto flush_buffer = [&] {
      if (buffer.empty()) return;
      std::stable_sort(buffer.begin(), buffer.end(),
                       [](const auto& a, const auto& b) {
                         if (a.first != b.first) return a.first < b.first;
                         return a.second.key < b.second.key;
                       });
      if (effective_combiner != nullptr) {
        buffer = Combine(effective_combiner, std::move(buffer));
      }
      // Account spill volume (per partition, as Hadoop writes one
      // partition-segmented spill file). Without a codec the byte count is
      // a sum of per-record sizes — no need to materialize the spill image.
      if (codec) {
        std::string serialized;
        for (auto& [p, kv] : buffer) {
          AppendVarint(&serialized, kv.key.size());
          serialized += kv.key;
          AppendVarint(&serialized, kv.value.size());
          serialized += kv.value;
        }
        pre_codec_bytes += serialized.size();
        std::string compressed;
        BDIO_CHECK_OK(codec->Compress(serialized, &compressed));
        post_codec_bytes += compressed.size();
        stats.spilled_bytes += compressed.size();
      } else {
        uint64_t serialized_size = 0;
        for (auto& [p, kv] : buffer) serialized_size += SerializedSize(kv);
        pre_codec_bytes += serialized_size;
        post_codec_bytes += serialized_size;
        stats.spilled_bytes += serialized_size;
      }
      ++stats.spill_count;
      spills.push_back(Spill{std::move(buffer)});
      buffer.clear();
      buffer_bytes = 0;
    };

    std::vector<KeyValue> mapped;  // reused across input records
    for (size_t i = begin; i < end; ++i) {
      ++stats.map_input_records;
      stats.map_input_bytes += SerializedSize(input[i]);
      mapped.clear();
      Emitter em(&mapped);
      mapper->Map(input[i], &em);
      for (auto& kv : mapped) {
        ++stats.map_output_records;
        const uint64_t sz = SerializedSize(kv);
        stats.map_output_bytes += sz;
        buffer_bytes += sz;
        buffer.emplace_back(
            partitioner.Partition(kv.key, config.num_reduce_tasks),
            std::move(kv));
        if (buffer_bytes >= config.sort_buffer_bytes) flush_buffer();
      }
    }
    flush_buffer();

    // Merge this task's spills into the reduce inputs (the shuffle).
    for (Spill& spill : spills) {
      for (auto& [p, kv] : spill.records) {
        stats.shuffle_bytes += SerializedSize(kv);
        reduce_inputs[p].push_back(std::move(kv));
      }
    }
  }
  if (codec && pre_codec_bytes > 0) {
    stats.intermediate_compression_ratio =
        static_cast<double>(post_codec_bytes) /
        static_cast<double>(pre_codec_bytes);
    // Shuffle moves compressed data.
    stats.shuffle_bytes = static_cast<uint64_t>(
        static_cast<double>(stats.shuffle_bytes) *
        stats.intermediate_compression_ratio);
  }

  // -------------------------------------------------------------------
  // Reduce phase: merge-sort each partition, group by key, reduce.
  // -------------------------------------------------------------------
  output->clear();
  for (uint32_t p = 0; p < config.num_reduce_tasks; ++p) {
    auto& part = reduce_inputs[p];
    std::stable_sort(part.begin(), part.end(),
                     [](const KeyValue& a, const KeyValue& b) {
                       return a.key < b.key;
                     });
    size_t i = 0;
    std::vector<std::string> values;  // reused across groups
    std::vector<KeyValue> reduced;    // reused across groups
    while (i < part.size()) {
      size_t j = i;
      values.clear();
      while (j < part.size() && part[j].key == part[i].key) {
        // The partition buffer is discarded after this pass, so group
        // values move out instead of copying.
        values.push_back(std::move(part[j].value));
        ++j;
      }
      ++stats.reduce_input_groups;
      stats.reduce_input_records += values.size();
      reduced.clear();
      Emitter em(&reduced);
      reducer->Reduce(part[i].key, values, &em);
      for (auto& kv : reduced) {
        ++stats.reduce_output_records;
        stats.reduce_output_bytes += SerializedSize(kv);
        output->push_back(std::move(kv));
      }
      i = j;
    }
  }
  return stats;
}

}  // namespace bdio::mrfunc
