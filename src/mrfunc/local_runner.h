#ifndef BDIO_MRFUNC_LOCAL_RUNNER_H_
#define BDIO_MRFUNC_LOCAL_RUNNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/units.h"
#include "compress/codec.h"
#include "mrfunc/api.h"

namespace bdio::mrfunc {

/// Job configuration mirroring the Hadoop-1 knobs the paper varies.
struct JobConfig {
  uint32_t num_map_tasks = 4;
  uint32_t num_reduce_tasks = 2;
  /// io.sort.mb: map-side sort buffer; map output spills when it fills.
  uint64_t sort_buffer_bytes = MiB(8);
  /// Run the reducer as a map-side combiner on every spill.
  bool use_combiner = false;
  /// mapred.compress.map.output: compress spill/shuffle data (measured with
  /// the real codec so the simulator's ratios are honest).
  bool compress_map_output = false;
  std::string codec = "fastlz";
};

/// Volume accounting of one executed job — the Hadoop counters the
/// simulation profiles are calibrated from.
struct JobStats {
  uint64_t map_input_records = 0;
  uint64_t map_input_bytes = 0;
  uint64_t map_output_records = 0;
  uint64_t map_output_bytes = 0;  ///< Serialized, pre-compression.
  uint64_t spill_count = 0;
  uint64_t spilled_bytes = 0;          ///< Written to "local disk", post-codec.
  uint64_t shuffle_bytes = 0;          ///< Moved map->reduce, post-codec.
  uint64_t reduce_input_groups = 0;
  uint64_t reduce_input_records = 0;
  uint64_t reduce_output_records = 0;
  uint64_t reduce_output_bytes = 0;

  /// Post-codec / pre-codec size of intermediate data (1.0 if uncompressed).
  double intermediate_compression_ratio = 1.0;
};

/// In-process MapReduce execution engine with real semantics: map tasks over
/// input splits, a sort-buffer that spills sorted runs, per-spill combining,
/// partitioned shuffle, merge-sorted reduce input, and grouped reduce calls.
/// Used for workload correctness tests and for calibrating the cluster
/// simulator's volume model.
class LocalJobRunner {
 public:
  LocalJobRunner() = default;

  /// Runs a job over `input`. `output` receives reduce output in partition-
  /// then-key order. `combiner` may be null; when JobConfig::use_combiner is
  /// set and `combiner` is null, `reducer` is used as the combiner.
  Result<JobStats> Run(const std::vector<KeyValue>& input, Mapper* mapper,
                       Reducer* reducer, Reducer* combiner,
                       const Partitioner& partitioner, const JobConfig& config,
                       std::vector<KeyValue>* output);

  /// Convenience overload with the default hash partitioner and no combiner
  /// unless config.use_combiner.
  Result<JobStats> Run(const std::vector<KeyValue>& input, Mapper* mapper,
                       Reducer* reducer, const JobConfig& config,
                       std::vector<KeyValue>* output);
};

/// Serialized size of a record in the spill format (varint lengths + bytes).
uint64_t SerializedSize(const KeyValue& kv);

/// Serializes records into the spill wire format (used to measure honest
/// byte volumes and as codec input).
std::string SerializeRecords(const std::vector<KeyValue>& records);

}  // namespace bdio::mrfunc

#endif  // BDIO_MRFUNC_LOCAL_RUNNER_H_
