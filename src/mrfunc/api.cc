#include "mrfunc/api.h"

#include <algorithm>

#include "common/logging.h"

namespace bdio::mrfunc {

uint32_t Partitioner::Partition(const std::string& key,
                                uint32_t num_partitions) const {
  return HashPartitioner().Partition(key, num_partitions);
}

uint32_t HashPartitioner::Partition(const std::string& key,
                                    uint32_t num_partitions) const {
  BDIO_CHECK(num_partitions > 0);
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return static_cast<uint32_t>(h % num_partitions);
}

uint32_t TotalOrderPartitioner::Partition(const std::string& key,
                                          uint32_t num_partitions) const {
  BDIO_CHECK(num_partitions > 0);
  auto it =
      std::upper_bound(split_points_.begin(), split_points_.end(), key);
  const uint32_t p = static_cast<uint32_t>(it - split_points_.begin());
  return std::min(p, num_partitions - 1);
}

std::vector<std::string> TotalOrderPartitioner::SampleSplits(
    std::vector<std::string> sample, uint32_t num_partitions) {
  BDIO_CHECK(num_partitions > 0);
  std::sort(sample.begin(), sample.end());
  std::vector<std::string> splits;
  if (sample.empty()) return splits;
  for (uint32_t i = 1; i < num_partitions; ++i) {
    const size_t idx = i * sample.size() / num_partitions;
    splits.push_back(sample[std::min(idx, sample.size() - 1)]);
  }
  return splits;
}

}  // namespace bdio::mrfunc
