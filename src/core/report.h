#ifndef BDIO_CORE_REPORT_H_
#define BDIO_CORE_REPORT_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "iostat/iostat.h"

namespace bdio::core {

/// Command-line options shared by every bench binary.
struct BenchOptions {
  double scale = 1.0 / 128;
  uint64_t seed = 42;
  uint32_t num_workers = 10;
  bool csv = false;       ///< Also dump full per-second series as CSV.
  bool calibrate = false; ///< Measure volume ratios with the real engine.
  std::string outdir;     ///< If set, write per-series CSV files here.

  /// Parses --scale=<den|frac>, --seed=, --workers=, --csv, --calibrate,
  /// --outdir=<dir>. Unknown flags abort with a usage message.
  static BenchOptions Parse(int argc, char** argv);

  ExperimentSpec MakeSpec(workloads::WorkloadKind workload,
                          const Factors& factors) const;
};

/// The three factor contexts the paper's figures use.
/// Slots figures: 16 GB nodes, intermediate data compressed.
std::vector<Factors> SlotsLevels();
/// Memory figures: 1_8 slots, intermediate data NOT compressed.
std::vector<Factors> MemoryLevels();
/// Compression figures: 1_8 slots, 32 GB nodes.
std::vector<Factors> CompressionLevels();

/// How a metric's time series is summarized into one number for the
/// comparison tables: bandwidth/util use the whole-run mean; ratio metrics
/// (await, wait, avgrq-sz, svctm) use the mean over active samples.
double Summarize(const GroupObservation& obs, iostat::Metric metric);
const TimeSeries& SeriesOf(const GroupObservation& obs,
                           iostat::Metric metric);

/// Runs the grid workloads x levels with memoization.
class GridRunner {
 public:
  explicit GridRunner(const BenchOptions& options) : options_(options) {}

  /// Runs (or returns the cached) experiment.
  const ExperimentResult& Get(workloads::WorkloadKind workload,
                              const Factors& factors);

 private:
  BenchOptions options_;
  std::map<std::string, ExperimentResult> cache_;
};

/// One shape expectation derived from the paper, checked against measured
/// values. Benches print all checks and a final verdict line.
struct ShapeCheck {
  std::string description;
  bool pass = false;
};

/// Prints the checks and a "SHAPE: k/n checks hold" footer; returns the
/// number of failed checks.
int PrintShapeChecks(const std::vector<ShapeCheck>& checks);

/// True if |a-b| <= tol * max(|a|,|b|, floor) — "the factor has little
/// effect on this metric".
bool RoughlyEqual(double a, double b, double rel_tol, double floor = 1.0);

/// Prints a figure header: id, paper caption, factor context, scale.
void PrintFigureHeader(const std::string& id, const std::string& caption,
                       const BenchOptions& options);

/// Dumps one labeled series as CSV ("# <label>" then time,value lines).
void PrintSeriesCsv(const std::string& label, const TimeSeries& series);

/// Writes one series to `<outdir>/<name>.csv` (slashes and spaces in the
/// name are sanitized). Creates the directory if missing. Returns the
/// written path.
std::string WriteSeriesCsv(const std::string& outdir, const std::string& name,
                           const TimeSeries& series);

}  // namespace bdio::core

#endif  // BDIO_CORE_REPORT_H_
