#ifndef BDIO_CORE_REPORT_H_
#define BDIO_CORE_REPORT_H_

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/experiment.h"
#include "core/runner/thread_pool.h"
#include "iostat/iostat.h"

namespace bdio::core {

/// Command-line options shared by every bench binary.
struct BenchOptions {
  double scale = 1.0 / 128;
  uint64_t seed = 42;
  uint32_t num_workers = 10;
  uint32_t jobs = 0;      ///< Parallel simulations; 0 = BDIO_JOBS env var,
                          ///< else hardware_concurrency.
  bool csv = false;       ///< Also dump full per-second series as CSV.
  bool calibrate = false; ///< Measure volume ratios with the real engine.
  std::string outdir;     ///< If set, write per-series CSV files here.
  /// If set, write a Chrome/Perfetto trace of one experiment here.
  std::string trace_out;
  /// If set, dump every experiment's metrics registry here (.csv => CSV,
  /// anything else => JSON).
  std::string metrics_out;
  /// If set, write the binary block-layer Q/M/D/C lifecycle trace of one
  /// experiment here (analyze with tools/bdio-blkparse; docs/BLKTRACE.md).
  std::string blktrace_out;
  /// Experiment label to trace when trace_out/blktrace_out is set; empty =
  /// the bench's first grid cell (set by the bench, not a flag).
  std::string trace_label;

  /// Parses --scale=<den|frac>, --seed=, --workers=, --jobs=N (also
  /// "--jobs N"), --csv, --calibrate, --outdir=<dir>, --trace-out=<file>,
  /// --metrics-out=<file>, --blktrace-out=<file> (the last three also read
  /// the BDIO_TRACE_OUT / BDIO_METRICS_OUT / BDIO_BLKTRACE_OUT env vars).
  /// Numeric flag values are validated: a malformed or out-of-range
  /// --scale/--seed/--workers/--jobs aborts with exit code 2 instead of
  /// silently wrapping. Unknown flags abort with a usage message.
  static BenchOptions Parse(int argc, char** argv);

  /// Parse variant for benches with extra flags: `extra` sees each unknown
  /// flag first and returns true to claim it; unclaimed flags still abort.
  /// `extra_usage` is appended to --help output.
  static BenchOptions Parse(int argc, char** argv,
                            const std::function<bool(const std::string&)>&
                                extra,
                            const std::string& extra_usage);

  /// The worker-thread count `jobs` resolves to (see the field comment).
  uint32_t ResolvedJobs() const;

  ExperimentSpec MakeSpec(workloads::WorkloadKind workload,
                          const Factors& factors) const;
};

/// The three factor contexts the paper's figures use.
/// Slots figures: 16 GB nodes, intermediate data compressed.
std::vector<Factors> SlotsLevels();
/// Memory figures: 1_8 slots, intermediate data NOT compressed.
std::vector<Factors> MemoryLevels();
/// Compression figures: 1_8 slots, 32 GB nodes.
std::vector<Factors> CompressionLevels();

/// How a metric's time series is summarized into one number for the
/// comparison tables: bandwidth/util use the whole-run mean; ratio metrics
/// (await, wait, avgrq-sz, svctm) use the mean over active samples.
double Summarize(const GroupObservation& obs, iostat::Metric metric);
const TimeSeries& SeriesOf(const GroupObservation& obs,
                           iostat::Metric metric);

/// Runs the grid workloads x levels with memoization, executing up to
/// `options.jobs` simulations concurrently on a work-stealing pool.
///
/// The cache maps `Factors::Label(workload)` to a per-key shared future:
/// the first Prefetch/Get for a key submits the simulation, every later
/// call joins the same in-flight future, so two figures (or two threads)
/// never simulate the same grid point twice. Results are immutable once
/// published; references returned by Get stay valid for the runner's
/// lifetime.
class GridRunner {
 public:
  /// `run` overrides the experiment executor (tests inject counters/stubs);
  /// the default is RunExperiment.
  using RunFn = std::function<Result<ExperimentResult>(const ExperimentSpec&)>;
  explicit GridRunner(const BenchOptions& options, RunFn run = {});

  /// Submits the experiment to the pool if neither cached nor in flight.
  /// Returns immediately; a later Get joins the result.
  void Prefetch(workloads::WorkloadKind workload, const Factors& factors);

  /// Submits every workload x level grid point (workload-major, the order
  /// figures print) so the whole grid runs concurrently.
  void PrefetchAll(const std::vector<Factors>& levels);

  /// Returns the experiment result, running it (or waiting for the
  /// in-flight run) if needed. Aborts the process if the experiment failed.
  const ExperimentResult& Get(workloads::WorkloadKind workload,
                              const Factors& factors);

 private:
  // The Result travels through the future so a failed experiment aborts on
  // the caller thread in Get(), at a well-defined point in output order —
  // not from a pool worker mid-print. shared_future::get() returns a
  // reference into the shared state, which the cache keeps alive, so
  // results returned by Get are reference-stable.
  using Entry = std::shared_future<Result<ExperimentResult>>;
  Entry EntryFor(workloads::WorkloadKind workload, const Factors& factors);

  BenchOptions options_;
  RunFn run_;
  runner::ThreadPool pool_;
  std::mutex mu_;
  std::map<std::string, Entry> cache_;
};

/// One shape expectation derived from the paper, checked against measured
/// values. Benches print all checks and a final verdict line.
struct ShapeCheck {
  std::string description;
  bool pass = false;
};

/// Prints the checks and a "SHAPE: k/n checks hold" footer; returns the
/// number of failed checks.
int PrintShapeChecks(const std::vector<ShapeCheck>& checks);

/// True if |a-b| <= tol * max(|a|,|b|, floor) — "the factor has little
/// effect on this metric".
bool RoughlyEqual(double a, double b, double rel_tol, double floor = 1.0);

/// Prints a figure header: id, paper caption, factor context, scale.
void PrintFigureHeader(const std::string& id, const std::string& caption,
                       const BenchOptions& options);

/// Dumps one labeled series as CSV ("# <label>" then time,value lines).
void PrintSeriesCsv(const std::string& label, const TimeSeries& series);

/// Writes one series to `<outdir>/<name>.csv` (slashes and spaces in the
/// name are sanitized). Creates the directory if missing. Returns the
/// written path.
std::string WriteSeriesCsv(const std::string& outdir, const std::string& name,
                           const TimeSeries& series);

/// Writes the observability artifacts the options ask for (no-op when none
/// of --trace-out/--metrics-out/--blktrace-out is set): the first result
/// carrying a trace is written as Chrome trace-event JSON to
/// options.trace_out, the first result carrying a blktrace is written as
/// the binary lifecycle artifact to options.blktrace_out, and every
/// result's metrics registry is dumped to options.metrics_out (CSV when
/// the path ends in ".csv", else a JSON document keyed by label). Prints
/// one "wrote ..." line per file.
void WriteObsArtifacts(
    const BenchOptions& options,
    const std::vector<std::pair<std::string, const ExperimentResult*>>&
        results);

}  // namespace bdio::core

#endif  // BDIO_CORE_REPORT_H_
