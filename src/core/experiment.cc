#include "core/experiment.h"

#include <memory>
#include <utility>

#include "check/invariants.h"
#include "cluster/cluster.h"
#include "common/io_tag.h"
#include "common/logging.h"
#include "common/random.h"
#include "dag/job_dag.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "sim/latch.h"
#include "sim/simulator.h"

namespace bdio::core {

std::string Factors::MemoryLabel() const {
  return std::to_string(memory_bytes / kGiB) + "G";
}

std::string Factors::Label(workloads::WorkloadKind workload) const {
  return std::string(workloads::WorkloadShortName(workload)) + "_" +
         slots.label + "_" + MemoryLabel() + "_" + CompressionLabel();
}

namespace {

/// Applies the spec's Hadoop tuning overrides to one job spec (the same
/// patch BuildPlan's static jobs get below).
void ApplyJobOverrides(const ExperimentSpec& spec,
                       mapreduce::SimJobSpec* job) {
  if (spec.sort_buffer_bytes > 0) {
    job->sort_buffer_bytes = spec.sort_buffer_bytes;
  }
  if (spec.parallel_copies > 0) {
    job->parallel_copies = spec.parallel_copies;
  }
  if (spec.reduce_slowstart >= 0) {
    job->reduce_slowstart = spec.reduce_slowstart;
  }
}

/// Wraps a workload's iteration controller so controller-emitted rounds
/// carry the same tuning overrides as the statically planned jobs.
class SpecPatchController : public dag::IterationController {
 public:
  SpecPatchController(std::shared_ptr<dag::IterationController> inner,
                      const ExperimentSpec* spec)
      : inner_(std::move(inner)), spec_(spec) {}

  std::vector<dag::DagNode> NextRound(
      const dag::RoundResult& completed) override {
    std::vector<dag::DagNode> nodes = inner_->NextRound(completed);
    for (dag::DagNode& node : nodes) ApplyJobOverrides(*spec_, &node.spec);
    return nodes;
  }

 private:
  std::shared_ptr<dag::IterationController> inner_;
  const ExperimentSpec* spec_;
};

GroupObservation ObserveGroup(const iostat::Monitor& monitor,
                              const std::string& group) {
  GroupObservation obs;
  obs.read_mbps = monitor.GroupMean(group, iostat::Metric::kReadMBps);
  obs.write_mbps = monitor.GroupMean(group, iostat::Metric::kWriteMBps);
  obs.util = monitor.GroupMean(group, iostat::Metric::kUtil);
  obs.await_ms = monitor.GroupActiveMean(group, iostat::Metric::kAwait);
  obs.svctm_ms = monitor.GroupActiveMean(group, iostat::Metric::kSvctm);
  obs.wait_ms = monitor.GroupActiveMean(group, iostat::Metric::kWait);
  obs.avgrq_sz = monitor.GroupActiveMean(group, iostat::Metric::kAvgRqSz);
  obs.util_above_90 = monitor.GroupUtilFractionAbove(group, 90.0);
  obs.util_above_95 = monitor.GroupUtilFractionAbove(group, 95.0);
  obs.util_above_99 = monitor.GroupUtilFractionAbove(group, 99.0);
  obs.peak_read_mbps = obs.read_mbps.Peak();
  return obs;
}

}  // namespace

Result<ExperimentResult> RunExperiment(const ExperimentSpec& spec) {
  if (spec.scale <= 0 || spec.scale > 1.0) {
    return Status::InvalidArgument("scale must be in (0, 1]");
  }
  Rng rng(spec.seed);
  sim::Simulator sim;
  // Log lines emitted while this experiment runs carry its sim-time.
  sim::ScopedLogClock log_clock(&sim);

  // ---- Testbed (Tables 1 and 2), scaled. -------------------------------
  cluster::ClusterParams cp;
  cp.num_workers = spec.num_workers;
  cp.node.memory_bytes = static_cast<uint64_t>(
      static_cast<double>(spec.factors.memory_bytes) * spec.scale);
  cp.node.daemon_bytes =
      static_cast<uint64_t>(static_cast<double>(GiB(2)) * spec.scale);
  cp.node.per_slot_heap_bytes =
      static_cast<uint64_t>(static_cast<double>(MiB(200)) * spec.scale);
  cp.node.min_cache_bytes = MiB(16);
  cp.node.io_scheduler = spec.io_scheduler;
  cp.node.num_hdfs_disks = spec.num_hdfs_disks;
  cp.node.num_mr_disks = spec.num_mr_disks;
  cp.node.cache.readahead_max_bytes = spec.readahead_max_bytes;
  cp.node.cache.writeback_period = spec.writeback_period;
  cp.node.disk.ncq_depth = spec.ncq_depth;
  if (spec.ssd_intermediate) {
    cp.node.mr_disk = storage::DiskParameters::SataSsd2013();
  }
  cluster::Cluster cluster(&sim, cp, spec.factors.slots.total(), rng.Fork());

  hdfs::HdfsParams hp;
  hdfs::Hdfs dfs(&cluster, hp, rng.Fork());

  // ---- Workload plan and dataset. ---------------------------------------
  workloads::PlanOptions options;
  options.compress_intermediate = spec.factors.compress_intermediate;
  options.scale = spec.scale;
  options.kmeans_iterations = spec.kmeans_iterations;
  options.pagerank_iterations = spec.pagerank_iterations;
  options.pagerank_epsilon = spec.pagerank_epsilon;
  options.seed = spec.seed;
  workloads::Calibration calibration;
  if (spec.calibrate) {
    calibration = workloads::CalibrateWorkload(spec.workload, spec.seed);
    options.calibration = &calibration;
  }
  workloads::WorkloadPlan plan = workloads::BuildPlan(spec.workload, options);
  for (workloads::PlannedJob& job : plan.jobs) {
    ApplyJobOverrides(spec, &job.spec);
  }
  BDIO_RETURN_IF_ERROR(dfs.Preload(plan.dataset_path, plan.dataset_bytes));

  // ---- Monitoring: iostat -x 1 on every data disk of every worker. ------
  iostat::Monitor monitor(&sim, spec.iostat_interval);
  for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
    for (uint32_t d = 0; d < cluster.node(n)->num_hdfs_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->hdfs_disk(d), "hdfs");
    }
    for (uint32_t d = 0; d < cluster.node(n)->num_mr_disks(); ++d) {
      monitor.AddDevice(cluster.node(n)->mr_disk(d), "mr");
    }
  }
  monitor.Start();
  mapreduce::MrEngine engine(&cluster, &dfs, spec.factors.slots, rng.Fork());

  // ---- Observability: metrics registry (always) + optional trace. -------
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  std::shared_ptr<obs::TraceSession> trace;
  if (spec.collect_trace) {
    trace = std::make_shared<obs::TraceSession>(&sim);
  }
  obs::TraceSession* tr = trace.get();
  cluster.AttachObs(tr, metrics.get());
  dfs.AttachObs(tr, metrics.get());
  engine.AttachObs(tr, metrics.get());
  std::shared_ptr<obs::BlktraceSession> blktrace;
  if (spec.collect_blktrace) {
    blktrace = std::make_shared<obs::BlktraceSession>(
        &sim, spec.blktrace_max_records);
    blktrace->AttachMetrics(metrics.get());
    cluster.AttachBlktrace(blktrace.get());
  }

  // The workload dag: static plan jobs as a linear dependency chain (the
  // pre-dag chained semantics); iterative workloads grow the dag round by
  // round through their controller. Constructed before the invariant
  // checker so the checker's final detach-time audit still has a live dag.
  dag::DagSpec dag_spec;
  dag_spec.name = plan.short_name;
  dag_spec.expire_intermediates = plan.expire_intermediates;
  for (size_t i = 0; i < plan.jobs.size(); ++i) {
    dag::DagNode node;
    node.spec = plan.jobs[i].spec;
    if (i > 0) node.deps.push_back(static_cast<dag::NodeId>(i - 1));
    dag_spec.nodes.push_back(std::move(node));
  }
  if (plan.iteration != nullptr) {
    dag_spec.controller =
        std::make_shared<SpecPatchController>(plan.iteration, &spec);
  }
  dag::JobDag jobdag(&sim, &engine, &dfs, std::move(dag_spec));
  jobdag.AttachObs(metrics.get());

  // Debug-mode invariant auditing (BDIO_CHECK_INVARIANTS=1): read-only, so
  // a checked run stays byte-identical to an unchecked one.
  const auto checker = invariants::MaybeAttachFromEnv(
      &sim, &cluster, &dfs, &engine, metrics.get());
  if (checker != nullptr) checker->WatchDag(&jobdag);

  // CPU + task-concurrency sampler: per interval, the fraction of all cores
  // in use and the executing task counts. Stops rescheduling once the
  // workload (and trailing writeback) finish; the self-referencing closure
  // is cleared after sim.Run() below.
  bool all_done = false;
  TimeSeries cpu_series(spec.iostat_interval);
  TimeSeries maps_series(spec.iostat_interval);
  TimeSeries reduces_series(spec.iostat_interval);
  auto sample_cpu = std::make_shared<std::function<void()>>();
  {
    auto last_used = std::make_shared<double>(0.0);
    const double total_cores =
        static_cast<double>(cp.node.cores) * cluster.num_workers();
    const double interval_s = ToSeconds(spec.iostat_interval);
    *sample_cpu = [&sim, &cluster, &engine, &cpu_series, &maps_series,
                   &reduces_series, &all_done, last_used, sample_cpu,
                   total_cores, interval_s] {
      if (all_done) return;
      double used = 0;
      for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
        used += cluster.node(n)->cpu()->cpu_seconds_used();
      }
      cpu_series.Append((used - *last_used) / (total_cores * interval_s));
      *last_used = used;
      maps_series.Append(engine.running_maps());
      reduces_series.Append(engine.running_reduces());
      sim.ScheduleAfter(cpu_series.interval(), [sample_cpu] {
        if (*sample_cpu) (*sample_cpu)();
      });
    };
    sim.ScheduleAfter(spec.iostat_interval, [sample_cpu] {
      if (*sample_cpu) (*sample_cpu)();
    });
  }

  // ---- Execute the workload through the JobDag driver. ------------------
  ExperimentResult result;
  result.label = spec.factors.Label(spec.workload);

  Status job_status = Status::OK();
  jobdag.Run([&](Status s) {
    if (!s.ok()) {
      job_status = s;
      monitor.Stop();
      all_done = true;
      return;
    }
    // Flush trailing writeback so the tail of the workload's writes is
    // charged to the measurement window, then stop sampling.
    auto flushed = sim::Latch::Create(cluster.num_workers(), [&] {
      monitor.Stop();
      all_done = true;
    });
    for (uint32_t n = 0; n < cluster.num_workers(); ++n) {
      cluster.node(n)->cache()->SyncAll(flushed->Arm());
    }
  });
  sim.Run();
  *sample_cpu = nullptr;  // break the sampler's self-reference

  if (!job_status.ok()) return job_status;
  BDIO_CHECK(all_done) << "simulation drained before the workload finished";
  for (const dag::NodeRecord& record : jobdag.node_records()) {
    result.jobs.push_back(record.counters);
  }

  result.duration_s = ToSeconds(sim.Now());
  result.events_processed = sim.events_processed();
  result.hdfs = ObserveGroup(monitor, "hdfs");
  result.mr = ObserveGroup(monitor, "mr");
  result.cpu_util = std::move(cpu_series);
  result.maps_running = std::move(maps_series);
  result.reduces_running = std::move(reduces_series);
  // Attribute physical bytes to their high-level sources. The per-tag
  // counters in the registry are the single source of truth; tags that
  // moved no bytes are omitted.
  for (uint32_t t = 0; t < kNumIoTags; ++t) {
    const char* name = IoTagName(static_cast<IoTag>(t));
    const obs::Labels labels{{"source", name}};
    const uint64_t r =
        metrics->CounterValue("pagecache.tag_disk_read_bytes", labels);
    const uint64_t w =
        metrics->CounterValue("pagecache.tag_disk_write_bytes", labels);
    if (r + w == 0) continue;
    IoSourceVolumes& dst = result.io_sources[name];
    dst.disk_read_bytes = r;
    dst.disk_write_bytes = w;
  }
  result.metrics = std::move(metrics);
  result.trace = std::move(trace);
  result.blktrace = std::move(blktrace);
  return result;
}

}  // namespace bdio::core
