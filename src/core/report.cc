#include "core/report.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include "common/logging.h"

namespace bdio::core {

namespace {

// Flag values are validated, not best-effort converted: strtoul would
// silently wrap a negative --jobs to ~4 billion threads, atof would turn
// "--scale=abc" into 0, and strtoull accepts "--seed=12x" by stopping at
// the 'x'. Each helper rejects garbage with a clear message and exit 2.
[[noreturn]] void DieBadFlag(const char* flag, const char* expects,
                             const char* got) {
  std::fprintf(stderr, "%s expects %s, got '%s' (try --help)\n", flag,
               expects, got);
  std::exit(2);
}

uint32_t ParseJobsOrDie(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0) {
    DieBadFlag("--jobs", "a positive integer", s);
  }
  return static_cast<uint32_t>(v);
}

uint32_t ParseWorkersOrDie(const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v <= 0 || v > 100000) {
    DieBadFlag("--workers", "a positive worker count", s);
  }
  return static_cast<uint32_t>(v);
}

uint64_t ParseSeedOrDie(const char* s) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || *s == '-') {
    DieBadFlag("--seed", "an unsigned integer", s);
  }
  return static_cast<uint64_t>(v);
}

double ParseScaleOrDie(const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0) {
    DieBadFlag("--scale", "a positive fraction or denominator", s);
  }
  // Accept either a fraction (0.01) or a denominator (128).
  return v > 1.0 ? 1.0 / v : v;
}

}  // namespace

BenchOptions BenchOptions::Parse(int argc, char** argv) {
  return Parse(argc, argv, nullptr, "");
}

BenchOptions BenchOptions::Parse(
    int argc, char** argv,
    const std::function<bool(const std::string&)>& extra,
    const std::string& extra_usage) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      options.scale = ParseScaleOrDie(arg.c_str() + 8);
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = ParseSeedOrDie(arg.c_str() + 7);
    } else if (arg.rfind("--workers=", 0) == 0) {
      options.num_workers = ParseWorkersOrDie(arg.c_str() + 10);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = ParseJobsOrDie(arg.c_str() + 7);
    } else if (arg == "--jobs" && i + 1 < argc) {
      options.jobs = ParseJobsOrDie(argv[++i]);
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg.rfind("--outdir=", 0) == 0) {
      options.outdir = arg.substr(9);
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = arg.substr(12);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = arg.substr(14);
    } else if (arg.rfind("--blktrace-out=", 0) == 0) {
      options.blktrace_out = arg.substr(15);
    } else if (arg == "--calibrate") {
      options.calibrate = true;
    } else if (arg == "--help" || arg == "-h") {
      std::fprintf(stderr,
                   "usage: %s [--scale=<denominator|fraction>] [--seed=N]\n"
                   "          [--workers=N] [--jobs=N] [--csv] [--calibrate]\n"
                   "          [--outdir=<dir>] [--trace-out=<file>]\n"
                   "          [--metrics-out=<file>] [--blktrace-out=<file>]\n"
                   "  --jobs=N  run up to N simulations in parallel\n"
                   "            (default: BDIO_JOBS env var, else all cores)\n"
                   "  --trace-out=<file>    write a Chrome/Perfetto trace of\n"
                   "                        one experiment (env BDIO_TRACE_OUT)\n"
                   "  --metrics-out=<file>  dump every experiment's metrics\n"
                   "                        (.csv => CSV, else JSON;\n"
                   "                        env BDIO_METRICS_OUT)\n"
                   "  --blktrace-out=<file> write the block-layer Q/M/D/C\n"
                   "                        lifecycle trace of one experiment\n"
                   "                        for tools/bdio-blkparse\n"
                   "                        (env BDIO_BLKTRACE_OUT)\n"
                   "%s",
                   argv[0], extra_usage.c_str());
      std::exit(0);
    } else if (extra && extra(arg)) {
      // Claimed by the bench's own flag handler.
    } else {
      std::fprintf(stderr, "unknown flag: %s (try --help)\n", arg.c_str());
      std::exit(2);
    }
  }
  if (options.trace_out.empty()) {
    if (const char* env = std::getenv("BDIO_TRACE_OUT")) {
      options.trace_out = env;
    }
  }
  if (options.metrics_out.empty()) {
    if (const char* env = std::getenv("BDIO_METRICS_OUT")) {
      options.metrics_out = env;
    }
  }
  if (options.blktrace_out.empty()) {
    if (const char* env = std::getenv("BDIO_BLKTRACE_OUT")) {
      options.blktrace_out = env;
    }
  }
  return options;
}

uint32_t BenchOptions::ResolvedJobs() const {
  return jobs > 0 ? jobs : runner::ThreadPool::DefaultParallelism();
}

ExperimentSpec BenchOptions::MakeSpec(workloads::WorkloadKind workload,
                                      const Factors& factors) const {
  ExperimentSpec spec;
  spec.workload = workload;
  spec.factors = factors;
  spec.scale = scale;
  spec.seed = seed;
  spec.num_workers = num_workers;
  spec.calibrate = calibrate;
  // Trace exactly one experiment per run: the one whose label matches
  // trace_label (every experiment when no label was chosen).
  const bool label_match =
      trace_label.empty() || trace_label == factors.Label(workload);
  spec.collect_trace = !trace_out.empty() && label_match;
  spec.collect_blktrace = !blktrace_out.empty() && label_match;
  return spec;
}

std::vector<Factors> SlotsLevels() {
  Factors base;
  base.memory_bytes = GiB(16);
  base.compress_intermediate = true;
  Factors small = base;
  small.slots = mapreduce::SlotConfig::Paper_1_8();
  Factors large = base;
  large.slots = mapreduce::SlotConfig::Paper_2_16();
  return {small, large};
}

std::vector<Factors> MemoryLevels() {
  Factors base;
  base.slots = mapreduce::SlotConfig::Paper_1_8();
  base.compress_intermediate = false;
  Factors mem16 = base;
  mem16.memory_bytes = GiB(16);
  Factors mem32 = base;
  mem32.memory_bytes = GiB(32);
  return {mem16, mem32};
}

std::vector<Factors> CompressionLevels() {
  Factors base;
  base.slots = mapreduce::SlotConfig::Paper_1_8();
  base.memory_bytes = GiB(32);
  Factors off = base;
  off.compress_intermediate = false;
  Factors on = base;
  on.compress_intermediate = true;
  return {off, on};
}

double Summarize(const GroupObservation& obs, iostat::Metric metric) {
  switch (metric) {
    case iostat::Metric::kAwait:
    case iostat::Metric::kSvctm:
    case iostat::Metric::kWait:
    case iostat::Metric::kAvgRqSz:
      return SeriesOf(obs, metric).ActiveMean();
    default:
      return SeriesOf(obs, metric).Mean();
  }
}

const TimeSeries& SeriesOf(const GroupObservation& obs,
                           iostat::Metric metric) {
  switch (metric) {
    case iostat::Metric::kReadMBps:
      return obs.read_mbps;
    case iostat::Metric::kWriteMBps:
      return obs.write_mbps;
    case iostat::Metric::kUtil:
      return obs.util;
    case iostat::Metric::kAwait:
      return obs.await_ms;
    case iostat::Metric::kSvctm:
      return obs.svctm_ms;
    case iostat::Metric::kWait:
      return obs.wait_ms;
    case iostat::Metric::kAvgRqSz:
      return obs.avgrq_sz;
    default:
      BDIO_LOG(Fatal) << "metric has no stored series";
      return obs.util;  // unreachable
  }
}

GridRunner::GridRunner(const BenchOptions& options, RunFn run)
    : options_(options),
      run_(run ? std::move(run) : RunFn(&RunExperiment)),
      pool_(options.ResolvedJobs()) {}

GridRunner::Entry GridRunner::EntryFor(workloads::WorkloadKind workload,
                                       const Factors& factors) {
  const std::string label = factors.Label(workload);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(label);
  if (it != cache_.end()) return it->second;

  // First request for this key: submit exactly one simulation and publish
  // its future before releasing the lock, so concurrent callers join it.
  // Failures ride the future back to Get(); workers never abort.
  const ExperimentSpec spec = options_.MakeSpec(workload, factors);
  auto task = [run = run_, spec]() { return run(spec); };
  Entry entry = pool_.Async(std::move(task)).share();
  auto [ins, inserted] = cache_.emplace(label, std::move(entry));
  BDIO_CHECK(inserted);
  return ins->second;
}

void GridRunner::Prefetch(workloads::WorkloadKind workload,
                          const Factors& factors) {
  EntryFor(workload, factors);
}

void GridRunner::PrefetchAll(const std::vector<Factors>& levels) {
  for (workloads::WorkloadKind w : workloads::AllWorkloads()) {
    for (const Factors& f : levels) Prefetch(w, f);
  }
}

const ExperimentResult& GridRunner::Get(workloads::WorkloadKind workload,
                                        const Factors& factors) {
  const Result<ExperimentResult>& result = EntryFor(workload, factors).get();
  BDIO_CHECK(result.ok()) << factors.Label(workload) << ": "
                          << result.status().ToString();
  return *result;
}

int PrintShapeChecks(const std::vector<ShapeCheck>& checks) {
  int failed = 0;
  std::printf("\nShape checks (paper-expected behaviour):\n");
  for (const ShapeCheck& c : checks) {
    std::printf("  [%s] %s\n", c.pass ? "ok" : "MISS", c.description.c_str());
    if (!c.pass) ++failed;
  }
  std::printf("SHAPE: %zu/%zu checks hold\n", checks.size() - failed,
              checks.size());
  return failed;
}

bool RoughlyEqual(double a, double b, double rel_tol, double floor) {
  const double scale = std::max({std::abs(a), std::abs(b), floor});
  return std::abs(a - b) <= rel_tol * scale;
}

void PrintFigureHeader(const std::string& id, const std::string& caption,
                       const BenchOptions& options) {
  std::printf("==== %s — %s ====\n", id.c_str(), caption.c_str());
  std::printf(
      "testbed: %u workers, scale 1/%.0f of the paper's dataset sizes "
      "(seed %llu)\n\n",
      options.num_workers, 1.0 / options.scale,
      static_cast<unsigned long long>(options.seed));
}

void PrintSeriesCsv(const std::string& label, const TimeSeries& series) {
  std::printf("# %s\n", label.c_str());
  std::fputs(series.ToCsv("value").c_str(), stdout);
}

std::string WriteSeriesCsv(const std::string& outdir, const std::string& name,
                           const TimeSeries& series) {
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  std::string file = name;
  for (char& c : file) {
    if (c == '/' || c == ' ' || c == '%') c = '_';
  }
  const std::string path = outdir + "/" + file + ".csv";
  std::ofstream out(path);
  BDIO_CHECK(out.good()) << "cannot write " << path;
  out << series.ToCsv("value");
  return path;
}

void WriteObsArtifacts(
    const BenchOptions& options,
    const std::vector<std::pair<std::string, const ExperimentResult*>>&
        results) {
  if (!options.trace_out.empty()) {
    bool wrote = false;
    for (const auto& [label, res] : results) {
      if (res == nullptr || res->trace == nullptr) continue;
      const Status s = res->trace->WriteJsonFile(options.trace_out);
      BDIO_CHECK(s.ok()) << s.ToString();
      std::printf("wrote %s (trace of %s, %zu events)\n",
                  options.trace_out.c_str(), label.c_str(),
                  res->trace->num_events());
      wrote = true;
      break;  // one trace per run; later results carry none anyway
    }
    if (!wrote) {
      std::fprintf(stderr,
                   "warning: --trace-out was set but no experiment carried a "
                   "trace\n");
    }
  }
  if (!options.blktrace_out.empty()) {
    bool wrote = false;
    for (const auto& [label, res] : results) {
      if (res == nullptr || res->blktrace == nullptr) continue;
      const Status s = res->blktrace->WriteFile(options.blktrace_out);
      BDIO_CHECK(s.ok()) << s.ToString();
      std::printf(
          "wrote %s (blktrace of %s, %llu records, %llu dropped)\n",
          options.blktrace_out.c_str(), label.c_str(),
          static_cast<unsigned long long>(res->blktrace->num_records()),
          static_cast<unsigned long long>(res->blktrace->dropped_records()));
      wrote = true;
      break;  // one blktrace per run, matching the span-trace policy
    }
    if (!wrote) {
      std::fprintf(stderr,
                   "warning: --blktrace-out was set but no experiment "
                   "carried a blktrace\n");
    }
  }
  if (!options.metrics_out.empty()) {
    const bool as_csv =
        options.metrics_out.size() >= 4 &&
        options.metrics_out.compare(options.metrics_out.size() - 4, 4,
                                    ".csv") == 0;
    std::string out;
    if (as_csv) {
      out = "label,metric,labels,field,value\n";
      for (const auto& [label, res] : results) {
        if (res && res->metrics) out += res->metrics->ToCsv(label);
      }
    } else {
      out = "{\"experiments\":[\n";
      bool first = true;
      for (const auto& [label, res] : results) {
        if (res == nullptr || res->metrics == nullptr) continue;
        if (!first) out += ",\n";
        first = false;
        out += "{\"label\":\"" + label +
               "\",\"metrics\":" + res->metrics->ToJson() + "}";
      }
      out += "\n]}\n";
    }
    std::ofstream f(options.metrics_out, std::ios::binary);
    BDIO_CHECK(f.good()) << "cannot write " << options.metrics_out;
    f << out;
    std::printf("wrote %s\n", options.metrics_out.c_str());
  }
}

}  // namespace bdio::core
