namespace bdio::core {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "core"; }
}  // namespace bdio::core
