#ifndef BDIO_CORE_RUNNER_SWEEP_RUNNER_H_
#define BDIO_CORE_RUNNER_SWEEP_RUNNER_H_

#include <future>
#include <memory>
#include <vector>

#include "core/experiment.h"
#include "core/runner/thread_pool.h"

namespace bdio::core::runner {

/// Executes a vector of ExperimentSpecs concurrently on a ThreadPool and
/// returns the results in submission order.
///
/// Determinism invariant: each simulation owns its entire state (Simulator,
/// cluster, RNG seeded from `spec.seed`) — nothing is shared across grid
/// points — so a parallel sweep produces bit-identical ExperimentResults to
/// a serial sweep of the same specs. tests/core/runner_test.cc asserts this.
class SweepRunner {
 public:
  /// Owns a fresh pool of `jobs` workers (0 = ThreadPool::DefaultParallelism).
  explicit SweepRunner(unsigned jobs = 0);
  /// Borrows an existing pool (not owned; must outlive the runner).
  explicit SweepRunner(ThreadPool* pool);

  ThreadPool& pool() { return *pool_; }

  /// Submits every spec; futures are in submission order.
  std::vector<std::future<Result<ExperimentResult>>> Submit(
      const std::vector<ExperimentSpec>& specs);

  /// Submits every spec and blocks for all results, in submission order.
  std::vector<Result<ExperimentResult>> Run(
      const std::vector<ExperimentSpec>& specs);

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
};

}  // namespace bdio::core::runner

#endif  // BDIO_CORE_RUNNER_SWEEP_RUNNER_H_
