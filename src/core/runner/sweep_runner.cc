#include "core/runner/sweep_runner.h"

#include <utility>

namespace bdio::core::runner {

SweepRunner::SweepRunner(unsigned jobs)
    : owned_pool_(std::make_unique<ThreadPool>(jobs)),
      pool_(owned_pool_.get()) {}

SweepRunner::SweepRunner(ThreadPool* pool) : pool_(pool) {}

std::vector<std::future<Result<ExperimentResult>>> SweepRunner::Submit(
    const std::vector<ExperimentSpec>& specs) {
  std::vector<std::future<Result<ExperimentResult>>> futures;
  futures.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    futures.push_back(
        pool_->Async([spec]() { return RunExperiment(spec); }));
  }
  return futures;
}

std::vector<Result<ExperimentResult>> SweepRunner::Run(
    const std::vector<ExperimentSpec>& specs) {
  auto futures = Submit(specs);
  std::vector<Result<ExperimentResult>> results;
  results.reserve(futures.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

}  // namespace bdio::core::runner
