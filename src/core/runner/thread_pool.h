#ifndef BDIO_CORE_RUNNER_THREAD_POOL_H_
#define BDIO_CORE_RUNNER_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace bdio::core::runner {

/// A small work-stealing thread pool for coarse-grained simulation tasks.
///
/// Each worker owns a deque: the owner pops from the back (LIFO, cache-warm),
/// idle workers steal from the front of a victim's deque (FIFO, oldest task
/// first). Submissions are distributed round-robin across workers. Tasks are
/// expected to be seconds-long simulations, so queue operations are guarded
/// by plain per-worker mutexes rather than lock-free deques — contention is
/// unmeasurable at this grain.
///
/// Exceptions thrown by a task never kill a worker thread: `Async` routes
/// them into the returned future (via std::packaged_task), and bare `Submit`
/// tasks that throw are swallowed after the stack unwinds.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means DefaultParallelism().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();  // Drains queued tasks, then joins all workers.

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(threads_.size()); }

  /// Resolution order: BDIO_JOBS env var (if a positive integer), else
  /// std::thread::hardware_concurrency(), else 1.
  static unsigned DefaultParallelism();

  /// Enqueues a fire-and-forget task.
  void Submit(std::function<void()> task);

  /// Queued-but-unclaimed tasks (racy snapshot).
  uint64_t pending_tasks() const { return pending_.load(); }

  /// Debug audit (bdio::invariants): locks every worker deque and compares
  /// the pending-task counter against a recount. Only meaningful at a
  /// quiescent point — no concurrent Submit and no task between claim and
  /// counter decrement (e.g. after every outstanding future has resolved).
  /// Returns "" when consistent.
  std::string AuditPending();

  /// Enqueues a task and returns a future for its result; exceptions
  /// propagate through the future.
  template <typename F>
  auto Async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Submit([task]() { (*task)(); });
    return future;
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(unsigned self);
  bool TryPop(unsigned self, std::function<void()>* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleeping/waking coordination: `pending_` counts queued-but-unclaimed
  // tasks; idle workers wait on `cv_` until it is nonzero or `stop_`.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<uint64_t> pending_{0};
  std::atomic<unsigned> next_{0};
  bool stop_ = false;
};

}  // namespace bdio::core::runner

#endif  // BDIO_CORE_RUNNER_THREAD_POOL_H_
