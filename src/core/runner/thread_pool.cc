#include "core/runner/thread_pool.h"

#include <cstdlib>

namespace bdio::core::runner {

unsigned ThreadPool::DefaultParallelism() {
  if (const char* env = std::getenv("BDIO_JOBS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = DefaultParallelism();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i]() { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::string ThreadPool::AuditPending() {
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(workers_.size());
  for (auto& w : workers_) locks.emplace_back(w->mu);
  uint64_t queued = 0;
  for (auto& w : workers_) queued += w->tasks.size();
  const uint64_t counted = pending_.load();
  if (queued != counted) {
    return "threadpool: pending counter " + std::to_string(counted) +
           " but deques hold " + std::to_string(queued) + " tasks";
  }
  return {};
}

void ThreadPool::Submit(std::function<void()> task) {
  const unsigned target = next_.fetch_add(1) % workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  {
    // The increment must happen under mu_: if it landed between a worker's
    // predicate check and its block on cv_, the notify would be lost and
    // the worker would sleep with this task queued.
    std::lock_guard<std::mutex> lock(mu_);
    pending_.fetch_add(1);
  }
  cv_.notify_one();
}

bool ThreadPool::TryPop(unsigned self, std::function<void()>* out) {
  // Own queue first, newest task (back) — then steal the oldest task
  // (front) from the other workers, scanning from a per-thief offset so
  // thieves don't all hammer worker 0.
  {
    Worker& own = *workers_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      *out = std::move(own.tasks.back());
      own.tasks.pop_back();
      return true;
    }
  }
  const unsigned n = static_cast<unsigned>(workers_.size());
  for (unsigned d = 1; d < n; ++d) {
    Worker& victim = *workers_[(self + d) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      *out = std::move(victim.tasks.front());
      victim.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(unsigned self) {
  for (;;) {
    std::function<void()> task;
    if (TryPop(self, &task)) {
      pending_.fetch_sub(1);
      try {
        task();
      } catch (...) {
        // Async tasks trap exceptions in their packaged_task; a throwing
        // bare Submit must not take the worker thread down with it.
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ && pending_.load() == 0) return;
    cv_.wait(lock, [this]() { return stop_ || pending_.load() > 0; });
    if (stop_ && pending_.load() == 0) return;
  }
}

}  // namespace bdio::core::runner
