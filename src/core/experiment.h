#ifndef BDIO_CORE_EXPERIMENT_H_
#define BDIO_CORE_EXPERIMENT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/time_series.h"
#include "common/units.h"
#include "iostat/iostat.h"
#include "mapreduce/job.h"
#include "obs/blktrace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workloads/profile.h"

namespace bdio::core {

/// The paper's three experimental factors.
struct Factors {
  mapreduce::SlotConfig slots = mapreduce::SlotConfig::Paper_1_8();
  uint64_t memory_bytes = GiB(16);  ///< Paper-scale node memory (16G/32G).
  bool compress_intermediate = false;

  /// "AGG_1_8_16G_off"-style label.
  std::string Label(workloads::WorkloadKind workload) const;
  std::string MemoryLabel() const;
  const char* CompressionLabel() const {
    return compress_intermediate ? "on" : "off";
  }
};

/// One full experiment: a workload under a factor setting on the simulated
/// testbed.
struct ExperimentSpec {
  workloads::WorkloadKind workload = workloads::WorkloadKind::kTeraSort;
  Factors factors;

  /// Scale applied to dataset sizes and node memory. The default keeps
  /// every figure's sweep within seconds of wall time.
  double scale = 1.0 / 128;
  uint32_t num_workers = 10;
  uint64_t seed = 42;
  SimDuration iostat_interval = Seconds(1);
  uint32_t kmeans_iterations = 3;
  uint32_t pagerank_iterations = 3;
  /// If > 0, PageRank converges on the model run's rank delta instead of
  /// running a fixed iteration count (see PlanOptions::pagerank_epsilon).
  double pagerank_epsilon = 0;
  /// Calibrate volume ratios with the functional engine instead of the
  /// baked-in defaults (slower, exercises the full pipeline).
  bool calibrate = false;

  // --- Testbed overrides (ablation studies) -----------------------------
  std::string io_scheduler = "deadline";
  uint32_t num_hdfs_disks = 3;
  uint32_t num_mr_disks = 3;
  uint64_t readahead_max_bytes = MiB(1);
  SimDuration writeback_period = Seconds(5);
  uint32_t ncq_depth = 1;
  /// Replace the intermediate-data spindles with 2013-era SATA SSDs.
  bool ssd_intermediate = false;

  // --- Hadoop tuning overrides (0 / negative = keep the plan default) ----
  uint64_t sort_buffer_bytes = 0;   ///< io.sort.mb.
  uint32_t parallel_copies = 0;     ///< mapred.reduce.parallel.copies.
  double reduce_slowstart = -1.0;   ///< mapred.reduce.slowstart.

  /// Record a cross-layer I/O lifecycle trace (spans + flow events) of this
  /// run, returned in ExperimentResult::trace. Off by default: tracing
  /// never perturbs the simulation, but event storage is proportional to
  /// simulated I/O.
  bool collect_trace = false;

  /// Record a block-layer Q/M/D/C lifecycle trace of every data disk
  /// (docs/BLKTRACE.md), returned in ExperimentResult::blktrace. Off by
  /// default for the same reason as collect_trace; recording never
  /// perturbs the simulation.
  bool collect_blktrace = false;
  /// Per-device ring capacity when collect_blktrace is set; overwrites are
  /// counted in the "blktrace.dropped_records" registry counter.
  uint64_t blktrace_max_records = 1ull << 20;
};

/// Per-disk-class observation of one run: every iostat metric as a
/// time series of per-disk means, plus the utilization tail statistics.
struct GroupObservation {
  TimeSeries read_mbps;
  TimeSeries write_mbps;
  TimeSeries util;
  TimeSeries await_ms;
  TimeSeries svctm_ms;
  TimeSeries wait_ms;
  TimeSeries avgrq_sz;

  double util_above_90 = 0;
  double util_above_95 = 0;
  double util_above_99 = 0;

  /// Peak of the per-disk mean read bandwidth (Table 5's statistic).
  double peak_read_mbps = 0;
};

/// Physical bytes attributed to one I/O-demand source.
struct IoSourceVolumes {
  uint64_t disk_read_bytes = 0;
  uint64_t disk_write_bytes = 0;

  uint64_t total() const { return disk_read_bytes + disk_write_bytes; }
};

/// Everything measured from one experiment.
struct ExperimentResult {
  std::string label;
  double duration_s = 0;
  /// Simulator events executed by this run — the denominator of the
  /// events/sec trajectory tracked by bench/perf_events (BENCH_perf.json).
  /// Deterministic: a pure function of the spec, byte-identical across
  /// hosts and --jobs levels.
  uint64_t events_processed = 0;
  GroupObservation hdfs;
  GroupObservation mr;
  std::vector<mapreduce::JobCounters> jobs;

  /// Cluster-wide physical I/O per high-level demand source (IoTag name) —
  /// the attribution the paper's conclusion proposes as future work.
  std::map<std::string, IoSourceVolumes> io_sources;

  /// Cluster-mean CPU utilization per interval (fraction of all cores in
  /// use) — the basis of Table 3's CPU-bound / I/O-bound classification.
  TimeSeries cpu_util;

  /// Task-concurrency timeline (JobTracker-history style): executing map
  /// and reduce tasks sampled per interval.
  TimeSeries maps_running;
  TimeSeries reduces_running;

  /// Unified metrics registry of the run (always populated): page-cache,
  /// scheduler, disk, HDFS, MR, and network instruments.
  std::shared_ptr<obs::MetricsRegistry> metrics;

  /// Chrome-trace session of the run; null unless spec.collect_trace.
  std::shared_ptr<obs::TraceSession> trace;

  /// Block-layer lifecycle trace of every data disk; null unless
  /// spec.collect_blktrace.
  std::shared_ptr<obs::BlktraceSession> blktrace;

  const GroupObservation& group(const std::string& name) const {
    return name == "hdfs" ? hdfs : mr;
  }
};

/// Builds the simulated testbed, runs the workload plan to completion
/// (including trailing writeback), and extracts the observations.
Result<ExperimentResult> RunExperiment(const ExperimentSpec& spec);

}  // namespace bdio::core

#endif  // BDIO_CORE_EXPERIMENT_H_
