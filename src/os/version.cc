namespace bdio::os {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "os"; }
}  // namespace bdio::os
