#ifndef BDIO_OS_FILE_SYSTEM_H_
#define BDIO_OS_FILE_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "os/page_cache.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::os {

class FileSystem;

/// A file on a simulated local filesystem. Data is addressed through fixed-
/// size extents; concurrent appenders to different files interleave their
/// extents, which is exactly how spill-file fragmentation arises on real
/// ext3-era data disks.
class File : public CachedFile {
 public:
  uint64_t file_id() const override { return id_; }
  storage::BlockDevice* device() const override { return device_; }
  uint64_t SectorFor(uint64_t byte_offset) const override;
  uint64_t size() const override { return size_; }
  uint32_t io_tag() const override { return io_tag_; }
  uint32_t owner_job() const override { return owner_job_; }

  /// Labels this file's I/O-demand source (an IoTag value) for attribution.
  void set_io_tag(uint32_t tag) { io_tag_ = tag; }
  /// Labels this file's owning MapReduce job (job id + 1; 0 = none) for
  /// blktrace attribution.
  void set_owner_job(uint32_t job) { owner_job_ = job; }

  const std::string& name() const { return name_; }
  size_t extent_count() const { return extent_start_sectors_.size(); }

 private:
  friend class FileSystem;
  File(uint64_t id, std::string name, storage::BlockDevice* device,
       uint64_t extent_bytes)
      : id_(id),
        name_(std::move(name)),
        device_(device),
        extent_bytes_(extent_bytes) {}

  uint64_t id_;
  std::string name_;
  storage::BlockDevice* device_;
  uint64_t extent_bytes_;
  uint32_t io_tag_ = 0;
  uint32_t owner_job_ = 0;
  uint64_t size_ = 0;
  std::vector<uint64_t> extent_start_sectors_;
};

/// Filesystem tunables.
struct FileSystemParams {
  /// Allocation granularity; must be a multiple of the cache unit size so
  /// every cache unit maps to contiguous sectors.
  uint64_t extent_bytes = MiB(1);
  /// Scatter extents across the device instead of bump-allocating them
  /// contiguously — models an aged filesystem holding many short-lived
  /// files (MapReduce intermediate-data dirs). Caps physical contiguity at
  /// one extent and makes access seeky.
  bool scatter_allocation = false;
  /// Seed for scatter placement.
  uint64_t scatter_seed = 1;
  /// Fraction of the device scatter placement draws from (short-lived files
  /// churn inside a band of the disk, not the full stroke).
  double scatter_region = 0.25;
};

/// One filesystem per data disk (mirroring the paper's testbed layout:
/// three disks mounted for HDFS data, three for MapReduce intermediate
/// data). All I/O flows through the node's shared PageCache.
class FileSystem {
 public:
  FileSystem(sim::Simulator* sim, storage::BlockDevice* device,
             PageCache* cache, const FileSystemParams& params = {});

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  /// Creates an empty file. Fails with AlreadyExists on name collision.
  Result<File*> Create(const std::string& name);

  /// Creates a file of `size` bytes that is already on disk and cold (no
  /// cached data, no write traffic) — used to pre-populate datasets that
  /// exist before an experiment starts.
  Result<File*> CreateExtentsOnly(const std::string& name, uint64_t size);

  /// Looks up an existing file.
  Result<File*> Open(const std::string& name) const;

  /// Deletes a file, returning its extents to the free pool and dropping its
  /// cached data.
  Status Delete(const std::string& name);

  /// Appends `len` bytes (buffered); `cb` fires when the write is accepted
  /// by the page cache (possibly throttled first).
  void Append(File* file, uint64_t len, InlineFn cb);

  /// Reads [offset, offset+len); `cb` fires when the data is in cache.
  void Read(File* file, uint64_t offset, uint64_t len, InlineFn cb);

  /// Flushes the file's dirty pages to disk.
  void Sync(File* file, InlineFn cb);

  uint64_t used_bytes() const { return used_bytes_; }
  uint64_t free_bytes() const;
  size_t file_count() const { return files_.size(); }
  storage::BlockDevice* device() const { return device_; }
  PageCache* cache() const { return cache_; }

 private:
  /// Allocates one extent; first-fit from the free list, else bump pointer.
  Result<uint64_t> AllocateExtent();

  sim::Simulator* sim_;
  storage::BlockDevice* device_;
  PageCache* cache_;
  FileSystemParams params_;
  Rng scatter_rng_;
  /// Ordered by name so any future directory-scan stays deterministic
  /// (rule R1: no hash-order iteration on the I/O attribution path).
  std::map<std::string, std::unique_ptr<File>> files_;
  /// Free extents by start sector.
  std::map<uint64_t, uint64_t> free_extents_;
  /// Extent slots in use (scatter mode).
  std::set<uint64_t> used_slots_;
  uint64_t next_sector_ = 0;
  uint64_t used_bytes_ = 0;
};

}  // namespace bdio::os

#endif  // BDIO_OS_FILE_SYSTEM_H_
