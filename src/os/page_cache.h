#ifndef BDIO_OS_PAGE_CACHE_H_
#define BDIO_OS_PAGE_CACHE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/inline_fn.h"
#include "common/io_tag.h"
#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::os {

/// Interface the page cache uses to reach a file's backing store. Implemented
/// by os::File: supplies the device and the byte-offset -> sector mapping
/// (extent resolution).
class CachedFile {
 public:
  virtual ~CachedFile() = default;
  virtual uint64_t file_id() const = 0;
  virtual storage::BlockDevice* device() const = 0;
  /// First sector of the data at `byte_offset`. The mapping must be
  /// contiguous within each cache unit.
  virtual uint64_t SectorFor(uint64_t byte_offset) const = 0;
  virtual uint64_t size() const = 0;
  /// High-level I/O-demand source (an IoTag value) used for attribution;
  /// 0 = unknown.
  virtual uint32_t io_tag() const { return 0; }
  /// Owning MapReduce job (job id + 1) for blktrace attribution;
  /// 0 = unattributed (HDFS block files, preloaded datasets). Stamped at
  /// file creation, so async writeback stays correctly attributed — unlike
  /// real blktrace, which charges flusher-thread I/O to the flusher.
  virtual uint32_t owner_job() const { return 0; }
};

/// Tunables mirroring the Linux VM of the Hadoop-1 era (values scaled to the
/// 64 KiB cache-unit granularity used to bound event counts).
struct PageCacheParams {
  uint64_t capacity_bytes = GiB(8);
  uint64_t unit_bytes = KiB(64);

  /// Background writeback starts above this fraction of capacity dirty...
  double dirty_background_ratio = 0.10;
  /// ...and writers are throttled above this fraction.
  double dirty_ratio = 0.20;
  /// Periodic flusher wakeup (kupdate-style).
  SimDuration writeback_period = Seconds(5);
  /// Dirty units older than this are written on the periodic pass.
  SimDuration dirty_expire = Seconds(10);

  /// Readahead window: starts at min, doubles per sequential hit up to max.
  uint64_t readahead_min_bytes = KiB(64);
  uint64_t readahead_max_bytes = MiB(1);

  /// Max concurrently outstanding writeback bios (per cache).
  uint64_t max_writeback_inflight = 16;
};

/// Observable cache behaviour for tests and reports.
struct PageCacheStats {
  uint64_t read_hits = 0;        ///< Units served from cache.
  uint64_t read_misses = 0;      ///< Units requiring device reads.
  uint64_t readahead_units = 0;  ///< Extra units prefetched.
  uint64_t disk_read_bytes = 0;
  uint64_t writeback_bytes = 0;
  uint64_t evicted_units = 0;
  uint64_t throttle_events = 0;  ///< Writes delayed by the dirty limit.
};

/// Unified page cache shared by all files of a node (across its disks), with
/// LRU eviction of clean units, sequential readahead, background + periodic
/// dirty writeback, dirty throttling, and fsync. This is the component the
/// paper's "memory size" factor exercises: a larger cache absorbs re-reads
/// and batches writes.
class PageCache {
 public:
  PageCache(sim::Simulator* sim, const PageCacheParams& params);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Reads [offset, offset+len) of `file`; `cb` fires once all requested
  /// bytes are cache-resident. May prefetch beyond the range.
  void Read(CachedFile* file, uint64_t offset, uint64_t len, InlineFn cb);

  /// Buffers a write of [offset, offset+len); `cb` fires as soon as the
  /// dirty units are accepted (possibly delayed by dirty throttling).
  void Write(CachedFile* file, uint64_t offset, uint64_t len, InlineFn cb);

  /// Durably flushes all of `file`'s dirty units; `cb` fires when none of
  /// its units are dirty or in writeback.
  void Sync(CachedFile* file, InlineFn cb);

  /// Flushes everything; `cb` fires when the whole cache is clean.
  void SyncAll(InlineFn cb);

  /// Invalidates all units of a (deleted) file; dirty data is discarded.
  void Drop(uint64_t file_id);

  /// Drops every clean unit (`echo 3 > /proc/sys/vm/drop_caches`). Dirty and
  /// in-flight units are untouched; call SyncAll first for a fully cold
  /// cache.
  void DropClean();

  /// Node-wide unique file id source (file ids key cache units, so they must
  /// be unique across all filesystems sharing this cache).
  uint64_t AllocateFileId() { return next_file_id_++; }

  uint64_t dirty_bytes() const { return dirty_units_ * params_.unit_bytes; }
  uint64_t cached_bytes() const {
    return units_.size() * params_.unit_bytes;
  }
  const PageCacheStats& stats() const { return stats_; }
  const PageCacheParams& params() const { return params_; }

  /// Attaches observability sinks (either may be null). The registry gains
  /// hit/miss/readahead/writeback counters plus the per-IoTag physical-byte
  /// attribution ("pagecache.tag_disk_read_bytes"/"..._write_bytes" labeled
  /// by source); the trace gains per-miss read spans and writeback
  /// instants. `trace_pid` is this node's trace-viewer process row.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics,
                 uint32_t trace_pid);

  /// Cross-checks the cache's internal accounting (bdio::invariants):
  /// dirty_units_ vs a recount over units_, per-file dirty/writeback
  /// bookkeeping vs unit states, the LRU list vs clean-unit states,
  /// writeback_inflight_ vs its cap, and capacity vs eviction progress.
  /// Returns an empty string when every invariant holds, else a
  /// description of the first violation.
  std::string AuditInvariants() const;

 private:
  enum class UnitState : uint8_t {
    kClean,
    kDirty,
    kReading,
    kWriteback,
    kWritebackRedirty,  ///< Written again while the flush bio is in flight.
  };

  struct Unit;
  /// Node-based on purpose: references and iterators into units_ are held
  /// across inserts (FileState&, LRU entries) — see the container comment
  /// below.
  using UnitMap = std::map<uint64_t, Unit>;
  /// The LRU holds map iterators, not keys: eviction and clean-drop then
  /// erase in O(1) amortized instead of re-finding each key. std::map
  /// iterators stay valid until their element is erased, so every list
  /// entry is live by the invariant "LRU contents == clean units".
  using LruList = std::list<UnitMap::iterator>;

  struct Unit {
    UnitState state = UnitState::kClean;
    LruList::iterator lru_it{};
    SimTime dirty_since;
    std::vector<InlineFn> read_waiters;
  };

  struct FileState {
    CachedFile* file = nullptr;
    /// unit index -> time it became dirty; ordered for elevator-friendly
    /// writeback. Flat: streams dirty units in ascending order (append
    /// fast path) and writeback erases contiguous runs.
    FlatMap<uint64_t, SimTime> dirty;
    uint64_t writeback_units = 0;
    std::vector<InlineFn> sync_waiters;
    bool sync_requested = false;
    bool dropped = false;  ///< File deleted while writeback was in flight.
  };

  struct ReadaheadState {
    uint64_t next_offset = 0;  ///< Where a sequential stream would continue.
    uint64_t window = 0;
  };

  struct PendingWrite {
    CachedFile* file = nullptr;
    uint64_t offset = 0;
    uint64_t len = 0;
    InlineFn cb;
  };

  static uint64_t Key(uint64_t file_id, uint64_t unit) {
    return (file_id << 28) | unit;
  }
  uint64_t UnitOf(uint64_t offset) const { return offset / params_.unit_bytes; }

  uint64_t dirty_background_limit() const {
    return static_cast<uint64_t>(params_.dirty_background_ratio *
                                 static_cast<double>(params_.capacity_bytes));
  }
  uint64_t dirty_limit() const {
    return static_cast<uint64_t>(params_.dirty_ratio *
                                 static_cast<double>(params_.capacity_bytes));
  }

  void DoWrite(CachedFile* file, uint64_t offset, uint64_t len);
  /// Dirties a unit already resident in units_ (the missing-unit case is
  /// inlined into DoWrite's ordered walk).
  void MarkDirtyResident(uint64_t fid, FileState& fs, Unit& unit,
                         uint64_t unit_idx);
  /// Records a dirty-map insert for dirty_files_ maintenance; call before
  /// the fs.dirty.emplace that may take the map from empty to non-empty.
  void NoteDirtyInsert(uint64_t fid, const FileState& fs) {
    if (fs.dirty.empty()) dirty_files_.insert(fid);
  }
  void TouchLru(Unit* unit);
  void EvictIfNeeded();
  void PumpWriteback();
  /// Selects and submits one writeback bio from `fs`; returns false if the
  /// file has no flushable unit under the current goal.
  bool SubmitWritebackBio(uint64_t file_id, FileState* fs, bool aged_only);
  /// Completion of a writeback bio covering units [start_unit,
  /// start_unit + n) of `file_id` (bios always cover a consecutive run, so
  /// a range beats materializing an index vector per bio).
  void OnWritebackDone(uint64_t file_id, uint64_t start_unit, uint64_t n);
  void CheckSyncWaiters(uint64_t file_id);
  void DrainThrottled();
  void SchedulePeriodicFlush();
  bool WritebackGoalActive() const;

  sim::Simulator* sim_;
  PageCacheParams params_;
  PageCacheStats stats_;

  // Ordered containers: writeback selection iterates files_ and Drop walks
  // units_ scheduling waiter callbacks, so iteration order feeds the event
  // queue — unordered maps would leak hash-iteration order into event order
  // (docs/STATIC_ANALYSIS.md, rule R1). units_/files_ stay node-based
  // std::maps on purpose: references into them are held across mutations
  // (e.g. FileState& across unit inserts), which a flat map would
  // invalidate — see docs/PERFORMANCE.md for the audit.
  UnitMap units_;
  LruList lru_;  ///< Clean units, LRU order (front = coldest).
  std::map<uint64_t, FileState> files_;
  /// Exactly the files whose FileState::dirty is non-empty, ascending.
  /// files_ accumulates an entry per file ever written, so writeback
  /// selection iterates this (usually tiny) set instead — same ascending
  /// order, so the round-robin picks are unchanged. Maintained at every
  /// dirty-map transition; cross-checked by AuditInvariants.
  std::set<uint64_t> dirty_files_;
  FlatMap<uint64_t, ReadaheadState> readahead_;
  /// Read's scratch for miss unit indices, reused across calls (the scan
  /// completes before any completion can re-enter the cache).
  std::vector<uint64_t> scratch_fetch_;

  uint64_t dirty_units_ = 0;
  uint64_t writeback_inflight_ = 0;
  /// Round-robin cursor over files for fair writeback.
  uint64_t wb_cursor_ = 0;
  bool periodic_pass_ = false;  ///< Current pump also flushes aged units.
  bool background_pass_ = false;  ///< Hysteresis: flush down to half the
                                  ///< background limit once triggered.
  bool flush_timer_armed_ = false;
  std::deque<PendingWrite> throttled_;
  std::vector<InlineFn> sync_all_waiters_;
  uint64_t next_file_id_ = 1;

  // Observability sinks; null (the default) keeps the hot paths at one
  // pointer test. Per-tag byte counters are resolved once at AttachObs so
  // attribution costs a single Add per bio (tags outside the IoTag enum
  // clamp to kUnknown).
  obs::TraceSession* trace_ = nullptr;
  uint32_t trace_pid_ = 0;
  obs::Counter* m_hits_ = nullptr;
  obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_readahead_ = nullptr;
  obs::Counter* m_disk_read_bytes_ = nullptr;
  obs::Counter* m_writeback_bytes_ = nullptr;
  obs::Counter* m_evicted_ = nullptr;
  obs::Counter* m_throttles_ = nullptr;
  obs::Counter* tag_read_bytes_[kNumIoTags] = {};
  obs::Counter* tag_write_bytes_[kNumIoTags] = {};
};

}  // namespace bdio::os

#endif  // BDIO_OS_PAGE_CACHE_H_
