#include "os/file_system.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace bdio::os {

uint64_t File::SectorFor(uint64_t byte_offset) const {
  const uint64_t extent_idx = byte_offset / extent_bytes_;
  BDIO_CHECK(extent_idx < extent_start_sectors_.size())
      << name_ << ": offset " << byte_offset << " beyond allocation";
  const uint64_t within = byte_offset % extent_bytes_;
  return extent_start_sectors_[extent_idx] + within / kSectorSize;
}

FileSystem::FileSystem(sim::Simulator* sim, storage::BlockDevice* device,
                       PageCache* cache, const FileSystemParams& params)
    : sim_(sim),
      device_(device),
      cache_(cache),
      params_(params),
      scatter_rng_(params.scatter_seed) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(device != nullptr);
  BDIO_CHECK(cache != nullptr);
  BDIO_CHECK(params_.extent_bytes % cache->params().unit_bytes == 0)
      << "extent size must be a multiple of the cache unit size";
}

Result<File*> FileSystem::Create(const std::string& name) {
  if (files_.contains(name)) {
    return Status::AlreadyExists("file exists: " + name);
  }
  auto file = std::unique_ptr<File>(new File(
      cache_->AllocateFileId(), name, device_, params_.extent_bytes));
  File* ptr = file.get();
  files_.emplace(name, std::move(file));
  return ptr;
}

Result<File*> FileSystem::CreateExtentsOnly(const std::string& name,
                                            uint64_t size) {
  BDIO_ASSIGN_OR_RETURN(File * file, Create(name));
  while (file->extent_start_sectors_.size() * params_.extent_bytes < size) {
    auto extent = AllocateExtent();
    if (!extent.ok()) return extent.status();
    file->extent_start_sectors_.push_back(extent.value());
  }
  file->size_ = size;
  return file;
}

Result<File*> FileSystem::Open(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  return it->second.get();
}

Status FileSystem::Delete(const std::string& name) {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("no such file: " + name);
  File* file = it->second.get();
  cache_->Drop(file->file_id());
  const uint64_t extent_sectors = params_.extent_bytes / kSectorSize;
  for (uint64_t start : file->extent_start_sectors_) {
    if (params_.scatter_allocation) {
      used_slots_.erase(start / extent_sectors);
    } else {
      free_extents_.emplace(start, extent_sectors);
    }
  }
  used_bytes_ -= file->extent_start_sectors_.size() * params_.extent_bytes;
  files_.erase(it);
  return Status::OK();
}

Result<uint64_t> FileSystem::AllocateExtent() {
  const uint64_t extent_sectors = params_.extent_bytes / kSectorSize;
  if (params_.scatter_allocation) {
    // Aged-filesystem model: place each extent at a random slot (linear
    // probing on collision), so files are never physically contiguous
    // beyond one extent.
    uint64_t total_slots = static_cast<uint64_t>(
        static_cast<double>(device_->params().capacity_bytes /
                            params_.extent_bytes) *
        params_.scatter_region);
    total_slots = std::max<uint64_t>(total_slots, 1);
    if (used_slots_.size() >= total_slots) {
      return Status::ResourceExhausted("disk full: " + device_->name());
    }
    uint64_t slot = scatter_rng_.Uniform(total_slots);
    while (used_slots_.contains(slot)) slot = (slot + 1) % total_slots;
    used_slots_.insert(slot);
    used_bytes_ += params_.extent_bytes;
    return slot * extent_sectors;
  }
  if (!free_extents_.empty()) {
    auto it = free_extents_.begin();
    const uint64_t start = it->first;
    free_extents_.erase(it);
    used_bytes_ += params_.extent_bytes;
    return start;
  }
  if ((next_sector_ + extent_sectors) * kSectorSize >
      device_->params().capacity_bytes) {
    return Status::ResourceExhausted("disk full: " + device_->name());
  }
  const uint64_t start = next_sector_;
  next_sector_ += extent_sectors;
  used_bytes_ += params_.extent_bytes;
  return start;
}

uint64_t FileSystem::free_bytes() const {
  const uint64_t bump_free =
      device_->params().capacity_bytes - next_sector_ * kSectorSize;
  return bump_free + free_extents_.size() * params_.extent_bytes;
}

void FileSystem::Append(File* file, uint64_t len, InlineFn cb) {
  BDIO_CHECK(file != nullptr);
  BDIO_CHECK(len > 0);
  const uint64_t offset = file->size_;
  const uint64_t needed_end = offset + len;
  while (file->extent_start_sectors_.size() * params_.extent_bytes <
         needed_end) {
    auto extent = AllocateExtent();
    BDIO_CHECK(extent.ok()) << extent.status().ToString();
    file->extent_start_sectors_.push_back(extent.value());
  }
  file->size_ = needed_end;
  cache_->Write(file, offset, len, std::move(cb));
}

void FileSystem::Read(File* file, uint64_t offset, uint64_t len,
                      InlineFn cb) {
  BDIO_CHECK(file != nullptr);
  cache_->Read(file, offset, len, std::move(cb));
}

void FileSystem::Sync(File* file, InlineFn cb) {
  BDIO_CHECK(file != nullptr);
  cache_->Sync(file, std::move(cb));
}

}  // namespace bdio::os
