#include "os/page_cache.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::os {

using storage::IoType;

PageCache::PageCache(sim::Simulator* sim, const PageCacheParams& params)
    : sim_(sim), params_(params) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(params_.unit_bytes >= kSectorSize);
  BDIO_CHECK(params_.capacity_bytes >= params_.unit_bytes);
}

void PageCache::AttachObs(obs::TraceSession* trace,
                          obs::MetricsRegistry* metrics,
                          uint32_t trace_pid) {
  trace_ = trace;
  trace_pid_ = trace_pid;
  if (metrics == nullptr) return;
  m_hits_ = metrics->GetCounter("pagecache.read_hits");
  m_misses_ = metrics->GetCounter("pagecache.read_misses");
  m_readahead_ = metrics->GetCounter("pagecache.readahead_units");
  m_disk_read_bytes_ = metrics->GetCounter("pagecache.disk_read_bytes");
  m_writeback_bytes_ = metrics->GetCounter("pagecache.writeback_bytes");
  m_evicted_ = metrics->GetCounter("pagecache.evicted_units");
  m_throttles_ = metrics->GetCounter("pagecache.throttle_events");
  for (uint32_t t = 0; t < kNumIoTags; ++t) {
    const obs::Labels labels{{"source", IoTagName(static_cast<IoTag>(t))}};
    tag_read_bytes_[t] =
        metrics->GetCounter("pagecache.tag_disk_read_bytes", labels);
    tag_write_bytes_[t] =
        metrics->GetCounter("pagecache.tag_disk_write_bytes", labels);
  }
}

void PageCache::SchedulePeriodicFlush() {
  // The kupdate-style timer is armed only while dirty data exists, so a
  // quiescent cache leaves the event queue drainable.
  if (flush_timer_armed_) return;
  flush_timer_armed_ = true;
  sim_->ScheduleAfter(params_.writeback_period, [this] {
    flush_timer_armed_ = false;
    if (dirty_units_ > 0) {
      periodic_pass_ = true;
      PumpWriteback();
    }
    if (dirty_units_ > 0) SchedulePeriodicFlush();
  });
}

void PageCache::TouchLru(Unit* unit) {
  BDIO_CHECK(unit->state == UnitState::kClean);
  // Splice instead of erase+push_back: moves the existing list node to the
  // tail without freeing and reallocating it. lru_it stays valid.
  lru_.splice(lru_.end(), lru_, unit->lru_it);
}

void PageCache::EvictIfNeeded() {
  while (cached_bytes() > params_.capacity_bytes && !lru_.empty()) {
    const auto uit = lru_.front();
    lru_.pop_front();
    BDIO_CHECK(uit->second.state == UnitState::kClean);
    units_.erase(uit);
    ++stats_.evicted_units;
    if (m_evicted_) m_evicted_->Inc();
  }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

void PageCache::Read(CachedFile* file, uint64_t offset, uint64_t len,
                     InlineFn cb) {
  BDIO_CHECK(len > 0);
  BDIO_CHECK(offset + len <= file->size())
      << "read past EOF: off=" << offset << " len=" << len
      << " size=" << file->size();
  const uint64_t fid = file->file_id();
  const uint64_t first = UnitOf(offset);
  const uint64_t last = UnitOf(offset + len - 1);

  // Readahead bookkeeping: sequential if this read starts where the previous
  // one ended (unit granularity).
  ReadaheadState& ra = readahead_[fid];
  uint64_t window;
  if (offset == ra.next_offset && ra.window > 0) {
    window = std::min(ra.window * 2, params_.readahead_max_bytes);
  } else {
    window = params_.readahead_min_bytes;
  }
  ra.window = window;
  ra.next_offset = offset + len;

  // Collect the units we must have, plus prefetch units beyond the range.
  const uint64_t file_units =
      (file->size() + params_.unit_bytes - 1) / params_.unit_bytes;
  uint64_t prefetch_end = last + 1 + window / params_.unit_bytes;
  prefetch_end = std::min(prefetch_end, file_units);

  // Tracing: a read that touches the disk becomes a span covering the wait
  // for its device reads; pure hits stay span-free to bound trace volume.
  // Whether the scan misses is only known below, so the span id travels in
  // a shared slot the completion wrapper closes over.
  const uint64_t hits0 = stats_.read_hits;
  const uint64_t misses0 = stats_.read_misses;
  const uint64_t ra0 = stats_.readahead_units;
  std::shared_ptr<uint64_t> span;
  if (trace_) {
    span = std::make_shared<uint64_t>(0);
    cb = [this, span, inner = std::move(cb)]() mutable {
      trace_->EndSpan(*span);
      if (inner) inner();
    };
  }

  auto latch = sim::Latch::Create(1, std::move(cb));  // 1 = scan guard

  // The scanned keys are consecutive integers (Key packs unit into the low
  // bits), so one lower_bound plus an in-step iterator walk replaces a
  // per-unit find; misses insert at the walk position (amortized O(1)).
  // Nothing in the loop body erases from units_, so `it` stays valid.
  std::vector<uint64_t>& to_fetch = scratch_fetch_;  // miss unit indices
  to_fetch.clear();
  auto it = units_.lower_bound(Key(fid, first));
  for (uint64_t u = first; u < prefetch_end; ++u) {
    const bool required = u <= last;
    const uint64_t key = Key(fid, u);
    if (it != units_.end() && it->first == key) {
      Unit& unit = it->second;
      ++it;  // keep the walk one step ahead; the reference stays valid
      if (unit.state == UnitState::kReading) {
        if (required) {
          latch->Extend(1);
          unit.read_waiters.push_back(latch->Arm());
          ++stats_.read_misses;
        }
        continue;
      }
      // Resident in any other state.
      if (unit.state == UnitState::kClean) TouchLru(&unit);
      if (required) ++stats_.read_hits;
      continue;
    }
    // Missing: create a Reading placeholder.
    Unit unit;
    unit.state = UnitState::kReading;
    if (required) {
      latch->Extend(1);
      unit.read_waiters.push_back(latch->Arm());
      ++stats_.read_misses;
    } else {
      ++stats_.readahead_units;
    }
    it = units_.emplace_hint(it, key, std::move(unit));
    ++it;
    to_fetch.push_back(u);
  }

  const uint64_t hit_delta = stats_.read_hits - hits0;
  const uint64_t miss_delta = stats_.read_misses - misses0;
  const uint64_t ra_delta = stats_.readahead_units - ra0;
  if (m_hits_) {
    m_hits_->Add(hit_delta);
    m_misses_->Add(miss_delta);
    m_readahead_->Add(ra_delta);
  }
  if (trace_ && (miss_delta > 0 || ra_delta > 0)) {
    *span = trace_->BeginSpan(
        trace_pid_, "pagecache", "pc-read",
        "{\"file\":" + std::to_string(fid) + ",\"offset\":" +
            std::to_string(offset) + ",\"len\":" + std::to_string(len) +
            ",\"hits\":" + std::to_string(hit_delta) + ",\"misses\":" +
            std::to_string(miss_delta) + ",\"readahead\":" +
            std::to_string(ra_delta) + "}");
    trace_->FlowStep(trace_->current_flow(), trace_pid_);
  }

  // Coalesce fetches into bios: consecutive units that are also contiguous
  // on disk, capped at the device's max request size.
  storage::BlockDevice* dev = file->device();
  const uint64_t max_bytes =
      dev->params().max_request_sectors * kSectorSize;
  size_t i = 0;
  while (i < to_fetch.size()) {
    const uint64_t start_unit = to_fetch[i];
    uint64_t sector = file->SectorFor(start_unit * params_.unit_bytes);
    uint64_t bytes = params_.unit_bytes;
    size_t j = i + 1;
    while (j < to_fetch.size() && to_fetch[j] == to_fetch[j - 1] + 1 &&
           bytes + params_.unit_bytes <= max_bytes &&
           file->SectorFor(to_fetch[j] * params_.unit_bytes) ==
               sector + bytes / kSectorSize) {
      bytes += params_.unit_bytes;
      ++j;
    }
    // The bio covers the consecutive run [start_unit, start_unit + n); a
    // (start, count) pair keeps the completion closure allocation-free.
    const uint64_t n_units = j - i;
    stats_.disk_read_bytes += bytes;
    uint32_t tag = file->io_tag();
    if (tag >= kNumIoTags) tag = 0;
    if (m_disk_read_bytes_) {
      m_disk_read_bytes_->Add(bytes);
      tag_read_bytes_[tag]->Add(bytes);
    }
    dev->Submit(
        IoType::kRead, Sectors(sector), Sectors(bytes / kSectorSize),
        [this, fid, start_unit, n_units] {
          // Waiters may re-enter the cache and mutate units_, so collect
          // them first and run them only after this loop's references die.
          // The bio's units are consecutive, so one lower_bound plus a
          // forward walk covers them; gaps mean units dropped meanwhile.
          std::vector<InlineFn> waiters;
          const uint64_t end_key = Key(fid, start_unit + n_units);
          for (auto uit = units_.lower_bound(Key(fid, start_unit));
               uit != units_.end() && uit->first < end_key; ++uit) {
            Unit& unit = uit->second;
            if (unit.state == UnitState::kReading) {
              unit.state = UnitState::kClean;
              lru_.push_back(uit);
              unit.lru_it = std::prev(lru_.end());
              for (auto& w : unit.read_waiters) {
                waiters.push_back(std::move(w));
              }
              unit.read_waiters.clear();
            }
          }
          EvictIfNeeded();
          for (auto& w : waiters) w();
        },
        /*io_context=*/fid, tag, file->owner_job());
    i = j;
  }

  EvictIfNeeded();
  latch->Arrive();  // release the scan guard
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

void PageCache::Write(CachedFile* file, uint64_t offset, uint64_t len,
                      InlineFn cb) {
  BDIO_CHECK(len > 0);
  if (dirty_bytes() > dirty_limit()) {
    // balance_dirty_pages(): the writer sleeps until writeback catches up.
    ++stats_.throttle_events;
    if (m_throttles_) m_throttles_->Inc();
    if (trace_) {
      trace_->Instant(trace_pid_, "pagecache", "throttle",
                      "{\"file\":" + std::to_string(file->file_id()) +
                          ",\"len\":" + std::to_string(len) + "}");
    }
    throttled_.push_back(PendingWrite{file, offset, len, std::move(cb)});
    PumpWriteback();
    return;
  }
  DoWrite(file, offset, len);
  if (cb) sim_->ScheduleAfter(SimDuration{}, std::move(cb));
}

void PageCache::DoWrite(CachedFile* file, uint64_t offset, uint64_t len) {
  const uint64_t first = UnitOf(offset);
  const uint64_t last = UnitOf(offset + len - 1);
  const uint64_t fid = file->file_id();
  // One file-state lookup and one units_ lower_bound for the whole write:
  // the written keys are consecutive, so the iterator walks in step with
  // `u` (same pattern as the Read scan). References stay valid — the loop
  // only inserts into units_, never erases.
  FileState& fs = files_[fid];
  fs.file = file;
  auto it = units_.lower_bound(Key(fid, first));
  for (uint64_t u = first; u <= last; ++u) {
    const uint64_t key = Key(fid, u);
    if (it != units_.end() && it->first == key) {
      Unit& unit = it->second;
      ++it;
      MarkDirtyResident(fid, fs, unit, u);
      continue;
    }
    Unit unit;
    unit.state = UnitState::kDirty;
    unit.dirty_since = sim_->Now();
    it = units_.emplace_hint(it, key, std::move(unit));
    ++it;
    NoteDirtyInsert(fid, fs);
    fs.dirty.emplace(u, sim_->Now());
    ++dirty_units_;
    SchedulePeriodicFlush();
  }
  EvictIfNeeded();
  if (dirty_bytes() > dirty_background_limit()) PumpWriteback();
}

void PageCache::MarkDirtyResident(uint64_t fid, FileState& fs, Unit& unit,
                                  uint64_t unit_idx) {
  switch (unit.state) {
    case UnitState::kClean:
      lru_.erase(unit.lru_it);
      unit.state = UnitState::kDirty;
      unit.dirty_since = sim_->Now();
      NoteDirtyInsert(fid, fs);
      fs.dirty.emplace(unit_idx, sim_->Now());
      ++dirty_units_;
      SchedulePeriodicFlush();
      break;
    case UnitState::kDirty:
      break;  // already dirty; age unchanged (kernel keeps first-dirty time)
    case UnitState::kReading:
      // Overwrite while a read is in flight: data now newer than disk.
      unit.state = UnitState::kDirty;
      unit.dirty_since = sim_->Now();
      NoteDirtyInsert(fid, fs);
      fs.dirty.emplace(unit_idx, sim_->Now());
      ++dirty_units_;
      SchedulePeriodicFlush();
      // Defer waiters: they may re-enter the cache while our references
      // into units_/files_ are live.
      for (auto& w : unit.read_waiters) {
        sim_->ScheduleAfter(SimDuration{}, std::move(w));
      }
      unit.read_waiters.clear();
      break;
    case UnitState::kWriteback:
      unit.state = UnitState::kWritebackRedirty;
      break;
    case UnitState::kWritebackRedirty:
      break;
  }
}

// ---------------------------------------------------------------------------
// Writeback engine
// ---------------------------------------------------------------------------

bool PageCache::WritebackGoalActive() const {
  if (!throttled_.empty()) return true;
  if (!sync_all_waiters_.empty() && dirty_units_ > 0) return true;
  if (periodic_pass_) return true;
  return background_pass_;
}

void PageCache::PumpWriteback() {
  while (writeback_inflight_ < params_.max_writeback_inflight) {
    // Background-flush hysteresis: trigger above the limit, run down to
    // half. Re-evaluated per bio so the pump stops at the target instead of
    // draining the cache (the kernel's nr_to_write discipline).
    if (dirty_bytes() > dirty_background_limit()) {
      background_pass_ = true;
    } else if (dirty_bytes() <= dirty_background_limit() / 2) {
      background_pass_ = false;
    }
    // Sync requests are always serviced; otherwise a flush goal must be
    // active.
    bool submitted = false;
    // First pass: files with explicit sync requests. dirty_files_ is the
    // ascending subset of files_ with dirty data, so iterating it visits
    // the same candidates in the same order as a full files_ scan.
    for (uint64_t fid : dirty_files_) {
      FileState& fs = files_.find(fid)->second;
      if (fs.sync_requested && !fs.dirty.empty()) {
        if (SubmitWritebackBio(fid, &fs, /*aged_only=*/false)) {
          submitted = true;
          break;  // break before the iterator can see the submit's erase
        }
      }
    }
    if (!submitted) {
      if (!WritebackGoalActive() || dirty_units_ == 0) break;
      // Round-robin over files with dirty data (ascending, as before).
      std::vector<uint64_t> fids(dirty_files_.begin(), dirty_files_.end());
      if (fids.empty()) break;
      const uint64_t pick = fids[wb_cursor_++ % fids.size()];
      const bool aged_only =
          periodic_pass_ && dirty_bytes() <= dirty_background_limit() &&
          throttled_.empty() && sync_all_waiters_.empty();
      // Per-inode writeback budget: drain several contiguous bios from one
      // file before moving on (the kernel's nr_to_write discipline) so
      // streams stay streamy even under dirty pressure. The flush goal is
      // re-evaluated per bio so the pump still stops at its target.
      int budget = 8;
      auto goal_active = [&] {
        if (dirty_bytes() > dirty_background_limit()) {
          background_pass_ = true;
        } else if (dirty_bytes() <= dirty_background_limit() / 2) {
          background_pass_ = false;
        }
        return WritebackGoalActive() && dirty_units_ > 0;
      };
      while (budget-- > 1 &&
             writeback_inflight_ < params_.max_writeback_inflight &&
             goal_active() &&
             SubmitWritebackBio(pick, &files_[pick], aged_only)) {
        submitted = true;
      }
      if (submitted) continue;
      if (!SubmitWritebackBio(pick, &files_[pick], aged_only)) {
        if (aged_only) {
          // Nothing aged in this file; try others, or finish the pass.
          bool any_aged = false;
          const SimTime now = sim_->Now();
          for (uint64_t fid : fids) {
            for (auto& [u, since] : files_[fid].dirty) {
              if (now - since >= params_.dirty_expire) {
                any_aged = true;
                break;
              }
            }
            if (any_aged) break;
          }
          if (!any_aged) {
            periodic_pass_ = false;
            break;
          }
          continue;
        }
        break;
      }
    }
  }
  if (dirty_units_ == 0) periodic_pass_ = false;
}

bool PageCache::SubmitWritebackBio(uint64_t file_id, FileState* fs,
                                   bool aged_only) {
  if (fs->dirty.empty()) return false;
  const SimTime now = sim_->Now();
  CachedFile* f = fs->file;
  const uint64_t max_run_units =
      f->device()->params().max_request_sectors * kSectorSize /
      params_.unit_bytes;

  auto start_it = fs->dirty.begin();
  if (aged_only) {
    while (start_it != fs->dirty.end() &&
           now - start_it->second < params_.dirty_expire) {
      ++start_it;
    }
    if (start_it == fs->dirty.end()) return false;
  } else {
    // Prefer the file's longest contiguous dirty run (capped at one device
    // request): flushing streamy data first keeps write requests large even
    // under dirty pressure.
    auto best = fs->dirty.begin();
    uint64_t best_len = 0;
    auto it = fs->dirty.begin();
    while (it != fs->dirty.end()) {
      auto run_start = it;
      uint64_t len = 1;
      auto next = std::next(it);
      while (next != fs->dirty.end() && next->first == it->first + 1 &&
             len < max_run_units) {
        ++len;
        it = next;
        next = std::next(it);
      }
      if (len > best_len) {
        best_len = len;
        best = run_start;
        if (best_len >= max_run_units) break;
      }
      it = next;
    }
    start_it = best;
  }

  CachedFile* file = fs->file;
  storage::BlockDevice* dev = file->device();
  const uint64_t max_bytes = dev->params().max_request_sectors * kSectorSize;

  const uint64_t start_unit = start_it->first;
  const uint64_t start_sector =
      file->SectorFor(start_unit * params_.unit_bytes);
  uint64_t bytes = params_.unit_bytes;
  uint64_t n_units = 1;  // the bio covers [start_unit, start_unit + n)

  auto next_it = std::next(start_it);
  uint64_t expect = start_unit + 1;
  while (next_it != fs->dirty.end() && next_it->first == expect &&
         bytes + params_.unit_bytes <= max_bytes &&
         file->SectorFor(expect * params_.unit_bytes) ==
             start_sector + bytes / kSectorSize) {
    ++n_units;
    bytes += params_.unit_bytes;
    ++expect;
    ++next_it;
  }

  // Transition units to writeback. The bio covers consecutive entries of
  // the dirty map starting at start_it, so one range erase suffices — and
  // the matching units_ keys are consecutive and all present, so one
  // lower_bound plus increments replaces per-unit finds.
  auto uit = units_.lower_bound(Key(file_id, start_unit));
  for (uint64_t u = start_unit; u < start_unit + n_units; ++u) {
    BDIO_CHECK(uit != units_.end() && uit->first == Key(file_id, u));
    BDIO_CHECK(uit->second.state == UnitState::kDirty);
    uit->second.state = UnitState::kWriteback;
    --dirty_units_;
    ++fs->writeback_units;
    ++uit;
  }
  fs->dirty.erase(start_it, start_it + static_cast<ptrdiff_t>(n_units));
  if (fs->dirty.empty()) dirty_files_.erase(file_id);
  ++writeback_inflight_;
  stats_.writeback_bytes += bytes;
  uint32_t tag = file->io_tag();
  if (tag >= kNumIoTags) tag = 0;
  if (m_writeback_bytes_) {
    m_writeback_bytes_->Add(bytes);
    tag_write_bytes_[tag]->Add(bytes);
  }
  // Writeback is the page cache's own I/O: it originates a fresh flow here
  // (rather than continuing a writer's) because the dirtying writes were
  // acknowledged long ago.
  uint64_t flow = 0;
  if (trace_) {
    flow = trace_->NewFlow();
    trace_->Instant(trace_pid_, "pagecache", "writeback",
                    "{\"file\":" + std::to_string(file_id) + ",\"bytes\":" +
                        std::to_string(bytes) + ",\"units\":" +
                        std::to_string(n_units) + "}");
    trace_->FlowStart(flow, trace_pid_);
  }
  obs::FlowScope flow_scope(trace_, flow);

  dev->Submit(
      IoType::kWrite, Sectors(start_sector), Sectors(bytes / kSectorSize),
      [this, file_id, start_unit, n_units] {
        OnWritebackDone(file_id, start_unit, n_units);
      },
      /*io_context=*/file_id, tag, file->owner_job());
  return true;
}

void PageCache::OnWritebackDone(uint64_t file_id, uint64_t start_unit,
                                uint64_t n) {
  BDIO_CHECK(writeback_inflight_ > 0);
  --writeback_inflight_;
  auto fit = files_.find(file_id);
  const bool dropped = fit != files_.end() && fit->second.dropped;
  // The bio's units are consecutive and ascending: walk units_ once from
  // the first key instead of re-finding each one (gaps = units dropped
  // while the bio was in flight).
  auto uit = units_.lower_bound(Key(file_id, start_unit));
  for (uint64_t u = start_unit; u < start_unit + n; ++u) {
    if (fit != files_.end()) {
      BDIO_CHECK(fit->second.writeback_units > 0);
      --fit->second.writeback_units;
    }
    const uint64_t key = Key(file_id, u);
    while (uit != units_.end() && uit->first < key) ++uit;
    if (uit == units_.end() || uit->first != key) {
      continue;  // file dropped while in flight
    }
    Unit& unit = uit->second;
    if (dropped) {
      // The file was deleted mid-flush: discard the unit entirely.
      uit = units_.erase(uit);
      continue;
    }
    if (unit.state == UnitState::kWritebackRedirty) {
      unit.state = UnitState::kDirty;
      unit.dirty_since = sim_->Now();
      if (fit != files_.end()) {
        NoteDirtyInsert(file_id, fit->second);
        fit->second.dirty.emplace(u, sim_->Now());
      }
      ++dirty_units_;
      SchedulePeriodicFlush();
    } else if (unit.state == UnitState::kWriteback) {
      unit.state = UnitState::kClean;
      lru_.push_back(uit);
      unit.lru_it = std::prev(lru_.end());
    }
    ++uit;
  }
  if (dropped && fit->second.writeback_units == 0) {
    for (auto& w : fit->second.sync_waiters) {
      sim_->ScheduleAfter(SimDuration{}, std::move(w));
    }
    files_.erase(fit);
  }
  EvictIfNeeded();
  CheckSyncWaiters(file_id);
  DrainThrottled();
  PumpWriteback();
  // SyncAll completion check.
  if (!sync_all_waiters_.empty() && dirty_units_ == 0 &&
      writeback_inflight_ == 0) {
    auto waiters = std::move(sync_all_waiters_);
    sync_all_waiters_.clear();
    for (auto& w : waiters) sim_->ScheduleAfter(SimDuration{}, std::move(w));
  }
}

void PageCache::CheckSyncWaiters(uint64_t file_id) {
  auto fit = files_.find(file_id);
  if (fit == files_.end()) return;
  FileState& fs = fit->second;
  if (fs.dirty.empty() && fs.writeback_units == 0 &&
      !fs.sync_waiters.empty()) {
    auto waiters = std::move(fs.sync_waiters);
    fs.sync_waiters.clear();
    fs.sync_requested = false;
    for (auto& w : waiters) sim_->ScheduleAfter(SimDuration{}, std::move(w));
  }
}

void PageCache::DrainThrottled() {
  while (!throttled_.empty() && dirty_bytes() <= dirty_limit()) {
    PendingWrite pw = std::move(throttled_.front());
    throttled_.pop_front();
    DoWrite(pw.file, pw.offset, pw.len);
    if (pw.cb) sim_->ScheduleAfter(SimDuration{}, std::move(pw.cb));
  }
}

// ---------------------------------------------------------------------------
// Sync / drop
// ---------------------------------------------------------------------------

void PageCache::Sync(CachedFile* file, InlineFn cb) {
  const uint64_t fid = file->file_id();
  FileState& fs = files_[fid];
  fs.file = file;
  if (fs.dirty.empty() && fs.writeback_units == 0) {
    if (cb) sim_->ScheduleAfter(SimDuration{}, std::move(cb));
    return;
  }
  fs.sync_requested = true;
  if (cb) fs.sync_waiters.push_back(std::move(cb));
  PumpWriteback();
}

void PageCache::SyncAll(InlineFn cb) {
  if (dirty_units_ == 0 && writeback_inflight_ == 0) {
    if (cb) sim_->ScheduleAfter(SimDuration{}, std::move(cb));
    return;
  }
  if (cb) sync_all_waiters_.push_back(std::move(cb));
  for (uint64_t fid : dirty_files_) {
    files_.find(fid)->second.sync_requested = true;
  }
  PumpWriteback();
}

void PageCache::DropClean() {
  for (const auto& uit : lru_) {
    BDIO_CHECK(uit->second.state == UnitState::kClean);
    units_.erase(uit);
  }
  lru_.clear();
  readahead_.clear();
}

void PageCache::Drop(uint64_t file_id) {
  // Purge throttled writes against the dying file: their data is discarded
  // (like closing and unlinking before the write-back), but the writers'
  // continuations still run.
  for (auto it = throttled_.begin(); it != throttled_.end();) {
    if (it->file->file_id() == file_id) {
      if (it->cb) sim_->ScheduleAfter(SimDuration{}, std::move(it->cb));
      it = throttled_.erase(it);
    } else {
      ++it;
    }
  }
  auto fit = files_.find(file_id);
  if (fit != files_.end()) {
    // Discard dirty bookkeeping; in-flight writeback completions notice the
    // missing units and skip them.
    dirty_units_ -= fit->second.dirty.size();
    dirty_files_.erase(file_id);
    if (fit->second.writeback_units == 0) {
      for (auto& w : fit->second.sync_waiters) {
        sim_->ScheduleAfter(SimDuration{}, std::move(w));
      }
      files_.erase(fit);
    } else {
      fit->second.dirty.clear();
      fit->second.dropped = true;  // waiters resolve on completion
    }
  }
  // Remove resident units.
  for (auto it = units_.begin(); it != units_.end();) {
    if ((it->first >> 28) == file_id) {
      if (it->second.state == UnitState::kClean) {
        lru_.erase(it->second.lru_it);
      }
      if (it->second.state == UnitState::kReading) {
        for (auto& w : it->second.read_waiters) {
          sim_->ScheduleAfter(SimDuration{}, std::move(w));
        }
      }
      if (it->second.state == UnitState::kWriteback ||
          it->second.state == UnitState::kWritebackRedirty) {
        ++it;  // completion handler erases it
        continue;
      }
      it = units_.erase(it);
    } else {
      ++it;
    }
  }
  readahead_.erase(file_id);
  DrainThrottled();
}

// ---------------------------------------------------------------------------
// Invariant audit (bdio::invariants)
// ---------------------------------------------------------------------------

std::string PageCache::AuditInvariants() const {
  uint64_t dirty = 0;
  uint64_t clean = 0;
  std::map<uint64_t, uint64_t> wb_per_file;  // file id -> in-writeback units
  for (const auto& [key, unit] : units_) {
    switch (unit.state) {
      case UnitState::kDirty:
        ++dirty;
        break;
      case UnitState::kClean:
        ++clean;
        break;
      case UnitState::kWriteback:
      case UnitState::kWritebackRedirty:
        ++wb_per_file[key >> 28];
        break;
      case UnitState::kReading:
        break;
    }
  }
  if (dirty != dirty_units_) {
    return "pagecache: dirty_units_=" + std::to_string(dirty_units_) +
           " but " + std::to_string(dirty) + " units are in state kDirty";
  }
  if (clean != lru_.size()) {
    return "pagecache: " + std::to_string(clean) +
           " clean units but LRU list holds " + std::to_string(lru_.size());
  }
  // The LRU holds live units_ iterators (an entry for an erased unit would
  // already be UB to dereference), so the audit checks the state invariant;
  // the clean-count match above catches stale or missing entries.
  for (const auto& uit : lru_) {
    if (uit->second.state != UnitState::kClean) {
      return "pagecache: LRU references non-clean unit " +
             std::to_string(uit->first);
    }
  }
  uint64_t per_file_dirty = 0;
  uint64_t per_file_wb = 0;
  uint64_t files_with_dirty = 0;
  for (const auto& [fid, fs] : files_) {
    per_file_dirty += fs.dirty.size();
    per_file_wb += fs.writeback_units;
    if (!fs.dirty.empty()) ++files_with_dirty;
    if (fs.dirty.empty() != (dirty_files_.count(fid) == 0)) {
      return "pagecache: dirty_files_ " +
             std::string(fs.dirty.empty() ? "contains" : "is missing") +
             " file " + std::to_string(fid) +
             (fs.dirty.empty() ? " which has no dirty units"
                               : " which has dirty units");
    }
    const auto wit = wb_per_file.find(fid);
    const uint64_t in_wb = wit == wb_per_file.end() ? 0 : wit->second;
    // Dropped files release their units at bio completion, so the unit
    // recount may run behind the per-file counter between Drop and the
    // completion event; equality is only required for live files.
    if (!fs.dropped && fs.writeback_units != in_wb) {
      return "pagecache: file " + std::to_string(fid) + " writeback_units=" +
             std::to_string(fs.writeback_units) + " but " +
             std::to_string(in_wb) + " units are in writeback states";
    }
  }
  if (files_with_dirty != dirty_files_.size()) {
    return "pagecache: dirty_files_ holds " +
           std::to_string(dirty_files_.size()) + " entries but " +
           std::to_string(files_with_dirty) + " files have dirty units";
  }
  if (per_file_dirty != dirty_units_) {
    return "pagecache: per-file dirty maps hold " +
           std::to_string(per_file_dirty) + " units, dirty_units_=" +
           std::to_string(dirty_units_);
  }
  if (writeback_inflight_ > params_.max_writeback_inflight) {
    return "pagecache: writeback_inflight_=" +
           std::to_string(writeback_inflight_) + " exceeds cap " +
           std::to_string(params_.max_writeback_inflight);
  }
  if ((per_file_wb == 0) != (writeback_inflight_ == 0)) {
    return "pagecache: writeback_inflight_=" +
           std::to_string(writeback_inflight_) + " inconsistent with " +
           std::to_string(per_file_wb) + " units in writeback";
  }
  if (cached_bytes() > params_.capacity_bytes && !lru_.empty()) {
    return "pagecache: cached_bytes=" + std::to_string(cached_bytes()) +
           " over capacity " + std::to_string(params_.capacity_bytes) +
           " with evictable units available";
  }
  return {};
}

}  // namespace bdio::os
