#ifndef BDIO_CHECK_INVARIANTS_H_
#define BDIO_CHECK_INVARIANTS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "common/units.h"
#include "dag/job_dag.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace bdio::invariants {

/// Checker tuning. The cheap clock check runs after every event; the full
/// cross-subsystem audit runs every `audit_interval` events (and once at
/// detach), bounding the overhead on large simulations.
struct CheckerConfig {
  uint64_t audit_interval = 2048;
  /// Abort the process on a violation (the default — a violated invariant
  /// means later results are garbage). Tests set this false and poll
  /// last_violation() instead.
  bool fatal = true;
};

/// Debug-mode runtime invariant checker (docs/STATIC_ANALYSIS.md). Hooks
/// the simulator's post-event callback and cross-checks the watched
/// subsystems' internal accounting:
///
///  - simulated time never moves backwards across events;
///  - page cache: dirty/clean/writeback unit recounts, LRU consistency,
///    writeback-inflight cap, capacity vs eviction (PageCache audit);
///  - disks: in_flight vs elevator+NCQ+service recount, io_ticks bounded
///    by elapsed time (utilization <= 1) (BlockDevice audit);
///  - HDFS: replica holders distinct/live/in-range, counts within
///    [0, replication], quarantined replicas excluded, re-replication
///    stream cap (Hdfs audit);
///  - MapReduce: running-task counters vs attempt lists, per-node slot
///    conservation (MrEngine audit);
///  - JobDag: no orphaned intermediate blocks after a round is retired,
///    iteration counters monotone across audits (JobDag audit);
///  - metrics: per-IoTag physical-byte attribution is complete — the
///    tagged pagecache counters sum to the untagged totals.
///
/// Every check is read-only: an attached checker performs no allocation in
/// the simulation's control flow, schedules no events, and draws no random
/// numbers, so checked runs remain byte-identical to unchecked runs. This
/// is the contract `Simulator::SetPostEventHook` documents; it is what
/// makes the CI chaos smoke's checked-vs-unchecked `cmp` sound.
///
/// The hook fires after the event's node has already been recycled (the
/// kernel frees pooled EventNodes before invoking callbacks — see
/// src/sim/event_pool.h and docs/PERFORMANCE.md), so audits must only read
/// subsystem state through the Watch* pointers, never simulator queue
/// internals.
class InvariantChecker {
 public:
  /// Attaches to `sim`'s post-event hook. The checker must outlive neither
  /// the simulator nor any watched subsystem; destroy it (or the sim)
  /// before the subsystems it watches.
  explicit InvariantChecker(sim::Simulator* sim, CheckerConfig config = {});
  ~InvariantChecker();

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Watch*: register subsystems to audit. All optional; unwatched
  // subsystems are skipped.
  void WatchCluster(cluster::Cluster* cluster) { cluster_ = cluster; }
  void WatchHdfs(hdfs::Hdfs* hdfs) { hdfs_ = hdfs; }
  void WatchEngine(mapreduce::MrEngine* engine) { engine_ = engine; }
  /// Registered by dag-driving runners after MaybeAttachFromEnv (the dag
  /// is constructed later than the core subsystems).
  void WatchDag(const dag::JobDag* jobdag) { dag_ = jobdag; }
  void WatchMetrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }

  /// Runs the full audit immediately (aborts or records per config.fatal).
  void CheckNow();

  uint64_t events_checked() const { return events_checked_; }
  uint64_t audits_run() const { return audits_run_; }
  /// First violation seen (non-fatal mode); empty if none.
  const std::string& last_violation() const { return last_violation_; }

  /// True when BDIO_CHECK_INVARIANTS=1 is set in the environment.
  static bool EnabledFromEnv();

 private:
  void OnEvent();
  /// Runs every registered audit; returns the first violation or "".
  std::string RunAudit() const;
  void Report(const std::string& violation);

  sim::Simulator* sim_;
  CheckerConfig config_;
  cluster::Cluster* cluster_ = nullptr;
  hdfs::Hdfs* hdfs_ = nullptr;
  mapreduce::MrEngine* engine_ = nullptr;
  const dag::JobDag* dag_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  SimTime last_now_;
  uint64_t events_checked_ = 0;
  uint64_t audits_run_ = 0;
  std::string last_violation_;
};

/// Convenience wiring used by core::RunExperiment and the benches: returns
/// an attached checker watching everything when BDIO_CHECK_INVARIANTS=1,
/// nullptr otherwise. Any watched pointer may be null.
std::unique_ptr<InvariantChecker> MaybeAttachFromEnv(
    sim::Simulator* sim, cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
    mapreduce::MrEngine* engine, obs::MetricsRegistry* metrics);

}  // namespace bdio::invariants

#endif  // BDIO_CHECK_INVARIANTS_H_
