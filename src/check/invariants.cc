#include "check/invariants.h"

#include <cstdlib>

#include "common/io_tag.h"
#include "common/logging.h"

namespace bdio::invariants {

InvariantChecker::InvariantChecker(sim::Simulator* sim, CheckerConfig config)
    : sim_(sim), config_(config), last_now_(sim->Now()) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(config_.audit_interval > 0);
  sim_->SetPostEventHook([this] { OnEvent(); });
}

InvariantChecker::~InvariantChecker() {
  // Final audit: catch violations the interval never sampled.
  if (last_violation_.empty()) {
    const std::string v = RunAudit();
    if (!v.empty()) Report(v);
  }
  sim_->SetPostEventHook(nullptr);
}

bool InvariantChecker::EnabledFromEnv() {
  const char* env = std::getenv("BDIO_CHECK_INVARIANTS");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

void InvariantChecker::OnEvent() {
  ++events_checked_;
  const SimTime now = sim_->Now();
  if (now < last_now_) {
    Report("sim: clock moved backwards: " + std::to_string(now.ns()) + " after " +
           std::to_string(last_now_.ns()));
  }
  last_now_ = now;
  if (events_checked_ % config_.audit_interval == 0) CheckNow();
}

void InvariantChecker::CheckNow() {
  ++audits_run_;
  const std::string v = RunAudit();
  if (!v.empty()) Report(v);
}

void InvariantChecker::Report(const std::string& violation) {
  if (config_.fatal) {
    BDIO_CHECK(false) << "invariant violated at t=" << sim_->Now()
                      << " (event " << events_checked_ << "): " << violation;
  }
  if (last_violation_.empty()) last_violation_ = violation;
}

std::string InvariantChecker::RunAudit() const {
  if (cluster_ != nullptr) {
    for (uint32_t i = 0; i < cluster_->num_workers(); ++i) {
      cluster::Node* node = cluster_->node(i);
      std::string v = node->cache()->AuditInvariants();
      if (!v.empty()) return "node " + std::to_string(i) + ": " + v;
      for (uint32_t d = 0; d < node->num_hdfs_disks(); ++d) {
        v = node->hdfs_disk(d)->AuditInvariants();
        if (!v.empty()) return "node " + std::to_string(i) + ": " + v;
      }
      for (uint32_t d = 0; d < node->num_mr_disks(); ++d) {
        v = node->mr_disk(d)->AuditInvariants();
        if (!v.empty()) return "node " + std::to_string(i) + ": " + v;
      }
    }
  }
  if (hdfs_ != nullptr) {
    std::string v = hdfs_->AuditInvariants();
    if (!v.empty()) return v;
  }
  if (engine_ != nullptr) {
    std::string v = engine_->AuditInvariants();
    if (!v.empty()) return v;
  }
  if (dag_ != nullptr) {
    std::string v = dag_->AuditInvariants();
    if (!v.empty()) return v;
  }
  if (metrics_ != nullptr) {
    // Per-IoTag attribution completeness: the page cache bumps the tagged
    // and untagged counters together, so the tagged family must sum to the
    // total — every physical byte is attributed to exactly one source.
    uint64_t tag_read = 0;
    uint64_t tag_write = 0;
    for (uint32_t t = 0; t < kNumIoTags; ++t) {
      const obs::Labels labels{{"source", IoTagName(static_cast<IoTag>(t))}};
      tag_read +=
          metrics_->CounterValue("pagecache.tag_disk_read_bytes", labels);
      tag_write +=
          metrics_->CounterValue("pagecache.tag_disk_write_bytes", labels);
    }
    const uint64_t total_read =
        metrics_->CounterValue("pagecache.disk_read_bytes");
    const uint64_t total_write =
        metrics_->CounterValue("pagecache.writeback_bytes");
    if (tag_read != total_read) {
      return "metrics: tagged pagecache reads sum to " +
             std::to_string(tag_read) + " but disk_read_bytes=" +
             std::to_string(total_read);
    }
    if (tag_write != total_write) {
      return "metrics: tagged pagecache writes sum to " +
             std::to_string(tag_write) + " but writeback_bytes=" +
             std::to_string(total_write);
    }
  }
  return {};
}

std::unique_ptr<InvariantChecker> MaybeAttachFromEnv(
    sim::Simulator* sim, cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
    mapreduce::MrEngine* engine, obs::MetricsRegistry* metrics) {
  if (!InvariantChecker::EnabledFromEnv()) return nullptr;
  auto checker = std::make_unique<InvariantChecker>(sim);
  if (cluster != nullptr) checker->WatchCluster(cluster);
  if (hdfs != nullptr) checker->WatchHdfs(hdfs);
  if (engine != nullptr) checker->WatchEngine(engine);
  if (metrics != nullptr) checker->WatchMetrics(metrics);
  return checker;
}

}  // namespace bdio::invariants
