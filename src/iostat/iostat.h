#ifndef BDIO_IOSTAT_IOSTAT_H_
#define BDIO_IOSTAT_IOSTAT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time_series.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace bdio::iostat {

/// One `iostat -x` row: the extended statistics for one device over one
/// sampling interval, derived from /proc/diskstats deltas with exactly
/// sysstat's formulas.
struct Sample {
  double rrqm_s = 0;   ///< Read merges/s.
  double wrqm_s = 0;   ///< Write merges/s.
  double r_s = 0;      ///< Read requests completed/s.
  double w_s = 0;      ///< Write requests completed/s.
  double rmb_s = 0;    ///< MB read/s (the paper's rMB/s).
  double wmb_s = 0;    ///< MB written/s.
  double avgrq_sz = 0; ///< Average request size, sectors.
  double avgqu_sz = 0; ///< Average queue length.
  double await_ms = 0; ///< Avg request latency incl. queueing, ms.
  double svctm_ms = 0; ///< Avg device service time, ms.
  double util_pct = 0; ///< %util: fraction of time the device was busy.

  /// Average time spent waiting in queue (the paper's "average waiting
  /// time of I/O requests" = await - svctm). Clamped at 0: sysstat's
  /// integer-delta formulas can make the difference marginally negative on
  /// sparse intervals, which would poison group means.
  double wait_ms() const {
    const double w = await_ms - svctm_ms;
    return w > 0 ? w : 0;
  }
};

/// Metrics selectable from a sample (for building figure series).
enum class Metric {
  kReadMBps,
  kWriteMBps,
  kUtil,
  kAwait,
  kSvctm,
  kWait,      ///< await - svctm
  kAvgRqSz,
  kAvgQuSz,
  kReadIops,
  kWriteIops,
};

double SampleMetric(const Sample& s, Metric m);
const char* MetricName(Metric m);

/// Computes one Sample from two diskstats snapshots `interval` apart.
Sample ComputeSample(const storage::DiskStatsSnapshot& prev,
                     const storage::DiskStatsSnapshot& cur,
                     SimDuration interval);

/// Periodic collector over a set of devices, grouped by device class
/// ("hdfs" and "mr" in the experiments). Equivalent to running
/// `iostat -x <interval>` on every node for the duration of a workload.
class Monitor {
 public:
  Monitor(sim::Simulator* sim, SimDuration interval = Seconds(1));

  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Registers a device under a group label. Must be called before Start().
  void AddDevice(storage::BlockDevice* device, const std::string& group);

  /// Begins sampling (the first interval ends one period from now).
  void Start();
  /// Stops sampling after the current interval.
  void Stop();

  size_t num_samples() const { return num_samples_; }
  SimDuration interval() const { return interval_; }

  /// Per-device sample log.
  const std::vector<Sample>& DeviceSamples(
      const std::string& device_name) const;

  /// Group-level time series of one metric: per interval, the mean of the
  /// metric over the group's devices (how the paper plots per-disk-class
  /// behaviour of its 30 HDFS / 30 MR disks).
  TimeSeries GroupMean(const std::string& group, Metric metric) const;
  /// Per interval, the sum over the group's devices (aggregate bandwidth).
  TimeSeries GroupSum(const std::string& group, Metric metric) const;

  /// Per interval, the mean over only the group's devices that serviced at
  /// least one request. Use for ratio metrics (avgrq-sz, await, svctm) which
  /// are undefined (reported as 0) on an idle device — plain means would be
  /// dragged toward zero by idle disks.
  TimeSeries GroupActiveMean(const std::string& group, Metric metric) const;

  /// Fraction of all (device, interval) samples in the group with
  /// utilization strictly above `pct` — the Table 6/7 statistic.
  double GroupUtilFractionAbove(const std::string& group, double pct) const;

  /// All samples of a group flattened (device-major).
  std::vector<double> GroupMetricValues(const std::string& group,
                                        Metric metric) const;

  /// iostat-style text report of the latest interval.
  std::string LatestReport() const;

  std::vector<std::string> groups() const;

 private:
  struct Tracked {
    storage::BlockDevice* device = nullptr;
    std::string group;
    storage::DiskStatsSnapshot prev;
    std::vector<Sample> samples;
  };

  void Tick();

  sim::Simulator* sim_;
  SimDuration interval_;
  bool running_ = false;
  bool stop_requested_ = false;
  size_t num_samples_ = 0;
  std::vector<Tracked> devices_;
  std::map<std::string, std::vector<size_t>> by_group_;
  std::map<std::string, size_t> by_name_;
};

}  // namespace bdio::iostat

#endif  // BDIO_IOSTAT_IOSTAT_H_
