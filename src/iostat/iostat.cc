#include "iostat/iostat.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace bdio::iostat {

double SampleMetric(const Sample& s, Metric m) {
  switch (m) {
    case Metric::kReadMBps:
      return s.rmb_s;
    case Metric::kWriteMBps:
      return s.wmb_s;
    case Metric::kUtil:
      return s.util_pct;
    case Metric::kAwait:
      return s.await_ms;
    case Metric::kSvctm:
      return s.svctm_ms;
    case Metric::kWait:
      return s.wait_ms();
    case Metric::kAvgRqSz:
      return s.avgrq_sz;
    case Metric::kAvgQuSz:
      return s.avgqu_sz;
    case Metric::kReadIops:
      return s.r_s;
    case Metric::kWriteIops:
      return s.w_s;
  }
  return 0;
}

const char* MetricName(Metric m) {
  switch (m) {
    case Metric::kReadMBps:
      return "rMB/s";
    case Metric::kWriteMBps:
      return "wMB/s";
    case Metric::kUtil:
      return "%util";
    case Metric::kAwait:
      return "await";
    case Metric::kSvctm:
      return "svctm";
    case Metric::kWait:
      return "wait";
    case Metric::kAvgRqSz:
      return "avgrq-sz";
    case Metric::kAvgQuSz:
      return "avgqu-sz";
    case Metric::kReadIops:
      return "r/s";
    case Metric::kWriteIops:
      return "w/s";
  }
  return "?";
}

Sample ComputeSample(const storage::DiskStatsSnapshot& prev,
                     const storage::DiskStatsSnapshot& cur,
                     SimDuration interval) {
  BDIO_CHECK(interval > SimDuration{});
  const double itv_s = ToSeconds(interval);

  const double d_rios = static_cast<double>(cur.ios[0] - prev.ios[0]);
  const double d_wios = static_cast<double>(cur.ios[1] - prev.ios[1]);
  const double d_ios = d_rios + d_wios;
  const double d_rsec = static_cast<double>(cur.sectors[0] -
                                            prev.sectors[0]);
  const double d_wsec = static_cast<double>(cur.sectors[1] -
                                            prev.sectors[1]);
  const double d_rticks_ms = ToMillis(cur.ticks[0] - prev.ticks[0]);
  const double d_wticks_ms = ToMillis(cur.ticks[1] - prev.ticks[1]);
  const double d_io_ticks_ms = ToMillis(cur.io_ticks - prev.io_ticks);
  const double d_queue_ms =
      ToMillis(cur.time_in_queue - prev.time_in_queue);

  Sample s;
  s.rrqm_s = static_cast<double>(cur.merges[0] - prev.merges[0]) / itv_s;
  s.wrqm_s = static_cast<double>(cur.merges[1] - prev.merges[1]) / itv_s;
  s.r_s = d_rios / itv_s;
  s.w_s = d_wios / itv_s;
  s.rmb_s = d_rsec * static_cast<double>(kSectorSize) / 1e6 / itv_s;
  s.wmb_s = d_wsec * static_cast<double>(kSectorSize) / 1e6 / itv_s;
  if (d_ios > 0) {
    s.avgrq_sz = (d_rsec + d_wsec) / d_ios;
    s.await_ms = (d_rticks_ms + d_wticks_ms) / d_ios;
    s.svctm_ms = d_io_ticks_ms / d_ios;
  }
  s.avgqu_sz = d_queue_ms / (itv_s * 1000.0);
  s.util_pct = 100.0 * d_io_ticks_ms / (itv_s * 1000.0);
  if (s.util_pct > 100.0) s.util_pct = 100.0;
  return s;
}

Monitor::Monitor(sim::Simulator* sim, SimDuration interval)
    : sim_(sim), interval_(interval) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(interval > SimDuration{});
}

void Monitor::AddDevice(storage::BlockDevice* device,
                        const std::string& group) {
  BDIO_CHECK(!running_) << "add devices before Start()";
  BDIO_CHECK(device != nullptr);
  Tracked t;
  t.device = device;
  t.group = group;
  const size_t idx = devices_.size();
  devices_.push_back(std::move(t));
  by_group_[group].push_back(idx);
  by_name_[device->name()] = idx;
}

void Monitor::Start() {
  BDIO_CHECK(!running_);
  running_ = true;
  stop_requested_ = false;
  for (Tracked& t : devices_) {
    t.prev = t.device->Stats();
  }
  sim_->ScheduleAfter(interval_, [this] { Tick(); });
}

void Monitor::Stop() { stop_requested_ = true; }

void Monitor::Tick() {
  if (stop_requested_) {
    running_ = false;
    return;
  }
  for (Tracked& t : devices_) {
    const storage::DiskStatsSnapshot cur = t.device->Stats();
    t.samples.push_back(ComputeSample(t.prev, cur, interval_));
    t.prev = cur;
  }
  ++num_samples_;
  sim_->ScheduleAfter(interval_, [this] { Tick(); });
}

const std::vector<Sample>& Monitor::DeviceSamples(
    const std::string& device_name) const {
  auto it = by_name_.find(device_name);
  BDIO_CHECK(it != by_name_.end()) << "unknown device " << device_name;
  return devices_[it->second].samples;
}

TimeSeries Monitor::GroupMean(const std::string& group, Metric metric) const {
  auto it = by_group_.find(group);
  BDIO_CHECK(it != by_group_.end()) << "unknown group " << group;
  TimeSeries out(interval_);
  for (size_t i = 0; i < num_samples_; ++i) {
    double sum = 0;
    size_t n = 0;
    for (size_t d : it->second) {
      if (i < devices_[d].samples.size()) {
        sum += SampleMetric(devices_[d].samples[i], metric);
        ++n;
      }
    }
    out.Append(n ? sum / static_cast<double>(n) : 0);
  }
  return out;
}

TimeSeries Monitor::GroupSum(const std::string& group, Metric metric) const {
  auto it = by_group_.find(group);
  BDIO_CHECK(it != by_group_.end()) << "unknown group " << group;
  TimeSeries out(interval_);
  for (size_t i = 0; i < num_samples_; ++i) {
    double sum = 0;
    for (size_t d : it->second) {
      if (i < devices_[d].samples.size()) {
        sum += SampleMetric(devices_[d].samples[i], metric);
      }
    }
    out.Append(sum);
  }
  return out;
}

TimeSeries Monitor::GroupActiveMean(const std::string& group,
                                    Metric metric) const {
  auto it = by_group_.find(group);
  BDIO_CHECK(it != by_group_.end()) << "unknown group " << group;
  TimeSeries out(interval_);
  for (size_t i = 0; i < num_samples_; ++i) {
    double sum = 0;
    size_t n = 0;
    for (size_t d : it->second) {
      if (i < devices_[d].samples.size()) {
        const Sample& s = devices_[d].samples[i];
        if (s.r_s + s.w_s > 0) {
          sum += SampleMetric(s, metric);
          ++n;
        }
      }
    }
    out.Append(n ? sum / static_cast<double>(n) : 0);
  }
  return out;
}

double Monitor::GroupUtilFractionAbove(const std::string& group,
                                       double pct) const {
  const std::vector<double> values = GroupMetricValues(group, Metric::kUtil);
  if (values.empty()) return 0;
  size_t above = 0;
  for (double v : values) {
    if (v > pct) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(values.size());
}

std::vector<double> Monitor::GroupMetricValues(const std::string& group,
                                               Metric metric) const {
  auto it = by_group_.find(group);
  BDIO_CHECK(it != by_group_.end()) << "unknown group " << group;
  std::vector<double> out;
  for (size_t d : it->second) {
    for (const Sample& s : devices_[d].samples) {
      out.push_back(SampleMetric(s, metric));
    }
  }
  return out;
}

std::string Monitor::LatestReport() const {
  std::ostringstream os;
  os << "Device:          rrqm/s   wrqm/s     r/s     w/s    rMB/s    wMB/s "
        "avgrq-sz avgqu-sz   await   svctm  %util\n";
  char line[256];
  for (const Tracked& t : devices_) {
    if (t.samples.empty()) continue;
    const Sample& s = t.samples.back();
    std::snprintf(line, sizeof(line),
                  "%-15s %8.2f %8.2f %7.2f %7.2f %8.2f %8.2f %8.2f %8.2f "
                  "%7.2f %7.2f %6.2f\n",
                  t.device->name().c_str(), s.rrqm_s, s.wrqm_s, s.r_s, s.w_s,
                  s.rmb_s, s.wmb_s, s.avgrq_sz, s.avgqu_sz, s.await_ms,
                  s.svctm_ms, s.util_pct);
    os << line;
  }
  return os.str();
}

std::vector<std::string> Monitor::groups() const {
  std::vector<std::string> out;
  for (const auto& [g, v] : by_group_) out.push_back(g);
  return out;
}

}  // namespace bdio::iostat
