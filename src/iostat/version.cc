namespace bdio::iostat {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "iostat"; }
}  // namespace bdio::iostat
