#include "storage/io_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace bdio::storage {

namespace {

/// Moves the bio's callbacks into `req` and extends it. `front` selects a
/// front merge (bio precedes req).
void FoldBio(IoRequest* req, IoRequest* bio, bool front) {
  BDIO_CHECK(req->type == bio->type);
  if (front) {
    BDIO_CHECK(bio->end_sector() == req->sector);
    req->sector = bio->sector;
    // Front merge: the request inherits the earlier submit time so the
    // queue-wait accounting stays conservative.
    req->submit_time = std::min(req->submit_time, bio->submit_time);
  } else {
    BDIO_CHECK(req->end_sector() == bio->sector);
  }
  req->sectors += bio->sectors;
  req->bio_count += bio->bio_count;
  for (auto& cb : bio->on_complete) {
    req->on_complete.push_back(std::move(cb));
  }
  bio->on_complete.clear();
}

}  // namespace

// ---------------------------------------------------------------------------
// NoopScheduler
// ---------------------------------------------------------------------------

IoRequest* NoopScheduler::TryMerge(IoRequest* bio) {
  if (fifo_.empty()) return nullptr;
  IoRequest* tail = fifo_.back();
  if (tail->type != bio->type) return nullptr;
  if (tail->end_sector() == bio->sector &&
      tail->sectors + bio->sectors <= max_request_sectors_) {
    FoldBio(tail, bio, /*front=*/false);
    return tail;
  }
  return nullptr;
}

void NoopScheduler::Add(IoRequest* req) {
  fifo_.push_back(req);
  ++size_;
}

IoRequest* NoopScheduler::PopNext(SimTime /*now*/) {
  BDIO_CHECK(!fifo_.empty());
  IoRequest* req = fifo_.front();
  fifo_.erase(req);
  --size_;
  return req;
}

// ---------------------------------------------------------------------------
// DeadlineScheduler
// ---------------------------------------------------------------------------

IoRequest* DeadlineScheduler::TryMergeDir(DirQueue* q, IoRequest* bio) {
  // Back merge: a queued request ending exactly where the bio starts.
  auto back = q->by_end.find(bio->sector);
  if (back != q->by_end.end()) {
    IoRequest* req = back->second;
    if (req->sectors + bio->sectors <= max_request_sectors_) {
      q->by_end.erase(back);
      FoldBio(req, bio, /*front=*/false);
      q->by_end.emplace(req->end_sector(), req);
      return req;
    }
  }
  // Front merge: a queued request starting exactly where the bio ends.
  auto front = q->by_start.find(bio->end_sector());
  if (front != q->by_start.end()) {
    IoRequest* req = front->second;
    if (req->sectors + bio->sectors <= max_request_sectors_) {
      q->by_start.erase(front);
      FoldBio(req, bio, /*front=*/true);
      q->by_start.emplace(req->sector, req);
      return req;
    }
  }
  return nullptr;
}

IoRequest* DeadlineScheduler::TryMerge(IoRequest* bio) {
  return TryMergeDir(&queues_[static_cast<int>(bio->type)], bio);
}

void DeadlineScheduler::Add(IoRequest* req) {
  DirQueue& q = queues_[static_cast<int>(req->type)];
  const SimDuration expiry = req->is_read() ? kReadExpiry : kWriteExpiry;
  req->deadline = req->submit_time + expiry;
  q.fifo.push_back(req);
  q.by_start.emplace(req->sector, req);
  q.by_end.emplace(req->end_sector(), req);
  ++size_;
}

void DeadlineScheduler::Extract(DirQueue* q, IoRequest* req) {
  // Erase the matching index entries (multimap: find the exact pointer).
  auto range = q->by_start.equal_range(req->sector);
  for (auto i = range.first; i != range.second; ++i) {
    if (i->second == req) {
      q->by_start.erase(i);
      break;
    }
  }
  range = q->by_end.equal_range(req->end_sector());
  for (auto i = range.first; i != range.second; ++i) {
    if (i->second == req) {
      q->by_end.erase(i);
      break;
    }
  }
  q->fifo.erase(req);
  --size_;
}

IoRequest* DeadlineScheduler::Select(DirQueue* q, SimTime now) {
  BDIO_CHECK(!q->fifo.empty());
  // Expired FIFO head takes priority (the "deadline" in deadline).
  if (q->fifo.front()->deadline <= now) {
    return q->fifo.front();
  }
  // Otherwise one-way elevator: smallest start sector >= elevator position,
  // wrapping to the smallest overall.
  auto it = q->by_start.lower_bound(next_sector_);
  if (it == q->by_start.end()) it = q->by_start.begin();
  return it->second;
}

IoRequest* DeadlineScheduler::PopNext(SimTime now) {
  BDIO_CHECK(size_ > 0);
  DirQueue& reads = queues_[static_cast<int>(IoType::kRead)];
  DirQueue& writes = queues_[static_cast<int>(IoType::kWrite)];

  IoType dir;
  const bool have_reads = !reads.fifo.empty();
  const bool have_writes = !writes.fifo.empty();
  if (have_reads && !have_writes) {
    dir = IoType::kRead;
  } else if (have_writes && !have_reads) {
    dir = IoType::kWrite;
  } else {
    // Both present: continue the current batch unless exhausted; otherwise
    // prefer reads, but don't starve writes beyond kWritesStarved batches,
    // and always honour expired write deadlines.
    if (batch_remaining_ > 0 &&
        !queues_[static_cast<int>(batch_dir_)].fifo.empty()) {
      dir = batch_dir_;
    } else if (writes.fifo.front()->deadline <= now ||
               starved_batches_ >= kWritesStarved) {
      dir = IoType::kWrite;
    } else {
      dir = IoType::kRead;
    }
  }

  if (dir != batch_dir_ || batch_remaining_ <= 0) {
    // New batch.
    if (dir == IoType::kRead && have_writes) {
      ++starved_batches_;
    } else if (dir == IoType::kWrite) {
      starved_batches_ = 0;
    }
    batch_dir_ = dir;
    batch_remaining_ = kFifoBatch;
  }
  --batch_remaining_;

  DirQueue& q = queues_[static_cast<int>(dir)];
  IoRequest* req = Select(&q, now);
  Extract(&q, req);
  next_sector_ = req->end_sector();
  return req;
}

// ---------------------------------------------------------------------------
// CfqScheduler
// ---------------------------------------------------------------------------

IoRequest* CfqScheduler::TryMerge(IoRequest* bio) {
  auto cit = contexts_.find(bio->io_context);
  if (cit == contexts_.end()) return nullptr;
  CtxQueue& q = cit->second;
  // Back merge: a queued request of the same stream and direction ending
  // where the bio starts.
  auto back = q.by_end.find(bio->sector);
  if (back != q.by_end.end()) {
    auto range = q.by_start.equal_range(back->second);
    for (auto it = range.first; it != range.second; ++it) {
      IoRequest* req = it->second;
      if (req->type == bio->type &&
          req->end_sector() == bio->sector &&
          req->sectors + bio->sectors <= max_request_sectors_) {
        q.by_end.erase(back);
        FoldBio(req, bio, /*front=*/false);
        q.by_end.emplace(req->end_sector(), req->sector);
        return req;
      }
    }
  }
  // Front merge: a queued request starting where the bio ends.
  auto front = q.by_start.find(bio->end_sector());
  if (front != q.by_start.end() && front->second->type == bio->type &&
      front->second->sectors + bio->sectors <= max_request_sectors_) {
    IoRequest* req = front->second;
    // Remove old index entries.
    auto erange = q.by_end.equal_range(req->end_sector());
    for (auto it = erange.first; it != erange.second; ++it) {
      if (it->second == req->sector) {
        q.by_end.erase(it);
        break;
      }
    }
    q.by_start.erase(front);
    FoldBio(req, bio, /*front=*/true);
    q.by_start.emplace(req->sector, req);
    q.by_end.emplace(req->end_sector(), req->sector);
    return req;
  }
  return nullptr;
}

void CfqScheduler::Add(IoRequest* req) {
  CtxQueue& q = contexts_[req->io_context];
  q.by_start.emplace(req->sector, req);
  q.by_end.emplace(req->end_sector(), req->sector);
  ++size_;
}

IoRequest* CfqScheduler::PopNext(SimTime /*now*/) {
  BDIO_CHECK(size_ > 0);
  // Keep the active context while its quantum lasts and it has requests;
  // otherwise rotate to the next non-empty context.
  auto cit = contexts_.find(active_ctx_);
  if (quantum_left_ <= 0 || cit == contexts_.end() ||
      cit->second.by_start.empty()) {
    cit = contexts_.upper_bound(active_ctx_);
    // Skip empty queues, wrapping once.
    for (int pass = 0; pass < 2; ++pass) {
      while (cit != contexts_.end() && cit->second.by_start.empty()) ++cit;
      if (cit != contexts_.end()) break;
      cit = contexts_.begin();
    }
    BDIO_CHECK(cit != contexts_.end());
    active_ctx_ = cit->first;
    quantum_left_ = kQuantum;
  }
  --quantum_left_;
  CtxQueue& q = cit->second;
  // Ascending from the context's elevator position, wrapping.
  auto it = q.by_start.lower_bound(q.last_dispatched_end);
  if (it == q.by_start.end()) it = q.by_start.begin();
  IoRequest* req = it->second;
  // Erase the matching by_end entry.
  auto erange = q.by_end.equal_range(req->end_sector());
  for (auto e = erange.first; e != erange.second; ++e) {
    if (e->second == req->sector) {
      q.by_end.erase(e);
      break;
    }
  }
  q.by_start.erase(it);
  q.last_dispatched_end = req->end_sector();
  --size_;
  if (q.by_start.empty()) contexts_.erase(cit);
  return req;
}

// ---------------------------------------------------------------------------

std::unique_ptr<IoScheduler> MakeScheduler(const std::string& name,
                                           uint64_t max_request_sectors) {
  if (name == "noop") {
    return std::make_unique<NoopScheduler>(max_request_sectors);
  }
  if (name == "deadline") {
    return std::make_unique<DeadlineScheduler>(max_request_sectors);
  }
  if (name == "cfq") {
    return std::make_unique<CfqScheduler>(max_request_sectors);
  }
  BDIO_LOG(Fatal) << "unknown scheduler: " << name;
  return nullptr;
}

}  // namespace bdio::storage
