#ifndef BDIO_STORAGE_IO_SCHEDULER_H_
#define BDIO_STORAGE_IO_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/flat_map.h"
#include "common/units.h"
#include "storage/io_request.h"

namespace bdio::storage {

/// Intrusive FIFO over IoRequest::qprev/qnext: the elevator's
/// insertion-order list without std::list's node allocations. A request is
/// on at most one ReqList at a time (the links belong to whichever queue
/// holds it).
class ReqList {
 public:
  bool empty() const { return head_ == nullptr; }
  IoRequest* front() const { return head_; }
  IoRequest* back() const { return tail_; }

  void push_back(IoRequest* r) {
    r->qprev = tail_;
    r->qnext = nullptr;
    if (tail_ != nullptr) {
      tail_->qnext = r;
    } else {
      head_ = r;
    }
    tail_ = r;
  }

  void erase(IoRequest* r) {
    (r->qprev != nullptr ? r->qprev->qnext : head_) = r->qnext;
    (r->qnext != nullptr ? r->qnext->qprev : tail_) = r->qprev;
    r->qprev = nullptr;
    r->qnext = nullptr;
  }

 private:
  IoRequest* head_ = nullptr;
  IoRequest* tail_ = nullptr;
};

/// Elevator interface. The device hands incoming bios to the scheduler,
/// which may merge them into queued requests (front/back merge, like the
/// Linux block layer) and decides dispatch order. Requests pass through by
/// pointer; the device's IoRequestPool owns the storage.
class IoScheduler {
 public:
  virtual ~IoScheduler() = default;

  /// Attempts to fold `bio` into an already-queued request of the same
  /// direction (back merge: bio starts where a request ends; front merge:
  /// bio ends where a request starts). On success the bio's completion
  /// callbacks are moved into the queued request and the *surviving*
  /// request is returned (so the device can attribute the merge in its
  /// blktrace records); the caller then releases the bio. Returns nullptr
  /// when no queued request can absorb the bio.
  virtual IoRequest* TryMerge(IoRequest* bio) = 0;

  /// Enqueues a request (after TryMerge returned false). The scheduler
  /// holds the pointer until PopNext hands it back.
  virtual void Add(IoRequest* req) = 0;

  /// Removes and returns the next request to service. Must not be called on
  /// an empty scheduler. `now` lets deadline-style schedulers detect expired
  /// requests.
  virtual IoRequest* PopNext(SimTime now) = 0;

  virtual bool empty() const = 0;
  virtual size_t size() const = 0;
  virtual std::string name() const = 0;
};

/// FIFO scheduler with back-merging onto the most recently queued request —
/// the behaviour of Linux "noop".
class NoopScheduler : public IoScheduler {
 public:
  explicit NoopScheduler(uint64_t max_request_sectors)
      : max_request_sectors_(Sectors(max_request_sectors)) {}

  IoRequest* TryMerge(IoRequest* bio) override;
  void Add(IoRequest* req) override;
  IoRequest* PopNext(SimTime now) override;
  bool empty() const override { return size_ == 0; }
  size_t size() const override { return size_; }
  std::string name() const override { return "noop"; }

 private:
  Sectors max_request_sectors_;
  ReqList fifo_;
  size_t size_ = 0;
};

/// Single-direction-batching elevator with per-request deadlines — the
/// Linux "deadline" scheduler (the default data-disk elevator of the
/// Hadoop-1 era). Reads expire after 500 ms, writes after 5 s; requests are
/// serviced in ascending-sector batches unless a deadline has expired;
/// writes are serviced at least every `kWritesStarved` read batches.
class DeadlineScheduler : public IoScheduler {
 public:
  static constexpr SimDuration kReadExpiry = Millis(500);
  static constexpr SimDuration kWriteExpiry = Seconds(5);
  static constexpr int kFifoBatch = 16;
  static constexpr int kWritesStarved = 2;

  explicit DeadlineScheduler(uint64_t max_request_sectors)
      : max_request_sectors_(Sectors(max_request_sectors)) {}

  IoRequest* TryMerge(IoRequest* bio) override;
  void Add(IoRequest* req) override;
  IoRequest* PopNext(SimTime now) override;
  bool empty() const override { return size_ == 0; }
  size_t size() const override { return size_; }
  std::string name() const override { return "deadline"; }

 private:
  /// Sector-sorted indices into the FIFO; values are queue-held request
  /// pointers (keys are sectors — stable ids, per bdio-lint rule R3).
  using SortedIndex = FlatMultiMap<Sectors, IoRequest*>;

  struct DirQueue {
    ReqList fifo;          ///< insertion order (deadline order)
    SortedIndex by_start;  ///< start sector -> request
    SortedIndex by_end;    ///< end sector -> request
  };

  /// Removes `req` from all of `q`'s indices.
  void Extract(DirQueue* q, IoRequest* req);
  IoRequest* TryMergeDir(DirQueue* q, IoRequest* bio);
  /// Picks the next request in `q`: the expired FIFO head if any, otherwise
  /// the first request at or after the elevator position (wrapping).
  IoRequest* Select(DirQueue* q, SimTime now);

  Sectors max_request_sectors_;
  DirQueue queues_[2];
  size_t size_ = 0;
  int batch_remaining_ = 0;
  int starved_batches_ = 0;
  IoType batch_dir_ = IoType::kRead;
  Sectors next_sector_;          ///< Elevator position.
};

/// Completely-fair-queueing-style elevator: requests are grouped by their
/// io_context (the issuing stream) and contexts are serviced round-robin
/// with a dispatch quantum, each context's slice dispatching in ascending
/// sector order. A simplified single-priority CFQ: no anticipation, no
/// sync/async classes — the fairness and locality core only.
class CfqScheduler : public IoScheduler {
 public:
  static constexpr int kQuantum = 8;  ///< Dispatches per context slice.

  explicit CfqScheduler(uint64_t max_request_sectors)
      : max_request_sectors_(Sectors(max_request_sectors)) {}

  IoRequest* TryMerge(IoRequest* bio) override;
  void Add(IoRequest* req) override;
  IoRequest* PopNext(SimTime now) override;
  bool empty() const override { return size_ == 0; }
  size_t size() const override { return size_; }
  std::string name() const override { return "cfq"; }

 private:
  struct CtxQueue {
    /// start sector -> request (ascending service within the slice).
    FlatMultiMap<Sectors, IoRequest*> by_start;
    /// end sector -> start sector (back-merge lookup).
    FlatMultiMap<Sectors, Sectors> by_end;
    Sectors last_dispatched_end;       ///< Elevator position per context.
  };

  Sectors max_request_sectors_;
  FlatMap<uint64_t, CtxQueue> contexts_;
  size_t size_ = 0;
  uint64_t active_ctx_ = 0;
  int quantum_left_ = 0;
};

/// Factory by name ("noop", "deadline", "cfq").
std::unique_ptr<IoScheduler> MakeScheduler(const std::string& name,
                                           uint64_t max_request_sectors);

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_IO_SCHEDULER_H_
