#ifndef BDIO_STORAGE_DISK_PARAMETERS_H_
#define BDIO_STORAGE_DISK_PARAMETERS_H_

#include <cstdint>

#include "common/units.h"

namespace bdio::storage {

/// Mechanical and geometric parameters of a rotational disk. Defaults match
/// the paper's testbed drive (Seagate ST*NM11 class: 1 TB, 7200 rpm,
/// 8.5 ms average seek, 4.2 ms average rotational latency, 150 MB/s
/// sustained transfer on the outer zone).
struct DiskParameters {
  uint64_t capacity_bytes = TiB(1);
  double rpm = 7200.0;

  /// Seek model: seek_ms(d) = track_to_track_ms + seek_factor_ms * sqrt(d)
  /// where d is the fraction of the full stroke travelled. With
  /// track_to_track 0.5 ms and factor 12.0, a uniformly random seek averages
  /// 0.5 + 12*2/3 = 8.5 ms — the datasheet average.
  double track_to_track_ms = 0.5;
  double seek_factor_ms = 12.0;

  /// Zoned transfer rate: linear from outer to inner across the LBA range.
  double outer_rate_mb_s = 150.0;
  double inner_rate_mb_s = 75.0;

  /// Block-layer caps (Linux defaults of the era): max request size and
  /// queue depth (nr_requests).
  uint64_t max_request_sectors = 1024;  ///< 512 KiB
  uint32_t nr_requests = 128;

  /// Native command queueing depth: the drive holds up to this many
  /// requests and services the one with the shortest positioning time
  /// (SPTF). 1 disables reordering (strict elevator order).
  uint32_t ncq_depth = 1;

  /// Solid-state mode: no mechanical positioning; every request pays a
  /// flat access latency instead of seek + rotation, and the transfer rate
  /// is uniform across the LBA range.
  bool solid_state = false;
  double access_latency_ms = 0.06;  ///< Per-request flash latency.

  double RotationPeriodMs() const { return 60000.0 / rpm; }
  double AvgRotationalLatencyMs() const { return RotationPeriodMs() / 2.0; }
  uint64_t TotalSectors() const { return capacity_bytes / kSectorSize; }

  /// The paper's data-node drive.
  static DiskParameters Seagate1TB7200() { return DiskParameters{}; }

  /// A 2013-era SATA data-center SSD (what "put the shuffle on flash"
  /// would have meant): ~500 MB/s sequential, flat random latency.
  static DiskParameters SataSsd2013() {
    DiskParameters p;
    p.capacity_bytes = GiB(480);
    p.solid_state = true;
    p.outer_rate_mb_s = 500.0;
    p.inner_rate_mb_s = 500.0;
    p.ncq_depth = 32;
    return p;
  }
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_DISK_PARAMETERS_H_
