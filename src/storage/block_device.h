#ifndef BDIO_STORAGE_BLOCK_DEVICE_H_
#define BDIO_STORAGE_BLOCK_DEVICE_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/inline_fn.h"
#include "common/random.h"
#include "common/units.h"
#include "obs/blktrace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "storage/disk_model.h"
#include "storage/disk_parameters.h"
#include "storage/disk_stats.h"
#include "storage/io_request.h"
#include "storage/io_scheduler.h"

namespace bdio::storage {

/// A simulated block device: elevator + rotational service model +
/// /proc/diskstats accounting. Bios submitted here may be merged by the
/// elevator; the device services one request at a time (head-limited), which
/// is what gives iostat's svctm/%util their meaning.
class BlockDevice {
 public:
  /// `scheduler_name` is "deadline" (default for the paper's testbed) or
  /// "noop".
  BlockDevice(sim::Simulator* sim, std::string name,
              const DiskParameters& params, Rng rng,
              const std::string& scheduler_name = "deadline");

  BlockDevice(const BlockDevice&) = delete;
  BlockDevice& operator=(const BlockDevice&) = delete;

  /// Submits a bio. `sectors` must be in (0, max_request_sectors];
  /// `on_complete` fires when the (possibly merged) request finishes.
  /// `io_context` identifies the issuing stream for fairness-aware
  /// elevators (0 = anonymous). `tag`/`job` attribute the bio to its
  /// high-level source (an IoTag value and owning job id + 1) for blktrace
  /// records; both default to 0 = unattributed. The request is drawn from
  /// this device's pool and recycled after completion — callbacks must not
  /// retain it.
  void Submit(IoType type, Sectors sector, Sectors sectors,
              InlineFn on_complete, uint64_t io_context = 0,
              uint32_t tag = 0, uint32_t job = 0);

  /// Counter snapshot as of the current simulated time.
  DiskStatsSnapshot Stats() const { return stats_.Snapshot(sim_->Now()); }

  /// Observer invoked at each request completion (used by bdio::trace).
  void SetCompletionObserver(std::function<void(const IoRequest&)> obs) {
    observer_ = std::move(obs);
  }

  /// Degrades (factor > 1) or restores (factor == 1) the drive's service
  /// time — the fault-injection model of a failing spindle. Requests
  /// already accepted by the drive are unaffected; everything dispatched
  /// after the call pays the new factor.
  void SetServiceFactor(double factor) { model_.set_service_factor(factor); }
  double service_factor() const { return model_.service_factor(); }

  /// Attaches observability sinks (either may be null). `trace_pid` is the
  /// trace-viewer process row of this device's node; `device_class` labels
  /// metrics ("hdfs" or "mr"). Queue residency and disk service become
  /// spans linked to the submitter's current flow; queue depth, request
  /// size, await, merges, and bytes feed the registry.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics,
                 uint32_t trace_pid, const std::string& device_class);

  /// Attaches a block-layer lifecycle tracer: every bio queue (Q), elevator
  /// merge (M), dispatch (D), and completion (C) on this device emits one
  /// record to `session` under this device's registered index. Recording
  /// is passive — it never schedules events or perturbs the run.
  void AttachBlktrace(obs::BlktraceSession* session, uint16_t device_index);

  const std::string& name() const { return name_; }
  const DiskParameters& params() const { return params_; }
  size_t queued() const { return scheduler_->size(); }
  bool busy() const { return busy_; }

  /// Cross-checks the /proc/diskstats accounting (bdio::invariants):
  /// in_flight vs a recount of elevator + NCQ + in-service requests,
  /// io_ticks <= elapsed time (utilization <= 1), busy-time vs queue-time
  /// ordering, and — when a blktrace session is attached — DiskStats
  /// merge/request/completion counters vs the session's M/Q/C record
  /// totals. Returns "" when every invariant holds.
  std::string AuditInvariants() const;

 private:
  void MaybeDispatch();
  void Complete(IoRequest* req);
  /// Index into ncq_pool_ of the request the head can reach fastest.
  size_t PickSptf() const;

  sim::Simulator* sim_;
  std::string name_;
  DiskParameters params_;
  DiskModel model_;
  std::unique_ptr<IoScheduler> scheduler_;
  DiskStats stats_;
  std::function<void(const IoRequest&)> observer_;
  uint64_t next_id_ = 1;
  bool busy_ = false;
  /// Backing storage for every in-flight request on this device.
  IoRequestPool pool_;
  /// Requests accepted by the drive awaiting SPTF selection (NCQ).
  std::vector<IoRequest*> ncq_pool_;

  // Observability sinks; null (the default) keeps the hot path at a single
  // pointer test per event.
  obs::BlktraceSession* blktrace_ = nullptr;
  uint16_t blktrace_dev_ = 0;
  obs::TraceSession* trace_ = nullptr;
  uint32_t trace_pid_ = 0;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_merges_ = nullptr;
  obs::Counter* m_read_bytes_ = nullptr;
  obs::Counter* m_write_bytes_ = nullptr;
  obs::Histogram* m_queue_depth_ = nullptr;
  obs::Histogram* m_request_sectors_ = nullptr;
  obs::Histogram* m_await_ms_ = nullptr;
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_BLOCK_DEVICE_H_
