#include "storage/disk_stats.h"

#include "common/logging.h"

namespace bdio::storage {

void DiskStats::Advance(SimTime now) {
  BDIO_CHECK(now >= last_update_);
  const SimDuration elapsed = now - last_update_;
  if (elapsed > SimDuration{} && stats_.in_flight > 0) {
    stats_.io_ticks += elapsed;
    stats_.time_in_queue += elapsed * stats_.in_flight;
  }
  last_update_ = now;
}

void DiskStats::OnSubmit(SimTime now) {
  Advance(now);
  ++stats_.in_flight;
}

void DiskStats::OnMerge(IoType type, SimTime now) {
  Advance(now);
  ++stats_.merges[static_cast<int>(type)];
  // A merged bio rides an existing request; in_flight counts requests, so it
  // does not change — matching blk_account_io_merge.
}

void DiskStats::OnComplete(const IoRequest& req, SimTime now) {
  Advance(now);
  const int d = static_cast<int>(req.type);
  ++stats_.ios[d];
  stats_.sectors[d] += req.sectors.count();
  BDIO_CHECK(now >= req.submit_time);
  stats_.ticks[d] += now - req.submit_time;
  BDIO_CHECK(stats_.in_flight > 0);
  --stats_.in_flight;
}

DiskStatsSnapshot DiskStats::Snapshot(SimTime now) const {
  // const_cast-free: compute the advanced view without mutating.
  DiskStatsSnapshot snap = stats_;
  BDIO_CHECK(now >= last_update_);
  const SimDuration elapsed = now - last_update_;
  if (elapsed > SimDuration{} && snap.in_flight > 0) {
    snap.io_ticks += elapsed;
    snap.time_in_queue += elapsed * snap.in_flight;
  }
  return snap;
}

}  // namespace bdio::storage
