#include "storage/block_device.h"

#include "common/logging.h"

namespace bdio::storage {

BlockDevice::BlockDevice(sim::Simulator* sim, std::string name,
                         const DiskParameters& params, Rng rng,
                         const std::string& scheduler_name)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      model_(params, rng),
      scheduler_(MakeScheduler(scheduler_name, params.max_request_sectors)) {
  BDIO_CHECK(sim != nullptr);
}

void BlockDevice::AttachObs(obs::TraceSession* trace,
                            obs::MetricsRegistry* metrics,
                            uint32_t trace_pid,
                            const std::string& device_class) {
  trace_ = trace;
  trace_pid_ = trace_pid;
  if (metrics == nullptr) return;
  const obs::Labels labels{{"class", device_class}};
  m_requests_ = metrics->GetCounter("disk.requests", labels);
  m_merges_ = metrics->GetCounter("sched.merges", labels);
  m_read_bytes_ = metrics->GetCounter("disk.read_bytes", labels);
  m_write_bytes_ = metrics->GetCounter("disk.write_bytes", labels);
  m_queue_depth_ = metrics->GetHistogram(
      "sched.queue_depth", labels, {0, 1, 2, 4, 8, 16, 32, 64, 128});
  m_request_sectors_ = metrics->GetHistogram(
      "disk.request_sectors", labels, {8, 16, 32, 64, 128, 256, 512, 1024,
                                       2048});
  m_await_ms_ = metrics->GetHistogram(
      "disk.await_ms", labels,
      {0.1, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000});
}

void BlockDevice::AttachBlktrace(obs::BlktraceSession* session,
                                 uint16_t device_index) {
  blktrace_ = session;
  blktrace_dev_ = device_index;
}

void BlockDevice::Submit(IoType type, Sectors sector, Sectors sectors,
                         InlineFn on_complete, uint64_t io_context,
                         uint32_t tag, uint32_t job) {
  BDIO_CHECK(sectors > Sectors{}) << name_ << ": zero-length bio";
  BDIO_CHECK(sectors.count() <= params_.max_request_sectors)
      << name_ << ": bio exceeds max request size (" << sectors
      << " sectors); split it in the block layer";
  BDIO_CHECK((sector + sectors).count() <= params_.TotalSectors())
      << name_ << ": bio beyond device end";

  IoRequest* bio = pool_.Alloc();
  bio->type = type;
  bio->sector = sector;
  bio->sectors = sectors;
  bio->io_context = io_context;
  bio->tag = tag;
  bio->job = job;
  bio->submit_time = sim_->Now();
  if (on_complete) bio->on_complete.push_back(std::move(on_complete));
  if (trace_) bio->trace_flow = trace_->current_flow();
  if (m_queue_depth_) {
    m_queue_depth_->Observe(static_cast<double>(scheduler_->size()));
  }

  if (IoRequest* into = scheduler_->TryMerge(bio)) {
    stats_.OnMerge(type, sim_->Now());
    if (m_merges_) m_merges_->Inc();
    if (blktrace_) {
      // The M record carries the merged bio's own geometry and attribution
      // but the *surviving* request's id, so the analyzer can credit the
      // bio to the request it dissolved into.
      blktrace_->Record(blktrace_dev_, obs::BlkAction::kMerge,
                        type == IoType::kWrite, sector.count(),
                        static_cast<uint32_t>(sectors.count()),
                        static_cast<uint32_t>(into->id), tag, job,
                        static_cast<uint32_t>(scheduler_->size()));
    }
    if (trace_) {
      trace_->Instant(trace_pid_, "sched", "merge",
                      "{\"dev\":\"" + name_ + "\",\"sectors\":" +
                          std::to_string(sectors.count()) + "}");
      // The merged bio's identity dissolves into the surviving request;
      // its flow terminates at the merge point.
      trace_->FlowEnd(bio->trace_flow, trace_pid_);
    }
    pool_.Release(bio);
  } else {
    bio->id = next_id_++;
    stats_.OnSubmit(sim_->Now());
    if (m_requests_) m_requests_->Inc();
    if (trace_) {
      bio->queue_span = trace_->BeginSpan(
          trace_pid_, "sched", type == IoType::kRead ? "queue-read"
                                                     : "queue-write",
          "{\"dev\":\"" + name_ + "\",\"sector\":" + std::to_string(sector.count()) +
              ",\"sectors\":" + std::to_string(sectors.count()) + "}");
      trace_->FlowStep(bio->trace_flow, trace_pid_);
    }
    scheduler_->Add(bio);
    if (blktrace_) {
      blktrace_->Record(blktrace_dev_, obs::BlkAction::kQueue,
                        type == IoType::kWrite, sector.count(),
                        static_cast<uint32_t>(sectors.count()),
                        static_cast<uint32_t>(bio->id), tag, job,
                        static_cast<uint32_t>(scheduler_->size()));
    }
  }
  MaybeDispatch();
}

size_t BlockDevice::PickSptf() const {
  size_t best = 0;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t i = 0; i < ncq_pool_.size(); ++i) {
    // Estimate positioning deterministically by distance only (the random
    // rotational component is drawn at service time).
    const Sectors head = model_.head_sector();
    const Sectors s = ncq_pool_[i]->sector;
    const uint64_t dist = SectorGap(s, head).count();
    if (dist < best_cost) {
      best_cost = dist;
      best = i;
    }
  }
  return best;
}

void BlockDevice::MaybeDispatch() {
  // Refill the drive's internal queue from the elevator.
  while (ncq_pool_.size() < params_.ncq_depth && !scheduler_->empty()) {
    IoRequest* pulled = scheduler_->PopNext(sim_->Now());
    pulled->dispatch_time = sim_->Now();
    if (blktrace_) {
      // D: the (possibly merged) request leaves the elevator for the
      // drive. Geometry is the merged request's, not the founding bio's.
      blktrace_->Record(blktrace_dev_, obs::BlkAction::kDispatch,
                        pulled->type == IoType::kWrite, pulled->sector.count(),
                        static_cast<uint32_t>(pulled->sectors.count()),
                        static_cast<uint32_t>(pulled->id), pulled->tag,
                        pulled->job,
                        static_cast<uint32_t>(scheduler_->size()));
    }
    ncq_pool_.push_back(pulled);
  }
  if (busy_ || ncq_pool_.empty()) return;
  const size_t pick = params_.ncq_depth > 1 ? PickSptf() : 0;
  IoRequest* req = ncq_pool_[pick];
  ncq_pool_.erase(ncq_pool_.begin() + static_cast<ptrdiff_t>(pick));
  busy_ = true;
  if (trace_) {
    trace_->EndSpan(req->queue_span);
    req->service_span = trace_->BeginSpan(
        trace_pid_, "disk",
        req->is_read() ? "service-read" : "service-write",
        "{\"dev\":\"" + name_ + "\",\"sectors\":" +
            std::to_string(req->sectors.count()) + ",\"bios\":" +
            std::to_string(req->bio_count) + "}");
    trace_->FlowStep(req->trace_flow, trace_pid_);
  }
  const SimDuration service = model_.Service(*req);
  sim_->ScheduleAfter(service, [this, req] { Complete(req); });
}

void BlockDevice::Complete(IoRequest* req) {
  req->complete_time = sim_->Now();
  stats_.OnComplete(*req, sim_->Now());
  busy_ = false;
  if (blktrace_) {
    blktrace_->Record(blktrace_dev_, obs::BlkAction::kComplete,
                      req->type == IoType::kWrite, req->sector.count(),
                      static_cast<uint32_t>(req->sectors.count()),
                      static_cast<uint32_t>(req->id), req->tag, req->job,
                      static_cast<uint32_t>(scheduler_->size()));
  }
  if (trace_) trace_->EndSpan(req->service_span);
  if (m_requests_) {  // registry attached
    (req->is_read() ? m_read_bytes_ : m_write_bytes_)->Add(req->bytes().bytes());
    m_request_sectors_->Observe(static_cast<double>(req->sectors.count()));
    m_await_ms_->Observe(ToMillis(req->complete_time - req->submit_time));
  }
  if (observer_) observer_(*req);
  // Completion callbacks may Submit follow-on bios, which can allocate from
  // the pool — so the request is recycled only after they ran.
  for (auto& cb : req->on_complete) {
    if (cb) cb();
  }
  pool_.Release(req);
  MaybeDispatch();
}

std::string BlockDevice::AuditInvariants() const {
  const SimTime now = sim_->Now();
  const DiskStatsSnapshot snap = stats_.Snapshot(now);
  const uint64_t expected = scheduler_->size() + ncq_pool_.size() +
                            (busy_ ? 1 : 0);
  if (snap.in_flight != expected) {
    return "disk " + name_ + ": in_flight=" + std::to_string(snap.in_flight) +
           " but elevator+NCQ+service hold " + std::to_string(expected);
  }
  if (snap.io_ticks.ns() > now.ns()) {
    return "disk " + name_ + ": io_ticks=" +
           std::to_string(snap.io_ticks.ns()) + " exceeds elapsed time " +
           std::to_string(now.ns()) + " (util > 1)";
  }
  if (snap.time_in_queue < snap.io_ticks) {
    return "disk " + name_ + ": time_in_queue=" +
           std::to_string(snap.time_in_queue.ns()) + " below io_ticks=" +
           std::to_string(snap.io_ticks.ns()) +
           " (queue integral must dominate busy time)";
  }
  if (busy_ && snap.in_flight == 0) {
    return "disk " + name_ + ": device busy with in_flight=0";
  }
  if (blktrace_ != nullptr) {
    // The lifecycle trace and /proc/diskstats are two views of the same
    // transitions: every merged bio is one M record, every new request one
    // Q record, every completion one C record.
    const uint64_t m_records =
        blktrace_->ActionCount(blktrace_dev_, obs::BlkAction::kMerge);
    const uint64_t merges = snap.merges[0] + snap.merges[1];
    if (merges != m_records) {
      return "disk " + name_ + ": diskstats merges=" +
             std::to_string(merges) + " but blktrace holds " +
             std::to_string(m_records) + " M records";
    }
    const uint64_t q_records =
        blktrace_->ActionCount(blktrace_dev_, obs::BlkAction::kQueue);
    if (q_records + 1 != next_id_) {
      return "disk " + name_ + ": " + std::to_string(next_id_ - 1) +
             " requests created but blktrace holds " +
             std::to_string(q_records) + " Q records";
    }
    const uint64_t c_records =
        blktrace_->ActionCount(blktrace_dev_, obs::BlkAction::kComplete);
    if (c_records != snap.ios[0] + snap.ios[1]) {
      return "disk " + name_ + ": diskstats ios=" +
             std::to_string(snap.ios[0] + snap.ios[1]) +
             " but blktrace holds " + std::to_string(c_records) +
             " C records";
    }
  }
  return {};
}

}  // namespace bdio::storage
