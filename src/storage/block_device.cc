#include "storage/block_device.h"

#include "common/logging.h"

namespace bdio::storage {

BlockDevice::BlockDevice(sim::Simulator* sim, std::string name,
                         const DiskParameters& params, Rng rng,
                         const std::string& scheduler_name)
    : sim_(sim),
      name_(std::move(name)),
      params_(params),
      model_(params, rng),
      scheduler_(MakeScheduler(scheduler_name, params.max_request_sectors)) {
  BDIO_CHECK(sim != nullptr);
}

void BlockDevice::Submit(IoType type, uint64_t sector, uint64_t sectors,
                         std::function<void()> on_complete,
                         uint64_t io_context) {
  BDIO_CHECK(sectors > 0) << name_ << ": zero-length bio";
  BDIO_CHECK(sectors <= params_.max_request_sectors)
      << name_ << ": bio exceeds max request size (" << sectors
      << " sectors); split it in the block layer";
  BDIO_CHECK(sector + sectors <= params_.TotalSectors())
      << name_ << ": bio beyond device end";

  IoRequest bio;
  bio.type = type;
  bio.sector = sector;
  bio.sectors = sectors;
  bio.io_context = io_context;
  bio.submit_time = sim_->Now();
  if (on_complete) bio.on_complete.push_back(std::move(on_complete));

  if (scheduler_->TryMerge(&bio)) {
    stats_.OnMerge(type, sim_->Now());
  } else {
    bio.id = next_id_++;
    stats_.OnSubmit(sim_->Now());
    scheduler_->Add(std::move(bio));
  }
  MaybeDispatch();
}

size_t BlockDevice::PickSptf() const {
  size_t best = 0;
  uint64_t best_cost = ~uint64_t{0};
  for (size_t i = 0; i < ncq_pool_.size(); ++i) {
    // Estimate positioning deterministically by distance only (the random
    // rotational component is drawn at service time).
    const uint64_t head = model_.head_sector();
    const uint64_t s = ncq_pool_[i].sector;
    const uint64_t dist = s > head ? s - head : head - s;
    if (dist < best_cost) {
      best_cost = dist;
      best = i;
    }
  }
  return best;
}

void BlockDevice::MaybeDispatch() {
  // Refill the drive's internal queue from the elevator.
  while (ncq_pool_.size() < params_.ncq_depth && !scheduler_->empty()) {
    IoRequest pulled = scheduler_->PopNext(sim_->Now());
    pulled.dispatch_time = sim_->Now();
    ncq_pool_.push_back(std::move(pulled));
  }
  if (busy_ || ncq_pool_.empty()) return;
  const size_t pick = params_.ncq_depth > 1 ? PickSptf() : 0;
  IoRequest req = std::move(ncq_pool_[pick]);
  ncq_pool_.erase(ncq_pool_.begin() + static_cast<ptrdiff_t>(pick));
  busy_ = true;
  const SimDuration service = model_.Service(req);
  sim_->ScheduleAfter(service, [this, r = std::move(req)]() mutable {
    Complete(std::move(r));
  });
}

void BlockDevice::Complete(IoRequest req) {
  req.complete_time = sim_->Now();
  stats_.OnComplete(req, sim_->Now());
  busy_ = false;
  if (observer_) observer_(req);
  for (auto& cb : req.on_complete) {
    if (cb) cb();
  }
  MaybeDispatch();
}

}  // namespace bdio::storage
