#ifndef BDIO_STORAGE_DISK_STATS_H_
#define BDIO_STORAGE_DISK_STATS_H_

#include <cstdint>

#include "common/units.h"
#include "storage/io_request.h"

namespace bdio::storage {

/// Cumulative per-device counters with exactly the semantics of Linux
/// `/proc/diskstats`, maintained in nanoseconds. `bdio::iostat` derives all
/// reported metrics (r/wMB/s, %util, await, svctm, avgrq-sz, avgqu-sz) from
/// deltas of these counters — the same arithmetic sysstat's iostat performs.
struct DiskStatsSnapshot {
  // Indexed by IoType (0 = read, 1 = write).
  uint64_t ios[2] = {0, 0};      ///< Completed requests.
  uint64_t merges[2] = {0, 0};   ///< Bios merged into existing requests.
  uint64_t sectors[2] = {0, 0};  ///< Sectors transferred.
  SimDuration ticks[2];  ///< Sum of request latencies (submit->done).

  uint64_t in_flight = 0;        ///< Requests in queue + being serviced.
  SimDuration io_ticks;      ///< Total time the device was busy.
  SimDuration time_in_queue; ///< Integral of in_flight over time.

  uint64_t TotalIos() const { return ios[0] + ios[1]; }
  uint64_t TotalSectors() const { return sectors[0] + sectors[1]; }
};

/// Maintains a DiskStatsSnapshot with the kernel's lazy-update discipline:
/// io_ticks and time_in_queue advance on every queue transition.
class DiskStats {
 public:
  /// Called when a bio enters the device queue as a new request.
  void OnSubmit(SimTime now);
  /// Called when a bio is merged into an existing queued request.
  void OnMerge(IoType type, SimTime now);
  /// Called when a request completes service. `submit_time` is the request's
  /// queue-entry time; `bio_count` front/back-merged bios complete at once.
  void OnComplete(const IoRequest& req, SimTime now);

  /// Reads the counters as of `now` (folding in elapsed busy time).
  DiskStatsSnapshot Snapshot(SimTime now) const;

 private:
  void Advance(SimTime now);

  DiskStatsSnapshot stats_;
  SimTime last_update_;
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_DISK_STATS_H_
