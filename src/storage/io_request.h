#ifndef BDIO_STORAGE_IO_REQUEST_H_
#define BDIO_STORAGE_IO_REQUEST_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inline_fn.h"
#include "common/units.h"

namespace bdio::storage {

/// Direction of a block request.
enum class IoType { kRead = 0, kWrite = 1 };

inline const char* IoTypeName(IoType t) {
  return t == IoType::kRead ? "R" : "W";
}

/// A block-layer request: a contiguous run of sectors in one direction.
/// Requests are created by the OS layer (page cache / filesystem), possibly
/// merged by the elevator, serviced by the disk model, and completed via
/// callbacks.
///
/// Lifetime: requests are pool objects. BlockDevice::Submit allocates one
/// from its IoRequestPool; it travels the elevator → NCQ → service →
/// Complete pipeline *by pointer* (no moves, no per-request allocation)
/// and returns to the pool after its completion callbacks ran. Nothing
/// outside that pipeline may retain the pointer: after Release the same
/// node will carry an unrelated request.
struct IoRequest {
  uint64_t id = 0;          ///< Unique per device, assigned on submit.
  IoType type = IoType::kRead;
  Sectors sector;           ///< First sector (512 B units).
  Sectors sectors;          ///< Length in sectors; > 0.
  /// Issuing stream (io-context): the page cache stamps the file id here.
  /// Fairness-aware elevators (CFQ) schedule per context; others ignore it.
  uint64_t io_context = 0;

  /// Attribution carried down from the issuing file for blktrace records
  /// (bdio::obs::BlktraceSession): the file's IoTag and owning job id + 1
  /// (0 = unattributed). On a merged request these keep the founding bio's
  /// values; the M record carries the merged bio's own.
  uint32_t tag = 0;
  uint32_t job = 0;

  SimTime submit_time;    ///< When the request entered the queue.
  SimTime dispatch_time;  ///< When the device started servicing it.
  SimTime complete_time;  ///< When service finished.

  /// Expiry used by deadline-style elevators (submit_time + class expiry).
  SimTime deadline;

  /// Number of bios folded into this request (1 + merges).
  uint32_t bio_count = 1;

  // --- Observability (bdio::obs); all 0 when no trace session attached. --
  uint64_t trace_flow = 0;   ///< Flow id linking back to the issuing layer.
  uint64_t queue_span = 0;   ///< Open scheduler-queue span id.
  uint64_t service_span = 0; ///< Open disk-service span id.

  // --- Intrusive links (owned by whichever queue holds the request). -----
  IoRequest* qprev = nullptr;  ///< Scheduler FIFO neighbour.
  IoRequest* qnext = nullptr;  ///< Scheduler FIFO neighbour / freelist link.

  /// Completion continuations (one per merged bio).
  std::vector<InlineFn> on_complete;

  Sectors end_sector() const { return sector + sectors; }
  Bytes bytes() const { return ToBytes(sectors); }
  bool is_read() const { return type == IoType::kRead; }
};

/// Freelist pool of IoRequests in fixed-size blocks. Release keeps each
/// node's on_complete vector capacity, so a warm pool services the steady
/// state with zero allocator traffic.
class IoRequestPool {
 public:
  static constexpr size_t kBlockRequests = 64;

  IoRequestPool() = default;
  IoRequestPool(const IoRequestPool&) = delete;
  IoRequestPool& operator=(const IoRequestPool&) = delete;

  /// Returns a request with every field at its default and an empty (but
  /// possibly pre-reserved) callback list.
  IoRequest* Alloc() {
    if (free_ == nullptr) Grow();
    IoRequest* r = free_;
    free_ = r->qnext;
    r->qnext = nullptr;
    return r;
  }

  /// Recycles `r`. The caller must have dropped every pointer to it.
  void Release(IoRequest* r) {
    r->on_complete.clear();  // destroys callbacks, keeps capacity
    std::vector<InlineFn> keep = std::move(r->on_complete);
    *r = IoRequest{};
    r->on_complete = std::move(keep);
    r->qnext = free_;
    free_ = r;
  }

  size_t capacity() const { return blocks_.size() * kBlockRequests; }

 private:
  struct alignas(64) Block {
    IoRequest reqs[kBlockRequests];
  };

  void Grow() {
    blocks_.push_back(std::make_unique<Block>());
    Block* b = blocks_.back().get();
    for (size_t i = kBlockRequests; i > 0; --i) {
      b->reqs[i - 1].qnext = free_;
      free_ = &b->reqs[i - 1];
    }
  }

  IoRequest* free_ = nullptr;
  std::vector<std::unique_ptr<Block>> blocks_;
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_IO_REQUEST_H_
