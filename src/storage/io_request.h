#ifndef BDIO_STORAGE_IO_REQUEST_H_
#define BDIO_STORAGE_IO_REQUEST_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.h"

namespace bdio::storage {

/// Direction of a block request.
enum class IoType { kRead = 0, kWrite = 1 };

inline const char* IoTypeName(IoType t) {
  return t == IoType::kRead ? "R" : "W";
}

/// A block-layer request: a contiguous run of sectors in one direction.
/// Requests are created by the OS layer (page cache / filesystem), possibly
/// merged by the elevator, serviced by the disk model, and completed via
/// callbacks.
struct IoRequest {
  uint64_t id = 0;          ///< Unique per device, assigned on submit.
  IoType type = IoType::kRead;
  uint64_t sector = 0;      ///< First sector (512 B units).
  uint64_t sectors = 0;     ///< Length in sectors; > 0.
  /// Issuing stream (io-context): the page cache stamps the file id here.
  /// Fairness-aware elevators (CFQ) schedule per context; others ignore it.
  uint64_t io_context = 0;

  SimTime submit_time = 0;    ///< When the request entered the queue.
  SimTime dispatch_time = 0;  ///< When the device started servicing it.
  SimTime complete_time = 0;  ///< When service finished.

  /// Number of bios folded into this request (1 + merges).
  uint32_t bio_count = 1;

  // --- Observability (bdio::obs); all 0 when no trace session attached. --
  uint64_t trace_flow = 0;   ///< Flow id linking back to the issuing layer.
  uint64_t queue_span = 0;   ///< Open scheduler-queue span id.
  uint64_t service_span = 0; ///< Open disk-service span id.

  /// Completion continuations (one per merged bio).
  std::vector<std::function<void()>> on_complete;

  uint64_t end_sector() const { return sector + sectors; }
  uint64_t bytes() const { return sectors * kSectorSize; }
  bool is_read() const { return type == IoType::kRead; }
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_IO_REQUEST_H_
