#ifndef BDIO_STORAGE_DISK_MODEL_H_
#define BDIO_STORAGE_DISK_MODEL_H_

#include "common/random.h"
#include "common/units.h"
#include "storage/disk_parameters.h"
#include "storage/io_request.h"

namespace bdio::storage {

/// Service-time model of a rotational disk. Stateful: remembers the head
/// position (last serviced LBA) so sequential streams pay only transfer
/// time while random access pays seek + rotational latency.
class DiskModel {
 public:
  DiskModel(const DiskParameters& params, Rng rng)
      : params_(params), rng_(rng) {}

  /// Service duration for `req` given the current head position; advances
  /// the head to the end of the request.
  SimDuration Service(const IoRequest& req);

  /// Transfer rate (bytes/s) at the given sector (zoned: outer tracks are
  /// faster).
  double RateAtSector(Sectors sector) const;

  /// Positioning cost (ns) to move the head from the current position to
  /// `sector` — zero for an exactly sequential continuation.
  SimDuration PositioningTime(Sectors sector);

  /// Degraded-media multiplier applied to every service time (fault
  /// injection: a failing disk with remapped sectors or media retries runs
  /// this many times slower). 1.0 — the default — is bit-exact with the
  /// healthy model: no arithmetic is applied at all.
  void set_service_factor(double factor) { service_factor_ = factor; }
  double service_factor() const { return service_factor_; }

  Sectors head_sector() const { return head_sector_; }
  const DiskParameters& params() const { return params_; }

 private:
  DiskParameters params_;
  Rng rng_;
  Sectors head_sector_;
  double service_factor_ = 1.0;
};

}  // namespace bdio::storage

#endif  // BDIO_STORAGE_DISK_MODEL_H_
