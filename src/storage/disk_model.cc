#include "storage/disk_model.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"

namespace bdio::storage {

double DiskModel::RateAtSector(Sectors sector) const {
  const double frac = static_cast<double>(sector.count()) /
                      static_cast<double>(params_.TotalSectors());
  const double mb_s = params_.outer_rate_mb_s +
                      (params_.inner_rate_mb_s - params_.outer_rate_mb_s) *
                          frac;
  return mb_s * 1e6;
}

SimDuration DiskModel::PositioningTime(Sectors sector) {
  if (params_.solid_state) {
    // Flash: flat access latency, position-independent.
    return FromMillis(params_.access_latency_ms);
  }
  if (sector == head_sector_) {
    // Sequential continuation: the head is already there and (by the usual
    // streaming assumption) rotationally aligned.
    return SimDuration{};
  }
  const double total = static_cast<double>(params_.TotalSectors());
  const double dist =
      std::abs(static_cast<double>(sector.count()) -
               static_cast<double>(head_sector_.count())) /
      total;
  double seek_ms;
  if (dist < 1e-6) {
    // Same cylinder neighbourhood: head settle only.
    seek_ms = params_.track_to_track_ms;
  } else {
    seek_ms = params_.track_to_track_ms +
              params_.seek_factor_ms * std::sqrt(dist);
  }
  // Rotational latency: uniform over one revolution.
  const double rot_ms =
      rng_.UniformDouble(0.0, params_.RotationPeriodMs());
  return FromSeconds((seek_ms + rot_ms) / 1000.0);
}

SimDuration DiskModel::Service(const IoRequest& req) {
  BDIO_CHECK(req.sectors > Sectors{});
  BDIO_CHECK(req.end_sector().count() <= params_.TotalSectors())
      << "request beyond device: end=" << req.end_sector();
  const SimDuration position = PositioningTime(req.sector);
  const double rate = RateAtSector(req.sector);
  const SimDuration transfer = TransferTime(req.bytes(), rate);
  head_sector_ = req.end_sector();
  const SimDuration healthy = position + transfer;
  if (service_factor_ == 1.0) return healthy;  // bit-exact healthy path
  BDIO_CHECK(service_factor_ > 0);
  return SimDuration(static_cast<uint64_t>(
      static_cast<double>(healthy.ns()) * service_factor_));
}

}  // namespace bdio::storage
