#ifndef BDIO_FAULTS_INJECTOR_H_
#define BDIO_FAULTS_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "common/status.h"
#include "faults/fault_plan.h"
#include "hdfs/hdfs.h"
#include "mapreduce/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bdio::faults {

/// Arms a FaultPlan against a simulation: validates every event against the
/// cluster shape, then schedules the injections on the simulator clock.
/// One injector per (cluster, hdfs, engine) triple; `engine` may be null
/// for HDFS-only experiments (kill-datanode then skips the TaskTracker
/// side). Arming an empty plan schedules nothing — the run stays
/// byte-identical to one without an injector, which is the subsystem's
/// determinism contract (docs/FAULTS.md).
///
/// A kill-datanode event drives *both* failure domains of the shared host:
/// hdfs::Hdfs::InjectDataNodeFailure (replica loss + re-replication) and
/// mapreduce::MrEngine::InjectNodeFailure (task loss + re-execution) —
/// keeping the two calls paired is the injector's main job.
class FaultInjector {
 public:
  FaultInjector(cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
                mapreduce::MrEngine* engine);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Attaches observability sinks (either may be null): every fired event
  /// becomes a trace instant on the target node's row and a faults.*
  /// counter tick. Attach before Arm.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

  /// Validates `plan` against the cluster (node/disk indices in range,
  /// factors > 0, no two degrade/throttle windows touching the same disk or
  /// link — the end-of-window restore resets the factor to 1.0, so
  /// overlapping windows would silently cancel each other; one-shot verbs
  /// armed at most once per target — a second kill of an already-doomed
  /// node or a re-corruption of the same replica describes nothing) and
  /// schedules every event. Compute-side verbs (kill-tasktracker,
  /// crash-task) require an engine. Call before sim->Run(); may be called
  /// more than once (plans accumulate, and the overlap and duplicate
  /// checks span all armed plans). InvalidArgument on the first bad event;
  /// nothing is scheduled in that case.
  Status Arm(const FaultPlan& plan);

  // Events fired so far, total and by kind. Plain fields so tests and
  // benches read them without a registry.
  uint64_t injected() const { return injected_; }
  uint64_t datanodes_killed() const { return datanodes_killed_; }
  uint64_t disks_degraded() const { return disks_degraded_; }
  uint64_t replicas_corrupted() const { return replicas_corrupted_; }
  uint64_t links_throttled() const { return links_throttled_; }
  uint64_t tasktrackers_killed() const { return tasktrackers_killed_; }
  uint64_t tasks_crashed() const { return tasks_crashed_; }

 private:
  /// A windowed fault's target and extent, kept for overlap validation.
  /// `end` is inclusive (a restore at t and a start at t race on the event
  /// queue, so touching windows are rejected too); ∞-windows (until = 0)
  /// use the max SimTime.
  struct Window {
    bool link = false;  ///< Throttle-link (else degrade-disk).
    uint32_t node = 0;
    bool mr_disk = false;
    uint32_t disk = 0;
    SimTime at;
    SimTime end;

    bool SameTarget(const Window& o) const {
      if (link != o.link || node != o.node) return false;
      return link || (mr_disk == o.mr_disk && disk == o.disk);
    }
  };

  /// An armed one-shot fault's target, kept for duplicate rejection (a
  /// node dies once; a replica rots once). A kill-datanode subsumes a
  /// kill-tasktracker on the same host (shared-host failure domains), so
  /// the pair conflicts in either order. crash-task may repeat freely.
  struct OneShot {
    FaultKind kind = FaultKind::kKillDataNode;
    uint32_t node = 0;
    std::string path;          ///< kCorruptReplica only.
    uint32_t block_idx = 0;    ///< kCorruptReplica only.
    uint32_t replica_idx = 0;  ///< kCorruptReplica only.

    bool Conflicts(const OneShot& o) const;
  };

  void Fire(const FaultEvent& e);
  void Note(const FaultEvent& e);  ///< Trace instant + counters.

  cluster::Cluster* cluster_;
  hdfs::Hdfs* hdfs_;
  mapreduce::MrEngine* engine_;  ///< May be null.

  std::vector<Window> windows_;    ///< Armed degrade/throttle windows.
  std::vector<OneShot> one_shots_; ///< Armed one-shot targets.

  uint64_t injected_ = 0;
  uint64_t datanodes_killed_ = 0;
  uint64_t disks_degraded_ = 0;
  uint64_t replicas_corrupted_ = 0;
  uint64_t links_throttled_ = 0;
  uint64_t tasktrackers_killed_ = 0;
  uint64_t tasks_crashed_ = 0;

  obs::TraceSession* trace_ = nullptr;
  obs::Counter* m_injected_ = nullptr;
  obs::Counter* m_killed_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_corrupted_ = nullptr;
  obs::Counter* m_throttled_ = nullptr;
  obs::Counter* m_tt_killed_ = nullptr;
  obs::Counter* m_crashed_ = nullptr;
};

}  // namespace bdio::faults

#endif  // BDIO_FAULTS_INJECTOR_H_
