#include "faults/fault_plan.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"

namespace bdio::faults {

namespace {

/// Seconds (decimal) → SimTime, for plan text; inverse of SecondsStr.
SimTime FromSecondsStr(double s) { return SimTime{} + FromSeconds(s); }

std::string SecondsStr(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", ToSeconds(t));
  return buf;
}

/// Splits one plan line into whitespace-separated tokens, dropping '#'
/// comments.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line.substr(0, line.find('#')));
  std::string tok;
  while (in >> tok) tokens.push_back(tok);
  return tokens;
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("fault plan line " +
                                 std::to_string(line_no) + ": " + what);
}

bool ParseU32(const std::string& s, uint32_t* out) {
  try {
    size_t pos = 0;
    const unsigned long v = std::stoul(s, &pos);
    if (pos != s.size() || v > UINT32_MAX) return false;
    *out = static_cast<uint32_t>(v);
    return true;
  } catch (...) {
    return false;
  }
}

bool ParseSeconds(const std::string& s, double* out) {
  try {
    size_t pos = 0;
    *out = std::stod(s, &pos);
    return pos == s.size() && *out >= 0;
  } catch (...) {
    return false;
  }
}

/// "x<factor>" → factor.
bool ParseFactor(const std::string& s, double* out) {
  if (s.size() < 2 || s[0] != 'x') return false;
  try {
    size_t pos = 0;
    *out = std::stod(s.substr(1), &pos);
    return pos == s.size() - 1 && *out > 0;
  } catch (...) {
    return false;
  }
}

/// "<t1>..<t2>" → [from, until]; requires t1 <= t2.
bool ParseWindow(const std::string& s, double* from, double* until) {
  const size_t dots = s.find("..");
  if (dots == std::string::npos) return false;
  if (!ParseSeconds(s.substr(0, dots), from)) return false;
  if (!ParseSeconds(s.substr(dots + 2), until)) return false;
  return *from <= *until;
}

}  // namespace

std::string_view FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillDataNode:
      return "kill-datanode";
    case FaultKind::kDegradeDisk:
      return "degrade-disk";
    case FaultKind::kCorruptReplica:
      return "corrupt-replica";
    case FaultKind::kThrottleLink:
      return "throttle-link";
    case FaultKind::kKillTaskTracker:
      return "kill-tasktracker";
    case FaultKind::kCrashTask:
      return "crash-task";
  }
  return "unknown";
}

FaultPlan& FaultPlan::KillDataNode(uint32_t node, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kKillDataNode;
  e.node = node;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::DegradeDisk(uint32_t node, bool mr_disk, uint32_t disk,
                                  double factor, SimTime from,
                                  SimTime until) {
  BDIO_CHECK(factor > 0);
  BDIO_CHECK(until == SimTime{} || until >= from);
  FaultEvent e;
  e.kind = FaultKind::kDegradeDisk;
  e.node = node;
  e.mr_disk = mr_disk;
  e.disk = disk;
  e.factor = factor;
  e.at = from;
  e.until = until;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::CorruptReplica(std::string path, uint32_t block_idx,
                                     uint32_t replica_idx, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kCorruptReplica;
  e.path = std::move(path);
  e.block_idx = block_idx;
  e.replica_idx = replica_idx;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::KillTaskTracker(uint32_t node, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kKillTaskTracker;
  e.node = node;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::CrashTask(uint32_t node, SimTime at) {
  FaultEvent e;
  e.kind = FaultKind::kCrashTask;
  e.node = node;
  e.at = at;
  events_.push_back(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::ThrottleLink(uint32_t node, double factor,
                                   SimTime from, SimTime until) {
  BDIO_CHECK(factor > 0);
  BDIO_CHECK(until == SimTime{} || until >= from);
  FaultEvent e;
  e.kind = FaultKind::kThrottleLink;
  e.node = node;
  e.factor = factor;
  e.at = from;
  e.until = until;
  events_.push_back(std::move(e));
  return *this;
}

Result<FaultPlan> FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = Tokenize(line);
    if (t.empty()) continue;
    const std::string& kind = t[0];
    if (kind == "kill-datanode") {
      // kill-datanode <node> @ <t>
      uint32_t node = 0;
      double at = 0;
      if (t.size() != 4 || t[2] != "@" || !ParseU32(t[1], &node) ||
          !ParseSeconds(t[3], &at)) {
        return LineError(line_no, "expected 'kill-datanode <node> @ <t>'");
      }
      plan.KillDataNode(node, FromSecondsStr(at));
    } else if (kind == "degrade-disk") {
      // degrade-disk <node> <hdfs|mr> <disk_idx> x<factor> @ <t1>..<t2>
      uint32_t node = 0, disk = 0;
      double factor = 0, from = 0, until = 0;
      if (t.size() != 7 || t[5] != "@" || !ParseU32(t[1], &node) ||
          (t[2] != "hdfs" && t[2] != "mr") || !ParseU32(t[3], &disk) ||
          !ParseFactor(t[4], &factor) || !ParseWindow(t[6], &from, &until)) {
        return LineError(line_no,
                         "expected 'degrade-disk <node> <hdfs|mr> "
                         "<disk_idx> x<factor> @ <t1>..<t2>'");
      }
      plan.DegradeDisk(node, t[2] == "mr", disk, factor,
                       FromSecondsStr(from), FromSecondsStr(until));
    } else if (kind == "corrupt-replica") {
      // corrupt-replica <path> <block_idx> <replica_idx> @ <t>
      uint32_t block_idx = 0, replica_idx = 0;
      double at = 0;
      if (t.size() != 6 || t[4] != "@" || !ParseU32(t[2], &block_idx) ||
          !ParseU32(t[3], &replica_idx) || !ParseSeconds(t[5], &at)) {
        return LineError(line_no,
                         "expected 'corrupt-replica <path> <block_idx> "
                         "<replica_idx> @ <t>'");
      }
      plan.CorruptReplica(t[1], block_idx, replica_idx, FromSecondsStr(at));
    } else if (kind == "throttle-link") {
      // throttle-link <node> x<factor> @ <t1>..<t2>
      uint32_t node = 0;
      double factor = 0, from = 0, until = 0;
      if (t.size() != 5 || t[3] != "@" || !ParseU32(t[1], &node) ||
          !ParseFactor(t[2], &factor) || !ParseWindow(t[4], &from, &until)) {
        return LineError(line_no,
                         "expected 'throttle-link <node> x<factor> @ "
                         "<t1>..<t2>'");
      }
      plan.ThrottleLink(node, factor, FromSecondsStr(from),
                        FromSecondsStr(until));
    } else if (kind == "kill-tasktracker") {
      // kill-tasktracker <node> @ <t>
      uint32_t node = 0;
      double at = 0;
      if (t.size() != 4 || t[2] != "@" || !ParseU32(t[1], &node) ||
          !ParseSeconds(t[3], &at)) {
        return LineError(line_no,
                         "expected 'kill-tasktracker <node> @ <t>'");
      }
      plan.KillTaskTracker(node, FromSecondsStr(at));
    } else if (kind == "crash-task") {
      // crash-task <node> @ <t>
      uint32_t node = 0;
      double at = 0;
      if (t.size() != 4 || t[2] != "@" || !ParseU32(t[1], &node) ||
          !ParseSeconds(t[3], &at)) {
        return LineError(line_no, "expected 'crash-task <node> @ <t>'");
      }
      plan.CrashTask(node, FromSecondsStr(at));
    } else {
      return LineError(line_no, "unknown fault '" + kind + "'");
    }
  }
  return plan;
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += FaultKindToString(e.kind);
    switch (e.kind) {
      case FaultKind::kKillDataNode:
      case FaultKind::kKillTaskTracker:
      case FaultKind::kCrashTask:
        out += " " + std::to_string(e.node) + " @ " + SecondsStr(e.at);
        break;
      case FaultKind::kDegradeDisk: {
        char factor[32];
        std::snprintf(factor, sizeof(factor), "x%g", e.factor);
        out += " " + std::to_string(e.node) +
               (e.mr_disk ? " mr " : " hdfs ") + std::to_string(e.disk) +
               " " + factor + " @ " + SecondsStr(e.at) + ".." +
               SecondsStr(e.until);
        break;
      }
      case FaultKind::kCorruptReplica:
        out += " " + e.path + " " + std::to_string(e.block_idx) + " " +
               std::to_string(e.replica_idx) + " @ " + SecondsStr(e.at);
        break;
      case FaultKind::kThrottleLink: {
        char factor[32];
        std::snprintf(factor, sizeof(factor), "x%g", e.factor);
        out += " " + std::to_string(e.node) + " " + factor + " @ " +
               SecondsStr(e.at) + ".." + SecondsStr(e.until);
        break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace bdio::faults
