#ifndef BDIO_FAULTS_FAULT_PLAN_H_
#define BDIO_FAULTS_FAULT_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/units.h"

namespace bdio::faults {

/// The fault classes the injector can drive (see docs/FAULTS.md).
enum class FaultKind {
  /// A DataNode/TaskTracker host dies at `at` and never returns: HDFS
  /// strikes its replicas and re-replicates; the MR engine re-executes its
  /// lost work.
  kKillDataNode,
  /// One disk of `node` serves I/O `factor`× slower over [at, until] — the
  /// fail-slow / straggler-disk model.
  kDegradeDisk,
  /// One replica of one block silently rots at `at`; the next reader served
  /// from it fails its checksum and triggers a repair.
  kCorruptReplica,
  /// `node`'s NIC runs at 1/`factor` of line rate over [at, until].
  kThrottleLink,
  /// Only the node's *compute* side dies at `at` (the TaskTracker process,
  /// not the DataNode): running attempts abort, completed map outputs on
  /// its local disks are lost and re-execute, but its HDFS replicas stay
  /// healthy — no re-replication.
  kKillTaskTracker,
  /// Every map attempt running on `node` at `at` crashes (a FAILED
  /// attempt): the budget is charged, the node is struck toward the
  /// blacklist, and the splits retry after backoff. The node stays alive.
  kCrashTask,
};

std::string_view FaultKindToString(FaultKind kind);

/// One scheduled fault. Which fields are meaningful depends on `kind`;
/// unused ones keep their defaults so plans compare and print cleanly.
struct FaultEvent {
  FaultKind kind = FaultKind::kKillDataNode;
  SimTime at;     ///< Injection instant.
  SimTime until;  ///< End of a windowed fault (degrade/throttle); 0 = ∞.

  uint32_t node = 0;     ///< Target worker (all kinds).
  bool mr_disk = false;  ///< kDegradeDisk: MR-intermediate disk group?
  uint32_t disk = 0;     ///< kDegradeDisk: index within the group.
  double factor = 1.0;   ///< Slowdown multiplier (degrade/throttle), > 1.

  std::string path;         ///< kCorruptReplica: HDFS file.
  uint32_t block_idx = 0;   ///< kCorruptReplica: block within the file.
  uint32_t replica_idx = 0; ///< kCorruptReplica: replica within the block.
};

/// A deterministic fault schedule: an ordered list of FaultEvents built in
/// code (fluent builder) or parsed from text (one fault per line). The plan
/// itself touches nothing — faults::FaultInjector arms it against a
/// simulation. An empty plan is the contract for "healthy": arming it
/// schedules no events and the run is byte-identical to one with no
/// injector at all.
///
/// Text grammar (seconds as decimals; '#' starts a comment):
///
///   kill-datanode <node> @ <t>
///   degrade-disk <node> <hdfs|mr> <disk_idx> x<factor> @ <t1>..<t2>
///   corrupt-replica <path> <block_idx> <replica_idx> @ <t>
///   throttle-link <node> x<factor> @ <t1>..<t2>
///   kill-tasktracker <node> @ <t>
///   crash-task <node> @ <t>
class FaultPlan {
 public:
  FaultPlan() = default;

  FaultPlan& KillDataNode(uint32_t node, SimTime at);
  FaultPlan& DegradeDisk(uint32_t node, bool mr_disk, uint32_t disk,
                         double factor, SimTime from, SimTime until);
  FaultPlan& CorruptReplica(std::string path, uint32_t block_idx,
                            uint32_t replica_idx, SimTime at);
  FaultPlan& ThrottleLink(uint32_t node, double factor, SimTime from,
                          SimTime until);
  FaultPlan& KillTaskTracker(uint32_t node, SimTime at);
  FaultPlan& CrashTask(uint32_t node, SimTime at);

  /// Parses the text grammar above. Unknown directives, malformed numbers,
  /// factors <= 0, and inverted windows are InvalidArgument (with the line
  /// number in the message).
  static Result<FaultPlan> Parse(const std::string& text);

  /// Round-trips through the text grammar (times printed in seconds).
  std::string ToString() const;

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace bdio::faults

#endif  // BDIO_FAULTS_FAULT_PLAN_H_
