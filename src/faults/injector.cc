#include "faults/injector.h"

#include <limits>
#include <string>
#include <utility>

#include "common/logging.h"

namespace bdio::faults {

FaultInjector::FaultInjector(cluster::Cluster* cluster, hdfs::Hdfs* hdfs,
                             mapreduce::MrEngine* engine)
    : cluster_(cluster), hdfs_(hdfs), engine_(engine) {
  BDIO_CHECK(cluster_ != nullptr);
  BDIO_CHECK(hdfs_ != nullptr);
}

void FaultInjector::AttachObs(obs::TraceSession* trace,
                              obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics) {
    m_injected_ = metrics->GetCounter("faults.injected");
    m_killed_ = metrics->GetCounter("faults.datanodes_killed");
    m_degraded_ = metrics->GetCounter("faults.disks_degraded");
    m_corrupted_ = metrics->GetCounter("faults.replicas_corrupted");
    m_throttled_ = metrics->GetCounter("faults.links_throttled");
    m_tt_killed_ = metrics->GetCounter("faults.tasktrackers_killed");
    m_crashed_ = metrics->GetCounter("faults.tasks_crashed");
  }
}

bool FaultInjector::OneShot::Conflicts(const OneShot& o) const {
  if (kind == FaultKind::kCorruptReplica ||
      o.kind == FaultKind::kCorruptReplica) {
    return kind == o.kind && path == o.path && block_idx == o.block_idx &&
           replica_idx == o.replica_idx;
  }
  // kill-datanode / kill-tasktracker: any two kills of the same host
  // conflict (the DataNode kill takes the TaskTracker down with it).
  return node == o.node;
}

Status FaultInjector::Arm(const FaultPlan& plan) {
  // Validate the whole plan first: a partially-armed plan would leave the
  // simulation in a state no plan text describes.
  for (const FaultEvent& e : plan.events()) {
    if (e.node >= cluster_->num_workers()) {
      return Status::InvalidArgument(
          std::string(FaultKindToString(e.kind)) + ": node " +
          std::to_string(e.node) + " out of range (cluster has " +
          std::to_string(cluster_->num_workers()) + " workers)");
    }
    if (e.kind == FaultKind::kDegradeDisk) {
      const uint32_t limit = e.mr_disk
                                 ? cluster_->node(e.node)->num_mr_disks()
                                 : cluster_->node(e.node)->num_hdfs_disks();
      if (e.disk >= limit) {
        return Status::InvalidArgument(
            "degrade-disk: disk " + std::to_string(e.disk) +
            " out of range (node has " + std::to_string(limit) + " " +
            (e.mr_disk ? "mr" : "hdfs") + " disks)");
      }
    }
    if ((e.kind == FaultKind::kDegradeDisk ||
         e.kind == FaultKind::kThrottleLink) &&
        e.factor <= 0) {
      return Status::InvalidArgument("fault factor must be positive");
    }
    // A throttle's slowdown maps to the capacity fraction 1/factor, which
    // the fabric requires in (0, 1].
    if (e.kind == FaultKind::kThrottleLink && e.factor < 1.0) {
      return Status::InvalidArgument(
          "throttle-link factor must be >= 1 (a slowdown multiplier)");
    }
    if ((e.kind == FaultKind::kKillTaskTracker ||
         e.kind == FaultKind::kCrashTask) &&
        engine_ == nullptr) {
      return Status::InvalidArgument(
          std::string(FaultKindToString(e.kind)) +
          " targets the compute side, but this injector has no MR engine");
    }
  }
  // One-shot verbs arm at most once per target, across Arm calls: a second
  // kill of an already-doomed node (or DataNode + TaskTracker kills on the
  // same shared host, in either order) and a re-corruption of the same
  // replica describe nothing the first event doesn't.
  std::vector<OneShot> one_shots = one_shots_;
  for (const FaultEvent& e : plan.events()) {
    if (e.kind != FaultKind::kKillDataNode &&
        e.kind != FaultKind::kKillTaskTracker &&
        e.kind != FaultKind::kCorruptReplica) {
      continue;
    }
    OneShot shot;
    shot.kind = e.kind;
    shot.node = e.node;
    shot.path = e.path;
    shot.block_idx = e.block_idx;
    shot.replica_idx = e.replica_idx;
    for (const OneShot& o : one_shots) {
      if (shot.Conflicts(o)) {
        return Status::InvalidArgument(
            std::string(FaultKindToString(e.kind)) +
            ": duplicate one-shot fault against the same target (" +
            (e.kind == FaultKind::kCorruptReplica
                 ? e.path + " block " + std::to_string(e.block_idx) +
                       " replica " + std::to_string(e.replica_idx)
                 : "node " + std::to_string(e.node)) +
            ")");
      }
    }
    one_shots.push_back(std::move(shot));
  }
  // Windowed faults don't nest: the end-of-window restore resets the
  // target's factor to 1.0 unconditionally, so a second window on the same
  // disk or link would be clobbered at start or cancelled at the first
  // window's expiry. Reject such plans, including across Arm calls.
  std::vector<Window> windows = windows_;
  for (const FaultEvent& e : plan.events()) {
    if (e.kind != FaultKind::kDegradeDisk &&
        e.kind != FaultKind::kThrottleLink) {
      continue;
    }
    Window w;
    w.link = e.kind == FaultKind::kThrottleLink;
    w.node = e.node;
    w.mr_disk = e.mr_disk;
    w.disk = e.disk;
    w.at = e.at;
    w.end = e.until > e.at ? e.until : SimTime::Max();
    for (const Window& o : windows) {
      if (o.SameTarget(w) && o.at <= w.end && w.at <= o.end) {
        return Status::InvalidArgument(
            std::string(FaultKindToString(e.kind)) +
            ": window overlaps an earlier one on the same target (node " +
            std::to_string(e.node) + ")");
      }
    }
    windows.push_back(w);
  }
  for (const FaultEvent& e : plan.events()) {
    cluster_->sim()->ScheduleAt(e.at, [this, e] { Fire(e); });
  }
  windows_ = std::move(windows);
  one_shots_ = std::move(one_shots);
  return Status::OK();
}

void FaultInjector::Fire(const FaultEvent& e) {
  Note(e);
  switch (e.kind) {
    case FaultKind::kKillDataNode:
      ++datanodes_killed_;
      if (m_killed_) m_killed_->Inc();
      // Both failure domains of the shared host, DFS first so the engine's
      // re-executed tasks already see the post-strike block map.
      hdfs_->InjectDataNodeFailure(e.node);
      if (engine_) engine_->InjectNodeFailure(e.node);
      break;
    case FaultKind::kDegradeDisk: {
      ++disks_degraded_;
      if (m_degraded_) m_degraded_->Inc();
      storage::BlockDevice* dev =
          e.mr_disk ? cluster_->node(e.node)->mr_disk(e.disk)
                    : cluster_->node(e.node)->hdfs_disk(e.disk);
      dev->SetServiceFactor(e.factor);
      if (e.until > e.at) {
        cluster_->sim()->ScheduleAt(e.until,
                                    [dev] { dev->SetServiceFactor(1.0); });
      }
      break;
    }
    case FaultKind::kCorruptReplica: {
      ++replicas_corrupted_;
      if (m_corrupted_) m_corrupted_->Inc();
      const Status s =
          hdfs_->CorruptReplica(e.path, e.block_idx, e.replica_idx);
      if (!s.ok()) {
        // The target may not exist (yet, or any more) — a plan authored
        // against one workload replayed against another. Not fatal.
        BDIO_LOG(Warning) << "faults: corrupt-replica " << e.path
                          << " skipped: " << s.ToString();
      }
      break;
    }
    case FaultKind::kThrottleLink: {
      ++links_throttled_;
      if (m_throttled_) m_throttled_->Inc();
      net::Network* net = cluster_->network();
      const uint32_t node = e.node;
      // The plan speaks in slowdown multipliers (x4 = four times slower);
      // the fabric wants the remaining capacity fraction.
      net->SetNodeLinkFactor(node, 1.0 / e.factor);
      if (e.until > e.at) {
        cluster_->sim()->ScheduleAt(
            e.until, [net, node] { net->SetNodeLinkFactor(node, 1.0); });
      }
      break;
    }
    case FaultKind::kKillTaskTracker:
      ++tasktrackers_killed_;
      if (m_tt_killed_) m_tt_killed_->Inc();
      // Compute side only: the DataNode (and its replicas) stays healthy.
      engine_->InjectNodeFailure(e.node);
      break;
    case FaultKind::kCrashTask:
      ++tasks_crashed_;
      if (m_crashed_) m_crashed_->Inc();
      engine_->InjectTaskCrash(e.node);
      break;
  }
}

void FaultInjector::Note(const FaultEvent& e) {
  ++injected_;
  if (m_injected_) m_injected_->Inc();
  if (!trace_) return;
  std::string args = "{\"fault\":\"" +
                     std::string(FaultKindToString(e.kind)) + "\"";
  switch (e.kind) {
    case FaultKind::kKillDataNode:
    case FaultKind::kKillTaskTracker:
    case FaultKind::kCrashTask:
      break;
    case FaultKind::kDegradeDisk:
      args += ",\"group\":\"" + std::string(e.mr_disk ? "mr" : "hdfs") +
              "\",\"disk\":" + std::to_string(e.disk) +
              ",\"factor\":" + std::to_string(e.factor);
      break;
    case FaultKind::kCorruptReplica:
      args += ",\"path\":\"" + e.path +
              "\",\"block\":" + std::to_string(e.block_idx) +
              ",\"replica\":" + std::to_string(e.replica_idx);
      break;
    case FaultKind::kThrottleLink:
      args += ",\"factor\":" + std::to_string(e.factor);
      break;
  }
  args += "}";
  // Instants land on the target node's row. Corrupt-replica events carry
  // no node field — resolve the replica's holder from the NameNode, falling
  // back to the cluster-wide row (pid 0) when the target doesn't exist.
  uint32_t pid = e.node + 1;
  if (e.kind == FaultKind::kCorruptReplica) {
    pid = 0;
    auto entry_or = hdfs_->name_node()->GetFile(e.path);
    if (entry_or.ok()) {
      const hdfs::FileEntry* entry = entry_or.value();
      if (e.block_idx < entry->blocks.size() &&
          e.replica_idx < entry->blocks[e.block_idx].nodes.size()) {
        pid = entry->blocks[e.block_idx].nodes[e.replica_idx] + 1;
      }
    }
  }
  // FaultKindToString returns views of string literals (NUL-terminated).
  trace_->Instant(pid, "faults", FaultKindToString(e.kind).data(),
                  std::move(args));
}

}  // namespace bdio::faults
