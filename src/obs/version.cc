namespace bdio::obs {
const char* ModuleName() { return "obs"; }
}  // namespace bdio::obs
