#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace bdio::obs {

namespace {

/// Deterministic number formatting: integers print without a decimal
/// point, everything else with up to 9 significant digits (%g would be
/// locale-stable too, but pinning the format here keeps golden files
/// readable).
std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

Labels Sorted(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string KeyOf(const std::string& name, const Labels& sorted_labels) {
  std::string key = name;
  key += '{';
  for (size_t i = 0; i < sorted_labels.size(); ++i) {
    if (i > 0) key += ',';
    key += sorted_labels[i].first;
    key += '=';
    key += sorted_labels[i].second;
  }
  key += '}';
  return key;
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

std::string LabelsCsv(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ';';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0) {
  BDIO_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++buckets_[i];
  ++count_;
  sum_ += v;
}

MetricsRegistry::Entry* MetricsRegistry::Find(const std::string& name,
                                              const Labels& labels,
                                              Kind kind) {
  const Labels sorted = Sorted(labels);
  const std::string key = KeyOf(name, sorted);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    BDIO_CHECK(it->second->kind == kind)
        << key << " already registered as a different metric kind";
    return it->second.get();
  }
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = sorted;
  entry->kind = kind;
  Entry* raw = entry.get();
  entries_.emplace(key, std::move(entry));
  return raw;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const Labels& labels) {
  Entry* e = Find(name, labels, Kind::kCounter);
  if (!e->counter) e->counter = std::make_unique<Counter>();
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const Labels& labels) {
  Entry* e = Find(name, labels, Kind::kGauge);
  if (!e->gauge) e->gauge = std::make_unique<Gauge>();
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const Labels& labels,
                                         std::vector<double> bounds) {
  Entry* e = Find(name, labels, Kind::kHistogram);
  if (!e->histogram) {
    e->histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return e->histogram.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const Labels& labels) const {
  const std::string key = KeyOf(name, Sorted(labels));
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second->kind != Kind::kCounter ||
      !it->second->counter) {
    return 0;
  }
  return it->second->counter->value();
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "[";
  bool first_entry = true;
  for (const auto& [key, e] : entries_) {
    if (!first_entry) out += ',';
    first_entry = false;
    out += "{\"name\":\"";
    out += e->name;
    out += "\",\"labels\":{";
    for (size_t i = 0; i < e->labels.size(); ++i) {
      if (i > 0) out += ',';
      out += '"';
      out += e->labels[i].first;
      out += "\":\"";
      out += e->labels[i].second;
      out += '"';
    }
    out += "},\"type\":\"";
    out += KindName(static_cast<int>(e->kind));
    out += '"';
    switch (e->kind) {
      case Kind::kCounter:
        out += ",\"value\":";
        out += std::to_string(e->counter ? e->counter->value() : 0);
        break;
      case Kind::kGauge:
        out += ",\"value\":";
        out += FormatNumber(e->gauge ? e->gauge->value() : 0.0);
        break;
      case Kind::kHistogram: {
        const Histogram* h = e->histogram.get();
        out += ",\"count\":";
        out += std::to_string(h->count());
        out += ",\"sum\":";
        out += FormatNumber(h->sum());
        out += ",\"buckets\":[";
        for (size_t i = 0; i < h->buckets().size(); ++i) {
          if (i > 0) out += ',';
          out += "{\"le\":";
          if (i < h->bounds().size()) {
            out += FormatNumber(h->bounds()[i]);
          } else {
            out += "\"inf\"";
          }
          out += ",\"count\":";
          out += std::to_string(h->buckets()[i]);
          out += '}';
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += ']';
  return out;
}

std::string MetricsRegistry::ToCsv(const std::string& label_prefix) const {
  std::string out;
  auto row = [&](const std::string& name, const std::string& labels,
                 const std::string& field, const std::string& value) {
    if (!label_prefix.empty()) {
      out += label_prefix;
      out += ',';
    }
    out += name;
    out += ',';
    out += labels;
    out += ',';
    out += field;
    out += ',';
    out += value;
    out += '\n';
  };
  for (const auto& [key, e] : entries_) {
    const std::string labels = LabelsCsv(e->labels);
    switch (e->kind) {
      case Kind::kCounter:
        row(e->name, labels, "value",
            std::to_string(e->counter ? e->counter->value() : 0));
        break;
      case Kind::kGauge:
        row(e->name, labels, "value",
            FormatNumber(e->gauge ? e->gauge->value() : 0.0));
        break;
      case Kind::kHistogram: {
        const Histogram* h = e->histogram.get();
        row(e->name, labels, "count", std::to_string(h->count()));
        row(e->name, labels, "sum", FormatNumber(h->sum()));
        for (size_t i = 0; i < h->buckets().size(); ++i) {
          const std::string le = i < h->bounds().size()
                                     ? "le_" + FormatNumber(h->bounds()[i])
                                     : std::string("le_inf");
          row(e->name, labels, le, std::to_string(h->buckets()[i]));
        }
        break;
      }
    }
  }
  return out;
}

}  // namespace bdio::obs
