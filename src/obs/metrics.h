#ifndef BDIO_OBS_METRICS_H_
#define BDIO_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace bdio::obs {

/// Metric labels: (key, value) pairs. Stored sorted by key so the same
/// label set always resolves to the same instrument regardless of the
/// order call sites list them in.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing count (bytes moved, events observed).
class Counter {
 public:
  void Inc() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-write-wins sample of an instantaneous quantity.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

/// Fixed-bucket histogram: `bounds` are the inclusive upper edges of the
/// first N buckets; one overflow bucket catches everything above the last
/// bound. Bucket layout is fixed at creation so merging and serialization
/// stay deterministic.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Owns every instrument of one experiment, keyed by (name, labels).
/// GetX returns a stable pointer call sites cache once and bump on the hot
/// path, so an attached registry costs one pointer test + one add per
/// event. Iteration order (and therefore serialized output) is the
/// lexicographic order of the canonical "name{k=v,...}" key —
/// deterministic across runs and `--jobs` levels.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under (name, labels), creating it on
  /// first use. Re-registering the same key as a different kind aborts.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});
  /// `bounds` applies on first creation only; later lookups ignore it.
  Histogram* GetHistogram(const std::string& name, const Labels& labels,
                          std::vector<double> bounds);

  /// Value of a counter, or 0 if it was never registered.
  uint64_t CounterValue(const std::string& name,
                        const Labels& labels = {}) const;

  size_t size() const { return entries_.size(); }

  /// JSON array of instruments (embeddable in a larger document):
  /// [{"name":...,"labels":{...},"type":"counter","value":N}, ...].
  std::string ToJson() const;

  /// Flat CSV rows: metric,labels,field,value. Histograms expand to one
  /// row per bucket plus count and sum. `label_prefix`, if nonempty, is
  /// prepended as the first column of every row (the experiment label when
  /// several registries share one file).
  std::string ToCsv(const std::string& label_prefix = {}) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* Find(const std::string& name, const Labels& labels, Kind kind);

  /// Canonical key; instruments live behind unique_ptr so returned pointers
  /// survive map rebalancing.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
};

}  // namespace bdio::obs

#endif  // BDIO_OBS_METRICS_H_
