#ifndef BDIO_OBS_BLKTRACE_H_
#define BDIO_OBS_BLKTRACE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace bdio::obs {

/// Block-layer lifecycle actions, mirroring the subset of Linux blktrace
/// events the paper's methodology needs. Values are the ASCII letters
/// blkparse prints, so a hex dump of the binary trace reads naturally.
enum class BlkAction : uint8_t {
  kQueue = 'Q',     ///< Bio entered the elevator as a new request.
  kMerge = 'M',     ///< Bio folded into a queued request (front or back).
  kDispatch = 'D',  ///< Request left the elevator for the drive (NCQ).
  kComplete = 'C',  ///< Drive finished servicing the request.
};

/// Index of an action in per-device count arrays (Q=0, M=1, D=2, C=3).
inline constexpr uint32_t kNumBlkActions = 4;
inline uint32_t BlkActionIndex(BlkAction a) {
  switch (a) {
    case BlkAction::kQueue:
      return 0;
    case BlkAction::kMerge:
      return 1;
    case BlkAction::kDispatch:
      return 2;
    case BlkAction::kComplete:
      return 3;
  }
  return 0;
}

/// One lifecycle transition, 40 bytes, written to the binary trace verbatim
/// (host little-endian, fixed layout — see docs/BLKTRACE.md).
///
/// `request_id` links the lifecycle together: Q assigns it (the device's
/// request id), M carries the id of the *surviving* request the bio folded
/// into, and D/C repeat the id, so an analyzer can join Q->D->C per request
/// and attribute merged bios. `queue_depth` is the elevator's size after
/// the transition was applied. `job` is 1 + the MapReduce job id that owns
/// the file (0 = unattributed, e.g. HDFS block files and dataset preload).
struct BlktraceRecord {
  uint64_t time_ns = 0;      ///< Simulated time of the transition.
  uint64_t sector = 0;       ///< First sector of the bio/request.
  uint32_t sectors = 0;      ///< Length in 512 B sectors.
  uint32_t queue_depth = 0;  ///< Elevator occupancy after the transition.
  uint32_t request_id = 0;   ///< Device-local request id (see above).
  uint32_t tag = 0;          ///< IoTag of the issuing file (0 = unknown).
  uint32_t job = 0;          ///< Owning job id + 1; 0 = unattributed.
  uint16_t device = 0;       ///< Session-local device index.
  uint8_t action = 0;        ///< BlkAction letter ('Q','M','D','C').
  uint8_t dir = 0;           ///< 0 = read, 1 = write.
};
static_assert(sizeof(BlktraceRecord) == 40, "record layout is part of the "
                                            "on-disk format");
static_assert(std::is_trivially_copyable_v<BlktraceRecord>);

/// Per-device state: identity, drop accounting, per-action totals, and the
/// bounded record ring.
struct BlktraceDevice {
  std::string name;
  std::string dev_class;  ///< "hdfs" or "mr" — the paper's central split.
  uint32_t node = 0;      ///< Worker node index.
  /// Records lost to ring overwrite (oldest-first). Counted even though the
  /// per-action totals below keep counting, so an analyzer can tell a
  /// complete trace (dropped == 0) from a truncated one.
  uint64_t dropped = 0;
  /// Totals per action (Q,M,D,C), maintained for every Record call whether
  /// or not the record survived the ring — these are the counters the
  /// invariant checker cross-checks against DiskStats.
  uint64_t counts[kNumBlkActions] = {};

  /// Bounded ring: the newest `ring.size()` records; `head` is the index of
  /// the oldest once the ring has wrapped.
  std::vector<BlktraceRecord> ring;
  size_t head = 0;
};

/// Per-experiment block-layer lifecycle tracer (the repo's blktrace).
/// BlockDevice calls Record on every Q/M/D/C transition; the session keeps
/// a bounded per-device ring and serializes to a compact binary artifact
/// that tools/bdio-blkparse analyzes offline.
///
/// Determinism: records carry only simulated time and simulation state, and
/// devices are registered in a fixed iteration order
/// (cluster::Cluster::AttachBlktrace), so the serialized artifact is
/// byte-identical across hosts and --jobs levels. Recording performs no
/// event scheduling and draws no randomness; an attached session never
/// perturbs the run.
class BlktraceSession {
 public:
  /// Default per-device ring capacity. A record is 40 bytes, so the default
  /// bounds a 60-device cluster at ~2.4 GiB worst case but in practice
  /// paper-scale runs stay far below it (drops are counted, not silent).
  static constexpr size_t kDefaultMaxRecordsPerDevice = size_t{1} << 20;

  explicit BlktraceSession(
      const sim::Simulator* sim,
      size_t max_records_per_device = kDefaultMaxRecordsPerDevice);

  BlktraceSession(const BlktraceSession&) = delete;
  BlktraceSession& operator=(const BlktraceSession&) = delete;

  /// Registers a device and returns its session-local index (the `device`
  /// field of its records). Call order defines artifact order.
  uint16_t RegisterDevice(const std::string& name,
                          const std::string& dev_class, uint32_t node);

  /// Surfaces drop accounting in the registry: "blktrace.dropped_records"
  /// counts ring overwrites across all devices (satellite: overflow is
  /// loud, never silent).
  void AttachMetrics(MetricsRegistry* metrics);

  /// Appends one lifecycle record to `device`'s ring. Hot path: one bounds
  /// check + struct store; overwrites the oldest record when full.
  void Record(uint16_t device, BlkAction action, uint8_t dir, uint64_t sector,
              uint32_t sectors, uint32_t request_id, uint32_t tag,
              uint32_t job, uint32_t queue_depth) {
    BlktraceDevice& d = devices_[device];
    ++d.counts[BlkActionIndex(action)];
    BlktraceRecord rec;
    rec.time_ns = sim_->Now().ns();
    rec.sector = sector;
    rec.sectors = sectors;
    rec.queue_depth = queue_depth;
    rec.request_id = request_id;
    rec.tag = tag;
    rec.job = job;
    rec.device = device;
    rec.action = static_cast<uint8_t>(action);
    rec.dir = dir;
    if (d.ring.size() < max_records_per_device_) {
      d.ring.push_back(rec);
    } else {
      d.ring[d.head] = rec;
      d.head = (d.head + 1) % d.ring.size();
      ++d.dropped;
      if (m_dropped_ != nullptr) m_dropped_->Inc();
    }
  }

  size_t num_devices() const { return devices_.size(); }
  const BlktraceDevice& device(size_t i) const { return devices_[i]; }
  size_t max_records_per_device() const { return max_records_per_device_; }

  /// Total records currently retained across all rings.
  uint64_t num_records() const;
  /// Total records lost to ring overwrite across all devices.
  uint64_t dropped_records() const;
  /// Total Record() calls for `action` on `device` (drop-independent).
  uint64_t ActionCount(uint16_t device, BlkAction action) const {
    return devices_[device].counts[BlkActionIndex(action)];
  }

  /// `device`'s retained records, oldest first (the ring unwound).
  std::vector<BlktraceRecord> DeviceRecords(uint16_t device) const;

  /// The complete binary artifact (magic, device table, record streams) —
  /// the byte string WriteFile persists. See docs/BLKTRACE.md.
  std::string Serialize() const;

  /// Writes Serialize() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  const sim::Simulator* sim_;
  size_t max_records_per_device_;
  std::vector<BlktraceDevice> devices_;
  Counter* m_dropped_ = nullptr;
};

}  // namespace bdio::obs

#endif  // BDIO_OBS_BLKTRACE_H_
