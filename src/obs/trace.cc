#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "common/logging.h"

namespace bdio::obs {

namespace {

/// Trace-event timestamps are microseconds; simulator time is integer
/// nanoseconds. Integer math keeps the decimal formatting deterministic.
void AppendTimestamp(std::string* out, SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns.ns() / 1000),
                static_cast<unsigned long long>(ns.ns() % 1000));
  *out += buf;
}

}  // namespace

TraceSession::TraceSession(const sim::Simulator* sim) : sim_(sim) {
  BDIO_CHECK(sim != nullptr);
}

void TraceSession::SetProcessName(uint32_t pid, const std::string& name) {
  process_names_[pid] = name;
}

uint64_t TraceSession::BeginSpan(uint32_t pid, const char* cat,
                                 const char* name, std::string args) {
  return BeginSpanAt(pid, cat, name, sim_->Now(), std::move(args));
}

uint64_t TraceSession::BeginSpanAt(uint32_t pid, const char* cat,
                                   const char* name, SimTime ts,
                                   std::string args) {
  const uint64_t id = next_id_++;
  events_.push_back(Event{'b', pid, cat, name, ts, id, std::move(args)});
  open_spans_.emplace(id, OpenSpan{cat, name, pid});
  return id;
}

void TraceSession::EndSpan(uint64_t span_id) {
  if (span_id == 0) return;
  auto it = open_spans_.find(span_id);
  if (it == open_spans_.end()) return;  // already ended (failure path)
  const OpenSpan span = it->second;
  open_spans_.erase(it);
  events_.push_back(
      Event{'e', span.pid, span.cat, span.name, sim_->Now(), span_id, {}});
}

void TraceSession::Instant(uint32_t pid, const char* cat, const char* name,
                           std::string args) {
  events_.push_back(
      Event{'i', pid, cat, name, sim_->Now(), 0, std::move(args)});
}

void TraceSession::FlowEvent(char ph, uint64_t flow, uint32_t pid) {
  if (flow == 0) return;
  events_.push_back(Event{ph, pid, "flow", "io", sim_->Now(), flow, {}});
}

void TraceSession::FlowStart(uint64_t flow, uint32_t pid) {
  FlowEvent('s', flow, pid);
}
void TraceSession::FlowStep(uint64_t flow, uint32_t pid) {
  FlowEvent('t', flow, pid);
}
void TraceSession::FlowEnd(uint64_t flow, uint32_t pid) {
  FlowEvent('f', flow, pid);
}

std::string TraceSession::ToJson() const {
  std::string out;
  out.reserve(events_.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, name] : process_names_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    out += name;
    out += "\"}}";
  }
  for (const Event& e : events_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":";
    out += std::to_string(e.pid);
    out += ",\"tid\":0,\"cat\":\"";
    out += e.cat;
    out += "\",\"name\":\"";
    out += e.name;
    out += "\",\"ts\":";
    AppendTimestamp(&out, e.ts);
    if (e.id != 0) {
      out += ",\"id\":";
      out += std::to_string(e.id);
    }
    if (e.ph == 'i') out += ",\"s\":\"p\"";  // process-scoped instant
    if (e.ph == 'f') out += ",\"bp\":\"e\"";
    if (!e.args.empty()) {
      out += ",\"args\":";
      out += e.args;
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

Status TraceSession::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return Status::IOError("cannot open trace output: " + path);
  }
  const std::string json = ToJson();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  out.close();
  if (!out.good()) {
    return Status::IOError("short write to trace output: " + path);
  }
  return Status::OK();
}

}  // namespace bdio::obs
