#include "obs/blktrace.h"

#include <fstream>

#include "common/logging.h"

namespace bdio::obs {

namespace {

// Fixed-width little-endian appenders: the artifact format is defined in
// byte order, not in host struct layout (though the record struct is laid
// out to match, so records append with one memcpy on LE hosts).
void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutRecord(std::string* out, const BlktraceRecord& r) {
  PutU64(out, r.time_ns);
  PutU64(out, r.sector);
  PutU32(out, r.sectors);
  PutU32(out, r.queue_depth);
  PutU32(out, r.request_id);
  PutU32(out, r.tag);
  PutU32(out, r.job);
  PutU16(out, r.device);
  out->push_back(static_cast<char>(r.action));
  out->push_back(static_cast<char>(r.dir));
}

}  // namespace

BlktraceSession::BlktraceSession(const sim::Simulator* sim,
                                 size_t max_records_per_device)
    : sim_(sim), max_records_per_device_(max_records_per_device) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(max_records_per_device > 0);
}

uint16_t BlktraceSession::RegisterDevice(const std::string& name,
                                         const std::string& dev_class,
                                         uint32_t node) {
  BDIO_CHECK(devices_.size() < 0xffff) << "blktrace: too many devices";
  BlktraceDevice dev;
  dev.name = name;
  dev.dev_class = dev_class;
  dev.node = node;
  devices_.push_back(std::move(dev));
  return static_cast<uint16_t>(devices_.size() - 1);
}

void BlktraceSession::AttachMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  m_dropped_ = metrics->GetCounter("blktrace.dropped_records");
}

uint64_t BlktraceSession::num_records() const {
  uint64_t n = 0;
  for (const BlktraceDevice& d : devices_) n += d.ring.size();
  return n;
}

uint64_t BlktraceSession::dropped_records() const {
  uint64_t n = 0;
  for (const BlktraceDevice& d : devices_) n += d.dropped;
  return n;
}

std::vector<BlktraceRecord> BlktraceSession::DeviceRecords(
    uint16_t device) const {
  const BlktraceDevice& d = devices_[device];
  std::vector<BlktraceRecord> out;
  out.reserve(d.ring.size());
  for (size_t i = 0; i < d.ring.size(); ++i) {
    out.push_back(d.ring[(d.head + i) % d.ring.size()]);
  }
  return out;
}

std::string BlktraceSession::Serialize() const {
  // Layout (little-endian throughout; docs/BLKTRACE.md):
  //   magic "BDIOBLK1" (8 bytes)
  //   u32 record_size (= 40)
  //   u32 device_count
  //   per device:
  //     u16 name_len, name bytes
  //     u16 class_len, class bytes
  //     u32 node
  //     u64 dropped
  //     u64 counts[4]        (Q, M, D, C totals, drop-independent)
  //     u64 record_count     (records retained in the ring)
  //   per device, in registration order:
  //     record_count x 40-byte records, oldest first
  std::string out;
  out.reserve(64 + num_records() * sizeof(BlktraceRecord));
  out += "BDIOBLK1";
  PutU32(&out, static_cast<uint32_t>(sizeof(BlktraceRecord)));
  PutU32(&out, static_cast<uint32_t>(devices_.size()));
  for (const BlktraceDevice& d : devices_) {
    PutU16(&out, static_cast<uint16_t>(d.name.size()));
    out += d.name;
    PutU16(&out, static_cast<uint16_t>(d.dev_class.size()));
    out += d.dev_class;
    PutU32(&out, d.node);
    PutU64(&out, d.dropped);
    for (uint64_t c : d.counts) PutU64(&out, c);
    PutU64(&out, d.ring.size());
  }
  for (size_t i = 0; i < devices_.size(); ++i) {
    for (const BlktraceRecord& r :
         DeviceRecords(static_cast<uint16_t>(i))) {
      PutRecord(&out, r);
    }
  }
  return out;
}

Status BlktraceSession::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    return Status::IOError("cannot open blktrace output: " + path);
  }
  const std::string doc = Serialize();
  out.write(doc.data(), static_cast<std::streamsize>(doc.size()));
  out.close();
  if (!out.good()) {
    return Status::IOError("short write to blktrace output: " + path);
  }
  return Status::OK();
}

}  // namespace bdio::obs
