#ifndef BDIO_OBS_TRACE_H_
#define BDIO_OBS_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace bdio::obs {

/// Records the causal lifecycle of simulated I/O as Chrome trace-event
/// JSON (the format Perfetto / chrome://tracing open natively).
///
/// Spans are emitted as async begin/end pairs ("ph":"b"/"e") because I/O
/// lifetimes overlap arbitrarily within a layer; flow events
/// ("ph":"s"/"t"/"f") connect spans of different layers that serve the
/// same logical I/O. `pid` selects the trace-viewer process row: 0 is the
/// cluster-wide row, node i maps to pid i+1 (see SetProcessName).
///
/// Timestamps come from the simulator clock, never the wall clock, and
/// serialization iterates insertion order, so two runs of the same
/// experiment produce byte-identical JSON no matter how many experiments
/// run concurrently around them (each experiment owns its own simulator
/// and its own session).
class TraceSession {
 public:
  explicit TraceSession(const sim::Simulator* sim);

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  /// Names a trace-viewer process row ("cluster", "node 3", ...).
  void SetProcessName(uint32_t pid, const std::string& name);

  /// Opens an async span at Now(); returns its id for EndSpan. `args`, if
  /// nonempty, must be a complete JSON object ({"k":v,...}).
  uint64_t BeginSpan(uint32_t pid, const char* cat, const char* name,
                     std::string args = {});
  /// Opens a span with an explicit (possibly earlier) begin timestamp —
  /// for call sites that only decide to record once the outcome is known.
  uint64_t BeginSpanAt(uint32_t pid, const char* cat, const char* name,
                       SimTime ts, std::string args = {});
  /// Closes a span at Now(). Ignores 0 and unknown ids so failure paths
  /// may end unconditionally.
  void EndSpan(uint64_t span_id);

  /// Zero-duration marker.
  void Instant(uint32_t pid, const char* cat, const char* name,
               std::string args = {});

  // --- Flows: arrows connecting spans across layers -----------------------
  /// Allocates a flow id (never 0).
  uint64_t NewFlow() { return next_id_++; }
  void FlowStart(uint64_t flow, uint32_t pid);  ///< "s": first hop.
  void FlowStep(uint64_t flow, uint32_t pid);   ///< "t": intermediate hop.
  void FlowEnd(uint64_t flow, uint32_t pid);    ///< "f": final hop.

  /// The current-flow stack propagates a flow id down a synchronous call
  /// chain (engine -> hdfs -> filesystem -> page cache -> block device)
  /// without changing any signatures; async continuations capture the id
  /// and re-push it per step. Prefer FlowScope over raw push/pop.
  void PushFlow(uint64_t flow) { flow_stack_.push_back(flow); }
  void PopFlow() { flow_stack_.pop_back(); }
  uint64_t current_flow() const {
    return flow_stack_.empty() ? 0 : flow_stack_.back();
  }

  size_t num_events() const { return events_.size(); }

  /// The complete trace document ({"traceEvents":[...]}).
  std::string ToJson() const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  struct Event {
    char ph = 0;
    uint32_t pid = 0;
    const char* cat = nullptr;
    const char* name = nullptr;
    SimTime ts;
    uint64_t id = 0;  ///< Span/flow id; 0 = none.
    std::string args;
  };
  struct OpenSpan {
    const char* cat = nullptr;
    const char* name = nullptr;
    uint32_t pid = 0;
  };

  void FlowEvent(char ph, uint64_t flow, uint32_t pid);

  const sim::Simulator* sim_;
  std::vector<Event> events_;
  /// Ordered (rule R1): point lookups only today, but span ids key event
  /// emission, so any future scan must not adopt hash order.
  std::map<uint64_t, OpenSpan> open_spans_;
  std::map<uint32_t, std::string> process_names_;
  uint64_t next_id_ = 1;
  std::vector<uint64_t> flow_stack_;
};

/// RAII guard establishing `flow` as the current flow for the duration of
/// a (synchronous) call chain. Null session or zero flow => no-op, so call
/// sites need no separate disabled path.
class FlowScope {
 public:
  FlowScope(TraceSession* trace, uint64_t flow)
      : trace_(flow != 0 ? trace : nullptr) {
    if (trace_) trace_->PushFlow(flow);
  }
  ~FlowScope() {
    if (trace_) trace_->PopFlow();
  }
  FlowScope(const FlowScope&) = delete;
  FlowScope& operator=(const FlowScope&) = delete;

 private:
  TraceSession* trace_;
};

}  // namespace bdio::obs

#endif  // BDIO_OBS_TRACE_H_
