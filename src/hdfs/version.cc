namespace bdio::hdfs {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "hdfs"; }
}  // namespace bdio::hdfs
