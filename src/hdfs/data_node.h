#ifndef BDIO_HDFS_DATA_NODE_H_
#define BDIO_HDFS_DATA_NODE_H_

#include <cstdint>
#include <string>

#include "cluster/node.h"
#include "common/flat_map.h"
#include "common/io_tag.h"
#include "common/result.h"
#include "common/status.h"
#include "os/file_system.h"

namespace bdio::hdfs {

/// Per-worker block store: maps HDFS block ids to local block files spread
/// round-robin over the node's HDFS data directories (one per disk), the
/// DataNode volume-choosing policy.
class DataNode {
 public:
  explicit DataNode(cluster::Node* node) : node_(node) {}

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  /// Creates an empty local file for a block being written.
  Result<os::File*> CreateBlock(uint64_t block_id);

  /// Registers a block that already exists on disk (pre-populated input
  /// data); no I/O is performed and the data is cold.
  Result<os::File*> CreateExistingBlock(uint64_t block_id, uint64_t bytes);

  bool HasBlock(uint64_t block_id) const {
    return blocks_.contains(block_id);
  }
  Result<os::File*> GetBlock(uint64_t block_id) const;
  os::FileSystem* FsOf(uint64_t block_id) const;
  Status DeleteBlock(uint64_t block_id);

  cluster::Node* node() const { return node_; }
  size_t block_count() const { return blocks_.size(); }

 private:
  struct Stored {
    os::FileSystem* fs = nullptr;
    os::File* file = nullptr;
  };
  static std::string BlockFileName(uint64_t block_id) {
    return "blk_" + std::to_string(block_id);
  }

  cluster::Node* node_;
  /// Ordered by block id so block-report-style scans are deterministic
  /// (rule R1). Flat: block ids grow monotonically, so inserts append.
  FlatMap<uint64_t, Stored> blocks_;
};

}  // namespace bdio::hdfs

#endif  // BDIO_HDFS_DATA_NODE_H_
