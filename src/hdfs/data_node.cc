#include "hdfs/data_node.h"

namespace bdio::hdfs {

Result<os::File*> DataNode::CreateBlock(uint64_t block_id) {
  if (blocks_.contains(block_id)) {
    return Status::AlreadyExists("block already stored: " +
                                 std::to_string(block_id));
  }
  os::FileSystem* fs = node_->NextHdfsFs();
  BDIO_ASSIGN_OR_RETURN(os::File * file,
                        fs->Create(BlockFileName(block_id)));
  file->set_io_tag(static_cast<uint32_t>(IoTag::kHdfsOutput));
  blocks_.emplace(block_id, Stored{fs, file});
  return file;
}

Result<os::File*> DataNode::CreateExistingBlock(uint64_t block_id,
                                                uint64_t bytes) {
  if (blocks_.contains(block_id)) {
    return Status::AlreadyExists("block already stored: " +
                                 std::to_string(block_id));
  }
  os::FileSystem* fs = node_->NextHdfsFs();
  BDIO_ASSIGN_OR_RETURN(
      os::File * file, fs->CreateExtentsOnly(BlockFileName(block_id), bytes));
  file->set_io_tag(static_cast<uint32_t>(IoTag::kHdfsInput));
  blocks_.emplace(block_id, Stored{fs, file});
  return file;
}

Result<os::File*> DataNode::GetBlock(uint64_t block_id) const {
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    return Status::NotFound("block not on this node: " +
                            std::to_string(block_id));
  }
  return it->second.file;
}

os::FileSystem* DataNode::FsOf(uint64_t block_id) const {
  auto it = blocks_.find(block_id);
  return it == blocks_.end() ? nullptr : it->second.fs;
}

Status DataNode::DeleteBlock(uint64_t block_id) {
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    return Status::NotFound("block not on this node: " +
                            std::to_string(block_id));
  }
  Status s = it->second.fs->Delete(BlockFileName(block_id));
  blocks_.erase(it);
  return s;
}

}  // namespace bdio::hdfs
