#ifndef BDIO_HDFS_HDFS_H_
#define BDIO_HDFS_HDFS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "hdfs/data_node.h"
#include "hdfs/name_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bdio::hdfs {

/// HDFS configuration (Hadoop-1 defaults).
struct HdfsParams {
  uint64_t block_bytes = MiB(64);
  uint32_t replication = 3;
  /// Client streaming granularity. Real DFS packets are 64 KiB; 1 MiB keeps
  /// event counts tractable without changing disk-visible sequentiality.
  uint64_t chunk_bytes = MiB(1);
};

/// Completion callback carrying the operation outcome.
using DoneCallback = std::function<void(Status)>;

/// The distributed filesystem simulator: a NameNode plus one DataNode per
/// worker. Client writes stream blocks through a replica pipeline (first
/// replica local, others over the network); client reads prefer a local
/// replica. The large sequential block I/O the paper observes on the "HDFS
/// disks" is produced here.
class Hdfs {
 public:
  Hdfs(cluster::Cluster* cluster, const HdfsParams& params, Rng rng);

  Hdfs(const Hdfs&) = delete;
  Hdfs& operator=(const Hdfs&) = delete;

  NameNode* name_node() { return name_node_.get(); }
  DataNode* data_node(uint32_t i) { return data_nodes_[i].get(); }
  const HdfsParams& params() const { return params_; }

  /// Attaches observability sinks (either may be null): block reads/writes
  /// become spans carrying the caller's flow through every chunk, and the
  /// registry gains block counts, per-pipeline-stage bytes, and
  /// local/remote read bytes.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

  /// Creates `path` and streams `bytes` into it from worker `writer`,
  /// block by block through replica pipelines. `done` fires after the last
  /// replica of the last block has been handed to the page caches (HDFS-1
  /// close() semantics: no fsync).
  void Write(const std::string& path, uint64_t bytes, uint32_t writer,
             DoneCallback done);

  /// Write with a per-file replication factor (e.g. TeraSort output uses 1).
  void WriteReplicated(const std::string& path, uint64_t bytes,
                       uint32_t writer, uint32_t replication,
                       DoneCallback done);

  /// Streams [offset, offset+len) of `path` into worker `reader`, using a
  /// local replica when one exists.
  void Read(const std::string& path, uint64_t offset, uint64_t len,
            uint32_t reader, DoneCallback done);

  /// Reads the whole file.
  void ReadAll(const std::string& path, uint32_t reader, DoneCallback done);

  /// Deletes the file and its block replicas.
  Status Delete(const std::string& path);

  /// Materializes `path` (size `bytes`) as cold on-disk data spread round-
  /// robin across the cluster — the state an input dataset is in before an
  /// experiment begins. No simulated I/O is performed.
  Status Preload(const std::string& path, uint64_t bytes);

  /// Block locations of a file (for locality-aware split scheduling).
  Result<std::vector<BlockLocation>> Locations(const std::string& path) const;

 private:
  struct WriteOp;
  struct ReadOp;
  struct ReplicaStream;
  struct BlockReadStream;
  friend struct WriteOp;

  void WriteNextBlock(std::shared_ptr<WriteOp> op);
  void WriteChunk(std::shared_ptr<ReplicaStream> st, uint64_t offset);
  void ReadNextBlock(std::shared_ptr<ReadOp> op);
  void ReadChunk(std::shared_ptr<ReadOp> op,
                 std::shared_ptr<BlockReadStream> st, uint64_t pos);
  /// Bytes absorbed by pipeline stage `r` (0 = first replica); null when
  /// no registry is attached. Grown lazily since replication is per-file.
  obs::Counter* PipelineStageCounter(size_t stage);

  cluster::Cluster* cluster_;
  HdfsParams params_;
  Rng rng_;
  std::unique_ptr<NameNode> name_node_;
  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  uint64_t preload_rr_ = 0;

  // Observability sinks; null (the default) adds one pointer test per op.
  obs::TraceSession* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_blocks_written_ = nullptr;
  obs::Counter* m_blocks_read_ = nullptr;
  obs::Counter* m_read_local_bytes_ = nullptr;
  obs::Counter* m_read_remote_bytes_ = nullptr;
  std::vector<obs::Counter*> m_pipeline_stage_;
};

}  // namespace bdio::hdfs

#endif  // BDIO_HDFS_HDFS_H_
