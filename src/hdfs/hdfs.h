#ifndef BDIO_HDFS_HDFS_H_
#define BDIO_HDFS_HDFS_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/units.h"
#include "hdfs/data_node.h"
#include "hdfs/name_node.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace bdio::hdfs {

/// HDFS configuration (Hadoop-1 defaults).
struct HdfsParams {
  Bytes block_bytes = Bytes(MiB(64));
  uint32_t replication = 3;
  /// Client streaming granularity. Real DFS packets are 64 KiB; 1 MiB keeps
  /// event counts tractable without changing disk-visible sequentiality.
  Bytes chunk_bytes = Bytes(MiB(1));
  /// Concurrent re-replication streams cluster-wide (the NameNode paces
  /// recovery so it does not swamp foreground traffic).
  uint32_t max_rereplication_streams = 2;
  /// How long a re-replication attempt waits before retrying a block whose
  /// only surviving replica is still being written.
  SimDuration rereplication_retry_delay = Millis(500);
};

/// Completion callback carrying the operation outcome.
using DoneCallback = std::function<void(Status)>;

/// The distributed filesystem simulator: a NameNode plus one DataNode per
/// worker. Client writes stream blocks through a replica pipeline (first
/// replica local, others over the network); client reads prefer a local
/// replica. The large sequential block I/O the paper observes on the "HDFS
/// disks" is produced here.
///
/// Fault semantics (see docs/FAULTS.md): InjectDataNodeFailure marks a node
/// dead, strikes its replicas and queues paced re-replication copies;
/// in-flight write pipelines splice dead stages out; readers fail over to a
/// surviving replica; CorruptReplica plants a checksum failure that the next
/// reader detects and repairs. With no fault ever injected, every code path
/// below is bit-exact with the pre-fault model.
class Hdfs {
 public:
  Hdfs(cluster::Cluster* cluster, const HdfsParams& params, Rng rng);

  Hdfs(const Hdfs&) = delete;
  Hdfs& operator=(const Hdfs&) = delete;

  NameNode* name_node() { return name_node_.get(); }
  DataNode* data_node(uint32_t i) { return data_nodes_[i].get(); }
  const HdfsParams& params() const { return params_; }

  /// Attaches observability sinks (either may be null): block reads/writes
  /// become spans carrying the caller's flow through every chunk, and the
  /// registry gains block counts, per-pipeline-stage bytes, local/remote
  /// read bytes, and the hdfs.rereplication.* recovery counters.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

  /// Creates `path` and streams `bytes` into it from worker `writer`,
  /// block by block through replica pipelines. `done` fires after the last
  /// replica of the last block has been handed to the page caches (HDFS-1
  /// close() semantics: no fsync).
  void Write(const std::string& path, uint64_t bytes, uint32_t writer,
             DoneCallback done);

  /// Write with a per-file replication factor (e.g. TeraSort output uses 1).
  void WriteReplicated(const std::string& path, uint64_t bytes,
                       uint32_t writer, uint32_t replication,
                       DoneCallback done);

  /// Streams [offset, offset+len) of `path` into worker `reader`, using a
  /// local replica when one exists.
  void Read(const std::string& path, uint64_t offset, uint64_t len,
            uint32_t reader, DoneCallback done);

  /// Reads the whole file.
  void ReadAll(const std::string& path, uint32_t reader, DoneCallback done);

  /// Deletes the file and its block replicas.
  Status Delete(const std::string& path);

  /// Materializes `path` (size `bytes`) as cold on-disk data spread round-
  /// robin across the cluster — the state an input dataset is in before an
  /// experiment begins. No simulated I/O is performed.
  Status Preload(const std::string& path, uint64_t bytes);

  /// Block locations of a file (for locality-aware split scheduling).
  Result<std::vector<BlockLocation>> Locations(const std::string& path) const;

  // -------------------------------------------------------------------------
  // Fault injection & recovery
  // -------------------------------------------------------------------------

  /// Kills DataNode `node`: the NameNode marks it dead, strikes its replicas
  /// from every block, and enqueues paced re-replication for each
  /// under-replicated block (source: a surviving replica; target: a live
  /// node without one). In-flight pipelines and reads touching the node
  /// recover at their next chunk boundary. Idempotent. Callers that also
  /// run MapReduce must separately tell the engine (see
  /// faults::FaultInjector, which drives both).
  void InjectDataNodeFailure(uint32_t node);

  /// Plants silent corruption in replica `replica_idx` of block `block_idx`
  /// of `path`. The next reader served from that replica fails its checksum
  /// on the first chunk, strikes the replica, re-reads from another holder,
  /// and queues a re-replication repair.
  Status CorruptReplica(const std::string& path, size_t block_idx,
                        size_t replica_idx);

  // Recovery counters — plain fields always maintained (tests and benches
  // read them without a registry); mirrored into hdfs.rereplication.* /
  // hdfs.recovery.* registry counters when AttachObs was given one.
  uint64_t rereplicated_blocks() const { return rereplicated_blocks_; }
  uint64_t rereplicated_bytes() const { return rereplicated_bytes_; }
  uint64_t lost_replicas() const { return lost_replicas_; }
  uint64_t unrecoverable_blocks() const { return unrecoverable_blocks_; }
  uint64_t pipeline_recoveries() const { return pipeline_recoveries_; }
  uint64_t read_failovers() const { return read_failovers_; }
  uint64_t checksum_failures() const { return checksum_failures_; }
  /// Repairs not yet finished: queued, streaming, or parked in a retry
  /// delay (a deferred task lives only in a pending ScheduleAfter closure,
  /// so without repl_deferred_ it would vanish from this count while the
  /// recovery is still outstanding — fooling quiescence polls).
  size_t pending_rereplications() const {
    return repl_queue_.size() + repl_active_ + repl_deferred_;
  }

  /// Cross-checks the namespace (bdio::invariants): every block's replica
  /// holders are distinct live in-range nodes, none quarantined, replica
  /// count within [0, replication target], and active re-replication
  /// streams within their cap. Returns "" when every invariant holds.
  std::string AuditInvariants() const;

 private:
  struct WriteOp;
  struct ReadOp;
  struct ReplicaStream;
  struct BlockReadStream;
  struct ReplStream;
  friend struct WriteOp;

  void WriteNextBlock(std::shared_ptr<WriteOp> op);
  void WriteChunk(std::shared_ptr<ReplicaStream> st, uint64_t offset);
  void ReadNextBlock(std::shared_ptr<ReadOp> op);
  void ReadChunk(std::shared_ptr<ReadOp> op,
                 std::shared_ptr<BlockReadStream> st, uint64_t pos);
  /// Checksum failure on `st`: strike and quarantine the bad replica, queue
  /// a repair, and restart the block range on another holder.
  void OnChecksumFailure(std::shared_ptr<ReadOp> op,
                         std::shared_ptr<BlockReadStream> st);
  /// Bytes absorbed by pipeline stage `r` (0 = first replica); null when
  /// no registry is attached. Grown lazily since replication is per-file.
  obs::Counter* PipelineStageCounter(size_t stage);

  // Re-replication machinery. One block repair per task; bounded by
  // params_.max_rereplication_streams concurrent copy streams.
  struct ReplTask {
    std::string path;
    uint64_t block_id = 0;
    /// Attempts deferred because the only intact source was still being
    /// written; bounded so a block whose writer died (and whose surviving
    /// copies will never complete) is declared unrecoverable instead of
    /// retrying forever and keeping the simulation alive.
    uint32_t deferrals = 0;
  };
  void EnqueueReplication(std::string path, uint64_t block_id);
  void PumpReplication();
  void StartReplication(ReplTask task);
  void ReplicationChunk(std::shared_ptr<ReplStream> st);
  void FinishReplication(std::shared_ptr<ReplStream> st, bool success);

  cluster::Cluster* cluster_;
  HdfsParams params_;
  Rng rng_;
  std::unique_ptr<NameNode> name_node_;
  std::vector<std::unique_ptr<DataNode>> data_nodes_;
  uint64_t preload_rr_ = 0;

  std::deque<ReplTask> repl_queue_;
  uint32_t repl_active_ = 0;
  uint32_t repl_deferred_ = 0;  ///< Tasks waiting out a retry delay.
  /// Planted-but-undetected corruption, keyed (block_id, holder).
  std::set<std::pair<uint64_t, uint32_t>> corrupt_;
  /// Replicas struck from the namespace whose physical block file is left
  /// in place (deferred deletion; in-flight readers may still hold it).
  /// Excluded from re-replication target choice.
  std::set<std::pair<uint64_t, uint32_t>> quarantined_;

  uint64_t rereplicated_blocks_ = 0;
  uint64_t rereplicated_bytes_ = 0;
  uint64_t lost_replicas_ = 0;
  uint64_t unrecoverable_blocks_ = 0;
  uint64_t pipeline_recoveries_ = 0;
  uint64_t read_failovers_ = 0;
  uint64_t checksum_failures_ = 0;

  // Observability sinks; null (the default) adds one pointer test per op.
  obs::TraceSession* trace_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Counter* m_blocks_written_ = nullptr;
  obs::Counter* m_blocks_read_ = nullptr;
  obs::Counter* m_read_local_bytes_ = nullptr;
  obs::Counter* m_read_remote_bytes_ = nullptr;
  obs::Counter* m_repl_blocks_ = nullptr;
  obs::Counter* m_repl_bytes_ = nullptr;
  obs::Counter* m_lost_replicas_ = nullptr;
  obs::Counter* m_unrecoverable_ = nullptr;
  obs::Counter* m_pipeline_recoveries_ = nullptr;
  obs::Counter* m_read_failovers_ = nullptr;
  obs::Counter* m_checksum_failures_ = nullptr;
  std::vector<obs::Counter*> m_pipeline_stage_;
};

}  // namespace bdio::hdfs

#endif  // BDIO_HDFS_HDFS_H_
