#include "hdfs/hdfs.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::hdfs {

Hdfs::Hdfs(cluster::Cluster* cluster, const HdfsParams& params, Rng rng)
    : cluster_(cluster), params_(params), rng_(rng) {
  BDIO_CHECK(cluster != nullptr);
  BDIO_CHECK(params.block_bytes > 0);
  BDIO_CHECK(params.chunk_bytes > 0);
  name_node_ = std::make_unique<NameNode>(cluster->num_workers(),
                                          params.replication, rng_.Fork());
  for (uint32_t i = 0; i < cluster->num_workers(); ++i) {
    data_nodes_.push_back(std::make_unique<DataNode>(cluster->node(i)));
  }
}

void Hdfs::AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  if (metrics == nullptr) return;
  m_blocks_written_ = metrics->GetCounter("hdfs.blocks_written");
  m_blocks_read_ = metrics->GetCounter("hdfs.blocks_read");
  m_read_local_bytes_ = metrics->GetCounter("hdfs.read_local_bytes");
  m_read_remote_bytes_ = metrics->GetCounter("hdfs.read_remote_bytes");
}

obs::Counter* Hdfs::PipelineStageCounter(size_t stage) {
  if (metrics_ == nullptr) return nullptr;
  while (m_pipeline_stage_.size() <= stage) {
    m_pipeline_stage_.push_back(metrics_->GetCounter(
        "hdfs.pipeline_bytes",
        {{"stage", std::to_string(m_pipeline_stage_.size())}}));
  }
  return m_pipeline_stage_[stage];
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

struct Hdfs::WriteOp {
  std::string path;
  uint64_t total_bytes;
  uint32_t writer;
  uint32_t replication;
  DoneCallback done;
  uint64_t written = 0;  ///< Bytes of completed blocks.
  uint64_t flow = 0;     ///< Caller's trace flow, carried into every block.
};

/// State of one replica leg of a block-write pipeline.
struct Hdfs::ReplicaStream {
  os::FileSystem* fs;
  os::File* file;
  uint32_t holder;
  uint32_t upstream;
  bool local;
  uint64_t block_bytes;
  std::function<void()> done;
  obs::Counter* stage_bytes = nullptr;  ///< Pipeline-stage byte counter.
  uint64_t flow = 0;
};

/// State of one block's streaming read.
struct Hdfs::BlockReadStream {
  os::FileSystem* fs;
  os::File* file;
  uint32_t holder;
  bool remote;
  uint64_t in_end;
  uint64_t span = 0;  ///< block-read span, ended when the stream finishes.
};


void Hdfs::Write(const std::string& path, uint64_t bytes, uint32_t writer,
                 DoneCallback done) {
  WriteReplicated(path, bytes, writer, params_.replication, std::move(done));
}

void Hdfs::WriteReplicated(const std::string& path, uint64_t bytes,
                           uint32_t writer, uint32_t replication,
                           DoneCallback done) {
  BDIO_CHECK(writer < cluster_->num_workers());
  BDIO_CHECK(replication >= 1);
  auto entry = name_node_->CreateFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        0, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  auto op = std::make_shared<WriteOp>();
  op->path = path;
  op->total_bytes = bytes;
  op->writer = writer;
  op->replication = replication;
  op->done = std::move(done);
  if (trace_) op->flow = trace_->current_flow();
  if (bytes == 0) {
    name_node_->GetMutableFile(path).value()->complete = true;
    cluster_->sim()->ScheduleAfter(0, [op] { op->done(Status::OK()); });
    return;
  }
  WriteNextBlock(std::move(op));
}

void Hdfs::WriteNextBlock(std::shared_ptr<WriteOp> op) {
  sim::Simulator* sim = cluster_->sim();
  if (op->written >= op->total_bytes) {
    FileEntry* entry = name_node_->GetMutableFile(op->path).value();
    entry->complete = true;
    sim->ScheduleAfter(0, [op] { op->done(Status::OK()); });
    return;
  }
  const uint64_t block_bytes =
      std::min(params_.block_bytes, op->total_bytes - op->written);
  BlockLocation loc =
      name_node_->AllocateBlock(op->writer, block_bytes, op->replication);
  FileEntry* entry = name_node_->GetMutableFile(op->path).value();
  entry->blocks.push_back(loc);
  entry->bytes += block_bytes;
  op->written += block_bytes;

  uint64_t span = 0;
  if (trace_) {
    span = trace_->BeginSpan(
        op->writer + 1, "hdfs", "block-write",
        "{\"block\":" + std::to_string(loc.block_id) + ",\"bytes\":" +
            std::to_string(block_bytes) + ",\"replicas\":" +
            std::to_string(loc.nodes.size()) + "}");
    trace_->FlowStep(op->flow, op->writer + 1);
  }
  if (m_blocks_written_) m_blocks_written_->Inc();

  // One latch arm per replica stream; the block is done when every replica
  // has absorbed all chunks.
  auto block_done = sim::Latch::Create(loc.nodes.size(), [this, op, span] {
    if (trace_) trace_->EndSpan(span);
    WriteNextBlock(op);
  });

  for (size_t r = 0; r < loc.nodes.size(); ++r) {
    const uint32_t holder = loc.nodes[r];
    auto file_or = data_nodes_[holder]->CreateBlock(loc.block_id);
    BDIO_CHECK(file_or.ok()) << file_or.status().ToString();

    auto st = std::make_shared<ReplicaStream>();
    st->fs = data_nodes_[holder]->FsOf(loc.block_id);
    st->file = file_or.value();
    st->holder = holder;
    // Upstream of replica r in the pipeline (the client for r == 0).
    st->upstream = r == 0 ? op->writer : loc.nodes[r - 1];
    st->local = r == 0 && st->upstream == holder;
    st->block_bytes = block_bytes;
    st->done = block_done->Arm();
    st->stage_bytes = PipelineStageCounter(r);
    st->flow = op->flow;
    WriteChunk(std::move(st), 0);
  }
}

void Hdfs::WriteChunk(std::shared_ptr<ReplicaStream> st, uint64_t offset) {
  if (offset >= st->block_bytes) {
    st->done();
    return;
  }
  const uint64_t n = std::min(params_.chunk_bytes, st->block_bytes - offset);
  if (st->stage_bytes) st->stage_bytes->Add(n);
  auto append = [this, st, offset, n] {
    obs::FlowScope flow_scope(trace_, st->flow);
    st->fs->Append(st->file, n, [this, st, offset, n] {
      WriteChunk(st, offset + n);
    });
  };
  if (st->local) {
    append();
  } else {
    obs::FlowScope flow_scope(trace_, st->flow);
    cluster_->network()->Transfer(st->upstream, st->holder, n,
                                  std::move(append));
  }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

struct Hdfs::ReadOp {
  std::string path;
  uint32_t reader;
  DoneCallback done;
  std::vector<BlockLocation> blocks;
  std::vector<uint64_t> block_offsets;  ///< Start offset of each block.
  uint64_t begin;                       ///< Remaining range to read.
  uint64_t end;
  size_t next_block = 0;
  uint64_t flow = 0;  ///< Caller's trace flow, carried into every block.
};

void Hdfs::Read(const std::string& path, uint64_t offset, uint64_t len,
                uint32_t reader, DoneCallback done) {
  BDIO_CHECK(reader < cluster_->num_workers());
  auto entry = name_node_->GetFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        0, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  const FileEntry* file = entry.value();
  if (offset + len > file->bytes) {
    cluster_->sim()->ScheduleAfter(0, [done = std::move(done)] {
      done(Status::OutOfRange("hdfs read past EOF"));
    });
    return;
  }
  auto op = std::make_shared<ReadOp>();
  op->path = path;
  op->reader = reader;
  op->done = std::move(done);
  op->begin = offset;
  op->end = offset + len;
  if (trace_) op->flow = trace_->current_flow();
  uint64_t off = 0;
  for (const BlockLocation& b : file->blocks) {
    op->blocks.push_back(b);
    op->block_offsets.push_back(off);
    off += b.bytes;
  }
  if (len == 0) {
    cluster_->sim()->ScheduleAfter(0, [op] { op->done(Status::OK()); });
    return;
  }
  ReadNextBlock(std::move(op));
}

void Hdfs::ReadNextBlock(std::shared_ptr<ReadOp> op) {
  sim::Simulator* sim = cluster_->sim();
  // Find the next block overlapping [begin, end).
  while (op->next_block < op->blocks.size()) {
    const BlockLocation& b = op->blocks[op->next_block];
    const uint64_t b_start = op->block_offsets[op->next_block];
    const uint64_t b_end = b_start + b.bytes;
    if (b_end <= op->begin) {
      ++op->next_block;
      continue;
    }
    if (b_start >= op->end) break;
    // Range within this block.
    const uint64_t in_start = std::max(op->begin, b_start) - b_start;
    const uint64_t in_end = std::min(op->end, b_end) - b_start;
    ++op->next_block;

    // Replica choice: local if present, else random.
    uint32_t holder = b.nodes[rng_.Uniform(b.nodes.size())];
    for (uint32_t n : b.nodes) {
      if (n == op->reader) {
        holder = n;
        break;
      }
    }
    auto file_or = data_nodes_[holder]->GetBlock(b.block_id);
    BDIO_CHECK(file_or.ok()) << file_or.status().ToString();

    auto st = std::make_shared<BlockReadStream>();
    st->fs = data_nodes_[holder]->FsOf(b.block_id);
    st->file = file_or.value();
    st->holder = holder;
    st->remote = holder != op->reader;
    st->in_end = in_end;
    if (trace_) {
      st->span = trace_->BeginSpan(
          holder + 1, "hdfs", "block-read",
          "{\"block\":" + std::to_string(b.block_id) + ",\"bytes\":" +
              std::to_string(in_end - in_start) + ",\"remote\":" +
              (st->remote ? "true" : "false") + "}");
      trace_->FlowStep(op->flow, holder + 1);
    }
    if (m_blocks_read_) m_blocks_read_->Inc();
    ReadChunk(std::move(op), std::move(st), in_start);
    return;  // continue from the stream's completion
  }
  sim->ScheduleAfter(0, [op] { op->done(Status::OK()); });
}

void Hdfs::ReadChunk(std::shared_ptr<ReadOp> op,
                     std::shared_ptr<BlockReadStream> st, uint64_t pos) {
  if (pos >= st->in_end) {
    if (trace_) trace_->EndSpan(st->span);
    ReadNextBlock(std::move(op));
    return;
  }
  const uint64_t n = std::min(params_.chunk_bytes, st->in_end - pos);
  if (m_read_local_bytes_) {
    (st->remote ? m_read_remote_bytes_ : m_read_local_bytes_)->Add(n);
  }
  obs::FlowScope flow_scope(trace_, op->flow);
  st->fs->Read(st->file, pos, n, [this, op, st, pos, n] {
    auto next = [this, op, st, pos, n] { ReadChunk(op, st, pos + n); };
    if (st->remote) {
      obs::FlowScope flow_scope(trace_, op->flow);
      cluster_->network()->Transfer(st->holder, op->reader, n,
                                    std::move(next));
    } else {
      next();
    }
  });
}

void Hdfs::ReadAll(const std::string& path, uint32_t reader,
                   DoneCallback done) {
  auto entry = name_node_->GetFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        0, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  Read(path, 0, entry.value()->bytes, reader, std::move(done));
}

// ---------------------------------------------------------------------------

Status Hdfs::Delete(const std::string& path) {
  BDIO_ASSIGN_OR_RETURN(const FileEntry* entry, name_node_->GetFile(path));
  for (const BlockLocation& b : entry->blocks) {
    for (uint32_t n : b.nodes) {
      BDIO_RETURN_IF_ERROR(data_nodes_[n]->DeleteBlock(b.block_id));
    }
  }
  return name_node_->Remove(path);
}

Status Hdfs::Preload(const std::string& path, uint64_t bytes) {
  BDIO_ASSIGN_OR_RETURN(FileEntry * entry, name_node_->CreateFile(path));
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const uint64_t block_bytes = std::min(params_.block_bytes, remaining);
    const uint32_t writer =
        static_cast<uint32_t>(preload_rr_++ % cluster_->num_workers());
    BlockLocation loc = name_node_->AllocateBlock(writer, block_bytes);
    for (uint32_t n : loc.nodes) {
      auto file = data_nodes_[n]->CreateExistingBlock(loc.block_id,
                                                      block_bytes);
      BDIO_RETURN_IF_ERROR(file.status());
    }
    entry->blocks.push_back(loc);
    entry->bytes += block_bytes;
    remaining -= block_bytes;
  }
  entry->complete = true;
  return Status::OK();
}

Result<std::vector<BlockLocation>> Hdfs::Locations(
    const std::string& path) const {
  BDIO_ASSIGN_OR_RETURN(const FileEntry* entry, name_node_->GetFile(path));
  return entry->blocks;
}

}  // namespace bdio::hdfs
