#include "hdfs/hdfs.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "sim/latch.h"

namespace bdio::hdfs {

Hdfs::Hdfs(cluster::Cluster* cluster, const HdfsParams& params, Rng rng)
    : cluster_(cluster), params_(params), rng_(rng) {
  BDIO_CHECK(cluster != nullptr);
  BDIO_CHECK(params.block_bytes > Bytes{});
  BDIO_CHECK(params.chunk_bytes > Bytes{});
  BDIO_CHECK(params.max_rereplication_streams > 0);
  name_node_ = std::make_unique<NameNode>(cluster->num_workers(),
                                          params.replication, rng_.Fork());
  for (uint32_t i = 0; i < cluster->num_workers(); ++i) {
    data_nodes_.push_back(std::make_unique<DataNode>(cluster->node(i)));
  }
}

void Hdfs::AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics) {
  trace_ = trace;
  metrics_ = metrics;
  if (metrics == nullptr) return;
  m_blocks_written_ = metrics->GetCounter("hdfs.blocks_written");
  m_blocks_read_ = metrics->GetCounter("hdfs.blocks_read");
  m_read_local_bytes_ = metrics->GetCounter("hdfs.read_local_bytes");
  m_read_remote_bytes_ = metrics->GetCounter("hdfs.read_remote_bytes");
  m_repl_blocks_ = metrics->GetCounter("hdfs.rereplication.blocks");
  m_repl_bytes_ = metrics->GetCounter("hdfs.rereplication.bytes");
  m_lost_replicas_ = metrics->GetCounter("hdfs.rereplication.lost_replicas");
  m_unrecoverable_ =
      metrics->GetCounter("hdfs.rereplication.unrecoverable_blocks");
  m_pipeline_recoveries_ =
      metrics->GetCounter("hdfs.recovery.pipeline_recoveries");
  m_read_failovers_ = metrics->GetCounter("hdfs.recovery.read_failovers");
  m_checksum_failures_ =
      metrics->GetCounter("hdfs.recovery.checksum_failures");
}

obs::Counter* Hdfs::PipelineStageCounter(size_t stage) {
  if (metrics_ == nullptr) return nullptr;
  while (m_pipeline_stage_.size() <= stage) {
    m_pipeline_stage_.push_back(metrics_->GetCounter(
        "hdfs.pipeline_bytes",
        {{"stage", std::to_string(m_pipeline_stage_.size())}}));
  }
  return m_pipeline_stage_[stage];
}

// ---------------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------------

struct Hdfs::WriteOp {
  std::string path;
  uint64_t total_bytes = 0;
  uint32_t writer = 0;
  uint32_t replication = 0;
  DoneCallback done;
  uint64_t written = 0;  ///< Bytes of completed blocks.
  uint64_t flow = 0;     ///< Caller's trace flow, carried into every block.
};

/// State of one replica leg of a block-write pipeline.
struct Hdfs::ReplicaStream {
  os::FileSystem* fs = nullptr;
  os::File* file = nullptr;
  std::string path;
  uint64_t block_id = 0;
  uint32_t holder = 0;
  uint32_t upstream = 0;
  uint32_t writer = 0;             ///< Client; recovery source of last resort.
  std::vector<uint32_t> pipeline;  ///< Full replica chain of this block.
  size_t replica_idx = 0;          ///< This leg's position in the chain.
  bool local = false;
  uint64_t block_bytes = 0;
  InlineFn done;
  obs::Counter* stage_bytes = nullptr;  ///< Pipeline-stage byte counter.
  uint64_t flow = 0;
};

/// State of one block's streaming read.
struct Hdfs::BlockReadStream {
  os::FileSystem* fs = nullptr;
  os::File* file = nullptr;
  uint32_t holder = 0;
  bool remote = false;
  bool corrupt = false;  ///< Holder's replica fails its checksum.
  uint64_t block_id = 0;
  size_t block_idx = 0;  ///< Index into ReadOp::blocks.
  uint64_t in_end = 0;
  uint64_t span = 0;  ///< block-read span, ended when the stream finishes.
};


void Hdfs::Write(const std::string& path, uint64_t bytes, uint32_t writer,
                 DoneCallback done) {
  WriteReplicated(path, bytes, writer, params_.replication, std::move(done));
}

void Hdfs::WriteReplicated(const std::string& path, uint64_t bytes,
                           uint32_t writer, uint32_t replication,
                           DoneCallback done) {
  BDIO_CHECK(writer < cluster_->num_workers());
  BDIO_CHECK(replication >= 1);
  auto entry = name_node_->CreateFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        SimDuration{}, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  auto op = std::make_shared<WriteOp>();
  op->path = path;
  op->total_bytes = bytes;
  op->writer = writer;
  op->replication = replication;
  op->done = std::move(done);
  if (trace_) op->flow = trace_->current_flow();
  if (bytes == 0) {
    name_node_->GetMutableFile(path).value()->complete = true;
    cluster_->sim()->ScheduleAfter(SimDuration{}, [op] { op->done(Status::OK()); });
    return;
  }
  WriteNextBlock(std::move(op));
}

void Hdfs::WriteNextBlock(std::shared_ptr<WriteOp> op) {
  sim::Simulator* sim = cluster_->sim();
  if (op->written >= op->total_bytes) {
    FileEntry* entry = name_node_->GetMutableFile(op->path).value();
    entry->complete = true;
    sim->ScheduleAfter(SimDuration{}, [op] { op->done(Status::OK()); });
    return;
  }
  const uint64_t block_bytes =
      std::min(params_.block_bytes.bytes(), op->total_bytes - op->written);
  BlockLocation loc =
      name_node_->AllocateBlock(op->writer, block_bytes, op->replication);
  FileEntry* entry = name_node_->GetMutableFile(op->path).value();
  entry->blocks.push_back(loc);
  entry->bytes += block_bytes;
  op->written += block_bytes;

  uint64_t span = 0;
  if (trace_) {
    span = trace_->BeginSpan(
        op->writer + 1, "hdfs", "block-write",
        "{\"block\":" + std::to_string(loc.block_id) + ",\"bytes\":" +
            std::to_string(block_bytes) + ",\"replicas\":" +
            std::to_string(loc.nodes.size()) + "}");
    trace_->FlowStep(op->flow, op->writer + 1);
  }
  if (m_blocks_written_) m_blocks_written_->Inc();

  // One latch arm per replica stream; the block is done when every replica
  // has absorbed all chunks (or abandoned its leg after a DataNode death).
  auto block_done = sim::Latch::Create(loc.nodes.size(), [this, op, span] {
    if (trace_) trace_->EndSpan(span);
    WriteNextBlock(op);
  });

  for (size_t r = 0; r < loc.nodes.size(); ++r) {
    const uint32_t holder = loc.nodes[r];
    auto file_or = data_nodes_[holder]->CreateBlock(loc.block_id);
    BDIO_CHECK(file_or.ok()) << file_or.status().ToString();

    auto st = std::make_shared<ReplicaStream>();
    st->fs = data_nodes_[holder]->FsOf(loc.block_id);
    st->file = file_or.value();
    st->path = op->path;
    st->block_id = loc.block_id;
    st->holder = holder;
    // Upstream of replica r in the pipeline (the client for r == 0).
    st->upstream = r == 0 ? op->writer : loc.nodes[r - 1];
    st->writer = op->writer;
    st->pipeline = loc.nodes;
    st->replica_idx = r;
    st->local = r == 0 && st->upstream == holder;
    st->block_bytes = block_bytes;
    st->done = block_done->Arm();
    st->stage_bytes = PipelineStageCounter(r);
    st->flow = op->flow;
    WriteChunk(std::move(st), 0);
  }
}

void Hdfs::WriteChunk(std::shared_ptr<ReplicaStream> st, uint64_t offset) {
  if (offset >= st->block_bytes) {
    st->done();
    return;
  }
  if (name_node_->node_dead(st->holder)) {
    // The receiving DataNode died mid-block: the leg is abandoned. Its
    // replica was already struck from the namespace at injection time;
    // re-replication repairs the count once the block completes elsewhere.
    ++pipeline_recoveries_;
    if (m_pipeline_recoveries_) m_pipeline_recoveries_->Inc();
    st->done();
    return;
  }
  if (!st->local && name_node_->node_dead(st->upstream)) {
    // An upstream pipeline stage died: splice it out and stream from the
    // nearest live predecessor, ultimately the writing client itself.
    uint32_t source = st->writer;
    for (size_t i = st->replica_idx; i-- > 0;) {
      if (!name_node_->node_dead(st->pipeline[i])) {
        source = st->pipeline[i];
        break;
      }
    }
    if (name_node_->node_dead(source)) {
      // Even the client is gone; nobody can feed this leg. Strike the
      // partial replica so readers never select it (the block file stays —
      // deferred deletion — but quarantined from re-replication).
      quarantined_.insert({st->block_id, st->holder});
      auto entry_or = name_node_->GetMutableFile(st->path);
      if (entry_or.ok()) {
        for (BlockLocation& loc : entry_or.value()->blocks) {
          if (loc.block_id != st->block_id) continue;
          auto it =
              std::find(loc.nodes.begin(), loc.nodes.end(), st->holder);
          if (it != loc.nodes.end()) loc.nodes.erase(it);
          break;
        }
      }
      ++lost_replicas_;
      if (m_lost_replicas_) m_lost_replicas_->Inc();
      st->done();
      return;
    }
    st->upstream = source;
    ++pipeline_recoveries_;
    if (m_pipeline_recoveries_) m_pipeline_recoveries_->Inc();
  }
  const uint64_t n = std::min(params_.chunk_bytes.bytes(), st->block_bytes - offset);
  if (st->stage_bytes) st->stage_bytes->Add(n);
  auto append = [this, st, offset, n] {
    obs::FlowScope flow_scope(trace_, st->flow);
    st->fs->Append(st->file, n, [this, st, offset, n] {
      WriteChunk(st, offset + n);
    });
  };
  if (st->local) {
    append();
  } else {
    obs::FlowScope flow_scope(trace_, st->flow);
    cluster_->network()->Transfer(st->upstream, st->holder, n,
                                  std::move(append));
  }
}

// ---------------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------------

struct Hdfs::ReadOp {
  std::string path;
  uint32_t reader = 0;
  DoneCallback done;
  std::vector<BlockLocation> blocks;
  std::vector<uint64_t> block_offsets;  ///< Start offset of each block.
  uint64_t begin = 0;                   ///< Remaining range to read.
  uint64_t end = 0;
  size_t next_block = 0;
  uint64_t flow = 0;  ///< Caller's trace flow, carried into every block.
};

void Hdfs::Read(const std::string& path, uint64_t offset, uint64_t len,
                uint32_t reader, DoneCallback done) {
  BDIO_CHECK(reader < cluster_->num_workers());
  auto entry = name_node_->GetFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        SimDuration{}, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  const FileEntry* file = entry.value();
  if (offset + len > file->bytes) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, [done = std::move(done)] {
      done(Status::OutOfRange("hdfs read past EOF"));
    });
    return;
  }
  auto op = std::make_shared<ReadOp>();
  op->path = path;
  op->reader = reader;
  op->done = std::move(done);
  op->begin = offset;
  op->end = offset + len;
  if (trace_) op->flow = trace_->current_flow();
  uint64_t off = 0;
  for (const BlockLocation& b : file->blocks) {
    op->blocks.push_back(b);
    op->block_offsets.push_back(off);
    off += b.bytes;
  }
  if (len == 0) {
    cluster_->sim()->ScheduleAfter(SimDuration{}, [op] { op->done(Status::OK()); });
    return;
  }
  ReadNextBlock(std::move(op));
}

void Hdfs::ReadNextBlock(std::shared_ptr<ReadOp> op) {
  sim::Simulator* sim = cluster_->sim();
  // Find the next block overlapping [begin, end).
  while (op->next_block < op->blocks.size()) {
    const size_t idx = op->next_block;
    const BlockLocation& b = op->blocks[idx];
    const uint64_t b_start = op->block_offsets[idx];
    const uint64_t b_end = b_start + b.bytes;
    if (b_end <= op->begin) {
      ++op->next_block;
      continue;
    }
    if (b_start >= op->end) break;
    // Range within this block.
    const uint64_t in_start = std::max(op->begin, b_start) - b_start;
    const uint64_t in_end = std::min(op->end, b_end) - b_start;
    ++op->next_block;

    // Replica choice among live holders: local if present, else random.
    // With no dead nodes the live list equals b.nodes, preserving the
    // healthy model's draw sequence exactly.
    std::vector<uint32_t> live;
    live.reserve(b.nodes.size());
    for (uint32_t n : b.nodes) {
      if (!name_node_->node_dead(n)) live.push_back(n);
    }
    if (live.empty()) {
      ++unrecoverable_blocks_;
      if (m_unrecoverable_) m_unrecoverable_->Inc();
      sim->ScheduleAfter(SimDuration{}, [op, id = b.block_id] {
        op->done(Status::IOError("hdfs: every replica of block " +
                                 std::to_string(id) + " is lost"));
      });
      return;
    }
    uint32_t holder = live[rng_.Uniform(live.size())];
    for (uint32_t n : live) {
      if (n == op->reader) {
        holder = n;
        break;
      }
    }
    auto file_or = data_nodes_[holder]->GetBlock(b.block_id);
    BDIO_CHECK(file_or.ok()) << file_or.status().ToString();

    auto st = std::make_shared<BlockReadStream>();
    st->fs = data_nodes_[holder]->FsOf(b.block_id);
    st->file = file_or.value();
    st->holder = holder;
    st->remote = holder != op->reader;
    st->corrupt =
        !corrupt_.empty() && corrupt_.contains({b.block_id, holder});
    st->block_id = b.block_id;
    st->block_idx = idx;
    st->in_end = in_end;
    if (trace_) {
      st->span = trace_->BeginSpan(
          holder + 1, "hdfs", "block-read",
          "{\"block\":" + std::to_string(b.block_id) + ",\"bytes\":" +
              std::to_string(in_end - in_start) + ",\"remote\":" +
              (st->remote ? "true" : "false") + "}");
      trace_->FlowStep(op->flow, holder + 1);
    }
    if (m_blocks_read_) m_blocks_read_->Inc();
    ReadChunk(std::move(op), std::move(st), in_start);
    return;  // continue from the stream's completion
  }
  sim->ScheduleAfter(SimDuration{}, [op] { op->done(Status::OK()); });
}

void Hdfs::ReadChunk(std::shared_ptr<ReadOp> op,
                     std::shared_ptr<BlockReadStream> st, uint64_t pos) {
  if (pos >= st->in_end) {
    if (trace_) trace_->EndSpan(st->span);
    ReadNextBlock(std::move(op));
    return;
  }
  if (name_node_->node_dead(st->holder)) {
    // The serving DataNode died mid-stream: fail over to another replica,
    // resuming at the current position.
    ++read_failovers_;
    if (m_read_failovers_) m_read_failovers_->Inc();
    if (trace_) trace_->EndSpan(st->span);
    op->begin = op->block_offsets[st->block_idx] + pos;
    op->next_block = st->block_idx;
    ReadNextBlock(std::move(op));
    return;
  }
  const uint64_t n = std::min(params_.chunk_bytes.bytes(), st->in_end - pos);
  if (m_read_local_bytes_) {
    (st->remote ? m_read_remote_bytes_ : m_read_local_bytes_)->Add(n);
  }
  obs::FlowScope flow_scope(trace_, op->flow);
  st->fs->Read(st->file, pos, n, [this, op, st, pos, n] {
    if (st->corrupt) {
      // The first packet off a corrupt replica fails its checksum; the
      // bytes just read are wasted and the whole range restarts elsewhere.
      OnChecksumFailure(std::move(op), std::move(st));
      return;
    }
    auto next = [this, op, st, pos, n] { ReadChunk(op, st, pos + n); };
    if (st->remote) {
      obs::FlowScope flow_scope(trace_, op->flow);
      cluster_->network()->Transfer(st->holder, op->reader, n,
                                    std::move(next));
    } else {
      next();
    }
  });
}

void Hdfs::OnChecksumFailure(std::shared_ptr<ReadOp> op,
                             std::shared_ptr<BlockReadStream> st) {
  ++checksum_failures_;
  ++lost_replicas_;
  if (m_checksum_failures_) m_checksum_failures_->Inc();
  if (m_lost_replicas_) m_lost_replicas_->Inc();
  corrupt_.erase({st->block_id, st->holder});
  // Strike the bad replica from the namespace. The physical block file is
  // left on the DataNode (other readers may be mid-stream on it) but
  // quarantined so re-replication never targets or sources it.
  quarantined_.insert({st->block_id, st->holder});
  auto entry_or = name_node_->GetMutableFile(op->path);
  if (entry_or.ok()) {
    for (BlockLocation& loc : entry_or.value()->blocks) {
      if (loc.block_id != st->block_id) continue;
      auto it = std::find(loc.nodes.begin(), loc.nodes.end(), st->holder);
      if (it != loc.nodes.end()) loc.nodes.erase(it);
      break;
    }
  }
  // Also strike it from this op's snapshot so the retry picks elsewhere.
  BlockLocation& local = op->blocks[st->block_idx];
  auto it = std::find(local.nodes.begin(), local.nodes.end(), st->holder);
  if (it != local.nodes.end()) local.nodes.erase(it);
  EnqueueReplication(op->path, st->block_id);
  if (trace_) trace_->EndSpan(st->span);
  op->next_block = st->block_idx;
  ReadNextBlock(std::move(op));
}

void Hdfs::ReadAll(const std::string& path, uint32_t reader,
                   DoneCallback done) {
  auto entry = name_node_->GetFile(path);
  if (!entry.ok()) {
    cluster_->sim()->ScheduleAfter(
        SimDuration{}, [done = std::move(done), s = entry.status()] { done(s); });
    return;
  }
  Read(path, 0, entry.value()->bytes, reader, std::move(done));
}

// ---------------------------------------------------------------------------

Status Hdfs::Delete(const std::string& path) {
  BDIO_ASSIGN_OR_RETURN(const FileEntry* entry, name_node_->GetFile(path));
  for (const BlockLocation& b : entry->blocks) {
    for (uint32_t n : b.nodes) {
      if (name_node_->node_dead(n)) continue;  // its blocks died with it
      BDIO_RETURN_IF_ERROR(data_nodes_[n]->DeleteBlock(b.block_id));
    }
  }
  return name_node_->Remove(path);
}

Status Hdfs::Preload(const std::string& path, uint64_t bytes) {
  BDIO_ASSIGN_OR_RETURN(FileEntry * entry, name_node_->CreateFile(path));
  uint64_t remaining = bytes;
  while (remaining > 0) {
    const uint64_t block_bytes = std::min(params_.block_bytes.bytes(), remaining);
    const uint32_t writer =
        static_cast<uint32_t>(preload_rr_++ % cluster_->num_workers());
    BlockLocation loc = name_node_->AllocateBlock(writer, block_bytes);
    for (uint32_t n : loc.nodes) {
      auto file = data_nodes_[n]->CreateExistingBlock(loc.block_id,
                                                      block_bytes);
      BDIO_RETURN_IF_ERROR(file.status());
    }
    entry->blocks.push_back(loc);
    entry->bytes += block_bytes;
    remaining -= block_bytes;
  }
  entry->complete = true;
  return Status::OK();
}

Result<std::vector<BlockLocation>> Hdfs::Locations(
    const std::string& path) const {
  BDIO_ASSIGN_OR_RETURN(const FileEntry* entry, name_node_->GetFile(path));
  return entry->blocks;
}

// ---------------------------------------------------------------------------
// Fault injection & recovery
// ---------------------------------------------------------------------------

void Hdfs::InjectDataNodeFailure(uint32_t node) {
  BDIO_CHECK(node < cluster_->num_workers());
  if (name_node_->node_dead(node)) return;
  name_node_->MarkDead(node);
  BDIO_CHECK(name_node_->num_live() > 0) << "hdfs: every DataNode is dead";
  auto lost = name_node_->RemoveReplicasOn(node);
  lost_replicas_ += lost.size();
  if (m_lost_replicas_) m_lost_replicas_->Add(lost.size());
  if (trace_) {
    trace_->Instant(node + 1, "faults", "datanode-dead",
                    "{\"node\":" + std::to_string(node) + ",\"replicas\":" +
                        std::to_string(lost.size()) + "}");
  }
  for (auto& [path, block_id] : lost) {
    EnqueueReplication(path, block_id);
  }
}

Status Hdfs::CorruptReplica(const std::string& path, size_t block_idx,
                            size_t replica_idx) {
  BDIO_ASSIGN_OR_RETURN(const FileEntry* entry, name_node_->GetFile(path));
  if (block_idx >= entry->blocks.size()) {
    return Status::OutOfRange("no block " + std::to_string(block_idx) +
                              " in " + path);
  }
  const BlockLocation& loc = entry->blocks[block_idx];
  if (replica_idx >= loc.nodes.size()) {
    return Status::OutOfRange("block has only " +
                              std::to_string(loc.nodes.size()) + " replicas");
  }
  corrupt_.insert({loc.block_id, loc.nodes[replica_idx]});
  return Status::OK();
}

void Hdfs::EnqueueReplication(std::string path, uint64_t block_id) {
  repl_queue_.push_back(ReplTask{std::move(path), block_id});
  PumpReplication();
}

void Hdfs::PumpReplication() {
  while (repl_active_ < params_.max_rereplication_streams &&
         !repl_queue_.empty()) {
    ReplTask task = std::move(repl_queue_.front());
    repl_queue_.pop_front();
    StartReplication(std::move(task));
  }
}

/// One re-replication copy stream: surviving replica -> network -> new
/// holder, chunk by chunk (the same extra HDFS-disk reads and pipeline
/// writes a real recovering cluster pays).
struct Hdfs::ReplStream {
  std::string path;
  uint64_t block_id = 0;
  uint32_t src = 0;
  uint32_t dst = 0;
  os::FileSystem* src_fs = nullptr;
  os::File* src_file = nullptr;
  os::FileSystem* dst_fs = nullptr;
  os::File* dst_file = nullptr;
  uint64_t bytes = 0;
  uint64_t pos = 0;
  uint64_t span = 0;
};

void Hdfs::StartReplication(ReplTask task) {
  auto entry_or = name_node_->GetMutableFile(task.path);
  if (!entry_or.ok()) return;  // file deleted since the block was queued
  BlockLocation* loc = nullptr;
  for (BlockLocation& b : entry_or.value()->blocks) {
    if (b.block_id == task.block_id) {
      loc = &b;
      break;
    }
  }
  if (loc == nullptr) return;
  const uint32_t want =
      loc->replication > 0 ? loc->replication : name_node_->replication();
  const uint32_t desired = std::min(want, name_node_->num_live());
  if (loc->nodes.size() >= desired) return;  // repaired in the meantime

  // Source: a live holder with an intact copy.
  const uint32_t none = cluster_->num_workers();
  uint32_t src = none;
  os::File* src_file = nullptr;
  for (uint32_t n : loc->nodes) {
    if (name_node_->node_dead(n)) continue;
    if (corrupt_.contains({task.block_id, n})) continue;
    if (!data_nodes_[n]->HasBlock(task.block_id)) continue;
    src = n;
    src_file = data_nodes_[n]->GetBlock(task.block_id).value();
    break;
  }
  if (src == none) {
    ++unrecoverable_blocks_;
    if (m_unrecoverable_) m_unrecoverable_->Inc();
    BDIO_LOG(Warning) << "hdfs: block " << task.block_id << " of "
                      << task.path << " has no intact replica left";
    return;
  }
  if (src_file->size() < loc->bytes) {
    // The surviving copy is still being streamed in (pipeline recovery in
    // progress); retry once it has had time to complete. A copy that never
    // completes — its writer died — is eventually declared unrecoverable.
    constexpr uint32_t kMaxDeferrals = 60;
    if (task.deferrals >= kMaxDeferrals) {
      ++unrecoverable_blocks_;
      if (m_unrecoverable_) m_unrecoverable_->Inc();
      BDIO_LOG(Warning) << "hdfs: block " << task.block_id << " of "
                        << task.path << " never completed; giving up";
      return;
    }
    ++task.deferrals;
    ++repl_deferred_;
    cluster_->sim()->ScheduleAfter(
        params_.rereplication_retry_delay,
        [this, task = std::move(task)]() mutable {
          BDIO_CHECK(repl_deferred_ > 0);
          --repl_deferred_;
          repl_queue_.push_back(std::move(task));
          PumpReplication();
        });
    return;
  }

  // Target: a live node holding neither a current nor a quarantined copy.
  std::vector<uint32_t> exclude = loc->nodes;
  for (uint32_t n = 0; n < none; ++n) {
    if (quarantined_.contains({task.block_id, n})) exclude.push_back(n);
  }
  auto target_or = name_node_->PickReplicationTarget(exclude);
  if (!target_or.ok()) return;  // nowhere to put another replica
  const uint32_t dst = target_or.value();
  auto dst_file_or = data_nodes_[dst]->CreateBlock(task.block_id);
  if (!dst_file_or.ok()) return;

  ++repl_active_;
  auto st = std::make_shared<ReplStream>();
  st->path = std::move(task.path);
  st->block_id = task.block_id;
  st->src = src;
  st->dst = dst;
  st->src_fs = data_nodes_[src]->FsOf(task.block_id);
  st->src_file = src_file;
  st->dst_fs = data_nodes_[dst]->FsOf(task.block_id);
  st->dst_file = dst_file_or.value();
  st->bytes = loc->bytes;
  if (trace_) {
    st->span = trace_->BeginSpan(
        dst + 1, "hdfs", "re-replicate",
        "{\"block\":" + std::to_string(st->block_id) + ",\"src\":" +
            std::to_string(src) + ",\"bytes\":" + std::to_string(st->bytes) +
            "}");
  }
  ReplicationChunk(std::move(st));
}

void Hdfs::ReplicationChunk(std::shared_ptr<ReplStream> st) {
  if (st->pos >= st->bytes) {
    FinishReplication(std::move(st), /*success=*/true);
    return;
  }
  if (name_node_->node_dead(st->src) || name_node_->node_dead(st->dst)) {
    FinishReplication(std::move(st), /*success=*/false);
    return;
  }
  const uint64_t n = std::min(params_.chunk_bytes.bytes(), st->bytes - st->pos);
  rereplicated_bytes_ += n;
  if (m_repl_bytes_) m_repl_bytes_->Add(n);
  st->src_fs->Read(st->src_file, st->pos, n, [this, st, n] {
    cluster_->network()->Transfer(st->src, st->dst, n, [this, st, n] {
      st->dst_fs->Append(st->dst_file, n, [this, st, n] {
        st->pos += n;
        ReplicationChunk(st);
      });
    });
  });
}

void Hdfs::FinishReplication(std::shared_ptr<ReplStream> st, bool success) {
  if (trace_) trace_->EndSpan(st->span);
  BDIO_CHECK(repl_active_ > 0);
  --repl_active_;
  if (success) {
    ++rereplicated_blocks_;
    if (m_repl_blocks_) m_repl_blocks_->Inc();
    auto entry_or = name_node_->GetMutableFile(st->path);
    bool registered = false;
    if (entry_or.ok()) {
      for (BlockLocation& b : entry_or.value()->blocks) {
        if (b.block_id != st->block_id) continue;
        b.nodes.push_back(st->dst);
        registered = true;
        const uint32_t want =
            b.replication > 0 ? b.replication : name_node_->replication();
        if (b.nodes.size() < std::min(want, name_node_->num_live())) {
          EnqueueReplication(st->path, st->block_id);  // still short
        }
        break;
      }
    }
    if (!registered) {
      // File (or block) deleted while we copied: drop the orphan.
      data_nodes_[st->dst]->DeleteBlock(st->block_id);
    }
  } else {
    // The copy lost its source or target mid-stream; drop the partial
    // replica and queue another attempt.
    if (!name_node_->node_dead(st->dst)) {
      data_nodes_[st->dst]->DeleteBlock(st->block_id);
    }
    EnqueueReplication(st->path, st->block_id);
  }
  PumpReplication();
}

std::string Hdfs::AuditInvariants() const {
  if (repl_active_ > params_.max_rereplication_streams) {
    return "hdfs: repl_active_=" + std::to_string(repl_active_) +
           " exceeds max_rereplication_streams=" +
           std::to_string(params_.max_rereplication_streams);
  }
  const uint32_t num_nodes = static_cast<uint32_t>(data_nodes_.size());
  for (const FileEntry* file : name_node_->List("")) {
    for (const BlockLocation& b : file->blocks) {
      const uint32_t target =
          b.replication > 0 ? b.replication : name_node_->replication();
      if (b.nodes.size() > target) {
        return "hdfs: block " + std::to_string(b.block_id) + " of " +
               file->path + " has " + std::to_string(b.nodes.size()) +
               " replicas, target " + std::to_string(target);
      }
      std::set<uint32_t> seen;
      for (uint32_t n : b.nodes) {
        if (n >= num_nodes) {
          return "hdfs: block " + std::to_string(b.block_id) +
                 " references node " + std::to_string(n) + " of " +
                 std::to_string(num_nodes);
        }
        if (name_node_->node_dead(n)) {
          return "hdfs: block " + std::to_string(b.block_id) +
                 " still lists dead node " + std::to_string(n);
        }
        if (!seen.insert(n).second) {
          return "hdfs: block " + std::to_string(b.block_id) +
                 " lists node " + std::to_string(n) + " twice";
        }
        if (quarantined_.contains({b.block_id, n})) {
          return "hdfs: block " + std::to_string(b.block_id) +
                 " lists quarantined replica on node " + std::to_string(n);
        }
      }
    }
  }
  return {};
}

}  // namespace bdio::hdfs
