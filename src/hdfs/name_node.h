#ifndef BDIO_HDFS_NAME_NODE_H_
#define BDIO_HDFS_NAME_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace bdio::hdfs {

/// Where one block of a file lives.
struct BlockLocation {
  uint64_t block_id = 0;
  uint64_t bytes = 0;
  std::vector<uint32_t> nodes;  ///< Replica holders, pipeline order.
  /// Replication target requested at allocation; 0 means "filesystem
  /// default" (pre-existing locations constructed by hand).
  uint32_t replication = 0;
};

/// Namespace entry for one HDFS file.
struct FileEntry {
  std::string path;
  uint64_t bytes = 0;
  bool complete = false;  ///< Closed for writing.
  std::vector<BlockLocation> blocks;
};

/// The HDFS master: filesystem namespace, block id allocation, and replica
/// placement. Placement follows the Hadoop-1 default collapsed to a single
/// rack: first replica on the writer, remaining replicas on distinct random
/// other nodes. DataNode deaths (MarkDead) shrink the placement pool; when
/// fewer live nodes remain than the requested replication, the factor is
/// clamped to the live count (warned once) instead of failing the write.
class NameNode {
 public:
  NameNode(uint32_t num_nodes, uint32_t replication, Rng rng)
      : num_nodes_(num_nodes),
        replication_(replication),
        rng_(rng),
        dead_(num_nodes, false),
        num_live_(num_nodes) {}

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  Result<FileEntry*> CreateFile(const std::string& path);
  Result<const FileEntry*> GetFile(const std::string& path) const;
  Result<FileEntry*> GetMutableFile(const std::string& path);
  Status Remove(const std::string& path);
  bool Exists(const std::string& path) const { return files_.contains(path); }

  /// Allocates a block id and its replica pipeline for a block written from
  /// `writer` (use num_nodes as writer for an off-cluster client: all
  /// replicas are then random). The overload taking `replication` overrides
  /// the filesystem default for this block. Dead nodes never appear in the
  /// pipeline; a dead `writer` is treated as an off-cluster client.
  BlockLocation AllocateBlock(uint32_t writer, uint64_t bytes);
  BlockLocation AllocateBlock(uint32_t writer, uint64_t bytes,
                              uint32_t replication);

  /// Marks a DataNode dead for placement purposes. Idempotent.
  void MarkDead(uint32_t node);
  bool node_dead(uint32_t node) const { return dead_[node]; }
  uint32_t num_live() const { return num_live_; }

  /// Strikes `node` from every block location in the namespace and returns
  /// the (path, block_id) of each block that lost a replica, in namespace
  /// order — the NameNode's block report diff after a DataNode death, i.e.
  /// the deterministic re-replication work list.
  std::vector<std::pair<std::string, uint64_t>> RemoveReplicasOn(
      uint32_t node);

  /// Picks a random live node outside `exclude` — the target of one
  /// re-replication copy. NotFound when every live node already holds a
  /// replica.
  Result<uint32_t> PickReplicationTarget(const std::vector<uint32_t>& exclude);

  /// All files whose path starts with `prefix` (directory listing).
  std::vector<const FileEntry*> List(const std::string& prefix) const;

  uint32_t replication() const { return replication_; }
  uint64_t total_bytes() const;
  size_t file_count() const { return files_.size(); }

 private:
  uint32_t num_nodes_;
  uint32_t replication_;
  Rng rng_;
  uint64_t next_block_id_ = 1;
  std::map<std::string, FileEntry> files_;  ///< Ordered for List().
  std::vector<bool> dead_;
  uint32_t num_live_;
  bool clamp_warned_ = false;
};

}  // namespace bdio::hdfs

#endif  // BDIO_HDFS_NAME_NODE_H_
