#ifndef BDIO_HDFS_NAME_NODE_H_
#define BDIO_HDFS_NAME_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace bdio::hdfs {

/// Where one block of a file lives.
struct BlockLocation {
  uint64_t block_id = 0;
  uint64_t bytes = 0;
  std::vector<uint32_t> nodes;  ///< Replica holders, pipeline order.
};

/// Namespace entry for one HDFS file.
struct FileEntry {
  std::string path;
  uint64_t bytes = 0;
  bool complete = false;  ///< Closed for writing.
  std::vector<BlockLocation> blocks;
};

/// The HDFS master: filesystem namespace, block id allocation, and replica
/// placement. Placement follows the Hadoop-1 default collapsed to a single
/// rack: first replica on the writer, remaining replicas on distinct random
/// other nodes.
class NameNode {
 public:
  NameNode(uint32_t num_nodes, uint32_t replication, Rng rng)
      : num_nodes_(num_nodes), replication_(replication), rng_(rng) {}

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  Result<FileEntry*> CreateFile(const std::string& path);
  Result<const FileEntry*> GetFile(const std::string& path) const;
  Result<FileEntry*> GetMutableFile(const std::string& path);
  Status Remove(const std::string& path);
  bool Exists(const std::string& path) const { return files_.contains(path); }

  /// Allocates a block id and its replica pipeline for a block written from
  /// `writer` (use num_nodes as writer for an off-cluster client: all
  /// replicas are then random). The overload taking `replication` overrides
  /// the filesystem default for this block.
  BlockLocation AllocateBlock(uint32_t writer, uint64_t bytes);
  BlockLocation AllocateBlock(uint32_t writer, uint64_t bytes,
                              uint32_t replication);

  /// All files whose path starts with `prefix` (directory listing).
  std::vector<const FileEntry*> List(const std::string& prefix) const;

  uint32_t replication() const { return replication_; }
  uint64_t total_bytes() const;
  size_t file_count() const { return files_.size(); }

 private:
  uint32_t num_nodes_;
  uint32_t replication_;
  Rng rng_;
  uint64_t next_block_id_ = 1;
  std::map<std::string, FileEntry> files_;  ///< Ordered for List().
};

}  // namespace bdio::hdfs

#endif  // BDIO_HDFS_NAME_NODE_H_
