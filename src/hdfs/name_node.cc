#include "hdfs/name_node.h"

#include <algorithm>

#include "common/logging.h"

namespace bdio::hdfs {

Result<FileEntry*> NameNode::CreateFile(const std::string& path) {
  if (files_.contains(path)) {
    return Status::AlreadyExists("hdfs file exists: " + path);
  }
  FileEntry entry;
  entry.path = path;
  auto [it, inserted] = files_.emplace(path, std::move(entry));
  BDIO_CHECK(inserted);
  return &it->second;
}

Result<const FileEntry*> NameNode::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return &it->second;
}

Result<FileEntry*> NameNode::GetMutableFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return &it->second;
}

Status NameNode::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return Status::OK();
}

BlockLocation NameNode::AllocateBlock(uint32_t writer, uint64_t bytes) {
  return AllocateBlock(writer, bytes, replication_);
}

BlockLocation NameNode::AllocateBlock(uint32_t writer, uint64_t bytes,
                                      uint32_t replication) {
  BlockLocation loc;
  loc.block_id = next_block_id_++;
  loc.bytes = bytes;
  const uint32_t replicas = std::min(replication, num_nodes_);
  if (writer < num_nodes_) {
    loc.nodes.push_back(writer);
  }
  while (loc.nodes.size() < replicas) {
    const uint32_t candidate =
        static_cast<uint32_t>(rng_.Uniform(num_nodes_));
    if (std::find(loc.nodes.begin(), loc.nodes.end(), candidate) ==
        loc.nodes.end()) {
      loc.nodes.push_back(candidate);
    }
  }
  return loc;
}

std::vector<const FileEntry*> NameNode::List(
    const std::string& prefix) const {
  std::vector<const FileEntry*> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.starts_with(prefix); ++it) {
    out.push_back(&it->second);
  }
  return out;
}

uint64_t NameNode::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [p, f] : files_) total += f.bytes;
  return total;
}

}  // namespace bdio::hdfs
