#include "hdfs/name_node.h"

#include <algorithm>

#include "common/logging.h"

namespace bdio::hdfs {

Result<FileEntry*> NameNode::CreateFile(const std::string& path) {
  if (files_.contains(path)) {
    return Status::AlreadyExists("hdfs file exists: " + path);
  }
  FileEntry entry;
  entry.path = path;
  auto [it, inserted] = files_.emplace(path, std::move(entry));
  BDIO_CHECK(inserted);
  return &it->second;
}

Result<const FileEntry*> NameNode::GetFile(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return &it->second;
}

Result<FileEntry*> NameNode::GetMutableFile(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return &it->second;
}

Status NameNode::Remove(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::NotFound("no such hdfs file: " + path);
  }
  return Status::OK();
}

BlockLocation NameNode::AllocateBlock(uint32_t writer, uint64_t bytes) {
  return AllocateBlock(writer, bytes, replication_);
}

BlockLocation NameNode::AllocateBlock(uint32_t writer, uint64_t bytes,
                                      uint32_t replication) {
  BDIO_CHECK(num_live_ > 0) << "no live DataNodes left to place a block on";
  BlockLocation loc;
  loc.block_id = next_block_id_++;
  loc.bytes = bytes;
  loc.replication = replication;
  uint32_t replicas = std::min(replication, num_nodes_);
  if (replicas > num_live_) {
    // Not enough live nodes for distinct replicas: clamp rather than spin
    // forever in the rejection loop below. Warn once — after a large kill
    // this would otherwise flood the log on every block.
    if (!clamp_warned_) {
      clamp_warned_ = true;
      BDIO_LOG(Warning) << "hdfs: clamping replication " << replicas << " -> "
                        << num_live_ << " (only " << num_live_ << " of "
                        << num_nodes_ << " DataNodes live)";
    }
    replicas = num_live_;
  }
  if (writer < num_nodes_ && !dead_[writer]) {
    loc.nodes.push_back(writer);
  }
  while (loc.nodes.size() < replicas) {
    const uint32_t candidate =
        static_cast<uint32_t>(rng_.Uniform(num_nodes_));
    if (dead_[candidate]) continue;
    if (std::find(loc.nodes.begin(), loc.nodes.end(), candidate) ==
        loc.nodes.end()) {
      loc.nodes.push_back(candidate);
    }
  }
  return loc;
}

void NameNode::MarkDead(uint32_t node) {
  BDIO_CHECK(node < num_nodes_);
  if (dead_[node]) return;
  dead_[node] = true;
  --num_live_;
}

std::vector<std::pair<std::string, uint64_t>> NameNode::RemoveReplicasOn(
    uint32_t node) {
  std::vector<std::pair<std::string, uint64_t>> lost;
  for (auto& [path, file] : files_) {
    for (BlockLocation& loc : file.blocks) {
      auto it = std::find(loc.nodes.begin(), loc.nodes.end(), node);
      if (it == loc.nodes.end()) continue;
      loc.nodes.erase(it);
      lost.emplace_back(path, loc.block_id);
    }
  }
  return lost;
}

Result<uint32_t> NameNode::PickReplicationTarget(
    const std::vector<uint32_t>& exclude) {
  std::vector<uint32_t> candidates;
  candidates.reserve(num_live_);
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    if (dead_[n]) continue;
    if (std::find(exclude.begin(), exclude.end(), n) != exclude.end()) {
      continue;
    }
    candidates.push_back(n);
  }
  if (candidates.empty()) {
    return Status::NotFound("no live node outside the current replica set");
  }
  return candidates[rng_.Uniform(candidates.size())];
}

std::vector<const FileEntry*> NameNode::List(
    const std::string& prefix) const {
  std::vector<const FileEntry*> out;
  for (auto it = files_.lower_bound(prefix);
       it != files_.end() && it->first.starts_with(prefix); ++it) {
    out.push_back(&it->second);
  }
  return out;
}

uint64_t NameNode::total_bytes() const {
  uint64_t total = 0;
  for (const auto& [p, f] : files_) total += f.bytes;
  return total;
}

}  // namespace bdio::hdfs
