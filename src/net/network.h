#ifndef BDIO_NET_NETWORK_H_
#define BDIO_NET_NETWORK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace bdio::net {

/// Per-node traffic counters.
struct NodeNetStats {
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// Fluid-flow model of a non-blocking switched fabric (the paper's 1 GbE):
/// every node has a full-duplex NIC of `link_bytes_per_sec`; concurrent
/// flows receive the max-min fair allocation subject to the egress capacity
/// of the sender and ingress capacity of the receiver. Rates are
/// recomputed whenever a flow starts or finishes.
class Network {
 public:
  /// 1 GbE at protocol efficiency ~0.95 => ~118 MB/s of payload.
  static constexpr double kGigabitPayloadBytesPerSec = 118.0e6;

  Network(sim::Simulator* sim, uint32_t num_nodes,
          double link_bytes_per_sec = kGigabitPayloadBytesPerSec);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Moves `bytes` from node `src` to node `dst`; `cb` fires at completion.
  /// A src==dst transfer completes after a fixed small loopback latency
  /// without consuming NIC capacity.
  void Transfer(uint32_t src, uint32_t dst, uint64_t bytes,
                std::function<void()> cb);

  /// Attaches observability sinks (either may be null): per-link transfers
  /// become spans continuing the caller's current flow, and per-node
  /// tx/rx byte counters feed the registry.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

  /// Scales node `node`'s NIC capacity (both directions) by `factor` in
  /// (0, 1] — the fault-injection model of a flapping or auto-negotiated-
  /// down link. In-flight flows are re-allocated immediately. Factor 1.0
  /// (the default) leaves the fabric bit-exact with the unthrottled model.
  void SetNodeLinkFactor(uint32_t node, double factor);
  double node_link_factor(uint32_t node) const {
    return link_factor_.empty() ? 1.0 : link_factor_[node];
  }

  uint32_t num_nodes() const { return num_nodes_; }
  size_t active_flows() const { return flows_.size(); }
  const NodeNetStats& node_stats(uint32_t node) const {
    return node_stats_[node];
  }
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  struct Flow {
    uint32_t src = 0;
    uint32_t dst = 0;
    double remaining = 0;  ///< Bytes left.
    double rate = 0;       ///< Bytes/sec under the current allocation.
    std::function<void()> cb;
  };

  /// Advances all flows to `Now()`, retires finished ones, recomputes the
  /// max-min allocation and schedules the next completion event.
  void Reschedule();
  void AdvanceTo(SimTime now);
  void ComputeRates();

  sim::Simulator* sim_;
  uint32_t num_nodes_;
  double link_rate_;
  /// Per-node capacity factors; empty until a throttle is installed so the
  /// healthy path stays allocation-free and bit-exact.
  std::vector<double> link_factor_;
  /// Ordered by flow id: Reschedule retires completion callbacks in
  /// iteration order and ComputeRates accumulates doubles over it, so
  /// iteration order must be a pure function of the flow history (rule R1).
  std::map<uint64_t, Flow> flows_;
  uint64_t next_flow_id_ = 1;
  uint64_t generation_ = 0;  ///< Invalidates stale completion events.
  SimTime last_advance_;
  std::vector<NodeNetStats> node_stats_;
  uint64_t total_bytes_ = 0;

  // Observability sinks; null (the default) keeps Transfer at one pointer
  // test. Per-node counters are resolved once at AttachObs.
  obs::TraceSession* trace_ = nullptr;
  std::vector<obs::Counter*> m_tx_bytes_;
  std::vector<obs::Counter*> m_rx_bytes_;
};

}  // namespace bdio::net

#endif  // BDIO_NET_NETWORK_H_
