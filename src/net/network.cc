#include "net/network.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/logging.h"

namespace bdio::net {

namespace {
/// Loopback copies don't touch the NIC; they complete after a token delay.
constexpr SimDuration kLoopbackLatency = Micros(50);
/// Small per-transfer setup latency (connection + protocol overhead).
constexpr SimDuration kFlowSetupLatency = Micros(200);
}  // namespace

Network::Network(sim::Simulator* sim, uint32_t num_nodes,
                 double link_bytes_per_sec)
    : sim_(sim),
      num_nodes_(num_nodes),
      link_rate_(link_bytes_per_sec),
      node_stats_(num_nodes) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(num_nodes > 0);
  BDIO_CHECK(link_bytes_per_sec > 0);
}

void Network::AttachObs(obs::TraceSession* trace,
                        obs::MetricsRegistry* metrics) {
  trace_ = trace;
  if (metrics == nullptr) return;
  m_tx_bytes_.resize(num_nodes_);
  m_rx_bytes_.resize(num_nodes_);
  for (uint32_t n = 0; n < num_nodes_; ++n) {
    const obs::Labels labels{{"node", std::to_string(n)}};
    m_tx_bytes_[n] = metrics->GetCounter("net.link_tx_bytes", labels);
    m_rx_bytes_[n] = metrics->GetCounter("net.link_rx_bytes", labels);
  }
}

void Network::Transfer(uint32_t src, uint32_t dst, uint64_t bytes,
                       std::function<void()> cb) {
  BDIO_CHECK(src < num_nodes_ && dst < num_nodes_);
  node_stats_[src].bytes_sent += bytes;
  node_stats_[dst].bytes_received += bytes;
  total_bytes_ += bytes;
  if (!m_tx_bytes_.empty()) {
    m_tx_bytes_[src]->Add(bytes);
    m_rx_bytes_[dst]->Add(bytes);
  }
  if (trace_ && src != dst && bytes > 0) {
    // Span over the transfer's lifetime, stepping the caller's flow so
    // remote reads/pipeline legs stay linked across the wire.
    const uint64_t span = trace_->BeginSpan(
        src + 1, "net", "xfer",
        "{\"src\":" + std::to_string(src) + ",\"dst\":" +
            std::to_string(dst) + ",\"bytes\":" + std::to_string(bytes) +
            "}");
    trace_->FlowStep(trace_->current_flow(), src + 1);
    cb = [trace = trace_, span, inner = std::move(cb)] {
      trace->EndSpan(span);
      if (inner) inner();
    };
  }
  if (src == dst || bytes == 0) {
    sim_->ScheduleAfter(kLoopbackLatency, std::move(cb));
    return;
  }
  AdvanceTo(sim_->Now());
  Flow flow;
  flow.src = src;
  flow.dst = dst;
  flow.remaining = static_cast<double>(bytes);
  flow.cb = std::move(cb);
  flows_.emplace(next_flow_id_++, std::move(flow));
  Reschedule();
}

void Network::AdvanceTo(SimTime now) {
  BDIO_CHECK(now >= last_advance_);
  const double dt = ToSeconds(now - last_advance_);
  if (dt > 0) {
    for (auto& [id, f] : flows_) {
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  }
  last_advance_ = now;
}

void Network::SetNodeLinkFactor(uint32_t node, double factor) {
  BDIO_CHECK(node < num_nodes_);
  BDIO_CHECK(factor > 0 && factor <= 1.0);
  if (link_factor_.empty()) {
    if (factor == 1.0) return;  // never throttled; stay on the exact path
    link_factor_.assign(num_nodes_, 1.0);
  }
  link_factor_[node] = factor;
  // Re-split capacity among in-flight flows at the new rate.
  AdvanceTo(sim_->Now());
  Reschedule();
}

void Network::ComputeRates() {
  // Max-min fair water-filling over per-node egress/ingress capacities.
  std::vector<double> egress(num_nodes_, link_rate_);
  std::vector<double> ingress(num_nodes_, link_rate_);
  if (!link_factor_.empty()) {
    for (uint32_t n = 0; n < num_nodes_; ++n) {
      egress[n] = link_rate_ * link_factor_[n];
      ingress[n] = link_rate_ * link_factor_[n];
    }
  }
  std::vector<uint32_t> egress_count(num_nodes_, 0);
  std::vector<uint32_t> ingress_count(num_nodes_, 0);
  for (auto& [id, f] : flows_) {
    f.rate = -1;  // unfixed
    ++egress_count[f.src];
    ++ingress_count[f.dst];
  }
  size_t unfixed = flows_.size();
  while (unfixed > 0) {
    // Find the tightest constraint among nodes with unfixed flows.
    double best_share = std::numeric_limits<double>::infinity();
    for (uint32_t n = 0; n < num_nodes_; ++n) {
      if (egress_count[n] > 0) {
        best_share = std::min(best_share, egress[n] / egress_count[n]);
      }
      if (ingress_count[n] > 0) {
        best_share = std::min(best_share, ingress[n] / ingress_count[n]);
      }
    }
    BDIO_CHECK(std::isfinite(best_share));
    // Fix every unfixed flow passing through a bottleneck at best_share.
    bool fixed_any = false;
    for (auto& [id, f] : flows_) {
      if (f.rate >= 0) continue;
      const bool src_bottleneck =
          egress_count[f.src] > 0 &&
          egress[f.src] / egress_count[f.src] <= best_share * (1 + 1e-9);
      const bool dst_bottleneck =
          ingress_count[f.dst] > 0 &&
          ingress[f.dst] / ingress_count[f.dst] <= best_share * (1 + 1e-9);
      if (!src_bottleneck && !dst_bottleneck) continue;
      f.rate = best_share;
      egress[f.src] -= best_share;
      ingress[f.dst] -= best_share;
      --egress_count[f.src];
      --ingress_count[f.dst];
      --unfixed;
      fixed_any = true;
    }
    BDIO_CHECK(fixed_any) << "water-filling failed to make progress";
  }
}

void Network::Reschedule() {
  ComputeRates();
  // Retire flows that are already done.
  std::vector<std::function<void()>> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining <= 0.5) {  // sub-byte residue => done
      done.push_back(std::move(it->second.cb));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  if (!done.empty()) {
    for (auto& cb : done) {
      if (cb) sim_->ScheduleAfter(SimDuration{}, std::move(cb));
    }
    if (!flows_.empty()) ComputeRates();  // allocation changed
  }
  if (flows_.empty()) return;
  // Next completion.
  double min_time = std::numeric_limits<double>::infinity();
  for (auto& [id, f] : flows_) {
    BDIO_CHECK(f.rate > 0);
    min_time = std::min(min_time, f.remaining / f.rate);
  }
  const uint64_t gen = ++generation_;
  const SimDuration dt = FromSeconds(min_time) + kFlowSetupLatency;
  sim_->ScheduleAfter(dt, [this, gen] {
    if (gen != generation_) return;  // superseded by a newer event
    AdvanceTo(sim_->Now());
    Reschedule();
  });
}

}  // namespace bdio::net
