namespace bdio::net {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "net"; }
}  // namespace bdio::net
