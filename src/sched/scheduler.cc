#include "sched/scheduler.h"

#include "common/flat_map.h"

namespace bdio::sched {

namespace {

/// Pool aggregate: weight is the first-admitted member's weight (pools are
/// expected to be configured uniformly; the first member pins it).
struct PoolState {
  double weight = 1.0;
  uint32_t running = 0;
  bool has_runnable = false;
  uint64_t first_seq = 0;
};

/// Pools keyed by name in a flat map: the fair pick below iterates it in
/// the same ascending order the tree map gave (rule R1), without per-pool
/// node allocations on every scheduling decision.
FlatMap<std::string, PoolState> AggregatePools(
    SlotKind kind, const std::vector<JobSchedState>& jobs) {
  FlatMap<std::string, PoolState> pools;
  for (const JobSchedState& j : jobs) {
    auto [it, inserted] = pools.emplace(
        j.pool, PoolState{j.weight <= 0 ? 1.0 : j.weight, 0, false, j.seq});
    it->second.running += j.running(kind);
    if (j.runnable(kind) > 0) it->second.has_runnable = true;
  }
  return pools;
}

}  // namespace

size_t FifoScheduler::PickJob(SlotKind kind,
                              const std::vector<JobSchedState>& jobs) {
  size_t best = kNoJob;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].runnable(kind) == 0) continue;
    if (best == kNoJob || jobs[i].seq < jobs[best].seq) best = i;
  }
  return best;
}

size_t FairScheduler::PickJob(SlotKind kind,
                              const std::vector<JobSchedState>& jobs) {
  // Two-level pick, as in the Hadoop Fair Scheduler: the pool furthest
  // below its weighted share first, FIFO within the pool. A pool's deficit
  // measure is running/weight; smaller means more starved. Ties break on
  // the pool's earliest admission so the pick is a pure function of the
  // snapshot.
  const auto pools = AggregatePools(kind, jobs);
  const std::string* best_pool = nullptr;
  double best_ratio = 0;
  uint64_t best_seq = 0;
  for (const auto& [name, pool] : pools) {
    if (!pool.has_runnable) continue;
    const double ratio = static_cast<double>(pool.running) / pool.weight;
    if (best_pool == nullptr || ratio < best_ratio ||
        (ratio == best_ratio && pool.first_seq < best_seq)) {
      best_pool = &name;
      best_ratio = ratio;
      best_seq = pool.first_seq;
    }
  }
  if (best_pool == nullptr) return kNoJob;
  size_t best = kNoJob;
  for (size_t i = 0; i < jobs.size(); ++i) {
    if (jobs[i].pool != *best_pool || jobs[i].runnable(kind) == 0) continue;
    if (best == kNoJob || jobs[i].seq < jobs[best].seq) best = i;
  }
  return best;
}

size_t FairScheduler::PreemptionVictim(
    const std::vector<JobSchedState>& jobs) {
  if (!options_.preempt_speculative) return kNoJob;
  // Jobs holding speculative backup slots lose those first: killing a
  // backup loses no unique work (the original attempt still runs). Among
  // them — and failing that, among all jobs — reclaim from the job furthest
  // above its weighted share. Jobs holding a single map slot are never
  // victims in the fallback pass: taking it would only move the starvation,
  // not cure it.
  for (const bool speculative_pass : {true, false}) {
    size_t victim = kNoJob;
    double victim_ratio = 0;
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (speculative_pass) {
        if (jobs[i].speculative_running == 0) continue;
      } else {
        if (jobs[i].running_maps < 2) continue;
      }
      const double w = jobs[i].weight <= 0 ? 1.0 : jobs[i].weight;
      const double ratio = static_cast<double>(jobs[i].running_maps) / w;
      if (victim == kNoJob || ratio > victim_ratio ||
          (ratio == victim_ratio && jobs[i].seq < jobs[victim].seq)) {
        victim = i;
        victim_ratio = ratio;
      }
    }
    if (victim != kNoJob) return victim;
  }
  return kNoJob;
}

std::unique_ptr<Scheduler> MakeScheduler(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoScheduler>();
  if (name == "fair") return std::make_unique<FairScheduler>();
  if (name == "fair-preempt") {
    FairSchedulerOptions options;
    options.preempt_speculative = true;
    return std::make_unique<FairScheduler>(options);
  }
  return nullptr;
}

}  // namespace bdio::sched
