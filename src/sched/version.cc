namespace bdio::sched {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "sched"; }
}  // namespace bdio::sched
