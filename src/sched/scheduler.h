#ifndef BDIO_SCHED_SCHEDULER_H_
#define BDIO_SCHED_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace bdio::sched {

/// The two Hadoop-1 slot kinds a TaskTracker offers.
enum class SlotKind { kMap, kReduce };

/// Everything a cluster scheduler may consult about one admitted job when
/// deciding who receives a freed slot. The engine rebuilds this snapshot on
/// every decision, so policies can stay stateless (and therefore trivially
/// deterministic: same snapshot, same pick).
struct JobSchedState {
  uint32_t job_id = 0;   ///< Engine-assigned id, monotone in admission order.
  uint64_t seq = 0;      ///< Admission sequence number (FIFO key).
  std::string pool;      ///< Fair-share pool this job charges against.
  double weight = 1.0;   ///< Pool weight (relative share).
  uint32_t runnable_maps = 0;     ///< Splits waiting for a map slot.
  uint32_t running_maps = 0;      ///< Map tasks currently holding slots.
  uint32_t runnable_reduces = 0;  ///< Created reducers waiting for a slot.
  uint32_t running_reduces = 0;   ///< Reduce tasks currently holding slots.
  /// Running map slots held by speculative backup attempts. The cheapest
  /// slots to reclaim: killing a backup loses no unique work, so preempting
  /// policies take these first.
  uint32_t speculative_running = 0;

  uint32_t runnable(SlotKind kind) const {
    return kind == SlotKind::kMap ? runnable_maps : runnable_reduces;
  }
  uint32_t running(SlotKind kind) const {
    return kind == SlotKind::kMap ? running_maps : running_reduces;
  }
};

/// Cluster-level task scheduler: multiplexes the shared TaskTracker slot
/// pool over the admitted jobs. The engine calls PickJob once per slot it
/// is about to grant; the policy returns an index into `jobs` (or kNoJob to
/// leave the slot idle). Policies must be deterministic functions of the
/// snapshot — the multi-tenant determinism contract rests on it.
class Scheduler {
 public:
  static constexpr size_t kNoJob = static_cast<size_t>(-1);

  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  /// Index of the job that should receive one `kind` slot, kNoJob if no
  /// job wants it. `jobs` is in admission order.
  virtual size_t PickJob(SlotKind kind,
                         const std::vector<JobSchedState>& jobs) = 0;

  /// Index of a job whose map slots should be reclaimed to serve starved
  /// jobs, kNoJob for "never" (the default; only preempting policies
  /// override). Called by the engine when a job with runnable maps holds no
  /// slot and none are free.
  virtual size_t PreemptionVictim(const std::vector<JobSchedState>& jobs) {
    (void)jobs;
    return kNoJob;
  }
};

/// Hadoop's default JobQueueTaskScheduler: strict admission order. Every
/// slot goes to the earliest-submitted job with a runnable task; later jobs
/// run only on capacity the head jobs cannot use.
class FifoScheduler : public Scheduler {
 public:
  const char* name() const override { return "fifo"; }
  size_t PickJob(SlotKind kind,
                 const std::vector<JobSchedState>& jobs) override;
};

/// Weighted max-min fair sharing over pools (the Hadoop Fair Scheduler's
/// core rule): each slot goes to the runnable job whose pool is furthest
/// below its weighted share, i.e. with the smallest running/weight ratio.
/// Ties break on admission order, keeping the policy deterministic.
struct FairSchedulerOptions {
  /// Reclaim map slots a job holds beyond its weighted fair share (its
  /// "speculative" slots, borrowed from capacity nobody else wanted) when
  /// another job with runnable maps is starved of any slot. Off by default:
  /// preemption discards partial task work.
  bool preempt_speculative = false;
};

class FairScheduler : public Scheduler {
 public:
  explicit FairScheduler(FairSchedulerOptions options = {})
      : options_(options) {}

  const char* name() const override { return "fair"; }
  size_t PickJob(SlotKind kind,
                 const std::vector<JobSchedState>& jobs) override;
  size_t PreemptionVictim(const std::vector<JobSchedState>& jobs) override;

 private:
  FairSchedulerOptions options_;
};

/// Factory for the policies the benches expose as --policy values.
/// Returns null for an unknown name ("fifo", "fair", "fair-preempt").
std::unique_ptr<Scheduler> MakeScheduler(const std::string& name);

}  // namespace bdio::sched

#endif  // BDIO_SCHED_SCHEDULER_H_
