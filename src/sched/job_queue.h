#ifndef BDIO_SCHED_JOB_QUEUE_H_
#define BDIO_SCHED_JOB_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace bdio::sched {

/// Deterministic admission controller for a stream of job arrivals.
///
/// Each submitted job is identified by the caller's index; the queue holds
/// its arrival until the arrival time elapses and an admission token is
/// free (at most `max_concurrent` jobs in flight), then invokes the launch
/// callback. The launcher reports completions back via OnJobDone, which
/// releases the token to the earliest waiting arrival. Admission order is a
/// pure function of (arrival time, submission order), independent of how
/// the launched jobs interleave, so the same stream always admits in the
/// same order.
class JobQueue {
 public:
  /// `launch` runs when job `index` is admitted (inside a simulator event).
  using LaunchFn = std::function<void(size_t index)>;

  /// `max_concurrent` == 0 means unlimited (admission never queues).
  JobQueue(sim::Simulator* sim, uint32_t max_concurrent, LaunchFn launch);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Registers one arrival at absolute sim time `arrival` and returns its
  /// index (dense, in submission order). Call before the clock passes
  /// `arrival`.
  size_t Submit(SimTime arrival);

  /// The launcher must call this exactly once per launched job.
  void OnJobDone(size_t index);

  /// Fires `cb` once every submitted job has completed (set before Run).
  void OnDrained(std::function<void()> cb) { drained_ = std::move(cb); }

  size_t submitted() const { return arrivals_.size(); }
  size_t admitted() const { return admitted_; }
  size_t completed() const { return completed_; }
  size_t waiting() const { return wait_queue_.size(); }

  /// Sim time the job spent between arrival and admission.
  SimDuration QueueWait(size_t index) const;
  SimTime ArrivalTime(size_t index) const { return arrivals_[index].arrival; }
  SimTime AdmitTime(size_t index) const { return arrivals_[index].admit; }

 private:
  struct Arrival {
    SimTime arrival;
    SimTime admit;
    bool admitted = false;
    bool done = false;
  };

  void Arrived(size_t index);
  void Admit(size_t index);

  sim::Simulator* sim_;
  uint32_t max_concurrent_;
  LaunchFn launch_;
  std::vector<Arrival> arrivals_;
  std::deque<size_t> wait_queue_;  ///< Arrived, waiting for a token.
  size_t in_flight_ = 0;
  size_t admitted_ = 0;
  size_t completed_ = 0;
  std::function<void()> drained_;
};

}  // namespace bdio::sched

#endif  // BDIO_SCHED_JOB_QUEUE_H_
