#include "sched/job_queue.h"

#include "common/logging.h"

namespace bdio::sched {

JobQueue::JobQueue(sim::Simulator* sim, uint32_t max_concurrent,
                   LaunchFn launch)
    : sim_(sim), max_concurrent_(max_concurrent), launch_(std::move(launch)) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(launch_ != nullptr);
}

size_t JobQueue::Submit(SimTime arrival) {
  const size_t index = arrivals_.size();
  arrivals_.push_back(Arrival{arrival, SimTime{}, false, false});
  sim_->ScheduleAt(arrival, [this, index] { Arrived(index); });
  return index;
}

void JobQueue::Arrived(size_t index) {
  if (max_concurrent_ == 0 || in_flight_ < max_concurrent_) {
    Admit(index);
  } else {
    wait_queue_.push_back(index);
  }
}

void JobQueue::Admit(size_t index) {
  Arrival& a = arrivals_[index];
  BDIO_CHECK(!a.admitted);
  a.admitted = true;
  a.admit = sim_->Now();
  ++in_flight_;
  ++admitted_;
  launch_(index);
}

void JobQueue::OnJobDone(size_t index) {
  Arrival& a = arrivals_[index];
  BDIO_CHECK(a.admitted && !a.done);
  a.done = true;
  BDIO_CHECK(in_flight_ > 0);
  --in_flight_;
  ++completed_;
  if (!wait_queue_.empty()) {
    const size_t next = wait_queue_.front();
    wait_queue_.pop_front();
    Admit(next);
  }
  if (completed_ == arrivals_.size() && drained_) drained_();
}

SimDuration JobQueue::QueueWait(size_t index) const {
  const Arrival& a = arrivals_[index];
  BDIO_CHECK(a.admitted);
  return a.admit - a.arrival;
}

}  // namespace bdio::sched
