#include "cluster/cluster.h"

#include "common/logging.h"

namespace bdio::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterParams& params,
                 uint32_t total_slots, Rng rng)
    : sim_(sim), params_(params) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(params.num_workers > 0);
  network_ = std::make_unique<net::Network>(sim, params.num_workers,
                                            params.link_bytes_per_sec);
  for (uint32_t i = 0; i < params.num_workers; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, params.node, total_slots,
                                            rng.Fork()));
  }
}

}  // namespace bdio::cluster
