#include "cluster/cluster.h"

#include <string>

#include "common/logging.h"

namespace bdio::cluster {

Cluster::Cluster(sim::Simulator* sim, const ClusterParams& params,
                 uint32_t total_slots, Rng rng)
    : sim_(sim), params_(params) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(params.num_workers > 0);
  network_ = std::make_unique<net::Network>(sim, params.num_workers,
                                            params.link_bytes_per_sec);
  for (uint32_t i = 0; i < params.num_workers; ++i) {
    nodes_.push_back(std::make_unique<Node>(sim, i, params.node, total_slots,
                                            rng.Fork()));
  }
}


void Cluster::AttachObs(obs::TraceSession* trace,
                        obs::MetricsRegistry* metrics) {
  if (trace != nullptr) {
    trace->SetProcessName(0, "cluster");
    for (uint32_t n = 0; n < num_workers(); ++n) {
      trace->SetProcessName(n + 1, "node " + std::to_string(n));
    }
  }
  for (uint32_t n = 0; n < num_workers(); ++n) {
    nodes_[n]->cache()->AttachObs(trace, metrics, n + 1);
    for (uint32_t d = 0; d < nodes_[n]->num_hdfs_disks(); ++d) {
      nodes_[n]->hdfs_disk(d)->AttachObs(trace, metrics, n + 1, "hdfs");
    }
    for (uint32_t d = 0; d < nodes_[n]->num_mr_disks(); ++d) {
      nodes_[n]->mr_disk(d)->AttachObs(trace, metrics, n + 1, "mr");
    }
  }
  network_->AttachObs(trace, metrics);
}

void Cluster::AttachBlktrace(obs::BlktraceSession* session) {
  if (session == nullptr) return;
  for (uint32_t n = 0; n < num_workers(); ++n) {
    for (uint32_t d = 0; d < nodes_[n]->num_hdfs_disks(); ++d) {
      storage::BlockDevice* dev = nodes_[n]->hdfs_disk(d);
      dev->AttachBlktrace(session,
                          session->RegisterDevice(dev->name(), "hdfs", n));
    }
    for (uint32_t d = 0; d < nodes_[n]->num_mr_disks(); ++d) {
      storage::BlockDevice* dev = nodes_[n]->mr_disk(d);
      dev->AttachBlktrace(session,
                          session->RegisterDevice(dev->name(), "mr", n));
    }
  }
}

}  // namespace bdio::cluster
