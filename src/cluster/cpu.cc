#include "cluster/cpu.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace bdio::cluster {

CpuScheduler::CpuScheduler(sim::Simulator* sim, uint32_t cores)
    : sim_(sim), cores_(cores) {
  BDIO_CHECK(sim != nullptr);
  BDIO_CHECK(cores > 0);
}

double CpuScheduler::RatePerJob() const {
  if (jobs_.empty()) return 0;
  return std::min(1.0, static_cast<double>(cores_) /
                           static_cast<double>(jobs_.size()));
}

void CpuScheduler::Run(SimDuration cpu_time, InlineFn cb) {
  if (cpu_time == SimDuration{}) {
    sim_->ScheduleAfter(SimDuration{}, std::move(cb));
    return;
  }
  AdvanceTo(sim_->Now());
  Job job;
  job.remaining = ToSeconds(cpu_time);
  job.cb = std::move(cb);
  jobs_.emplace(next_id_++, std::move(job));
  Reschedule();
}

void CpuScheduler::AdvanceTo(SimTime now) {
  BDIO_CHECK(now >= last_advance_);
  const double dt = ToSeconds(now - last_advance_);
  if (dt > 0 && !jobs_.empty()) {
    const double rate = RatePerJob();
    for (auto& [id, j] : jobs_) {
      const double work = rate * dt;
      j.remaining = std::max(0.0, j.remaining - work);
    }
    used_seconds_ +=
        rate * dt * static_cast<double>(jobs_.size());
  }
  last_advance_ = now;
}

void CpuScheduler::Reschedule() {
  // Retire finished jobs.
  std::vector<InlineFn> done;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->second.remaining <= 1e-12) {
      done.push_back(std::move(it->second.cb));
      it = jobs_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& cb : done) {
    if (cb) sim_->ScheduleAfter(SimDuration{}, std::move(cb));
  }
  if (jobs_.empty()) return;
  const double rate = RatePerJob();
  double min_t = std::numeric_limits<double>::infinity();
  for (auto& [id, j] : jobs_) {
    min_t = std::min(min_t, j.remaining / rate);
  }
  const uint64_t gen = ++generation_;
  sim_->ScheduleAfter(FromSeconds(min_t) + kNanosecond, [this, gen] {
    if (gen != generation_) return;
    AdvanceTo(sim_->Now());
    Reschedule();
  });
}

double CpuScheduler::Utilization() const {
  const double elapsed = ToSeconds(sim_->Now());
  if (elapsed <= 0) return 0;
  return used_seconds_ / (static_cast<double>(cores_) * elapsed);
}

}  // namespace bdio::cluster
