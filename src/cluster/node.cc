#include "cluster/node.h"

#include <algorithm>

#include "common/logging.h"

namespace bdio::cluster {

uint64_t NodeParams::CacheBytes(uint32_t slots) const {
  const uint64_t reserved =
      daemon_bytes + static_cast<uint64_t>(slots) * per_slot_heap_bytes;
  if (memory_bytes <= reserved + min_cache_bytes) return min_cache_bytes;
  return memory_bytes - reserved;
}

Node::Node(sim::Simulator* sim, uint32_t id, const NodeParams& params,
           uint32_t total_slots, Rng rng)
    : sim_(sim), id_(id), params_(params) {
  BDIO_CHECK(sim != nullptr);
  cpu_ = std::make_unique<CpuScheduler>(sim, params.cores);

  os::PageCacheParams cache_params = params.cache;
  cache_params.capacity_bytes = params.CacheBytes(total_slots);
  cache_ = std::make_unique<os::PageCache>(sim, cache_params);

  os::FileSystemParams hdfs_fs_params;
  hdfs_fs_params.extent_bytes = params.hdfs_extent_bytes;
  os::FileSystemParams mr_fs_params;
  mr_fs_params.extent_bytes = params.mr_extent_bytes;
  mr_fs_params.scatter_allocation = true;
  mr_fs_params.scatter_seed = 0x5EED0000ULL + id;
  for (uint32_t i = 0; i < params.num_hdfs_disks; ++i) {
    hdfs_disks_.push_back(std::make_unique<storage::BlockDevice>(
        sim, "n" + std::to_string(id) + "-hdfs" + std::to_string(i),
        params.disk, rng.Fork(), params.io_scheduler));
    hdfs_fs_.push_back(std::make_unique<os::FileSystem>(
        sim, hdfs_disks_.back().get(), cache_.get(), hdfs_fs_params));
  }
  const storage::DiskParameters& mr_disk_params =
      params.mr_disk ? *params.mr_disk : params.disk;
  for (uint32_t i = 0; i < params.num_mr_disks; ++i) {
    mr_disks_.push_back(std::make_unique<storage::BlockDevice>(
        sim, "n" + std::to_string(id) + "-mr" + std::to_string(i),
        mr_disk_params, rng.Fork(), params.io_scheduler));
    mr_fs_.push_back(std::make_unique<os::FileSystem>(
        sim, mr_disks_.back().get(), cache_.get(), mr_fs_params));
  }
}

}  // namespace bdio::cluster
