#ifndef BDIO_CLUSTER_NODE_H_
#define BDIO_CLUSTER_NODE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cpu.h"
#include "common/random.h"
#include "common/units.h"
#include "os/file_system.h"
#include "os/page_cache.h"
#include "sim/simulator.h"
#include "storage/block_device.h"
#include "storage/disk_parameters.h"

namespace bdio::cluster {

/// Hardware/software configuration of a worker node, defaulting to the
/// paper's testbed (Table 1): 2x Xeon E5645 = 12 cores, 16/32 GB DDR3,
/// 7 disks of which 3 hold HDFS data and 3 hold MapReduce intermediate data
/// (the 7th is the system disk, which the paper does not report).
struct NodeParams {
  uint32_t cores = 12;
  uint64_t memory_bytes = GiB(16);
  uint32_t num_hdfs_disks = 3;
  uint32_t num_mr_disks = 3;
  storage::DiskParameters disk = storage::DiskParameters::Seagate1TB7200();
  /// Intermediate-data disks may differ from the HDFS ones (e.g. flash for
  /// the shuffle — the per-I/O-mode provisioning the paper implies).
  std::optional<storage::DiskParameters> mr_disk;
  std::string io_scheduler = "deadline";

  /// Memory not available to the page cache: OS + Hadoop daemons, and one
  /// JVM heap per configured task slot.
  uint64_t daemon_bytes = GiB(2);
  uint64_t per_slot_heap_bytes = MiB(200);
  /// Lower bound on the page cache (scaled experiments shrink memory).
  uint64_t min_cache_bytes = MiB(256);

  /// Allocation granularity per disk class. HDFS block files are large and
  /// long-lived (near-contiguous on disk); intermediate-data dirs hold many
  /// small short-lived files and fragment — this is what makes the MR disks'
  /// requests small and seeky, per the paper's Observation 4.
  uint64_t hdfs_extent_bytes = MiB(4);
  uint64_t mr_extent_bytes = MiB(1);

  os::PageCacheParams cache;  ///< capacity_bytes is overwritten.

  /// Page-cache capacity implied by this configuration with `slots` task
  /// slots (never below 256 MiB).
  uint64_t CacheBytes(uint32_t slots) const;
};

/// A simulated worker node: CPU scheduler, unified page cache, and two
/// groups of data disks with one local filesystem each — the HDFS data
/// directories and the MapReduce intermediate-data (mapred.local) dirs.
class Node {
 public:
  Node(sim::Simulator* sim, uint32_t id, const NodeParams& params,
       uint32_t total_slots, Rng rng);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  const NodeParams& params() const { return params_; }

  CpuScheduler* cpu() { return cpu_.get(); }
  os::PageCache* cache() { return cache_.get(); }

  uint32_t num_hdfs_disks() const { return params_.num_hdfs_disks; }
  uint32_t num_mr_disks() const { return params_.num_mr_disks; }
  storage::BlockDevice* hdfs_disk(uint32_t i) { return hdfs_disks_[i].get(); }
  storage::BlockDevice* mr_disk(uint32_t i) { return mr_disks_[i].get(); }
  os::FileSystem* hdfs_fs(uint32_t i) { return hdfs_fs_[i].get(); }
  os::FileSystem* mr_fs(uint32_t i) { return mr_fs_[i].get(); }

  /// Round-robin placement over the HDFS dirs (DataNode volume choosing
  /// policy) and the MR local dirs (LocalDirAllocator).
  os::FileSystem* NextHdfsFs() {
    return hdfs_fs_[hdfs_rr_++ % hdfs_fs_.size()].get();
  }
  os::FileSystem* NextMrFs() { return mr_fs_[mr_rr_++ % mr_fs_.size()].get(); }

 private:
  sim::Simulator* sim_;
  uint32_t id_;
  NodeParams params_;
  std::unique_ptr<CpuScheduler> cpu_;
  std::unique_ptr<os::PageCache> cache_;
  std::vector<std::unique_ptr<storage::BlockDevice>> hdfs_disks_;
  std::vector<std::unique_ptr<storage::BlockDevice>> mr_disks_;
  std::vector<std::unique_ptr<os::FileSystem>> hdfs_fs_;
  std::vector<std::unique_ptr<os::FileSystem>> mr_fs_;
  uint64_t hdfs_rr_ = 0;
  uint64_t mr_rr_ = 0;
};

}  // namespace bdio::cluster

#endif  // BDIO_CLUSTER_NODE_H_
