#ifndef BDIO_CLUSTER_CPU_H_
#define BDIO_CLUSTER_CPU_H_

#include <cstdint>
#include <map>

#include "common/inline_fn.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace bdio::cluster {

/// Processor-sharing CPU model: a node has `cores` cores; each runnable job
/// receives rate min(1, cores / runnable) cores. Completion events are
/// recomputed whenever the runnable set changes — the same fluid technique
/// as net::Network. This is what stretches CPU-bound workloads when slots
/// exceed cores, and what lets extra slots shorten runtime when cores are
/// idle.
class CpuScheduler {
 public:
  CpuScheduler(sim::Simulator* sim, uint32_t cores);

  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Runs `cpu_time` of single-core work; `cb` fires when it has received
  /// that much CPU service.
  void Run(SimDuration cpu_time, InlineFn cb);

  uint32_t cores() const { return cores_; }
  size_t runnable() const { return jobs_.size(); }
  /// Total CPU-seconds delivered so far.
  double cpu_seconds_used() const { return used_seconds_; }
  /// Utilization over [0, now]: used / (cores * elapsed).
  double Utilization() const;

 private:
  struct Job {
    double remaining = 0;  ///< Single-core seconds of work left.
    InlineFn cb;
  };

  void AdvanceTo(SimTime now);
  void Reschedule();
  double RatePerJob() const;

  sim::Simulator* sim_;
  uint32_t cores_;
  /// Ordered by job id: Reschedule retires completion callbacks in
  /// iteration order, which feeds the event queue (rule R1).
  std::map<uint64_t, Job> jobs_;
  uint64_t next_id_ = 1;
  uint64_t generation_ = 0;
  SimTime last_advance_;
  double used_seconds_ = 0;
};

}  // namespace bdio::cluster

#endif  // BDIO_CLUSTER_CPU_H_
