#ifndef BDIO_CLUSTER_CLUSTER_H_
#define BDIO_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "common/random.h"
#include "net/network.h"
#include "obs/blktrace.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace bdio::cluster {

/// Cluster-level configuration, defaulting to the paper's testbed: one
/// master plus ten worker nodes on 1 GbE. Only workers are modelled as
/// Nodes; the master's coordination traffic is negligible at disk level.
struct ClusterParams {
  uint32_t num_workers = 10;
  NodeParams node;
  double link_bytes_per_sec = net::Network::kGigabitPayloadBytesPerSec;
};

/// A set of worker nodes joined by a fair-share network.
class Cluster {
 public:
  /// `total_slots` is the per-node slot count (map + reduce), needed to
  /// size each node's page cache.
  Cluster(sim::Simulator* sim, const ClusterParams& params,
          uint32_t total_slots, Rng rng);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  uint32_t num_workers() const { return params_.num_workers; }
  Node* node(uint32_t i) { return nodes_[i].get(); }
  net::Network* network() { return network_.get(); }
  sim::Simulator* sim() { return sim_; }
  const ClusterParams& params() const { return params_; }

  /// Attaches observability sinks (either may be null) to every layer the
  /// cluster owns — each node's page cache and disks, plus the network —
  /// and names the trace process rows (pid 0 = cluster, pid i+1 = node i).
  /// Callers attach the layers above (HDFS, MR engine) themselves.
  void AttachObs(obs::TraceSession* trace, obs::MetricsRegistry* metrics);

  /// Registers every data disk with `session` (node-major, hdfs disks
  /// before mr disks — a fixed order, so artifacts are byte-identical
  /// across runs) and attaches the per-device lifecycle hooks. No-op when
  /// `session` is null.
  void AttachBlktrace(obs::BlktraceSession* session);

 private:
  sim::Simulator* sim_;
  ClusterParams params_;
  std::unique_ptr<net::Network> network_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace bdio::cluster

#endif  // BDIO_CLUSTER_CLUSTER_H_
