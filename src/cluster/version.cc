namespace bdio::cluster {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "cluster"; }
}  // namespace bdio::cluster
