namespace bdio::mapreduce {
// Placeholder translation unit; real sources land alongside it.
const char* ModuleName() { return "mapreduce"; }
}  // namespace bdio::mapreduce
